"""Topological scheduler for :class:`~repro.exec.ir.ExecPlan` DAGs.

Two dispatch policies:

* ``"program"`` (default) — Kahn's algorithm with a min-id tie-break.
  The compiler emits steps in the legacy orchestration's visit order,
  so this policy replays the legacy transcript **byte-for-byte** (same
  message sizes, same senders, same labels, same order).
* ``"stages"`` — stage-major dispatch: the DAG's dependency levels run
  one after another, all steps of a level before any of the next.
  Independent join-tree branches (parallel reveals, aligns, semijoins)
  are grouped, which is the dispatch shape a multi-threaded or batched
  backend would use.  Semantically identical and byte-identical in
  total; the message *order* may differ from the program policy.

Every executed node is recorded into the engine's
:class:`~repro.exec.trace.ExecutionTrace` when one is attached.  The
section wrappers reproduce the legacy transcript's label scheme
exactly (``reduce``, ``semijoin``, ``full_join/oblivious_join``).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpc.engine import Engine
    from ..runtime.supervisor import Supervisor

from ..mpc.context import ALICE
from ..mpc.sharing import reveal_vector
from ..core.aggregation import oblivious_aggregate
from ..core.join import (
    align_factor,
    empty_join_result,
    finish_join,
    local_star_join,
    reveal_relation,
)
from ..core.relation import SecureRelation
from ..core.semijoin import oblivious_reduce_join, oblivious_semijoin
from .ir import (
    AggregateStep,
    AlignStep,
    ExecPlan,
    JoinStep,
    ProductStep,
    ReduceFoldStep,
    RevealResultStep,
    RevealStep,
    SemijoinStep,
    ShareStep,
    Step,
)
from .trace import ExecutionTrace

__all__ = ["Scheduler"]

POLICIES = ("program", "stages")


class Scheduler:
    """Executes an :class:`ExecPlan` over an engine's context.

    ``policy`` and ``trace`` default to the engine's ``exec_policy``
    and ``tracer`` attributes, so callers configure instrumentation
    once on the engine and every pipeline run picks it up.
    """

    def __init__(
        self,
        engine: "Engine",
        policy: Optional[str] = None,
        trace: Optional[ExecutionTrace] = None,
    ) -> None:
        self.engine = engine
        self.policy = policy or getattr(engine, "exec_policy", "program")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}"
            )
        self.trace = (
            trace
            if trace is not None
            else getattr(engine, "tracer", None)
        )

    # -- ordering --------------------------------------------------------

    def execution_order(self, plan: ExecPlan) -> List[Step]:
        if self.policy == "stages":
            return [s for group in plan.stages for s in group]
        # Kahn's algorithm, always releasing the smallest ready id:
        # reproduces the compiler's emission order (the legacy program
        # order) for any DAG the compiler produces.
        indegree = {s.id: len(plan.deps[s.id]) for s in plan.steps}
        dependants: Dict[int, List[int]] = {s.id: [] for s in plan.steps}
        for s in plan.steps:
            for d in plan.deps[s.id]:
                dependants[d].append(s.id)
        ready = [s.id for s in plan.steps if indegree[s.id] == 0]
        heapq.heapify(ready)
        order: List[Step] = []
        while ready:
            sid = heapq.heappop(ready)
            order.append(plan.step_by_id(sid))
            for nxt in dependants[sid]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    heapq.heappush(ready, nxt)
        if len(order) != len(plan.steps):
            raise ValueError("cycle in execution plan")
        return order

    # -- execution -------------------------------------------------------

    def run(
        self,
        plan: ExecPlan,
        relations: Dict[str, SecureRelation],
        *,
        env: Optional[Dict[str, Any]] = None,
        start_at: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Execute the DAG; returns the final slot environment.  The
        caller reads ``plan.result_slot`` out of it.

        When the context carries a runtime session
        (:func:`repro.runtime.session.enable_session`), every step runs
        under the :class:`~repro.runtime.supervisor.Supervisor`:
        checkpointed, deadline-supervised, and retried on retryable
        :class:`~repro.runtime.aborts.ProtocolAbort` faults.  Protocol
        code never catches broader exception types here — operator bugs
        must propagate untouched.

        ``env``/``start_at`` make runs restartable over a durable
        checkpoint (``repro net --resume``): pass the revived slot
        environment and the checkpointed step id, and execution skips
        every step before ``start_at`` in this policy's execution
        order, resuming at the checkpointed node itself."""
        ctx = self.engine.ctx
        supervisor = self._make_supervisor()
        # Cooperative re-entrancy: a serving layer may interleave many
        # sessions by parking this one at each step boundary.  The hook
        # runs outside the supervisor's checkpoint/retry bracket (one
        # yield per step, not per attempt) and before any of the step's
        # messages, so it cannot perturb the transcript.
        yield_hook = getattr(self.engine, "yield_hook", None)
        env = {} if env is None else env
        waiting_for = start_at
        for step in self.execution_order(plan):
            if waiting_for is not None:
                if step.id != waiting_for:
                    continue
                waiting_for = None
            if yield_hook is not None:
                yield_hook(step)

            def thunk(step: Step = step) -> None:
                if self.trace is not None:
                    backend, est_bytes = self._node_estimate(step, env)
                    with self.trace.node(
                        ctx.transcript,
                        id=step.id,
                        kind=step.kind,
                        label=step.label,
                        section=step.section,
                        stage=plan.stage_of[step.id],
                        backend=backend,
                        est_bytes=est_bytes,
                    ):
                        self._dispatch(step, env, relations)
                else:
                    self._dispatch(step, env, relations)

            if supervisor is not None:
                supervisor.run_step(step, env, thunk)
            else:
                thunk()
        if waiting_for is not None:
            raise ValueError(
                f"resume step {waiting_for} is not in the plan's "
                f"execution order under policy {self.policy!r}"
            )
        if self.trace is not None:
            self.trace.meta["policy"] = self.policy
            self.trace.meta["plan"] = plan.name
            self.trace.meta["n_steps"] = len(plan.steps)
            self.trace.meta["n_stages"] = len(plan.stages)
            self.trace.meta["cache"] = ctx.cache.stats()
        return env

    def _node_estimate(
        self, step: Step, env: Dict[str, Any]
    ) -> "tuple[Optional[str], Optional[int]]":
        """For fold/semijoin nodes: the back-end the node will run under
        and its pre-dispatch estimated bytes (marginal, excluding the
        one-time base-OT setup), computed from the *live* operand sizes
        and plainness — the numbers the trace reports next to the
        metered actuals.  ``(None, None)`` for every other node kind."""
        if not isinstance(step, (ReduceFoldStep, SemijoinStep)):
            return None, None
        from ..bench.estimator import _Estimator

        e = _Estimator(self.engine.ctx.params)
        e._ot_base_charged = {False: True, True: True}
        if isinstance(step, ReduceFoldStep):
            parent, child = env[step.parent], env[step.child]
            child_plain = child.annotations.kind == "plain"
            e.aggregate(len(child), child_plain)
            e.reduce_join(
                len(parent),
                len(child),
                parent.owner == child.owner,
                child_plain,
                parent.annotations.kind == "plain",
                backend=step.backend,
            )
        else:
            target, filt = env[step.target], env[step.filter]
            filter_plain = filt.annotations.kind == "plain"
            e.support_projection(len(filt), filter_plain)
            e.reduce_join(
                len(target),
                len(filt),
                target.owner == filt.owner,
                filter_plain,
                target.annotations.kind == "plain",
                backend=step.backend,
            )
        return step.backend, e.est.total

    def _make_supervisor(self) -> Optional["Supervisor"]:
        """A step supervisor when the context has a session attached
        (imported lazily: the runtime layer is optional at run time)."""
        session = getattr(self.engine.ctx, "session", None)
        if session is None:
            return None
        from ..runtime.supervisor import Supervisor

        return Supervisor(session, self.engine, trace=self.trace)

    def _dispatch(
        self,
        step: Step,
        env: Dict[str, Any],
        relations: Dict[str, SecureRelation],
    ) -> None:
        engine = self.engine
        ctx = engine.ctx
        if isinstance(step, ShareStep):
            if step.relation not in relations:
                raise KeyError(
                    f"missing input relations: [{step.relation!r}]"
                )
            env[step.relation] = relations[step.relation]
        elif isinstance(step, ReduceFoldStep):
            with ctx.section("reduce"):
                folded = oblivious_aggregate(
                    engine, env[step.child], step.agg_attrs,
                    label=f"agg/{step.child}",
                )
                env[step.parent] = oblivious_reduce_join(
                    engine, env[step.parent], folded,
                    label=step.label, backend=step.backend,
                )
            del env[step.child]
        elif isinstance(step, AggregateStep):
            with ctx.section("reduce"):
                env[step.node] = oblivious_aggregate(
                    engine, env[step.node], step.attrs,
                    label=step.label,
                )
        elif isinstance(step, SemijoinStep):
            with ctx.section("semijoin"):
                env[step.target] = oblivious_semijoin(
                    engine, env[step.target], env[step.filter],
                    label=step.label, backend=step.backend,
                )
        elif isinstance(step, RevealStep):
            with ctx.section("full_join"), ctx.section("oblivious_join"):
                shares, revealed = reveal_relation(
                    engine, env[step.relation], step.relation
                )
            env[f"shares:{step.relation}"] = shares
            env[f"revealed:{step.relation}"] = revealed
        elif isinstance(step, JoinStep):
            with ctx.section("full_join"), ctx.section("oblivious_join"):
                env["joined"] = local_star_join(
                    ctx,
                    {n: env[n] for n in step.relations},
                    {n: env[f"revealed:{n}"] for n in step.relations},
                    list(step.join_order),
                    pad_out_to=step.pad_out_to,
                )
        elif isinstance(step, AlignStep):
            joined = env["joined"]
            if len(joined) == 0:
                env[f"factor:{step.relation}"] = None
                return
            with ctx.section("full_join"), ctx.section("oblivious_join"):
                env[f"factor:{step.relation}"] = align_factor(
                    engine,
                    step.relation,
                    env[f"shares:{step.relation}"],
                    joined,
                )
        elif isinstance(step, ProductStep):
            joined = env["joined"]
            if len(joined) == 0:
                env["result"] = empty_join_result(ctx, joined)
                return
            factors = [
                env[f"factor:{n}"] for n in step.relations
            ]
            with ctx.section("full_join"), ctx.section("oblivious_join"):
                env["result"] = finish_join(engine, joined, factors)
        elif isinstance(step, RevealResultStep):
            result = env["result"]
            # oblint: leaks=opened:result
            values = reveal_vector(
                ctx, result.annotations, ALICE, label="result"
            )
            env["output"] = (result, values)
        else:  # pragma: no cover
            raise TypeError(f"unknown step {step!r}")
