"""Plan-level leakage audit.

The code-level contract rules (OBL006–OBL008) pin what each primitive
*may* leak; this module answers the composition question for one
concrete plan: given the per-node ``backend`` assignments a routed
:class:`~repro.exec.ir.ExecPlan` carries, what does the *whole plan*
reveal beyond the public sizes?

Composition follows the paper's argument: every node that never
reaches the cross-owner back-end dispatch (same-owner folds, scalar
children) is back-end-independent and leaks nothing; every dispatched
node contributes its back-end's registered contract
(:data:`repro.leakage.BACKEND_CONTRACTS`).  The whole-plan summary is
the union — an all-``yannakakis`` route is exactly ``{}``, a route
with any dispatched ``linear`` node is ``{join_pattern:parent}``.

Three consumers:

* ``repro lint --plan FILE [--allow ATOM]`` audits a serialised plan
  against a caller-supplied budget;
* the serving layer rejects a tenant's plan *statically* at admission
  when its summary exceeds the tenant's pinned leakage budget
  (:meth:`repro.serve.service.QueryService.register_tenant`);
* the fuzzer asserts both routes of every ``--backend both`` instance
  match their documented models (docs/BACKENDS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..leakage import BACKEND_CONTRACTS
from .ir import ExecPlan, ReduceFoldStep, SemijoinStep, ShareStep

__all__ = ["NodeLeakage", "LeakageReport", "audit_plan", "audit_routes"]


@dataclass(frozen=True)
class NodeLeakage:
    """The leakage contribution of one routed plan node."""

    label: str  #: ``fold/{child}->{parent}`` / ``semi/{target}<-{filter}``
    kind: str  #: ``"reduce_fold"`` | ``"semijoin"``
    backend: str
    #: Whether the node reaches the cross-owner back-end dispatch at
    #: all (same-owner nodes and scalar-child folds run an identical
    #: local path under every back-end and leak nothing).
    dispatched: bool
    atoms: FrozenSet[str]
    #: Set when ``backend`` has no BACKEND_CONTRACTS entry — an
    #: unregistered back-end is itself an audit failure.
    unknown_backend: bool = False


@dataclass
class LeakageReport:
    """Composed leakage of one routed plan."""

    plan_name: str
    nodes: Tuple[NodeLeakage, ...]

    @property
    def summary(self) -> FrozenSet[str]:
        """Union of every dispatched node's contract atoms."""
        out: FrozenSet[str] = frozenset()
        for n in self.nodes:
            if n.dispatched:
                out |= n.atoms
        return out

    def violations(
        self, allow: FrozenSet[str] = frozenset()
    ) -> List[str]:
        """Human-readable failures against an allowed-atom budget."""
        out: List[str] = []
        for n in self.nodes:
            if n.unknown_backend:
                out.append(
                    f"node {n.label}: back-end '{n.backend}' has no "
                    "BACKEND_CONTRACTS entry"
                )
            if not n.dispatched:
                continue
            excess = sorted(n.atoms - allow)
            if excess:
                out.append(
                    f"node {n.label} (backend {n.backend}) leaks "
                    f"{excess} beyond the allowed budget "
                    f"{sorted(allow)}"
                )
        return out

    def ok(self, allow: FrozenSet[str] = frozenset()) -> bool:
        return not self.violations(allow)

    def to_json(
        self, allow: FrozenSet[str] = frozenset()
    ) -> Dict[str, object]:
        return {
            "plan": self.plan_name,
            "summary": sorted(self.summary),
            "allow": sorted(allow),
            "ok": self.ok(allow),
            "violations": self.violations(allow),
            "nodes": [
                {
                    "label": n.label,
                    "kind": n.kind,
                    "backend": n.backend,
                    "dispatched": n.dispatched,
                    "atoms": sorted(n.atoms),
                }
                for n in self.nodes
            ],
        }


def _node(
    label: str,
    kind: str,
    backend: str,
    dispatched: bool,
) -> NodeLeakage:
    atoms = BACKEND_CONTRACTS.get(backend)
    return NodeLeakage(
        label=label,
        kind=kind,
        backend=backend,
        dispatched=dispatched,
        atoms=atoms or frozenset(),
        unknown_backend=atoms is None,
    )


def _cross_owner(
    owners: Dict[str, str], a: str, b: str
) -> bool:
    # Unknown ownership is audited conservatively as cross-owner.
    oa, ob = owners.get(a), owners.get(b)
    return oa is None or ob is None or oa != ob


def audit_plan(
    plan: ExecPlan,
    owners: Optional[Dict[str, str]] = None,
) -> LeakageReport:
    """Audit a compiled, routed :class:`ExecPlan`.

    ``owners`` (relation name -> party) defaults to the plan's own
    :class:`~repro.exec.ir.ShareStep` declarations.
    """
    if owners is None:
        owners = {
            s.relation: s.owner
            for s in plan.steps
            if isinstance(s, ShareStep) and s.owner
        }
    nodes: List[NodeLeakage] = []
    for step in plan.steps:
        if isinstance(step, ReduceFoldStep):
            # A scalar child (empty agg_attrs) folds through the local
            # scalar path on every back-end — never dispatched.
            dispatched = bool(step.agg_attrs) and _cross_owner(
                owners, step.child, step.parent
            )
            nodes.append(
                _node(step.label, step.kind, step.backend, dispatched)
            )
        elif isinstance(step, SemijoinStep):
            dispatched = _cross_owner(owners, step.target, step.filter)
            nodes.append(
                _node(step.label, step.kind, step.backend, dispatched)
            )
    return LeakageReport(plan_name=plan.name, nodes=tuple(nodes))


def audit_routes(
    plan: object,
    routes: Dict[str, str],
    owners: Dict[str, str],
) -> LeakageReport:
    """Audit a :class:`~repro.yannakakis.plan.YannakakisPlan` plus a
    resolved per-node route map (the planner's
    :func:`~repro.query.planner.route_backends` output) *before*
    compilation — the form the fuzzer and the admission controller
    hold.  Unlisted nodes default to the paper's protocol, mirroring
    the compiler."""
    nodes: List[NodeLeakage] = []
    for s in getattr(plan, "reduce_steps", []):
        child = getattr(s, "child", None)
        parent = getattr(s, "parent", None)
        if child is None or parent is None:
            continue  # ReduceAggregate: no join, no dispatch
        label = f"fold/{child}->{parent}"
        dispatched = bool(
            getattr(s, "agg_attrs", ())
        ) and _cross_owner(owners, child, parent)
        nodes.append(
            _node(
                label,
                "reduce_fold",
                routes.get(label, "yannakakis"),
                dispatched,
            )
        )
    for s in getattr(plan, "semijoin_steps", []):
        label = f"semi/{s.target}<-{s.filter}"
        nodes.append(
            _node(
                label,
                "semijoin",
                routes.get(label, "yannakakis"),
                _cross_owner(owners, s.target, s.filter),
            )
        )
    name = getattr(plan, "name", "") or ""
    return LeakageReport(plan_name=name, nodes=tuple(nodes))
