"""Lowering a :class:`~repro.yannakakis.plan.YannakakisPlan` to the
execution IR.

The compiler is pure planning — no context, no engine, no data.  It
emits steps in the same order the legacy orchestration visited them, so
the scheduler's "program" policy (topological order with min-id
tie-break) replays the legacy transcript byte-for-byte.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Type

from ..yannakakis.plan import ReduceAggregate, ReduceFold, YannakakisPlan
from .ir import (
    AggregateStep,
    AlignStep,
    ExecPlan,
    JoinStep,
    ProductStep,
    ReduceFoldStep,
    RevealResultStep,
    RevealStep,
    SemijoinStep,
    ShareStep,
)

__all__ = ["compile_plan"]


def compile_plan(
    plan: YannakakisPlan,
    owners: Dict[str, str],
    input_order: Optional[Sequence[str]] = None,
    pad_out_to: int = 0,
    reveal_result: bool = False,
    name: str = "",
    backends: Optional[Dict[str, str]] = None,
) -> ExecPlan:
    """Compile a Yannakakis plan plus party ownership into an ExecPlan.

    ``owners`` maps relation name to owning party; ``input_order`` fixes
    the order share/reveal/align steps enumerate the relations (defaults
    to ``owners``' insertion order, which for dict inputs matches the
    legacy pipeline's iteration order).  ``reveal_result`` appends the
    final opening of the annotations to Alice (the full-query entry
    point); shared pipelines leave the result as shares.
    ``backends`` maps fold/semijoin step labels
    (``"fold/{child}->{parent}"`` / ``"semi/{target}<-{filter}"``) to a
    join back-end; unlisted nodes default to ``"yannakakis"``.
    """
    names = list(input_order) if input_order is not None else list(owners)
    missing = set(plan.tree.nodes) - set(names)
    if missing:
        raise KeyError(f"missing input relations: {sorted(missing)}")
    routes = dict(backends or {})

    steps = []
    next_id = 0

    def emit(cls: Type[Any], **kwargs: Any) -> Any:
        nonlocal next_id
        step = cls(id=next_id, **kwargs)
        next_id += 1
        steps.append(step)
        return step

    for n in names:
        emit(ShareStep, relation=n, owner=owners[n])

    def emit_semijoins() -> None:
        for s in plan.semijoin_steps:
            emit(
                SemijoinStep,
                target=s.target,
                filter=s.filter,
                backend=routes.get(
                    f"semi/{s.target}<-{s.filter}", "yannakakis"
                ),
            )

    if plan.semijoin_first:
        emit_semijoins()
    for r in plan.reduce_steps:
        if isinstance(r, ReduceFold):
            emit(
                ReduceFoldStep,
                child=r.child,
                parent=r.parent,
                agg_attrs=tuple(r.agg_attrs),
                backend=routes.get(
                    f"fold/{r.child}->{r.parent}", "yannakakis"
                ),
            )
        elif isinstance(r, ReduceAggregate):
            emit(AggregateStep, node=r.node, attrs=tuple(r.attrs))
        else:
            raise TypeError(f"unknown reduce step: {r!r}")
    if not plan.semijoin_first:
        emit_semijoins()

    folded_away = {
        r.child for r in plan.reduce_steps if isinstance(r, ReduceFold)
    }
    survivors = tuple(n for n in names if n not in folded_away)

    for n in survivors:
        emit(RevealStep, relation=n)
    emit(
        JoinStep,
        relations=survivors,
        join_order=tuple((s.child, s.parent) for s in plan.join_steps),
        pad_out_to=pad_out_to,
    )
    for n in survivors:
        emit(AlignStep, relation=n)
    emit(ProductStep, relations=survivors)
    if reveal_result:
        emit(RevealResultStep)

    return ExecPlan(
        steps=tuple(steps),
        inputs=tuple(names),
        result_slot="output" if reveal_result else "result",
        name=name,
    )
