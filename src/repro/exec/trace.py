"""Structured execution tracing.

An :class:`ExecutionTrace` collects one :class:`NodeTrace` per executed
DAG node: wall time, bytes sent, message and round counts, plus the
node's identity (kind, label, section, stage).  The whole trace is
JSON-exportable — see ``docs/API.md`` for the schema.

This module is stdlib-only so the core operator layer can import
:func:`traced` without pulling in the scheduler.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpc.engine import Engine
    from ..mpc.transcript import Message, Transcript

__all__ = ["NodeTrace", "ExecutionTrace", "traced"]


@dataclass
class NodeTrace:
    """Measurements for one executed DAG node."""

    id: int
    kind: str
    label: str
    section: Optional[str]
    stage: int
    seconds: float
    n_bytes: int
    n_messages: int
    rounds: int
    #: Join back-end the node ran under and its pre-dispatch estimated
    #: bytes (fold/semijoin nodes only).  Optional: nodes without a
    #: back-end choice keep the golden-pinned schema unchanged.
    backend: Optional[str] = None
    est_bytes: Optional[int] = None

    def to_json(self) -> Dict[str, Any]:
        d = asdict(self)
        if self.backend is None:
            del d["backend"]
            del d["est_bytes"]
        return d


def _slice_rounds(messages: Sequence["Message"]) -> int:
    """Communication rounds within a message slice: maximal runs of a
    single sender (mirrors ``Transcript.slice_rounds``, duplicated here
    to keep this module dependency-free)."""
    rounds = 0
    last = None
    for m in messages:
        if m.sender != last:
            rounds += 1
            last = m.sender
    return rounds


@dataclass
class ExecutionTrace:
    """Per-node measurements for one scheduler run."""

    nodes: List[NodeTrace] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Runtime-supervisor events (aborts, checkpoint retries).  A
    #: failed attempt's :class:`NodeTrace` is truncated on retry; its
    #: event record here is the durable log of what happened.
    events: List[Dict[str, Any]] = field(default_factory=list)

    def record_event(self, event: Dict[str, Any]) -> None:
        self.events.append(dict(event))

    @contextmanager
    def node(
        self,
        transcript: "Transcript",
        *,
        id: int,
        kind: str,
        label: str,
        section: Optional[str] = None,
        stage: int = -1,
        backend: Optional[str] = None,
        est_bytes: Optional[int] = None,
    ) -> Iterator[None]:
        """Measure one node: wall time plus the transcript delta
        (bytes, messages, rounds) produced while the block runs."""
        start_msgs = len(transcript.messages)
        start_bytes = transcript.total_bytes
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            window = transcript.messages[start_msgs:]
            self.nodes.append(
                NodeTrace(
                    id=id,
                    kind=kind,
                    label=label,
                    section=section,
                    stage=stage,
                    seconds=elapsed,
                    n_bytes=transcript.total_bytes - start_bytes,
                    n_messages=len(window),
                    rounds=_slice_rounds(window),
                    backend=backend,
                    est_bytes=est_bytes,
                )
            )

    @property
    def total_seconds(self) -> float:
        return sum(n.seconds for n in self.nodes)

    @property
    def total_bytes(self) -> int:
        return sum(n.n_bytes for n in self.nodes)

    def by_section(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for n in self.nodes:
            key = n.section or ""
            out[key] = out.get(key, 0) + n.n_bytes
        return out

    def to_json(self) -> Dict[str, Any]:
        blob: Dict[str, Any] = {
            "meta": dict(self.meta),
            "total_seconds": self.total_seconds,
            "total_bytes": self.total_bytes,
            "nodes": [n.to_json() for n in self.nodes],
        }
        # Only present when the runtime supervisor recorded something:
        # fault-free traces keep the golden-pinned schema unchanged.
        if self.events:
            blob["events"] = [dict(e) for e in self.events]
        return blob

    def dumps(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)


@contextmanager
def traced(
    engine: "Engine",
    kind: str,
    label: str,
    section: Optional[str] = None,
    stage: int = -1,
) -> Iterator[None]:
    """Record a block against ``engine.tracer`` when one is attached;
    otherwise a no-op.  Lets operator code outside the scheduler (e.g.
    composition circuits) contribute trace nodes."""
    tracer = getattr(engine, "tracer", None)
    if tracer is None:
        yield
        return
    node_id = len(tracer.nodes)
    with tracer.node(
        engine.ctx.transcript,
        id=node_id,
        kind=kind,
        label=label,
        section=section,
        stage=stage,
    ):
        yield
