"""The execution-plan IR.

An :class:`ExecPlan` is a DAG of typed :class:`Step` nodes over named
*dataflow slots* (an environment of intermediate values).  Each step
declares the slots it ``reads``, ``writes`` and ``deletes``; the plan
derives the dependency edges from those declarations:

* a read depends on the slot's last writer (RAW);
* a write depends on every read since the last write (WAR), so a step
  may not clobber a slot another step still needs;
* repeated writes chain through the readers in between (WAW follows
  from WAR + RAW).

Steps are frozen dataclasses so plans are hashable, comparable and
serialisable: :meth:`ExecPlan.to_json` / :meth:`ExecPlan.from_json`
round-trip through plain dicts.

Slot naming scheme (mirrors the legacy pipeline's intermediates):

=====================  ===================================================
``{relation}``         a :class:`~repro.core.relation.SecureRelation`
``shares:{relation}``  its annotation shares (oblivious-join step 1)
``revealed:{relation}``its revealed nonzero ``(pos, tuple)`` list
``joined``             Alice's local star join ``J*`` (with index cols)
``factor:{relation}``  the relation's OEP-aligned annotation factor
``result``             the :class:`ObliviousJoinResult`
``output``             ``(result, revealed_values)`` after the final open
=====================  ===================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple, Type

__all__ = [
    "Step",
    "ShareStep",
    "ReduceFoldStep",
    "AggregateStep",
    "SemijoinStep",
    "RevealStep",
    "JoinStep",
    "AlignStep",
    "ProductStep",
    "RevealResultStep",
    "ExecPlan",
]


@dataclass(frozen=True)
class Step:
    """One operator invocation in the DAG."""

    id: int

    kind = "step"

    @property
    def label(self) -> str:
        return self.kind

    @property
    def section(self) -> Optional[str]:
        """The legacy transcript section this step's messages belong to
        (``None`` for steps that emit outside any section)."""
        return None

    @property
    def restartable(self) -> bool:
        """Whether the runtime supervisor may retry this step from its
        node-granular checkpoint after a retryable
        :class:`~repro.runtime.aborts.ProtocolAbort`.  Every current
        step kind is a pure function of the (checkpointed) slot
        environment, engine state and context RNG, so all are
        restartable; a future operator with external side effects
        overrides this to opt out."""
        return True

    @property
    def reads(self) -> Tuple[str, ...]:
        return ()

    @property
    def writes(self) -> Tuple[str, ...]:
        return ()

    @property
    def deletes(self) -> Tuple[str, ...]:
        return ()

    def to_json(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            d[f.name] = getattr(self, f.name)
        return d


@dataclass(frozen=True)
class ShareStep(Step):
    """Bring one input relation into the environment (no messages for
    already-shared inputs; plain inputs are secret-shared lazily by the
    first consuming operator)."""

    relation: str = ""
    owner: str = ""

    kind = "share"

    @property
    def label(self) -> str:
        return f"input/{self.relation}"

    @property
    def writes(self) -> Tuple[str, ...]:
        return (self.relation,)


@dataclass(frozen=True)
class ReduceFoldStep(Step):
    """Aggregate a child relation onto the join attributes and fold it
    into its parent's annotations (reduce phase, Section 6.1)."""

    child: str = ""
    parent: str = ""
    agg_attrs: Tuple[str, ...] = ()
    #: Join back-end for the fold's reduce-join (see
    #: :data:`repro.core.semijoin.BACKENDS`); only cross-owner nodes
    #: behave differently.
    backend: str = "yannakakis"

    kind = "reduce_fold"

    @property
    def label(self) -> str:
        return f"fold/{self.child}->{self.parent}"

    @property
    def section(self) -> Optional[str]:
        return "reduce"

    @property
    def reads(self) -> Tuple[str, ...]:
        return (self.child, self.parent)

    @property
    def writes(self) -> Tuple[str, ...]:
        return (self.parent,)

    @property
    def deletes(self) -> Tuple[str, ...]:
        return (self.child,)


@dataclass(frozen=True)
class AggregateStep(Step):
    """Project a relation onto its output attributes, summing annotations
    of collapsing tuples (root aggregation of the reduce phase)."""

    node: str = ""
    attrs: Tuple[str, ...] = ()

    kind = "aggregate"

    @property
    def label(self) -> str:
        return f"agg/{self.node}"

    @property
    def section(self) -> Optional[str]:
        return "reduce"

    @property
    def reads(self) -> Tuple[str, ...]:
        return (self.node,)

    @property
    def writes(self) -> Tuple[str, ...]:
        return (self.node,)


@dataclass(frozen=True)
class SemijoinStep(Step):
    """Zero out the target's dangling annotations via a PSI with the
    filter relation (semijoin phase, Section 6.2)."""

    target: str = ""
    filter: str = ""
    #: Join back-end for the semijoin's reduce-join (see
    #: :data:`repro.core.semijoin.BACKENDS`).
    backend: str = "yannakakis"

    kind = "semijoin"

    @property
    def label(self) -> str:
        return f"semi/{self.target}<-{self.filter}"

    @property
    def section(self) -> Optional[str]:
        return "semijoin"

    @property
    def reads(self) -> Tuple[str, ...]:
        return (self.target, self.filter)

    @property
    def writes(self) -> Tuple[str, ...]:
        return (self.target,)


@dataclass(frozen=True)
class RevealStep(Step):
    """Oblivious-join step 1 for one relation: share its annotations and
    reveal the nonzero sub-relation to Alice."""

    relation: str = ""

    kind = "reveal"

    @property
    def label(self) -> str:
        return f"reveal/{self.relation}"

    @property
    def section(self) -> Optional[str]:
        return "full_join"

    @property
    def reads(self) -> Tuple[str, ...]:
        return (self.relation,)

    @property
    def writes(self) -> Tuple[str, ...]:
        return (f"shares:{self.relation}", f"revealed:{self.relation}")


@dataclass(frozen=True)
class JoinStep(Step):
    """Oblivious-join step 2: Alice's local star join over the revealed
    sub-relations; ``|J*|`` (optionally padded) goes to Bob."""

    relations: Tuple[str, ...] = ()
    join_order: Tuple[Tuple[str, str], ...] = ()
    pad_out_to: int = 0

    kind = "join"

    @property
    def label(self) -> str:
        return "join"

    @property
    def section(self) -> Optional[str]:
        return "full_join"

    @property
    def reads(self) -> Tuple[str, ...]:
        return tuple(self.relations) + tuple(
            f"revealed:{r}" for r in self.relations
        )

    @property
    def writes(self) -> Tuple[str, ...]:
        return ("joined",)


@dataclass(frozen=True)
class AlignStep(Step):
    """Oblivious-join step 3a for one relation: OEP-align its annotation
    shares with the join rows."""

    relation: str = ""

    kind = "align"

    @property
    def label(self) -> str:
        return f"oep/{self.relation}"

    @property
    def section(self) -> Optional[str]:
        return "full_join"

    @property
    def reads(self) -> Tuple[str, ...]:
        return ("joined", f"shares:{self.relation}")

    @property
    def writes(self) -> Tuple[str, ...]:
        return (f"factor:{self.relation}",)


@dataclass(frozen=True)
class ProductStep(Step):
    """Oblivious-join step 3b: multiply the aligned factors into the
    result annotations and strip the hidden index columns."""

    relations: Tuple[str, ...] = ()

    kind = "product"

    @property
    def label(self) -> str:
        return "prod"

    @property
    def section(self) -> Optional[str]:
        return "full_join"

    @property
    def reads(self) -> Tuple[str, ...]:
        return ("joined",) + tuple(
            f"factor:{r}" for r in self.relations
        )

    @property
    def writes(self) -> Tuple[str, ...]:
        return ("result",)


@dataclass(frozen=True)
class RevealResultStep(Step):
    """Open the result annotations to Alice (full-query entry point; a
    shared pipeline feeding a composition circuit omits this step)."""

    kind = "reveal_result"

    @property
    def label(self) -> str:
        return "result"

    @property
    def reads(self) -> Tuple[str, ...]:
        return ("result",)

    @property
    def writes(self) -> Tuple[str, ...]:
        return ("output",)


_STEP_KINDS: Dict[str, Type[Step]] = {
    cls.kind: cls
    for cls in (
        ShareStep,
        ReduceFoldStep,
        AggregateStep,
        SemijoinStep,
        RevealStep,
        JoinStep,
        AlignStep,
        ProductStep,
        RevealResultStep,
    )
}


def _detuple(value: Any) -> Any:
    """JSON arrays back into the tuples the frozen dataclasses expect."""
    if isinstance(value, list):
        return tuple(_detuple(v) for v in value)
    return value


def step_from_json(d: Dict[str, Any]) -> Step:
    kind = d.get("kind")
    cls = _STEP_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown step kind: {kind!r}")
    kwargs = {
        f.name: _detuple(d[f.name]) for f in fields(cls) if f.name in d
    }
    return cls(**kwargs)


@dataclass
class ExecPlan:
    """The compiled DAG: steps plus derived dependency structure."""

    steps: Tuple[Step, ...]
    inputs: Tuple[str, ...]
    result_slot: str = "result"
    name: str = ""
    deps: Dict[int, Tuple[int, ...]] = field(init=False, repr=False)
    stage_of: Dict[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        ids = [s.id for s in self.steps]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate step ids")
        self.deps = self._compute_deps()
        self.stage_of = self._compute_stages()

    def _compute_deps(self) -> Dict[int, Tuple[int, ...]]:
        deps: Dict[int, set] = {s.id: set() for s in self.steps}
        last_writer: Dict[str, int] = {}
        readers_since: Dict[str, List[int]] = {}
        for step in self.steps:
            for slot in step.reads:
                if slot in last_writer:
                    deps[step.id].add(last_writer[slot])
                readers_since.setdefault(slot, []).append(step.id)
            for slot in step.writes + step.deletes:
                for reader in readers_since.get(slot, ()):
                    if reader != step.id:
                        deps[step.id].add(reader)
                if slot in last_writer:
                    deps[step.id].add(last_writer[slot])
                last_writer[slot] = step.id
                readers_since[slot] = []
        return {i: tuple(sorted(d)) for i, d in deps.items()}

    def _compute_stages(self) -> Dict[int, int]:
        """Longest-path level of each node: stage 0 has no dependencies,
        stage ``k`` depends on something in stage ``k - 1``.  Steps are
        topologically ordered by construction, so one forward pass."""
        stage: Dict[int, int] = {}
        for step in self.steps:
            ds = self.deps[step.id]
            stage[step.id] = (
                1 + max(stage[d] for d in ds) if ds else 0
            )
        return stage

    @property
    def stages(self) -> List[List[Step]]:
        """Steps grouped by stage, in stage order; within a stage, by id."""
        n_stages = 1 + max(self.stage_of.values(), default=-1)
        out: List[List[Step]] = [[] for _ in range(n_stages)]
        for step in self.steps:
            out[self.stage_of[step.id]].append(step)
        for group in out:
            group.sort(key=lambda s: s.id)
        return out

    def step_by_id(self, step_id: int) -> Step:
        for s in self.steps:
            if s.id == step_id:
                return s
        raise KeyError(step_id)

    # -- serialisation ---------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "inputs": list(self.inputs),
            "result_slot": self.result_slot,
            "steps": [s.to_json() for s in self.steps],
        }

    @classmethod
    def from_json(cls, d: Dict[str, Any]) -> "ExecPlan":
        return cls(
            steps=tuple(step_from_json(s) for s in d["steps"]),
            inputs=tuple(d["inputs"]),
            result_slot=d.get("result_slot", "result"),
            name=d.get("name", ""),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2)

    @classmethod
    def loads(cls, s: str) -> "ExecPlan":
        return cls.from_json(json.loads(s))

    def describe(self) -> str:
        """Human-readable stage listing (for logs and the CLI)."""
        lines = [f"ExecPlan {self.name or '<anonymous>'}: "
                 f"{len(self.steps)} steps, {len(self.stages)} stages"]
        for k, group in enumerate(self.stages):
            for s in group:
                ds = ",".join(str(d) for d in self.deps[s.id]) or "-"
                lines.append(
                    f"  stage {k}: #{s.id} {s.kind:<13} {s.label:<28}"
                    f" deps[{ds}]"
                )
        return "\n".join(lines)
