"""Execution layer: typed IR + instrumented scheduler.

The secure Yannakakis pipeline in :mod:`repro.core.protocol` is a
sequential orchestration function.  This package factors it into two
halves:

* a **compiler** (:func:`compile_plan`) that lowers a
  :class:`~repro.yannakakis.plan.YannakakisPlan` plus party ownership
  into an :class:`ExecPlan` — a serialisable DAG of typed operator
  steps with explicit dataflow slots; and
* a **scheduler** (:class:`Scheduler`) that executes the DAG over an
  :class:`~repro.mpc.engine.Engine`, with pluggable dispatch policies
  ("program" reproduces the legacy transcript byte-for-byte; "stages"
  groups independent branches into dependency stages), per-node
  structured tracing (:class:`ExecutionTrace`) and run-wide template
  caching (via :class:`~repro.mpc.runcache.RunCache` on the context).

The legacy entry points remain as thin wrappers; see
:func:`repro.core.protocol.secure_yannakakis`.
"""

from ..mpc.runcache import RunCache
from .audit import LeakageReport, NodeLeakage, audit_plan, audit_routes
from .compiler import compile_plan
from .ir import (
    AggregateStep,
    AlignStep,
    ExecPlan,
    JoinStep,
    ProductStep,
    ReduceFoldStep,
    RevealResultStep,
    RevealStep,
    SemijoinStep,
    ShareStep,
    Step,
)
from .scheduler import Scheduler
from .trace import ExecutionTrace, NodeTrace, traced

__all__ = [
    "AggregateStep",
    "AlignStep",
    "ExecPlan",
    "ExecutionTrace",
    "JoinStep",
    "LeakageReport",
    "NodeLeakage",
    "NodeTrace",
    "ProductStep",
    "ReduceFoldStep",
    "RevealResultStep",
    "RevealStep",
    "RunCache",
    "Scheduler",
    "SemijoinStep",
    "ShareStep",
    "Step",
    "audit_plan",
    "audit_routes",
    "compile_plan",
    "traced",
]
