"""Tuple-path reference implementations of the relalg operators.

These are the pre-columnar dict-of-tuples operators, retained verbatim
as (a) the oracle for the columnar kernels' differential property tests
and (b) the "tuple path" side of the ``BENCH_PR6`` scaling comparison.
They follow the same pattern as :mod:`repro.mpc._reference`: simple,
obviously-correct, row-at-a-time semantics that the vectorised
implementations must reproduce exactly — including output order and
duplicate structure, not just K-relation equality.

Do not import these from protocol code; use :mod:`repro.relalg.operators`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .relation import AnnotatedRelation

__all__ = [
    "aggregate",
    "support_projection",
    "join",
    "semijoin",
    "union",
]


def aggregate(
    rel: AnnotatedRelation, attrs: Tuple[str, ...]
) -> AnnotatedRelation:
    """Row-at-a-time ``pi_attrs^(+)``: dict accumulation in
    first-appearance order."""
    sr = rel.semiring
    idx = rel.index_of(attrs)
    groups: Dict[Tuple, int] = {}
    order: List[Tuple] = []
    for t, v in rel:
        key = tuple(t[i] for i in idx)
        if key not in groups:
            groups[key] = v
            order.append(key)
        else:
            groups[key] = sr.add(groups[key], v)
    if not attrs and not rel.tuples:
        return AnnotatedRelation(attrs, [()], [sr.zero], sr)
    return AnnotatedRelation(attrs, order, [groups[k] for k in order], sr)


def support_projection(
    rel: AnnotatedRelation, attrs: Tuple[str, ...]
) -> AnnotatedRelation:
    """Row-at-a-time ``pi_attrs^1``."""
    sr = rel.semiring
    idx = rel.index_of(attrs)
    seen: Dict[Tuple, None] = {}
    for t, v in rel:
        if v != sr.zero:
            seen.setdefault(tuple(t[i] for i in idx), None)
    keys = list(seen)
    return AnnotatedRelation(attrs, keys, [sr.one] * len(keys), sr)


def join(
    r1: AnnotatedRelation, r2: AnnotatedRelation
) -> AnnotatedRelation:
    """Row-at-a-time annotated hash join (r1-major output order, r2
    matches in insertion order within each key)."""
    if r1.semiring != r2.semiring:
        raise ValueError("cannot join relations over different semirings")
    sr = r1.semiring
    shared = [a for a in r1.attributes if a in r2.attributes]
    extra = [a for a in r2.attributes if a not in r1.attributes]
    out_attrs = list(r1.attributes) + extra

    r2_shared_idx = r2.index_of(shared)
    r2_extra_idx = r2.index_of(extra)
    table: Dict[Tuple, List[Tuple[Tuple, int]]] = {}
    for t, v in r2:
        key = tuple(t[i] for i in r2_shared_idx)
        table.setdefault(key, []).append(
            (tuple(t[i] for i in r2_extra_idx), v)
        )

    r1_shared_idx = r1.index_of(shared)
    out_tuples: List[Tuple] = []
    out_annots: List[int] = []
    for t, v in r1:
        key = tuple(t[i] for i in r1_shared_idx)
        for extra_vals, w in table.get(key, ()):
            out_tuples.append(t + extra_vals)
            out_annots.append(sr.mul(v, w))
    return AnnotatedRelation(out_attrs, out_tuples, out_annots, sr)


def semijoin(
    r1: AnnotatedRelation, r2: AnnotatedRelation
) -> AnnotatedRelation:
    shared = tuple(a for a in r1.attributes if a in r2.attributes)
    return join(r1, support_projection(r2, shared))


def union(
    r1: AnnotatedRelation, r2: AnnotatedRelation
) -> AnnotatedRelation:
    if set(r1.attributes) != set(r2.attributes):
        raise ValueError(
            f"union needs identical attribute sets "
            f"({r1.attributes} vs {r2.attributes})"
        )
    if r1.semiring != r2.semiring:
        raise ValueError("cannot union relations over different semirings")
    perm = [r2.attributes.index(a) for a in r1.attributes]
    tuples = list(r1.tuples) + [
        tuple(t[i] for i in perm) for t in r2.tuples
    ]
    annots = list(r1.annotations) + list(r2.annotations)
    return AnnotatedRelation(r1.attributes, tuples, annots, r1.semiring)
