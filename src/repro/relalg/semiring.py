"""Commutative semirings for annotated relations.

The paper (Section 3.1) takes annotations from a finite commutative semiring
``(S, +, *)`` whose ground set is identified with ``Z_n``, ``n = 2**ell``.
The only requirements are that 0 is the additive identity, 1 is the
multiplicative identity, and both operations have small Boolean circuits.

Two concrete semirings cover every query in the paper:

* :class:`IntegerRing` — ``(Z_{2^ell}, +, *)`` with wrap-around arithmetic,
  used for ``sum`` aggregates (Example 3.1).
* :class:`BooleanSemiring` — ``({0, 1}, OR, AND)``, used for set semantics
  and for the support projection ``pi^1``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["Semiring", "IntegerRing", "BooleanSemiring", "DEFAULT_RING"]


class Semiring:
    """A commutative semiring over a subset of the integers.

    Subclasses define ``zero``, ``one``, scalar ``add``/``mul`` and
    vectorised ``add_vec``/``mul_vec`` over numpy ``uint64`` arrays.
    Annotation values are always plain Python ints (or uint64 arrays) in
    ``[0, modulus)`` so they can be secret-shared directly.
    """

    zero: int = 0
    one: int = 1

    @property
    def modulus(self) -> int:
        raise NotImplementedError

    @property
    def bit_length(self) -> int:
        """Number of bits ``ell`` needed to represent any annotation."""
        return (self.modulus - 1).bit_length()

    def add(self, a: int, b: int) -> int:
        raise NotImplementedError

    def mul(self, a: int, b: int) -> int:
        raise NotImplementedError

    def add_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def normalize(self, value: int) -> int:
        """Map an arbitrary integer into the semiring's ground set."""
        return value % self.modulus

    def normalize_vec(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`normalize` over a ``uint64`` array whose
        entries are the inputs reduced mod 2^64 (the unsigned wrap)."""
        return np.asarray(
            [self.normalize(int(v)) for v in values.tolist()],
            dtype=np.uint64,
        )

    def reduce_groups(
        self, values: np.ndarray, gid: np.ndarray, n_groups: int
    ) -> np.ndarray:
        """+-fold ``values`` into ``n_groups`` buckets keyed by ``gid``
        (the vectorised group-by kernel behind ``pi_F^(+)``)."""
        out = np.full(n_groups, self.zero, dtype=np.uint64)
        for g, v in zip(gid.tolist(), values.tolist()):
            out[g] = self.add(int(out[g]), int(v))
        return out

    def sum(self, values: Iterable[int]) -> int:
        total = self.zero
        for v in values:
            total = self.add(total, v)
        return total

    def product(self, values: Iterable[int]) -> int:
        total = self.one
        for v in values:
            total = self.mul(total, v)
        return total

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and isinstance(other, Semiring)
            and self.modulus == other.modulus
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.modulus))


class IntegerRing(Semiring):
    """The ring ``(Z_{2^ell}, +, *)`` with operations modulo ``2**ell``.

    This is the semiring used for all ``sum(...)`` aggregates in the paper's
    TPC-H experiments, with ``ell = 32``.  ``ell`` must be at most 63 so that
    vectorised arithmetic fits in ``uint64`` without Python-level bignums.
    """

    def __init__(self, ell: int = 32):
        if not 1 <= ell <= 63:
            raise ValueError(f"ell must be in [1, 63], got {ell}")
        self.ell = ell
        self._modulus = 1 << ell
        self._mask = np.uint64(self._modulus - 1)

    @property
    def modulus(self) -> int:
        return self._modulus

    @property
    def bit_length(self) -> int:
        return self.ell

    def add(self, a: int, b: int) -> int:
        return (a + b) % self._modulus

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self._modulus

    def add_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a + b) & self._mask

    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a * b) & self._mask

    def normalize_vec(self, values: np.ndarray) -> np.ndarray:
        # The modulus is a power of two dividing 2^64, so masking the
        # unsigned (mod-2^64) representation is exact reduction.
        return values & self._mask

    def reduce_groups(
        self, values: np.ndarray, gid: np.ndarray, n_groups: int
    ) -> np.ndarray:
        out = np.zeros(n_groups, dtype=np.uint64)
        np.add.at(out, gid, values)  # wraps mod 2^64; mask finishes it
        return out & self._mask

    def neg(self, a: int) -> int:
        """Additive inverse — the ring structure the paper exploits for
        subtraction-of-shares (e.g. the Q9 ``amount`` aggregate)."""
        return (-a) % self._modulus

    def __repr__(self) -> str:
        return f"IntegerRing(ell={self.ell})"


class BooleanSemiring(Semiring):
    """The semiring ``({False, True}, OR, AND)`` encoded as ``{0, 1}``."""

    @property
    def modulus(self) -> int:
        return 2

    def add(self, a: int, b: int) -> int:
        return int(bool(a) or bool(b))

    def mul(self, a: int, b: int) -> int:
        return int(bool(a) and bool(b))

    def add_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ((a != 0) | (b != 0)).astype(np.uint64)

    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ((a != 0) & (b != 0)).astype(np.uint64)

    def normalize(self, value: int) -> int:
        return int(bool(value))

    def normalize_vec(self, values: np.ndarray) -> np.ndarray:
        return (values != 0).astype(np.uint64)

    def reduce_groups(
        self, values: np.ndarray, gid: np.ndarray, n_groups: int
    ) -> np.ndarray:
        # OR-fold: never use an additive fold here — two 1s must stay 1.
        out = np.zeros(n_groups, dtype=np.uint64)
        np.bitwise_or.at(out, gid, (values != 0).astype(np.uint64))
        return out

    def __repr__(self) -> str:
        return "BooleanSemiring()"


#: The paper's default: 32-bit annotations (Section 8.2).
DEFAULT_RING = IntegerRing(32)
