"""Rooted join trees and the free-connex property (Section 3.1).

A join-aggregate query ``pi_O (⋈ R_F)`` is *free-connex* iff its hypergraph
is acyclic and admits a rooted join tree such that for every output
attribute ``A`` and non-output attribute ``B``, ``TOP(B)`` is not a proper
ancestor of ``TOP(A)`` (``TOP(X)`` is the highest tree node containing
``X``).  Equivalently (Bagan, Durand & Grandjean), the hypergraph stays
acyclic after adding the output attribute set as a virtual hyperedge —
both characterisations are implemented here and cross-checked in tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .hypergraph import Hypergraph

__all__ = ["JoinTree", "is_free_connex", "find_free_connex_tree"]


class JoinTree:
    """A rooted join tree over a hypergraph's relations.

    Nodes are relation names; each carries the attribute set of its
    hyperedge.  The tree is immutable; phases that shrink the tree (the
    reduce phase) build plan objects instead of mutating it.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        edges: Sequence[Tuple[str, str]],
        root: str,
    ):
        self.hypergraph = hypergraph
        self.root = root
        names = set(hypergraph.edges)
        if root not in names:
            raise ValueError(f"root {root!r} is not a relation in the query")
        adj: Dict[str, List[str]] = {n: [] for n in names}
        for a, b in edges:
            adj[a].append(b)
            adj[b].append(a)
        # Orient away from the root with a BFS.
        self.parent: Dict[str, Optional[str]] = {root: None}
        self.children: Dict[str, List[str]] = {n: [] for n in names}
        self.depth: Dict[str, int] = {root: 0}
        frontier = [root]
        while frontier:
            nxt: List[str] = []
            for u in frontier:
                for v in adj[u]:
                    if v not in self.parent:
                        self.parent[v] = u
                        self.children[u].append(v)
                        self.depth[v] = self.depth[u] + 1
                        nxt.append(v)
            frontier = nxt
        if len(self.parent) != len(names):
            raise ValueError("join tree edges do not span all relations")

    @property
    def nodes(self) -> List[str]:
        return list(self.hypergraph.edges)

    def attrs(self, node: str) -> FrozenSet[str]:
        return self.hypergraph.edges[node]

    def bottom_up(self) -> List[str]:
        """Post-order: every node appears after all of its children."""
        order: List[str] = []

        def visit(n: str) -> None:
            for c in self.children[n]:
                visit(c)
            order.append(n)

        visit(self.root)
        return order

    def top_down(self) -> List[str]:
        """Pre-order: every node appears before all of its children."""
        return list(reversed(self.bottom_up()))

    def is_ancestor(self, a: str, b: str) -> bool:
        """True iff ``a`` is a *proper* ancestor of ``b``."""
        node = self.parent[b]
        while node is not None:
            if node == a:
                return True
            node = self.parent[node]
        return False

    def top_of(self, attr: str) -> str:
        """The highest node containing ``attr``.  Unique because the
        running-intersection property makes the containing nodes a
        connected subtree."""
        best: Optional[str] = None
        for n in self.nodes:
            if attr in self.attrs(n):
                if best is None or self.depth[n] < self.depth[best]:
                    best = n
        if best is None:
            raise KeyError(f"attribute {attr!r} not in any relation")
        return best

    def satisfies_free_connex(self, output: Iterable[str]) -> bool:
        """Condition (2) of Section 3.1 for this rooted tree."""
        output = set(output)
        non_output = self.hypergraph.vertices - output
        if not output:
            return True
        tops_out = [self.top_of(a) for a in output]
        for b in non_output:
            top_b = self.top_of(b)
            if any(self.is_ancestor(top_b, t) for t in tops_out):
                return False
        return True

    def __repr__(self) -> str:
        parts = [
            f"{n}->{self.parent[n]}" for n in self.nodes if self.parent[n]
        ]
        return f"JoinTree(root={self.root}, {', '.join(parts)})"


def is_free_connex(hypergraph: Hypergraph, output: Iterable[str]) -> bool:
    """Free-connex test via the virtual-hyperedge characterisation: the
    query is free-connex iff the hypergraph is acyclic both with and
    without the output set added as an extra hyperedge."""
    output = set(output)
    if not output <= set(hypergraph.vertices):
        raise ValueError(
            f"output attributes {output - set(hypergraph.vertices)} "
            "do not appear in the query"
        )
    if not hypergraph.is_acyclic():
        return False
    if not output:
        return True
    return hypergraph.with_edge("__output__", output).is_acyclic()


def find_free_connex_tree(
    hypergraph: Hypergraph, output: Iterable[str]
) -> Optional[JoinTree]:
    """Search for a rooted join tree on which the 3-phase plan compiles
    (the reduce phase removes every non-output attribute).

    Enumerates join trees (spanning trees of the intersection graph that
    satisfy running intersection) and all choices of root.  Trees
    satisfying the paper's TOP-ancestor condition (2) always compile;
    the compile-based test additionally admits Cartesian-product
    components.  Queries in practice have a handful of relations, so
    exhaustive search is cheap.
    """
    from ..yannakakis.plan import build_plan

    output = set(output)
    for edges in hypergraph.all_join_trees():
        for root in hypergraph.edges:
            tree = JoinTree(hypergraph, edges, root)
            try:
                build_plan(tree, tuple(sorted(output)))
            except ValueError:
                continue
            return tree
    return None
