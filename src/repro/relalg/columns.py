"""Columnar tuple storage for annotated and secure relations.

A relation's tuples are held as one contiguous array per attribute
(:class:`Column`) plus a row-level dummy-nonce vector, instead of a list
of Python tuples.  Two column kinds cover every value the protocol
moves:

* **int** — the values themselves in an ``int64`` array (``codes`` with
  ``values is None``); the common case for TPC-H keys and dates.
* **obj** — dictionary-encoded: ``codes[i]`` indexes into ``values``, a
  list of distinct hashable Python objects in first-appearance order.
  Strings, dummy markers and mixed-type columns land here.

Dummy tuples (Section 4, footnote 2) are *row* properties, not values:
``nonce[i] > 0`` marks row ``i`` as the dummy tuple whose every
attribute is ``(DUMMY_MARKER, nonce[i])``.  Keeping the nonce out of the
columns lets the group-by/join kernels treat dummies uniformly — a
dummy row equals another row iff both are dummies with the same nonce,
exactly the semantics of the tuple representation.

Cross-relation comparisons go through :func:`joint_row_codes`, which
re-encodes the stores into one shared ``int64`` code space so that
equality of rows is equality of codes; all group-by, join and
deduplication kernels then run on plain integer arrays via
``np.unique``/``np.argsort``/``np.searchsorted``.
"""

from __future__ import annotations

import itertools
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

__all__ = [
    "DUMMY_MARKER",
    "dummy_tuple",
    "dummy_value",
    "fresh_nonces",
    "is_dummy_tuple",
    "is_dummy_value",
    "Column",
    "TupleStore",
    "joint_row_codes",
    "group_by_first_appearance",
    "sort_with_same_flags",
]

DUMMY_MARKER = "__dummy__"

#: Global nonce stream: every dummy ever generated is distinct, so
#: dummies never join each other (or any real value) by accident.
_dummy_nonce = itertools.count(1)


def fresh_nonces(k: int) -> np.ndarray:
    """Reserve a block of ``k`` fresh dummy nonces as an int64 array."""
    return np.fromiter(
        itertools.islice(_dummy_nonce, k), dtype=np.int64, count=k
    )


def dummy_value(nonce: int) -> Tuple[str, int]:
    """The per-attribute value of the dummy tuple with this nonce."""
    return (DUMMY_MARKER, int(nonce))


def is_dummy_value(v: Any) -> bool:
    return (
        isinstance(v, tuple) and len(v) == 2 and v[0] == DUMMY_MARKER
    )


def dummy_tuple(arity: int) -> Tuple[Any, ...]:
    """A fresh dummy tuple: every attribute carries the same unique nonce,
    so any projection of a dummy is itself a distinct dummy value."""
    nonce = next(_dummy_nonce)
    return tuple(dummy_value(nonce) for _ in range(max(arity, 1)))[
        :arity
    ] or ()


def is_dummy_tuple(t: Tuple[Any, ...]) -> bool:
    return any(is_dummy_value(v) for v in t)


# ----------------------------------------------------------------------
# columns
# ----------------------------------------------------------------------


class Column:
    """One attribute's values: raw ``int64`` or dictionary-encoded."""

    __slots__ = ("codes", "values")

    def __init__(
        self, codes: np.ndarray, values: Optional[List[Hashable]]
    ) -> None:
        self.codes = codes
        self.values = values

    @property
    def is_int(self) -> bool:
        return self.values is None

    def __len__(self) -> int:
        return len(self.codes)

    @classmethod
    def from_ints(cls, arr: Any) -> "Column":
        return cls(np.asarray(arr, dtype=np.int64), None)

    @classmethod
    def from_values(cls, vals: Sequence[Hashable]) -> "Column":
        """Build a column from arbitrary hashable Python values, picking
        the int fast path when every value is a (non-bool) int."""
        if all(type(v) is int for v in vals):
            ints = np.fromiter(
                vals, dtype=np.int64, count=len(vals)
            ) if vals else np.zeros(0, dtype=np.int64)
            return cls(ints, None)
        return cls.from_objects(vals)

    @classmethod
    def from_objects(cls, vals: Sequence[Hashable]) -> "Column":
        """Dictionary-encode arbitrary hashable values (first-appearance
        dictionary order)."""
        mapping: Dict[Hashable, int] = {}
        codes = np.fromiter(
            (mapping.setdefault(v, len(mapping)) for v in vals),
            dtype=np.int64,
            count=len(vals),
        ) if len(vals) else np.zeros(0, dtype=np.int64)
        return cls(codes, list(mapping))

    @classmethod
    def from_array(cls, arr: Any) -> "Column":
        """Build a column from a numpy array or Python sequence.

        Integer arrays that fit int64 stay raw; string arrays are
        dictionary-encoded via a vectorised ``np.unique``; everything
        else goes through the generic object path.
        """
        if isinstance(arr, Column):
            return arr
        a = np.asarray(arr)
        if a.ndim != 1:
            raise ValueError("columns must be one-dimensional")
        if a.dtype.kind == "i":
            return cls(a.astype(np.int64, copy=False), None)
        if a.dtype.kind == "u":
            if a.size and int(a.max()) > np.iinfo(np.int64).max:
                return cls.from_objects([int(v) for v in a.tolist()])
            return cls(a.astype(np.int64), None)
        if a.dtype.kind in ("U", "S"):
            uniq, inv = np.unique(a, return_inverse=True)
            return cls(
                inv.astype(np.int64, copy=False), list(uniq.tolist())
            )
        return cls.from_values(list(a.tolist()))

    def take(self, rows: np.ndarray) -> "Column":
        # Dictionary values are shared with the source column: stores
        # are immutable, so aliasing is safe and keeps gathers O(rows).
        return Column(self.codes[rows], self.values)

    def concat(self, other: "Column") -> "Column":
        if self.is_int and other.is_int:
            return Column(
                np.concatenate([self.codes, other.codes]), None
            )
        mapping: Dict[Hashable, int] = {}
        a = _remap_codes(self, mapping)
        b = _remap_codes(other, mapping)
        return Column(np.concatenate([a, b]), list(mapping))

    def value_at(self, i: int) -> Hashable:
        if self.values is None:
            return int(self.codes[i])
        return self.values[int(self.codes[i])]

    def to_pylist(self) -> List[Hashable]:
        if self.values is None:
            return list(self.codes.tolist())
        vals = self.values
        return [vals[c] for c in self.codes.tolist()]


def _remap_codes(col: Column, mapping: Dict[Hashable, int]) -> np.ndarray:
    """``col``'s codes re-expressed in the growing shared ``mapping``
    (value -> shared code), extending it with unseen values."""
    if col.values is None:
        distinct, inv = np.unique(col.codes, return_inverse=True)
        shared = np.fromiter(
            (
                mapping.setdefault(int(v), len(mapping))
                for v in distinct.tolist()
            ),
            dtype=np.int64,
            count=len(distinct),
        )
        return shared[inv] if len(distinct) else col.codes
    if not col.values:
        return col.codes
    remap = np.fromiter(
        (mapping.setdefault(v, len(mapping)) for v in col.values),
        dtype=np.int64,
        count=len(col.values),
    )
    return remap[col.codes]


def unify_codes(cols: Sequence[Column]) -> List[np.ndarray]:
    """Codes for several columns of the *same* attribute in one shared
    space: equal values get equal codes across all of them."""
    if all(c.is_int for c in cols):
        return [c.codes for c in cols]
    mapping: Dict[Hashable, int] = {}
    return [_remap_codes(c, mapping) for c in cols]


# ----------------------------------------------------------------------
# tuple stores
# ----------------------------------------------------------------------


class TupleStore:
    """An immutable columnar block of tuples plus a dummy-nonce vector.

    ``nonce[i] == 0`` means row ``i`` is the real tuple spelled by the
    columns; ``nonce[i] == k > 0`` means row ``i`` is the dummy tuple
    ``((DUMMY_MARKER, k),) * arity`` and its column codes are ignored.
    """

    __slots__ = ("attributes", "columns", "nonce", "_rows")

    def __init__(
        self,
        attributes: Tuple[str, ...],
        columns: Tuple[Column, ...],
        nonce: np.ndarray,
    ) -> None:
        self.attributes = attributes
        self.columns = columns
        self.nonce = nonce
        self._rows: Optional[List[Tuple[Any, ...]]] = None
        for c in columns:
            if len(c) != len(nonce):
                raise ValueError("column lengths disagree")

    @property
    def n(self) -> int:
        return len(self.nonce)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.nonce)

    @property
    def dummy_mask(self) -> np.ndarray:
        """Boolean mask of dummy rows (the columnar dummy representation)."""
        return self.nonce != 0

    # -- construction ---------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        attributes: Sequence[str],
        tuples: Iterable[Tuple[Any, ...]],
    ) -> "TupleStore":
        attrs = tuple(attributes)
        rows = [tuple(t) for t in tuples]
        arity = len(attrs)
        for t in rows:
            if len(t) != arity:
                raise ValueError(
                    f"tuple {t!r} has arity {len(t)}, "
                    f"schema has {arity} attributes"
                )
        n = len(rows)
        nonce = np.zeros(n, dtype=np.int64)
        dummy_rows: List[int] = []
        for i, t in enumerate(rows):
            if (
                arity > 0
                and is_dummy_value(t[0])
                and all(v == t[0] for v in t[1:])
            ):
                # A whole-row dummy: keep its original nonce so it
                # stays equal to itself across store rebuilds.
                nonce[i] = t[0][1]
                dummy_rows.append(i)
        if dummy_rows:
            # Dummy rows' cell values are row-level; park a placeholder
            # in the columns (sanitised away by joint_row_codes).
            cols = []
            for j in range(arity):
                vals = [
                    (t[j] if nonce[i] == 0 else 0)
                    for i, t in enumerate(rows)
                ]
                cols.append(Column.from_values(vals))
        else:
            cols = [
                Column.from_values([t[j] for t in rows])
                for j in range(arity)
            ]
        store = cls(attrs, tuple(cols), nonce)
        store._rows = rows
        return store

    @classmethod
    def from_columns(
        cls,
        attributes: Sequence[str],
        columns: Sequence[Any],
        nonce: Optional[np.ndarray] = None,
    ) -> "TupleStore":
        attrs = tuple(attributes)
        cols = tuple(Column.from_array(c) for c in columns)
        if cols:
            n = len(cols[0])
        elif nonce is not None:
            n = len(nonce)
        else:
            raise ValueError(
                "zero-attribute stores need an explicit nonce vector"
            )
        if nonce is None:
            nonce = np.zeros(n, dtype=np.int64)
        return cls(attrs, cols, np.asarray(nonce, dtype=np.int64))

    @classmethod
    def empty(cls, attributes: Sequence[str]) -> "TupleStore":
        attrs = tuple(attributes)
        return cls(
            attrs,
            tuple(
                Column(np.zeros(0, dtype=np.int64), None) for _ in attrs
            ),
            np.zeros(0, dtype=np.int64),
        )

    # -- transformations ------------------------------------------------

    def take(self, rows: Any) -> "TupleStore":
        idx = np.asarray(rows, dtype=np.int64)
        return TupleStore(
            self.attributes,
            tuple(c.take(idx) for c in self.columns),
            self.nonce[idx],
        )

    def project(self, attrs: Sequence[str]) -> "TupleStore":
        """Reorder/select columns by name.  Projecting onto zero
        attributes drops the nonce too: every tuple, dummy or not,
        projects to the empty tuple ``()`` (matching tuple semantics)."""
        order = tuple(attrs)
        pos = {a: i for i, a in enumerate(self.attributes)}
        missing = [a for a in order if a not in pos]
        if missing:
            raise KeyError(
                f"attributes {missing} not in {self.attributes}"
            )
        if not order:
            return TupleStore(
                (), (), np.zeros(self.n, dtype=np.int64)
            )
        return TupleStore(
            order,
            tuple(self.columns[pos[a]] for a in order),
            self.nonce,
        )

    def with_attributes(self, attributes: Sequence[str]) -> "TupleStore":
        attrs = tuple(attributes)
        if len(attrs) != self.arity:
            raise ValueError("attribute count mismatch")
        return TupleStore(attrs, self.columns, self.nonce)

    def with_column(self, name: str, col: Column) -> "TupleStore":
        if len(col) != self.n:
            raise ValueError("column length mismatch")
        return TupleStore(
            self.attributes + (name,), self.columns + (col,), self.nonce
        )

    def concat(self, other: "TupleStore") -> "TupleStore":
        if self.attributes != other.attributes:
            raise ValueError("concat needs identical attribute tuples")
        return TupleStore(
            self.attributes,
            tuple(
                a.concat(b)
                for a, b in zip(self.columns, other.columns)
            ),
            np.concatenate([self.nonce, other.nonce]),
        )

    def with_dummies(self, k: int) -> "TupleStore":
        """Append ``k`` fresh dummy rows (vectorised dummy generation:
        one nonce-block reservation, zero Python tuples built)."""
        if k <= 0:
            return self
        pad_nonce = fresh_nonces(k)
        zeros = np.zeros(k, dtype=np.int64)
        return TupleStore(
            self.attributes,
            tuple(
                Column(np.concatenate([c.codes, zeros]), c.values)
                for c in self.columns
            ),
            np.concatenate([self.nonce, pad_nonce]),
        )

    # -- row views ------------------------------------------------------

    def expanded_columns(self) -> List[Column]:
        """Columns with dummy rows materialised as explicit
        ``(DUMMY_MARKER, nonce)`` object values — needed when rows of
        this store are combined with another store's columns (e.g. join
        outputs mixing a dummy left row with a real right row)."""
        dummies = np.flatnonzero(self.nonce)
        if not len(dummies):
            return list(self.columns)
        out: List[Column] = []
        for c in self.columns:
            vals = c.to_pylist()
            for i in dummies.tolist():
                vals[i] = dummy_value(int(self.nonce[i]))
            out.append(Column.from_values(vals))
        return out

    def row(self, i: int) -> Tuple[Any, ...]:
        if self.nonce[i]:
            nv = dummy_value(int(self.nonce[i]))
            return tuple(nv for _ in range(self.arity))
        return tuple(c.value_at(i) for c in self.columns)

    def materialize(self) -> List[Tuple[Any, ...]]:
        """The tuple-list view (cached; the compatibility API)."""
        if self._rows is None:
            n = self.n
            if self.arity == 0:
                rows: List[Tuple[Any, ...]] = [()] * n
            else:
                pycols = [c.to_pylist() for c in self.columns]
                rows = list(zip(*pycols))
                for i in np.flatnonzero(self.nonce).tolist():
                    nv = dummy_value(int(self.nonce[i]))
                    rows[i] = tuple(nv for _ in range(self.arity))
            self._rows = rows
        return self._rows


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------


def joint_row_codes(stores: Sequence[TupleStore]) -> List[np.ndarray]:
    """Per-store ``int64`` row codes in one shared space: two rows (from
    any of the stores) are equal as tuples iff their codes are equal.

    All stores must share the same attribute tuple (project first).
    Dummy rows compare through their nonce; their column codes are
    sanitised to zero so a dummy never equals a real row.
    """
    if not stores:
        return []
    arity = stores[0].arity
    for s in stores[1:]:
        if s.attributes != stores[0].attributes:
            raise ValueError("joint codes need identical schemas")
    if arity == 0:
        # Every tuple projects to (): all rows are equal.
        return [np.zeros(s.n, dtype=np.int64) for s in stores]
    per_attr = [
        unify_codes([s.columns[j] for s in stores])
        for j in range(arity)
    ]
    mats = []
    for si, s in enumerate(stores):
        real = (s.nonce == 0).astype(np.int64)
        cols = [s.nonce] + [per_attr[j][si] * real for j in range(arity)]
        mats.append(np.stack(cols, axis=1))
    stacked = np.concatenate(mats, axis=0)
    _, inv = np.unique(stacked, axis=0, return_inverse=True)
    inv = inv.astype(np.int64, copy=False).reshape(len(stacked))
    out: List[np.ndarray] = []
    offset = 0
    for s in stores:
        out.append(inv[offset : offset + s.n])
        offset += s.n
    return out


def group_by_first_appearance(
    codes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Group rows by code: ``(gid, first)`` where groups are numbered in
    first-appearance order (the dict-insertion order of the tuple-path
    operators) and ``first[g]`` is the index of group ``g``'s first row."""
    if not len(codes):
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    _, first, inv = np.unique(
        codes, return_index=True, return_inverse=True
    )
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order), dtype=np.int64)
    return rank[inv.astype(np.int64, copy=False)], first[order]


def sort_with_same_flags(
    codes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """A stable sort order over row codes plus the ``same-as-next``
    boundary flags the oblivious merge chains consume."""
    order = np.argsort(codes, kind="stable")
    srt = codes[order]
    same = np.zeros(max(len(codes) - 1, 0), dtype=bool)
    if len(codes) > 1:
        same = srt[1:] == srt[:-1]
    return order, same
