"""Annotated relations (K-relations) following Section 3.1 of the paper.

An annotated relation is a collection of tuples over a fixed attribute
list, each carrying an annotation from a commutative semiring.  Tuples
are stored *columnar*: one contiguous array per attribute (raw ``int64``
or dictionary-encoded, see :mod:`repro.relalg.columns`) plus a row-level
dummy-nonce vector; annotations live in a parallel ``uint64`` numpy
array so that secret sharing and vectorised semiring arithmetic are
cheap.  The historical tuple-list view stays available through the
``.tuples`` property (a cached materialisation) and iteration, so
row-oriented callers keep working unchanged.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .columns import TupleStore
from .semiring import DEFAULT_RING, Semiring

__all__ = ["AnnotatedRelation"]


def _as_annotation_array(
    values: Any, length: int, semiring: Semiring
) -> np.ndarray:
    if values is None:
        return np.full(length, semiring.one, dtype=np.uint64)
    if isinstance(values, np.ndarray):
        if values.dtype.kind == "f":
            raise TypeError("annotations must be integers, not floats")
        if values.dtype.kind in ("i", "u", "b"):
            # Normalise in uint64 space: the unsigned cast wraps mod
            # 2^64 (exact for negatives too), and the semiring reduces
            # from there.  An int64 round-trip would corrupt uint64
            # inputs >= 2^63 and overflows outright for ell = 63.
            arr = semiring.normalize_vec(
                values.astype(np.uint64, copy=False)
            )
        else:
            arr = np.asarray(
                [semiring.normalize(int(v)) for v in values.tolist()],
                dtype=np.uint64,
            )
    else:
        vals = list(values)
        if any(isinstance(v, float) for v in vals):
            raise TypeError("annotations must be integers, not floats")
        arr = np.asarray(
            [semiring.normalize(int(v)) for v in vals], dtype=np.uint64
        )
    if arr.shape != (length,):
        raise ValueError(
            f"annotation array has shape {arr.shape}, expected ({length},)"
        )
    return arr


class AnnotatedRelation:
    """A relation whose tuples carry semiring annotations.

    Parameters
    ----------
    attributes:
        Ordered attribute names.  Order matters for tuple layout only; all
        relational operators match attributes by name.
    tuples:
        Iterable of equal-length tuples of hashable values, or a
        pre-built :class:`~repro.relalg.columns.TupleStore` (zero-copy).
    annotations:
        Optional iterable of semiring elements (defaults to all-ones, the
        multiplicative identity — the convention for "plain" relations).
    semiring:
        The annotation semiring (defaults to ``Z_{2^32}``).
    """

    __slots__ = ("attributes", "_store", "annotations", "semiring")

    def __init__(
        self,
        attributes: Sequence[str],
        tuples: Union[TupleStore, Iterable[Tuple[Any, ...]]],
        annotations: Any = None,
        semiring: Semiring = DEFAULT_RING,
    ):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attributes in {self.attributes}")
        if isinstance(tuples, TupleStore):
            if tuples.attributes != self.attributes:
                tuples = tuples.with_attributes(self.attributes)
            self._store = tuples
        else:
            self._store = TupleStore.from_tuples(self.attributes, tuples)
        self.semiring = semiring
        self.annotations = _as_annotation_array(
            annotations, self._store.n, semiring
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        attributes: Sequence[str],
        rows: Iterable[Dict[str, Any]],
        annotation_of: Optional[Callable[[Dict[str, Any]], int]] = None,
        semiring: Semiring = DEFAULT_RING,
    ) -> "AnnotatedRelation":
        """Build a relation from dict rows.

        ``annotation_of`` is an optional callable mapping a row dict to its
        annotation; by default every tuple is annotated with 1.
        """
        attrs = tuple(attributes)
        tuples: List[Tuple[Any, ...]] = []
        annotations: List[int] = []
        for row in rows:
            tuples.append(tuple(row[a] for a in attrs))
            annotations.append(
                semiring.normalize(int(annotation_of(row)))
                if annotation_of
                else semiring.one
            )
        return cls(attrs, tuples, annotations, semiring)

    @classmethod
    def from_columns(
        cls,
        attributes: Sequence[str],
        columns: Sequence[Any],
        annotations: Any = None,
        semiring: Semiring = DEFAULT_RING,
        nonce: Optional[np.ndarray] = None,
    ) -> "AnnotatedRelation":
        """Zero-copy ingestion from per-attribute arrays (the columnar
        fast path used by the TPC-H loader and the benchmarks)."""
        store = TupleStore.from_columns(attributes, columns, nonce)
        return cls(store.attributes, store, annotations, semiring)

    @classmethod
    def empty(
        cls, attributes: Sequence[str], semiring: Semiring = DEFAULT_RING
    ) -> "AnnotatedRelation":
        return cls(attributes, [], [], semiring)

    def replace(
        self,
        tuples: Union[TupleStore, Iterable[Tuple[Any, ...]], None] = None,
        annotations: Any = None,
        attributes: Optional[Sequence[str]] = None,
    ) -> "AnnotatedRelation":
        """Copy with selected fields replaced (annotations re-normalised)."""
        store: Union[TupleStore, Iterable[Tuple[Any, ...]]]
        if tuples is None:
            store = self._store
            if attributes is not None:
                store = store.with_attributes(tuple(attributes))
        else:
            store = tuples
        return AnnotatedRelation(
            self.attributes if attributes is None else attributes,
            store,
            self.annotations if annotations is None else annotations,
            self.semiring,
        )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def store(self) -> TupleStore:
        """The columnar tuple block (the primary representation)."""
        return self._store

    @property
    def tuples(self) -> List[Tuple[Any, ...]]:
        """Tuple-list compatibility view (cached materialisation)."""
        return self._store.materialize()

    def __len__(self) -> int:
        return self._store.n

    def __iter__(self) -> Iterator[Tuple[Tuple[Any, ...], int]]:
        for t, v in zip(self.tuples, self.annotations):
            yield t, int(v)

    def __repr__(self) -> str:
        return (
            f"AnnotatedRelation({list(self.attributes)}, "
            f"{len(self)} tuples, {self.semiring!r})"
        )

    def index_of(self, attrs: Sequence[str]) -> List[int]:
        """Positions of ``attrs`` within this relation's attribute list."""
        missing = [a for a in attrs if a not in self.attributes]
        if missing:
            raise KeyError(f"attributes {missing} not in {self.attributes}")
        return [self.attributes.index(a) for a in attrs]

    def key_of(
        self, t: Tuple[Any, ...], attrs: Sequence[str]
    ) -> Tuple[Any, ...]:
        """Project a single tuple onto ``attrs`` (by name)."""
        idx = self.index_of(attrs)
        return tuple(t[i] for i in idx)

    def keys(self, attrs: Sequence[str]) -> List[Tuple[Any, ...]]:
        """Projection of every tuple onto ``attrs``, preserving order and
        duplicates (the *tuple list* of ``pi_attrs``, not its set)."""
        idx = self.index_of(attrs)
        return [tuple(t[i] for i in idx) for t in self.tuples]

    def column(self, attr: str) -> List[Any]:
        """One attribute's values as a Python list (dummy rows appear as
        their ``(DUMMY_MARKER, nonce)`` values)."""
        i = self.attributes.index(attr)
        col = self._store.columns[i]
        out = col.to_pylist()
        from .columns import dummy_value

        for j in np.flatnonzero(self._store.nonce).tolist():
            out[j] = dummy_value(int(self._store.nonce[j]))
        return out

    def column_array(self, attr: str) -> np.ndarray:
        """One integer attribute as an ``int64`` array (raises for
        dictionary-encoded columns or relations with dummy rows)."""
        i = self.attributes.index(attr)
        col = self._store.columns[i]
        if not col.is_int:
            raise TypeError(f"column {attr!r} is not integer-typed")
        if self._store.nonce.any():
            raise TypeError(
                f"column {attr!r} has dummy rows; use .column()"
            )
        return col.codes

    def annotation_of(self, t: Tuple[Any, ...]) -> int:
        """Total annotation of tuple ``t`` (sum over duplicates); zero if
        absent.  This realises the K-relation view of the multiset."""
        total = self.semiring.zero
        for u, v in self:
            if u == t:
                total = self.semiring.add(total, v)
        return total

    def to_dict(self) -> Dict[Tuple[Any, ...], int]:
        """Aggregate duplicates into a ``{tuple: annotation}`` map.

        This is the canonical K-relation semantics; two relations are
        semantically equal iff their dicts agree on nonzero annotations.
        """
        out: Dict[Tuple[Any, ...], int] = {}
        for t, v in self:
            out[t] = self.semiring.add(out.get(t, self.semiring.zero), v)
        return {t: v for t, v in out.items() if v != self.semiring.zero}

    def nonzero(self) -> "AnnotatedRelation":
        """The sub-relation of nonzero-annotated tuples (``R*`` in §6.3)."""
        keep = np.flatnonzero(self.annotations != 0)
        return AnnotatedRelation(
            self.attributes,
            self._store.take(keep),
            self.annotations[keep],
            self.semiring,
        )

    def semantically_equal(self, other: "AnnotatedRelation") -> bool:
        """Equality as K-relations: same nonzero annotation per tuple.

        Dummy (zero-annotated) tuples are ignored, which is exactly the
        sense in which the paper's oblivious operators return output that is
        "semantically equivalent" to the true operator output.
        """
        if set(self.attributes) != set(other.attributes):
            return False
        if self.semiring != other.semiring:
            return False
        perm = [other.attributes.index(a) for a in self.attributes]
        reordered = {
            tuple(t[i] for i in perm): v for t, v in other.to_dict().items()
        }
        return self.to_dict() == reordered
