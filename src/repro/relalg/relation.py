"""Annotated relations (K-relations) following Section 3.1 of the paper.

An annotated relation is a collection of tuples over a fixed attribute list,
each carrying an annotation from a commutative semiring.  Tuples are stored
as plain Python tuples of hashable values; annotations live in a parallel
``uint64`` numpy array so that secret sharing and vectorised semiring
arithmetic are cheap.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .semiring import DEFAULT_RING, Semiring

__all__ = ["AnnotatedRelation"]


def _as_annotation_array(values, length: int, semiring: Semiring) -> np.ndarray:
    if values is None:
        return np.full(length, semiring.one, dtype=np.uint64)
    if isinstance(values, np.ndarray):
        if values.dtype.kind == "f":
            raise TypeError("annotations must be integers, not floats")
        arr = (values.astype(np.int64, copy=False) % semiring.modulus).astype(
            np.uint64
        )
    else:
        values = list(values)
        if any(isinstance(v, float) for v in values):
            raise TypeError("annotations must be integers, not floats")
        arr = np.asarray(
            [semiring.normalize(int(v)) for v in values], dtype=np.uint64
        )
    if arr.shape != (length,):
        raise ValueError(
            f"annotation array has shape {arr.shape}, expected ({length},)"
        )
    return arr


class AnnotatedRelation:
    """A relation whose tuples carry semiring annotations.

    Parameters
    ----------
    attributes:
        Ordered attribute names.  Order matters for tuple layout only; all
        relational operators match attributes by name.
    tuples:
        Iterable of equal-length tuples of hashable values.
    annotations:
        Optional iterable of semiring elements (defaults to all-ones, the
        multiplicative identity — the convention for "plain" relations).
    semiring:
        The annotation semiring (defaults to ``Z_{2^32}``).
    """

    __slots__ = ("attributes", "tuples", "annotations", "semiring")

    def __init__(
        self,
        attributes: Sequence[str],
        tuples: Iterable[Tuple],
        annotations=None,
        semiring: Semiring = DEFAULT_RING,
    ):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attributes in {self.attributes}")
        self.tuples: List[Tuple] = [tuple(t) for t in tuples]
        for t in self.tuples:
            if len(t) != len(self.attributes):
                raise ValueError(
                    f"tuple {t!r} has arity {len(t)}, "
                    f"schema has {len(self.attributes)} attributes"
                )
        self.semiring = semiring
        self.annotations = _as_annotation_array(
            annotations, len(self.tuples), semiring
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        attributes: Sequence[str],
        rows: Iterable[dict],
        annotation_of=None,
        semiring: Semiring = DEFAULT_RING,
    ) -> "AnnotatedRelation":
        """Build a relation from dict rows.

        ``annotation_of`` is an optional callable mapping a row dict to its
        annotation; by default every tuple is annotated with 1.
        """
        attributes = tuple(attributes)
        tuples, annotations = [], []
        for row in rows:
            tuples.append(tuple(row[a] for a in attributes))
            annotations.append(
                semiring.normalize(int(annotation_of(row))) if annotation_of else semiring.one
            )
        return cls(attributes, tuples, annotations, semiring)

    @classmethod
    def empty(
        cls, attributes: Sequence[str], semiring: Semiring = DEFAULT_RING
    ) -> "AnnotatedRelation":
        return cls(attributes, [], [], semiring)

    def replace(
        self, tuples=None, annotations=None, attributes=None
    ) -> "AnnotatedRelation":
        """Copy with selected fields replaced (annotations re-normalised)."""
        return AnnotatedRelation(
            self.attributes if attributes is None else attributes,
            self.tuples if tuples is None else tuples,
            self.annotations if annotations is None else annotations,
            self.semiring,
        )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Tuple[Tuple, int]]:
        for t, v in zip(self.tuples, self.annotations):
            yield t, int(v)

    def __repr__(self) -> str:
        return (
            f"AnnotatedRelation({list(self.attributes)}, "
            f"{len(self.tuples)} tuples, {self.semiring!r})"
        )

    def index_of(self, attrs: Sequence[str]) -> List[int]:
        """Positions of ``attrs`` within this relation's attribute list."""
        missing = [a for a in attrs if a not in self.attributes]
        if missing:
            raise KeyError(f"attributes {missing} not in {self.attributes}")
        return [self.attributes.index(a) for a in attrs]

    def key_of(self, t: Tuple, attrs: Sequence[str]) -> Tuple:
        """Project a single tuple onto ``attrs`` (by name)."""
        idx = self.index_of(attrs)
        return tuple(t[i] for i in idx)

    def keys(self, attrs: Sequence[str]) -> List[Tuple]:
        """Projection of every tuple onto ``attrs``, preserving order and
        duplicates (the *tuple list* of ``pi_attrs``, not its set)."""
        idx = self.index_of(attrs)
        return [tuple(t[i] for i in idx) for t in self.tuples]

    def column(self, attr: str) -> List:
        i = self.attributes.index(attr)
        return [t[i] for t in self.tuples]

    def annotation_of(self, t: Tuple) -> int:
        """Total annotation of tuple ``t`` (sum over duplicates); zero if
        absent.  This realises the K-relation view of the multiset."""
        total = self.semiring.zero
        for u, v in self:
            if u == t:
                total = self.semiring.add(total, v)
        return total

    def to_dict(self) -> dict:
        """Aggregate duplicates into a ``{tuple: annotation}`` map.

        This is the canonical K-relation semantics; two relations are
        semantically equal iff their dicts agree on nonzero annotations.
        """
        out: dict = {}
        for t, v in self:
            out[t] = self.semiring.add(out.get(t, self.semiring.zero), v)
        return {t: v for t, v in out.items() if v != self.semiring.zero}

    def nonzero(self) -> "AnnotatedRelation":
        """The sub-relation of nonzero-annotated tuples (``R*`` in §6.3)."""
        keep = [i for i, v in enumerate(self.annotations) if int(v) != 0]
        return AnnotatedRelation(
            self.attributes,
            [self.tuples[i] for i in keep],
            self.annotations[keep] if keep else [],
            self.semiring,
        )

    def semantically_equal(self, other: "AnnotatedRelation") -> bool:
        """Equality as K-relations: same nonzero annotation per tuple.

        Dummy (zero-annotated) tuples are ignored, which is exactly the
        sense in which the paper's oblivious operators return output that is
        "semantically equivalent" to the true operator output.
        """
        if set(self.attributes) != set(other.attributes):
            return False
        if self.semiring != other.semiring:
            return False
        perm = [other.attributes.index(a) for a in self.attributes]
        reordered = {
            tuple(t[i] for i in perm): v for t, v in other.to_dict().items()
        }
        return self.to_dict() == reordered
