"""Query hypergraphs and acyclicity testing (Section 3.1).

A join query is modelled as a hypergraph whose vertices are attributes and
whose hyperedges are relations.  Acyclicity is decided with the classical
GYO (Graham / Yu–Ozsoyoglu) reduction; join trees are constructed with the
maximum-weight spanning tree method of Bernstein & Goodman (weight =
number of shared attributes), which yields a join tree iff the hypergraph
is alpha-acyclic.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import networkx as nx

__all__ = ["Hypergraph"]


class Hypergraph:
    """A named hypergraph: each hyperedge has a unique name (the relation
    name) and a set of attribute vertices."""

    def __init__(self, edges: Dict[str, Iterable[str]]):
        if not edges:
            raise ValueError("hypergraph needs at least one hyperedge")
        self.edges: Dict[str, FrozenSet[str]] = {
            name: frozenset(attrs) for name, attrs in edges.items()
        }
        self.vertices: FrozenSet[str] = frozenset().union(*self.edges.values())

    def __repr__(self) -> str:
        body = ", ".join(
            f"{name}({', '.join(sorted(attrs))})"
            for name, attrs in self.edges.items()
        )
        return f"Hypergraph[{body}]"

    # ------------------------------------------------------------------
    # acyclicity
    # ------------------------------------------------------------------

    def is_acyclic(self) -> bool:
        """GYO reduction: repeatedly remove ear vertices (vertices in a
        single hyperedge) and ear edges (edges contained in another edge).
        The hypergraph is alpha-acyclic iff the reduction empties it."""
        edges: List[FrozenSet[str]] = list(self.edges.values())
        changed = True
        while changed and len(edges) > 1:
            changed = False
            # Remove vertices that occur in exactly one hyperedge.
            counts: Dict[str, int] = {}
            for e in edges:
                for v in e:
                    counts[v] = counts.get(v, 0) + 1
            lonely = {v for v, c in counts.items() if c == 1}
            if lonely:
                new_edges = [e - lonely for e in edges]
                if new_edges != edges:
                    edges = new_edges
                    changed = True
            # Remove edges contained in some other edge (including dups).
            kept: List[FrozenSet[str]] = []
            for i, e in enumerate(edges):
                contained = any(
                    (e <= f) and (i != j) and (e != f or i > j)
                    for j, f in enumerate(edges)
                )
                if not contained:
                    kept.append(e)
            if len(kept) != len(edges):
                edges = kept
                changed = True
        return len(edges) == 1

    # ------------------------------------------------------------------
    # join trees
    # ------------------------------------------------------------------

    def _intersection_graph(self) -> nx.Graph:
        g = nx.Graph()
        names = list(self.edges)
        g.add_nodes_from(names)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                w = len(self.edges[a] & self.edges[b])
                if w > 0:
                    g.add_edge(a, b, weight=w)
        return g

    def _is_valid_join_tree(self, tree: nx.Graph) -> bool:
        """Check the running-intersection property: for every attribute,
        the tree nodes containing it induce a connected subtree."""
        for attr in self.vertices:
            nodes = [n for n in tree.nodes if attr in self.edges[n]]
            if len(nodes) > 1:
                sub = tree.subgraph(nodes)
                if not nx.is_connected(sub):
                    return False
        return True

    def join_tree_edges(self) -> Optional[List[Tuple[str, str]]]:
        """One (unrooted) join tree as a list of node-name pairs, or ``None``
        if the hypergraph is cyclic.

        Disconnected hypergraphs (Cartesian products) are handled by linking
        the components with weight-0 edges, which vacuously preserves the
        running-intersection property.
        """
        g = self._intersection_graph()
        names = list(self.edges)
        # Link components so a spanning tree exists.
        comps = [list(c) for c in nx.connected_components(g)]
        for a, b in zip(comps, comps[1:]):
            g.add_edge(a[0], b[0], weight=0)
        if len(names) == 1:
            return []
        mst = nx.maximum_spanning_tree(g, weight="weight")
        if not self._is_valid_join_tree(mst):
            return None
        return list(mst.edges())

    def all_join_trees(self, limit: int = 2000) -> List[List[Tuple[str, str]]]:
        """Enumerate join trees (as edge lists) up to ``limit`` spanning
        trees inspected.  Used by the free-connex search for small queries;
        TPC-H queries have at most 5 relations so this is instantaneous."""
        g = self._intersection_graph()
        # A valid join tree may connect relations that share no attribute
        # (Cartesian components can attach anywhere), so enumerate over
        # the complete graph with weight-0 filler edges.
        names = list(self.edges)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if not g.has_edge(a, b):
                    g.add_edge(a, b, weight=0)
        if len(self.edges) == 1:
            return [[]]
        trees: List[List[Tuple[str, str]]] = []
        for i, tree in enumerate(nx.SpanningTreeIterator(g)):
            if i >= limit:
                break
            if self._is_valid_join_tree(tree):
                trees.append(list(tree.edges()))
        return trees

    def with_edge(self, name: str, attrs: Iterable[str]) -> "Hypergraph":
        """A copy with one extra hyperedge (used by the free-connex test,
        which adds the output attributes as a virtual hyperedge)."""
        if name in self.edges:
            raise ValueError(f"edge name {name!r} already present")
        new = dict(self.edges)
        new[name] = frozenset(attrs)
        return Hypergraph(new)
