"""Annotated relational algebra: semirings, relations, operators, and the
structural theory (hypergraphs, join trees, free-connex) from Section 3."""

from .columns import Column, TupleStore
from .hypergraph import Hypergraph
from .join_tree import JoinTree, find_free_connex_tree, is_free_connex
from .operators import (
    aggregate,
    join,
    map_annotations,
    rename,
    select,
    select_with_dummies,
    semijoin,
    support_projection,
    union,
)
from .relation import AnnotatedRelation
from .semiring import DEFAULT_RING, BooleanSemiring, IntegerRing, Semiring

__all__ = [
    "AnnotatedRelation",
    "BooleanSemiring",
    "Column",
    "TupleStore",
    "DEFAULT_RING",
    "Hypergraph",
    "IntegerRing",
    "JoinTree",
    "Semiring",
    "aggregate",
    "find_free_connex_tree",
    "is_free_connex",
    "join",
    "map_annotations",
    "rename",
    "select",
    "select_with_dummies",
    "semijoin",
    "support_projection",
    "union",
]
