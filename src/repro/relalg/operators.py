"""Plaintext annotated relational operators (Section 3.1).

These are the non-private reference semantics for the operators that the
secure protocol makes oblivious:

* ``aggregate``            — annotated projection-aggregation ``pi_F^(+)``
* ``support_projection``   — ``pi_F^1`` (nonzero support, annotations reset to 1)
* ``join``                 — annotated natural join  ``R ⋈⊗ S``
* ``semijoin``             — annotated semijoin      ``R ⋉⊗ S  =  R ⋈⊗ pi^1_{F∩F'}(S)``
* ``select``               — selection, with the dummy-tuple variant used by
                             the privacy extension in Section 7.

All operators run columnar: group-by via ``np.unique`` row codes, join
expansion via a stable ``np.argsort`` + ``np.searchsorted`` over a
shared code space (see :mod:`repro.relalg.columns`), in time linear (up
to sorting) in input + output size — matching the complexity the
Yannakakis algorithm relies on.  Output row order and duplicate
structure are identical to the retained tuple-path reference
(:mod:`repro.relalg._reference`): r1-major join order, dict-insertion
group order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from .columns import (
    TupleStore,
    group_by_first_appearance,
    joint_row_codes,
)
from .relation import AnnotatedRelation

__all__ = [
    "aggregate",
    "support_projection",
    "join",
    "semijoin",
    "select",
    "select_with_dummies",
    "map_annotations",
    "rename",
    "union",
]


def aggregate(
    rel: AnnotatedRelation, attrs: Sequence[str]
) -> AnnotatedRelation:
    """``pi_attrs^(+)(rel)``: project onto ``attrs`` and +-aggregate the
    annotations of tuples sharing each distinct projection.

    With ``attrs = ()`` this returns a single empty tuple annotated with the
    +-aggregate of the whole relation — i.e. a scalar aggregate.
    """
    sr = rel.semiring
    attrs = tuple(attrs)
    rel.index_of(attrs)  # validate
    if not attrs and not len(rel):
        # pi_{}^(+) of an empty relation is the empty tuple annotated 0.
        return AnnotatedRelation(attrs, [()], [sr.zero], sr)
    proj = rel.store.project(attrs)
    codes = joint_row_codes([proj])[0]
    gid, first = group_by_first_appearance(codes)
    sums = sr.reduce_groups(rel.annotations, gid, len(first))
    return AnnotatedRelation(attrs, proj.take(first), sums, sr)


def support_projection(
    rel: AnnotatedRelation, attrs: Sequence[str]
) -> AnnotatedRelation:
    """``pi_attrs^1(rel)``: distinct projections of *nonzero*-annotated
    tuples, all annotated with the multiplicative identity 1."""
    sr = rel.semiring
    attrs = tuple(attrs)
    rel.index_of(attrs)
    nz = np.flatnonzero(rel.annotations != sr.zero)
    sub = rel.store.project(attrs).take(nz)
    codes = joint_row_codes([sub])[0]
    _, first = group_by_first_appearance(codes)
    ones = np.full(len(first), sr.one, dtype=np.uint64)
    return AnnotatedRelation(attrs, sub.take(first), ones, sr)


def _expand_matches(
    c1: np.ndarray, c2: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """All matching row pairs between two code vectors, in r1-major
    order with r2 matches in original r2 order (the hash-join order of
    the tuple-path reference)."""
    order2 = np.argsort(c2, kind="stable")
    sorted2 = c2[order2]
    left = np.searchsorted(sorted2, c1, side="left")
    right = np.searchsorted(sorted2, c1, side="right")
    counts = (right - left).astype(np.int64)
    total = int(counts.sum())
    out_r1 = np.repeat(np.arange(len(c1), dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    pos = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    out_r2 = order2[np.repeat(left, counts) + pos]
    return out_r1, out_r2


def _join_store(
    s1: TupleStore,
    extra: TupleStore,
    out_attrs: Tuple[str, ...],
    out_r1: np.ndarray,
    out_r2: np.ndarray,
) -> TupleStore:
    """Assemble the join output store: r1's columns followed by r2's
    extra columns.  Rows mixing a dummy side with a real side (possible
    only via cartesian products or self-nonce collisions) fall back to
    the tuple path so the dummy values materialise correctly."""
    if extra.arity == 0:
        return s1.take(out_r1)
    if s1.arity == 0:
        return extra.take(out_r2).with_attributes(out_attrs)
    n1 = s1.nonce[out_r1]
    n2 = extra.nonce[out_r2]
    both = (n1 > 0) & (n1 == n2)
    mixed = ((n1 > 0) | (n2 > 0)) & ~both
    if mixed.any():
        rows1 = s1.materialize()
        rows2 = extra.materialize()
        return TupleStore.from_tuples(
            out_attrs,
            [
                rows1[i] + rows2[j]
                for i, j in zip(out_r1.tolist(), out_r2.tolist())
            ],
        )
    cols = tuple(c.take(out_r1) for c in s1.columns) + tuple(
        c.take(out_r2) for c in extra.columns
    )
    return TupleStore(
        out_attrs, cols, np.where(both, n1, np.int64(0))
    )


def join(r1: AnnotatedRelation, r2: AnnotatedRelation) -> AnnotatedRelation:
    """Annotated natural join ``r1 ⋈⊗ r2``.

    Output attributes are ``r1``'s followed by ``r2``'s new ones; the
    annotation of each result is the ⊗-product of the contributing
    annotations.  Sort-merge expansion over shared row codes:
    O((|r1| + |r2|) log + |output|).
    """
    if r1.semiring != r2.semiring:
        raise ValueError("cannot join relations over different semirings")
    sr = r1.semiring
    shared = [a for a in r1.attributes if a in r2.attributes]
    extra = [a for a in r2.attributes if a not in r1.attributes]
    out_attrs = tuple(r1.attributes) + tuple(extra)

    c1, c2 = joint_row_codes(
        [r1.store.project(shared), r2.store.project(shared)]
    )
    out_r1, out_r2 = _expand_matches(c1, c2)
    annots = sr.mul_vec(
        r1.annotations[out_r1], r2.annotations[out_r2]
    )
    store = _join_store(
        r1.store, r2.store.project(extra), out_attrs, out_r1, out_r2
    )
    return AnnotatedRelation(out_attrs, store, annots, sr)


def semijoin(r1: AnnotatedRelation, r2: AnnotatedRelation) -> AnnotatedRelation:
    """Annotated semijoin ``r1 ⋉⊗ r2 = r1 ⋈⊗ pi^1_{F∩F'}(r2)``.

    Returns the tuples of ``r1`` that join with at least one nonzero tuple
    of ``r2``, annotations preserved (definition in Section 3.1).
    """
    shared = [a for a in r1.attributes if a in r2.attributes]
    return join(r1, support_projection(r2, shared))


def select(
    rel: AnnotatedRelation, predicate: Callable[[Dict[str, Any]], bool]
) -> AnnotatedRelation:
    """Plain selection: keep tuples whose row-dict satisfies ``predicate``.

    This is option (1) of Section 7 (public selectivity): the relation
    shrinks and the protocol's input size drops accordingly.
    """
    keep = np.asarray(
        [
            i
            for i, t in enumerate(rel.tuples)
            if predicate(dict(zip(rel.attributes, t)))
        ],
        dtype=np.int64,
    )
    return AnnotatedRelation(
        rel.attributes,
        rel.store.take(keep),
        rel.annotations[keep],
        rel.semiring,
    )


def select_with_dummies(
    rel: AnnotatedRelation, predicate: Callable[[Dict[str, Any]], bool]
) -> AnnotatedRelation:
    """Selection with *private* selectivity — option (2) of Section 7.

    Tuples failing the predicate are kept but zero-annotated, so the
    relation size (and hence the protocol's cost) is input-independent.
    """
    annots = rel.annotations.copy()
    for i, t in enumerate(rel.tuples):
        if not predicate(dict(zip(rel.attributes, t))):
            annots[i] = rel.semiring.zero
    return rel.replace(annotations=annots)


def rename(
    rel: AnnotatedRelation, mapping: Dict[str, str]
) -> AnnotatedRelation:
    """Rename attributes (``{old: new}``); unknown keys are rejected."""
    missing = [a for a in mapping if a not in rel.attributes]
    if missing:
        raise KeyError(f"attributes {missing} not in {rel.attributes}")
    return rel.replace(
        attributes=tuple(mapping.get(a, a) for a in rel.attributes)
    )


def union(
    r1: AnnotatedRelation, r2: AnnotatedRelation
) -> AnnotatedRelation:
    """K-relation union: annotations of common tuples are ⊕-combined
    (bag-union semantics under the counting semiring)."""
    if set(r1.attributes) != set(r2.attributes):
        raise ValueError(
            f"union needs identical attribute sets "
            f"({r1.attributes} vs {r2.attributes})"
        )
    if r1.semiring != r2.semiring:
        raise ValueError("cannot union relations over different semirings")
    store = r1.store.concat(r2.store.project(r1.attributes))
    annots = np.concatenate([r1.annotations, r2.annotations])
    return AnnotatedRelation(r1.attributes, store, annots, r1.semiring)


def map_annotations(
    rel: AnnotatedRelation, fn: Callable[[Dict[str, Any], int], int]
) -> AnnotatedRelation:
    """Re-annotate every tuple via ``fn(row_dict, old_annotation)``.

    Used to install query-specific annotations, e.g. Q3's
    ``l_extendedprice * (1 - l_discount)``.
    """
    sr = rel.semiring
    new = np.asarray(
        [
            sr.normalize(int(fn(dict(zip(rel.attributes, t)), int(v))))
            for t, v in rel
        ],
        dtype=np.uint64,
    )
    if len(rel) == 0:
        new = np.zeros(0, dtype=np.uint64)
    return rel.replace(annotations=new)
