"""Plaintext annotated relational operators (Section 3.1).

These are the non-private reference semantics for the operators that the
secure protocol makes oblivious:

* ``aggregate``            — annotated projection-aggregation ``pi_F^(+)``
* ``support_projection``   — ``pi_F^1`` (nonzero support, annotations reset to 1)
* ``join``                 — annotated natural join  ``R ⋈⊗ S``
* ``semijoin``             — annotated semijoin      ``R ⋉⊗ S  =  R ⋈⊗ pi^1_{F∩F'}(S)``
* ``select``               — selection, with the dummy-tuple variant used by
                             the privacy extension in Section 7.

All operators are hash-based and run in time linear in input + output size,
matching the complexity the Yannakakis algorithm relies on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from .relation import AnnotatedRelation

__all__ = [
    "aggregate",
    "support_projection",
    "join",
    "semijoin",
    "select",
    "select_with_dummies",
    "map_annotations",
    "rename",
    "union",
]


def aggregate(rel: AnnotatedRelation, attrs: Sequence[str]) -> AnnotatedRelation:
    """``pi_attrs^(+)(rel)``: project onto ``attrs`` and +-aggregate the
    annotations of tuples sharing each distinct projection.

    With ``attrs = ()`` this returns a single empty tuple annotated with the
    +-aggregate of the whole relation — i.e. a scalar aggregate.
    """
    sr = rel.semiring
    idx = rel.index_of(attrs)
    groups: Dict[Tuple, int] = {}
    order: List[Tuple] = []
    for t, v in rel:
        key = tuple(t[i] for i in idx)
        if key not in groups:
            groups[key] = v
            order.append(key)
        else:
            groups[key] = sr.add(groups[key], v)
    if not attrs and not rel.tuples:
        # pi_{}^(+) of an empty relation is the empty tuple annotated 0.
        return AnnotatedRelation(attrs, [()], [sr.zero], sr)
    return AnnotatedRelation(attrs, order, [groups[k] for k in order], sr)


def support_projection(
    rel: AnnotatedRelation, attrs: Sequence[str]
) -> AnnotatedRelation:
    """``pi_attrs^1(rel)``: distinct projections of *nonzero*-annotated
    tuples, all annotated with the multiplicative identity 1."""
    sr = rel.semiring
    idx = rel.index_of(attrs)
    seen: Dict[Tuple, None] = {}
    for t, v in rel:
        if v != sr.zero:
            seen.setdefault(tuple(t[i] for i in idx), None)
    keys = list(seen)
    return AnnotatedRelation(attrs, keys, [sr.one] * len(keys), sr)


def join(r1: AnnotatedRelation, r2: AnnotatedRelation) -> AnnotatedRelation:
    """Annotated natural join ``r1 ⋈⊗ r2``.

    Output attributes are ``r1``'s followed by ``r2``'s new ones; the
    annotation of each result is the ⊗-product of the contributing
    annotations.  Hash join: O(|r1| + |r2| + |output|).
    """
    if r1.semiring != r2.semiring:
        raise ValueError("cannot join relations over different semirings")
    sr = r1.semiring
    shared = [a for a in r1.attributes if a in r2.attributes]
    extra = [a for a in r2.attributes if a not in r1.attributes]
    out_attrs = list(r1.attributes) + extra

    r2_shared_idx = r2.index_of(shared)
    r2_extra_idx = r2.index_of(extra)
    table: Dict[Tuple, List[Tuple[Tuple, int]]] = {}
    for t, v in r2:
        key = tuple(t[i] for i in r2_shared_idx)
        table.setdefault(key, []).append((tuple(t[i] for i in r2_extra_idx), v))

    r1_shared_idx = r1.index_of(shared)
    out_tuples: List[Tuple] = []
    out_annots: List[int] = []
    for t, v in r1:
        key = tuple(t[i] for i in r1_shared_idx)
        for extra_vals, w in table.get(key, ()):
            out_tuples.append(t + extra_vals)
            out_annots.append(sr.mul(v, w))
    return AnnotatedRelation(out_attrs, out_tuples, out_annots, sr)


def semijoin(r1: AnnotatedRelation, r2: AnnotatedRelation) -> AnnotatedRelation:
    """Annotated semijoin ``r1 ⋉⊗ r2 = r1 ⋈⊗ pi^1_{F∩F'}(r2)``.

    Returns the tuples of ``r1`` that join with at least one nonzero tuple
    of ``r2``, annotations preserved (definition in Section 3.1).
    """
    shared = [a for a in r1.attributes if a in r2.attributes]
    return join(r1, support_projection(r2, shared))


def select(
    rel: AnnotatedRelation, predicate: Callable[[dict], bool]
) -> AnnotatedRelation:
    """Plain selection: keep tuples whose row-dict satisfies ``predicate``.

    This is option (1) of Section 7 (public selectivity): the relation
    shrinks and the protocol's input size drops accordingly.
    """
    keep = [
        i
        for i, t in enumerate(rel.tuples)
        if predicate(dict(zip(rel.attributes, t)))
    ]
    return AnnotatedRelation(
        rel.attributes,
        [rel.tuples[i] for i in keep],
        rel.annotations[keep] if keep else [],
        rel.semiring,
    )


def select_with_dummies(
    rel: AnnotatedRelation, predicate: Callable[[dict], bool]
) -> AnnotatedRelation:
    """Selection with *private* selectivity — option (2) of Section 7.

    Tuples failing the predicate are kept but zero-annotated, so the
    relation size (and hence the protocol's cost) is input-independent.
    """
    annots = rel.annotations.copy()
    for i, t in enumerate(rel.tuples):
        if not predicate(dict(zip(rel.attributes, t))):
            annots[i] = rel.semiring.zero
    return rel.replace(annotations=annots)


def rename(
    rel: AnnotatedRelation, mapping: Dict[str, str]
) -> AnnotatedRelation:
    """Rename attributes (``{old: new}``); unknown keys are rejected."""
    missing = [a for a in mapping if a not in rel.attributes]
    if missing:
        raise KeyError(f"attributes {missing} not in {rel.attributes}")
    return rel.replace(
        attributes=tuple(mapping.get(a, a) for a in rel.attributes)
    )


def union(
    r1: AnnotatedRelation, r2: AnnotatedRelation
) -> AnnotatedRelation:
    """K-relation union: annotations of common tuples are ⊕-combined
    (bag-union semantics under the counting semiring)."""
    if set(r1.attributes) != set(r2.attributes):
        raise ValueError(
            f"union needs identical attribute sets "
            f"({r1.attributes} vs {r2.attributes})"
        )
    if r1.semiring != r2.semiring:
        raise ValueError("cannot union relations over different semirings")
    perm = [r2.attributes.index(a) for a in r1.attributes]
    tuples = list(r1.tuples) + [
        tuple(t[i] for i in perm) for t in r2.tuples
    ]
    annots = list(r1.annotations) + list(r2.annotations)
    return AnnotatedRelation(r1.attributes, tuples, annots, r1.semiring)


def map_annotations(
    rel: AnnotatedRelation, fn: Callable[[dict, int], int]
) -> AnnotatedRelation:
    """Re-annotate every tuple via ``fn(row_dict, old_annotation)``.

    Used to install query-specific annotations, e.g. Q3's
    ``l_extendedprice * (1 - l_discount)``.
    """
    sr = rel.semiring
    new = np.asarray(
        [
            sr.normalize(int(fn(dict(zip(rel.attributes, t)), int(v))))
            for t, v in rel
        ],
        dtype=np.uint64,
    )
    if len(rel) == 0:
        new = np.zeros(0, dtype=np.uint64)
    return rel.replace(annotations=new)
