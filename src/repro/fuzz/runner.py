"""The differential fuzz runner and the obliviousness transcript audit.

Two machine-checked versions of the paper's headline guarantees:

* **Correctness** (:func:`run_differential`) — the secure protocol's
  revealed result must be semantically equal, as a K-relation, to the
  ``naive_join_aggregate`` oracle (join-then-aggregate by brute force)
  and to the plaintext Yannakakis executor, for every instance, under
  both scheduler dispatch policies ("program" and "stages").

* **Data-obliviousness** (:func:`audit_obliviousness`) — running the
  same query shape on a value-disjoint database of identical
  cardinalities must produce the *identical* transcript: same per-
  message ``(sender, n_bytes, label)`` fingerprint, hence identical
  per-section byte totals and identical round counts.  This is the
  paper's leakage claim (input sizes + the revealed ``|J*|`` only)
  turned into an executable assertion.

Failures are reported as :class:`FuzzFailure` records carrying the
instance's ``(master_seed, index)`` so any finding replays from two
integers; :func:`fuzz` drives whole campaigns and can persist failing
instances as corpus JSON for regression replay.

The ``fault`` hook deliberately breaks the protocol — used by tests
and ``repro fuzz --inject-fault`` to prove the detectors actually have
teeth.  Faults are specified as a replayable
:class:`repro.runtime.faults.FaultPlan`: semantic faults (perturb one
input share) must be caught by the differential oracle, channel faults
(corrupt/truncate/drop/duplicate/reorder/hang/crash, injected by the
session layer) must surface as a typed
:class:`~repro.runtime.aborts.ProtocolAbort` — reported as failure
kind ``"abort"`` and persisted, fault spec included, in the failure
file.  Fuzz runs disable checkpoint retries (one attempt) so detection
itself is what gets tested; resilience under retries is the chaos
harness's job (``repro chaos``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.protocol import secure_yannakakis
from ..core.relation import SecureRelation
from ..mpc.context import Context, Mode
from ..mpc.engine import Engine
from ..mpc.params import SecurityParams
from ..query.planner import choose_plan, route_backends
from ..runtime.aborts import ProtocolAbort
from ..runtime.faults import FaultPlan
from ..runtime.faults import perturb_share as _perturb_share
from ..runtime.session import enable_session
from ..runtime.supervisor import RetryPolicy
from ..relalg.relation import AnnotatedRelation
from ..yannakakis.naive import naive_join_aggregate
from ..yannakakis.plain import execute_plan
from ..yannakakis.plan import YannakakisPlan, build_two_phase_plan
from .generator import (
    TINY_CONFIG,
    GeneratorConfig,
    QueryInstance,
    generate_instance,
    value_disjoint_twin,
)

__all__ = [
    "FuzzFailure",
    "FuzzReport",
    "FUZZ_BACKENDS",
    "POLICIES",
    "run_differential",
    "audit_obliviousness",
    "audit_leakage",
    "check_instance",
    "fuzz",
    "perturb_one_share",
    "save_failure",
    "replay_file",
]

POLICIES = ("program", "stages")

#: Join back-ends the fuzzer can drive; "both" runs every check under
#: each concrete back-end (the cross-protocol differential oracle:
#: both must agree with the plaintext oracle, hence with each other,
#: and each must pass the obliviousness audit independently).
FUZZ_BACKENDS = ("yannakakis", "linear", "auto", "both")

#: Engine OT group size for fuzzing (smaller than the 2048-bit
#: production default; REAL-mode iterations are per-bit OTs).
FUZZ_GROUP_BITS = 1536

#: A fault is either a :class:`FaultPlan` (the replayable form) or a
#: legacy ``(engine, inputs) -> None`` callable hook.
Fault = Union[FaultPlan, Callable[..., None]]


@dataclass
class FuzzFailure:
    """One confirmed divergence, replayable from the instance seed."""

    kind: str  # "mismatch" | "transcript" | "leakage" | "crash" | "abort"
    seed: Tuple[int, int]
    detail: str
    policy: Optional[str] = None
    mode: str = "simulated"
    #: Join back-end policy the failing run used.
    backend: str = "yannakakis"
    instance: Optional[QueryInstance] = None
    #: Exception class name for ``kind in ("crash", "abort")``
    #: (persisted in the failure file so crash classes can be triaged
    #: without replaying).
    exc_type: Optional[str] = None
    #: The injected fault plan (``FaultPlan.to_json()``), when the run
    #: was deliberately faulted — persisted so the failure file replays
    #: the identical fault.
    fault: Optional[List[Dict[str, Any]]] = None

    def replay_hint(self) -> str:
        master, index = self.seed
        return (
            f"repro fuzz --seed {master} --start {index} --iterations 1"
        )

    def __str__(self) -> str:
        where = f" policy={self.policy}" if self.policy else ""
        if self.backend != "yannakakis":
            where += f" backend={self.backend}"
        return (
            f"[{self.kind}] seed={list(self.seed)} mode={self.mode}"
            f"{where}: {self.detail}  (replay: {self.replay_hint()})"
        )


@dataclass
class FuzzReport:
    """Summary of one fuzz campaign."""

    iterations: int = 0
    real_iterations: int = 0
    audits: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"{status}: {self.iterations} instances "
            f"({self.real_iterations} REAL-mode), "
            f"{self.audits} obliviousness audits, "
            f"{self.seconds:.1f}s"
        )


# ----------------------------------------------------------------------
# single-instance checks
# ----------------------------------------------------------------------


def _plan_for(instance: QueryInstance) -> YannakakisPlan:
    plan = choose_plan(
        instance.hypergraph(),
        instance.output,
        instance.owners,
        instance.sizes(),
    )
    if instance.two_phase:
        plan = build_two_phase_plan(plan.tree, plan.output)
    return plan


def _secure_inputs(
    instance: QueryInstance,
) -> Dict[str, SecureRelation]:
    return {
        name: SecureRelation.from_annotated(instance.owners[name], rel)
        for name, rel in instance.relations.items()
    }


def perturb_one_share(
    engine: Engine, inputs: Dict[str, SecureRelation]
) -> None:
    """Legacy callable form of the semantic fault; the implementation
    lives in :func:`repro.runtime.faults.perturb_share` (the
    ``perturb_share`` fault kind of a :class:`FaultPlan`)."""
    _perturb_share(engine, inputs)


def _run_secure(
    instance: QueryInstance,
    plan: YannakakisPlan,
    mode: Mode,
    policy: str,
    engine_seed: int = 7,
    fault: Optional[Fault] = None,
    backend: str = "yannakakis",
) -> Tuple[AnnotatedRelation, Context]:
    ctx = Context(
        mode, SecurityParams(ell=instance.ell), seed=engine_seed
    )
    engine = Engine(ctx, FUZZ_GROUP_BITS, exec_policy=policy)
    backends = route_backends(
        plan, instance.sizes(), instance.owners, backend=backend
    )
    inputs = _secure_inputs(instance)
    if isinstance(fault, FaultPlan):
        # Replayable path: a fresh (un-fired) copy per run, injected by
        # the session layer.  One attempt only — the fuzzer tests
        # *detection*; retry resilience is the chaos harness's job.
        plan_copy = fault.fresh()
        session = enable_session(ctx, plan_copy, seed=engine_seed)
        session.retry_policy = RetryPolicy(max_attempts=1)
        for _ in plan_copy.input_faults():
            _perturb_share(engine, inputs)
    elif fault is not None:
        fault(engine, inputs)
    result, _ = secure_yannakakis(engine, inputs, plan, backends=backends)
    if ctx.session is not None:
        ctx.session.finish()
    return result, ctx


def _fault_json(
    fault: Optional[Fault],
) -> Optional[List[Dict[str, Any]]]:
    return fault.to_json() if isinstance(fault, FaultPlan) else None


def run_differential(
    instance: QueryInstance,
    mode: Mode = Mode.SIMULATED,
    policies: Sequence[str] = POLICIES,
    fault: Optional[Fault] = None,
    backend: str = "yannakakis",
) -> List[FuzzFailure]:
    """Differential check of one instance: oracle vs plaintext plan vs
    the secure protocol under each scheduler policy, with each node
    routed by ``backend`` ("yannakakis" | "linear" | "auto")."""
    failures: List[FuzzFailure] = []
    oracle = naive_join_aggregate(
        instance.relations, list(instance.output)
    )
    try:
        plan = _plan_for(instance)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:  # pragma: no cover - generator guarantees
        return [
            FuzzFailure(
                "crash", instance.seed,
                f"planner failed: {exc!r}", mode=mode.value,
                instance=instance, exc_type=type(exc).__name__,
            )
        ]
    plain = execute_plan(plan, instance.relations).nonzero()
    if not plain.semantically_equal(oracle):
        failures.append(
            FuzzFailure(
                "mismatch", instance.seed,
                "plaintext Yannakakis != naive oracle "
                f"({plain.to_dict()} vs {oracle.to_dict()})",
                policy="plain", mode=mode.value, instance=instance,
            )
        )
    for policy in policies:
        try:
            result, _ = _run_secure(
                instance, plan, mode, policy, fault=fault,
                backend=backend,
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except ProtocolAbort as abort:
            # The session layer detected an injected (or genuine)
            # channel fault and failed closed — distinct from "crash"
            # so triage can tell a clean abort from a protocol bug.
            failures.append(
                FuzzFailure(
                    "abort", instance.seed,
                    f"secure run aborted: {abort}",
                    policy=policy, mode=mode.value, backend=backend,
                    instance=instance,
                    exc_type=type(abort).__name__,
                    fault=_fault_json(fault),
                )
            )
            continue
        except Exception as exc:
            failures.append(
                FuzzFailure(
                    "crash", instance.seed,
                    f"secure run raised {exc!r}",
                    policy=policy, mode=mode.value, backend=backend,
                    instance=instance,
                    exc_type=type(exc).__name__,
                    fault=_fault_json(fault),
                )
            )
            continue
        if not result.semantically_equal(oracle):
            failures.append(
                FuzzFailure(
                    "mismatch", instance.seed,
                    f"secure({policy}) != oracle "
                    f"({result.to_dict()} vs {oracle.to_dict()})",
                    policy=policy, mode=mode.value, backend=backend,
                    instance=instance,
                    fault=_fault_json(fault),
                )
            )
    return failures


def audit_obliviousness(
    instance: QueryInstance,
    mode: Mode = Mode.SIMULATED,
    policy: str = "program",
    twin_seed: int = 1,
    backend: str = "yannakakis",
) -> List[FuzzFailure]:
    """Run ``instance`` and its value-disjoint twin; the transcripts must
    agree on every observable: per-message fingerprints (sender, size,
    label), per-section byte totals, and round counts.

    The twin has the same relation sizes and plan, so it routes to the
    same per-node back-ends under any policy including "auto" — the
    audit therefore checks each back-end's obliviousness, never mixes
    them across twins."""
    plan = _plan_for(instance)
    twin = value_disjoint_twin(instance, twin_seed)
    _, ctx_a = _run_secure(instance, plan, mode, policy, backend=backend)
    _, ctx_b = _run_secure(twin, plan, mode, policy, backend=backend)
    ta, tb = ctx_a.transcript, ctx_b.transcript
    failures: List[FuzzFailure] = []

    def fail(detail: str) -> None:
        failures.append(
            FuzzFailure(
                "transcript", instance.seed, detail,
                policy=policy, mode=mode.value, backend=backend,
                instance=instance,
            )
        )

    if ta.bytes_by_section() != tb.bytes_by_section():
        fail(
            "per-section bytes differ across value-disjoint twins: "
            f"{ta.bytes_by_section()} vs {tb.bytes_by_section()}"
        )
    if ta.rounds != tb.rounds or (
        ta.rounds_by_section() != tb.rounds_by_section()
    ):
        fail(
            "round structure differs across value-disjoint twins: "
            f"{ta.rounds}/{ta.rounds_by_section()} vs "
            f"{tb.rounds}/{tb.rounds_by_section()}"
        )
    if not failures and ta.fingerprint() != tb.fingerprint():
        # Byte- and round-aggregates agree but the message streams
        # differ — report the first diverging message.
        fa, fb = ta.fingerprint(), tb.fingerprint()
        for i, (ma, mb) in enumerate(zip(fa, fb)):
            if ma != mb:
                fail(
                    f"message {i} differs across value-disjoint twins: "
                    f"{ma} vs {mb}"
                )
                break
        else:
            fail(
                f"message counts differ: {len(fa)} vs {len(fb)}"
            )
    return failures


#: What each concrete back-end's routed plan may leak, per
#: docs/BACKENDS.md.  "auto" mixes the two, so it is bounded by their
#: union; single-owner instances legitimately dispatch nothing and
#: summarise ``{}`` under every back-end.
_LEAKAGE_MODELS: Dict[str, frozenset] = {
    "yannakakis": frozenset(),
    "linear": frozenset({"join_pattern:parent"}),
    "auto": frozenset({"join_pattern:parent"}),
}


def audit_leakage(
    instance: QueryInstance,
    backend: str = "yannakakis",
) -> List[FuzzFailure]:
    """Statically audit the instance's routed plan against the
    back-end's documented leakage model (failure kind ``"leakage"``).

    This is the plan-audit twin of the transcript audit: the composed
    :func:`~repro.exec.audit.audit_routes` summary of the route the
    secure run would execute must stay within what docs/BACKENDS.md
    promises for that back-end — an all-``yannakakis`` route must
    summarise exactly ``{}``; any route may at most add the linear
    back-end's ``join_pattern:parent``."""
    from ..exec.audit import audit_routes

    plan = _plan_for(instance)
    routes = route_backends(
        plan, instance.sizes(), instance.owners, backend=backend
    )
    report = audit_routes(plan, routes, dict(instance.owners))
    allowed = _LEAKAGE_MODELS[backend]
    failures: List[FuzzFailure] = []
    problems = report.violations(allowed)
    if backend == "yannakakis" and report.summary:
        problems.append(
            "yannakakis route must be leakage-free but summarises "
            f"{sorted(report.summary)}"
        )
    for detail in problems:
        failures.append(
            FuzzFailure(
                "leakage", instance.seed, detail,
                backend=backend, instance=instance,
            )
        )
    return failures


def check_instance(
    instance: QueryInstance,
    mode: Mode = Mode.SIMULATED,
    audit: bool = True,
    fault: Optional[Fault] = None,
    backend: str = "yannakakis",
) -> List[FuzzFailure]:
    """Everything the fuzzer asserts about one instance.

    ``backend="both"`` is the cross-protocol differential oracle: the
    full differential check and obliviousness audit run once per
    concrete back-end.  Each back-end's revealed result must equal the
    plaintext oracle — hence the two back-ends must agree with each
    other — and each back-end's twin transcripts must be identical
    independently (the transcripts legitimately differ *between*
    back-ends; obliviousness is a per-protocol property).  Each
    back-end's routed plan is also statically audited
    (:func:`audit_leakage`) against its documented leakage model."""
    if backend not in FUZZ_BACKENDS:
        raise ValueError(
            f"unknown fuzz back-end {backend!r}; "
            f"choose from {FUZZ_BACKENDS}"
        )
    backends = (
        ("yannakakis", "linear") if backend == "both" else (backend,)
    )
    failures: List[FuzzFailure] = []
    for b in backends:
        failures += run_differential(
            instance, mode=mode, fault=fault, backend=b
        )
        if audit and fault is None:
            failures += audit_obliviousness(instance, mode=mode, backend=b)
            failures += audit_leakage(instance, backend=b)
    return failures


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------


def _refails(
    failure: FuzzFailure, fault: Optional[Fault]
) -> Callable[[QueryInstance], bool]:
    """A predicate for :func:`minimize_instance`: does a shrunk instance
    still exhibit the same kind of failure?"""

    def check(candidate: QueryInstance) -> bool:
        if failure.kind == "transcript":
            found = audit_obliviousness(candidate, backend=failure.backend)
        else:
            found = run_differential(
                candidate, fault=fault, backend=failure.backend
            )
        return any(f.kind == failure.kind for f in found)

    return check


def fuzz(
    seed: int,
    iterations: int,
    start: int = 0,
    config: GeneratorConfig = GeneratorConfig(),
    real_every: int = 10,
    audit: bool = True,
    fault: Optional[Fault] = None,
    max_failures: int = 10,
    on_progress: Optional[Callable[[int, "FuzzReport"], None]] = None,
    save_failures_to: Optional[str] = None,
    backend: str = "yannakakis",
) -> FuzzReport:
    """A fuzz campaign: instances ``start .. start+iterations-1`` of the
    ``seed`` stream.  Every instance runs the SIMULATED differential
    check under both policies plus the obliviousness audit; every
    ``real_every``-th instance additionally runs a *tiny* REAL-mode
    differential (0 disables REAL sampling).  Stops early after
    ``max_failures`` findings.  ``backend`` selects the join back-end
    ("both" cross-checks the two protocols on every instance)."""
    report = FuzzReport()
    t0 = time.perf_counter()
    real_backends = (
        ("yannakakis", "linear") if backend == "both" else (backend,)
    )
    for i in range(start, start + iterations):
        instance = generate_instance(seed, i, config)
        found = check_instance(
            instance, mode=Mode.SIMULATED, audit=audit, fault=fault,
            backend=backend,
        )
        report.iterations += 1
        if audit and fault is None:
            report.audits += 1
        if real_every and (i - start) % real_every == 0:
            tiny = generate_instance(seed, i, TINY_CONFIG)
            for b in real_backends:
                found += run_differential(
                    tiny, mode=Mode.REAL, policies=("program",),
                    fault=fault, backend=b,
                )
            report.real_iterations += 1
        for failure in found:
            if (
                failure.instance is not None
                and failure.mode == Mode.SIMULATED.value
            ):
                failure.instance = minimize_instance(
                    failure.instance, _refails(failure, fault)
                )
            report.failures.append(failure)
            if save_failures_to is not None:
                save_failure(failure, save_failures_to)
        if on_progress is not None:
            on_progress(i, report)
        if len(report.failures) >= max_failures:
            break
    report.seconds = time.perf_counter() - t0
    return report


# ----------------------------------------------------------------------
# minimisation, failure persistence + replay
# ----------------------------------------------------------------------


def minimize_instance(
    instance: QueryInstance,
    still_fails: Callable[[QueryInstance], bool],
    max_steps: int = 200,
) -> QueryInstance:
    """Greedy delta-debugging: repeatedly drop one tuple (annotation
    included) wherever the failure persists, keeping at least one tuple
    per relation.  Deterministic; ``max_steps`` bounds the work."""
    current = instance
    steps = 0
    shrunk = True
    while shrunk and steps < max_steps:
        shrunk = False
        for name in sorted(current.relations):
            rel = current.relations[name]
            i = 0
            while i < len(rel.tuples) and len(rel.tuples) > 1:
                if steps >= max_steps:
                    return current
                steps += 1
                candidate_rel = AnnotatedRelation(
                    rel.attributes,
                    rel.tuples[:i] + rel.tuples[i + 1 :],
                    np.delete(rel.annotations, i),
                    rel.semiring,
                )
                candidate = QueryInstance(
                    seed=current.seed,
                    relations={
                        **current.relations, name: candidate_rel
                    },
                    owners=dict(current.owners),
                    output=current.output,
                    two_phase=current.two_phase,
                    ell=current.ell,
                    note=current.note or "minimized",
                )
                try:
                    if still_fails(candidate):
                        current = candidate
                        rel = candidate_rel
                        shrunk = True
                        continue
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception:
                    # The check itself crashed on the candidate — a
                    # crash still reproduces the failure, so keep it.
                    current = candidate
                    rel = candidate_rel
                    shrunk = True
                    continue
                i += 1
    return current


def save_failure(failure: FuzzFailure, directory: str) -> Path:
    """Persist a failing instance as a replayable corpus JSON file."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    master, index = failure.seed
    name = f"fail_{failure.kind}_s{master}_i{index}.json"
    blob = {
        "failure": {
            "kind": failure.kind,
            "detail": failure.detail,
            "policy": failure.policy,
            "mode": failure.mode,
            "backend": failure.backend,
            "exc_type": failure.exc_type,
            "fault": failure.fault,
            "replay": failure.replay_hint(),
        },
    }
    if failure.instance is not None:
        blob["instance"] = failure.instance.to_json()
    out = path / name
    out.write_text(json.dumps(blob, indent=2) + "\n")
    return out


def replay_file(path: str, audit: bool = True) -> List[FuzzFailure]:
    """Re-check a saved instance file (corpus entry or failure repro).

    Accepts either a bare instance JSON (``QueryInstance.to_json``) or
    a failure file produced by :func:`save_failure`.  A persisted fault
    spec is re-applied, so a deliberately-faulted failure replays with
    the identical fault.  A persisted back-end (failure files, or a
    top-level ``"backend"`` key on a corpus entry) replays under that
    back-end; corpus entries without one replay under "both" so every
    seeded edge case exercises the cross-protocol oracle."""
    blob = json.loads(Path(path).read_text())
    instance = QueryInstance.from_json(blob.get("instance", blob))
    fault_blob = blob.get("failure", {}).get("fault")
    fault = (
        FaultPlan.from_json(fault_blob) if fault_blob else None
    )
    backend = blob.get("failure", {}).get(
        "backend", blob.get("backend", "both")
    )
    return check_instance(
        instance, audit=audit, fault=fault, backend=backend
    )
