"""Regression corpus: saved fuzz instances replayed on every test run.

``tests/corpus/`` holds one JSON file per instance — minimized failing
inputs from past fuzz campaigns plus hand-kept shape edge cases (empty
output, single-tuple relations, all-zero annotations, two-phase plan).
``repro fuzz --corpus <dir>`` and ``tests/test_fuzz.py`` replay every
file through the full differential + obliviousness check, so once an
instance has broken the pipeline it can never break it silently again.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Tuple

from .generator import QueryInstance

__all__ = ["default_corpus_dir", "iter_corpus", "save_instance"]


def default_corpus_dir() -> Path:
    """``tests/corpus`` relative to the repository root (next to the
    installed package's source tree when running from a checkout)."""
    return (
        Path(__file__).resolve().parent.parent.parent.parent
        / "tests"
        / "corpus"
    )


def iter_corpus(
    directory: str = None,
) -> Iterator[Tuple[Path, QueryInstance]]:
    """Yield ``(path, instance)`` for every corpus JSON file, sorted by
    name for deterministic replay order."""
    root = Path(directory) if directory else default_corpus_dir()
    if not root.is_dir():
        return
    for path in sorted(root.glob("*.json")):
        blob = json.loads(path.read_text())
        yield path, QueryInstance.from_json(blob.get("instance", blob))


def save_instance(
    instance: QueryInstance, directory: str, name: str
) -> Path:
    """Add an instance to the corpus under ``<name>.json``."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{name}.json"
    path.write_text(
        json.dumps(instance.to_json(), indent=2, sort_keys=True) + "\n"
    )
    return path
