"""Seeded generation of random free-connex join-aggregate instances.

The differential fuzzer needs a stream of *valid* inputs: acyclic join
queries with a rooted join tree on which the 3-phase plan compiles
(Section 3.2), together with random databases and ownership splits.
Rather than generating arbitrary hypergraphs and rejecting the cyclic
ones, instances are grown from a random tree:

* draw a random tree over 2..6 relations;
* give each tree edge one or two join attributes — either fresh, or
  (with some probability) an attribute the parent already carries, which
  extends that attribute's node set along a connected subtree and keeps
  the hypergraph alpha-acyclic by construction;
* give each relation up to two private attributes;
* draw the output attribute set from candidate subsets, keeping the
  first that passes :func:`repro.relalg.join_tree.is_free_connex`; two
  fallbacks always succeed — the full-aggregate output ``()`` and the
  attribute union of a connected subtree containing the tree root.

Databases use small key domains (so joins actually hit), annotations mix
SUM-style random weights with COUNT-style all-ones, and a configurable
fraction of zero annotations exercises the dummy-tuple paths.  The
default bit width is ``ell = 48`` so that no aggregate can wrap around
the ring modulus — a property :func:`value_disjoint_twin` relies on (see
below) and the TPC-H drivers also use for Q8/Q9.

Everything is driven by one :func:`numpy.random.default_rng` seeded from
``(master_seed, index)``, so any instance is reproducible from two
integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..mpc.context import ALICE, BOB
from ..query.builder import JoinAggregateQuery
from ..relalg.hypergraph import Hypergraph
from ..relalg.join_tree import is_free_connex
from ..relalg.relation import AnnotatedRelation
from ..relalg.semiring import IntegerRing

__all__ = [
    "GeneratorConfig",
    "TINY_CONFIG",
    "QueryInstance",
    "generate_instance",
    "value_disjoint_twin",
]

#: Offset applied by :func:`value_disjoint_twin`: far above any generated
#: key, far below ``2^31`` so the codec keeps 4-byte int slots.
TWIN_OFFSET = 1_000_003


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the instance generator (all ranges inclusive)."""

    min_relations: int = 2
    max_relations: int = 5
    max_arity: int = 3
    #: Extra non-join attributes per relation (0..this).
    max_private_attrs: int = 2
    #: Attribute values are drawn from ``0..key_range-1``.
    key_range: int = 4
    min_tuples: int = 1
    max_tuples: int = 6
    #: Nonzero annotations are drawn from ``1..max_annotation``.
    max_annotation: int = 9
    #: Probability that a tuple's annotation is zero (dummy-style).
    zero_annotation_prob: float = 0.25
    #: Probability of a COUNT query (all annotations = 1).
    count_query_prob: float = 0.25
    #: Probability an edge attribute is reused from the parent (makes
    #: attributes span >2 relations).
    reuse_attr_prob: float = 0.3
    #: Probability of compiling the original two-phase (semijoin-first)
    #: plan variant instead of the paper's reduce-first order.
    two_phase_prob: float = 0.15
    #: Ring bit width.  48 keeps every aggregate below the modulus for
    #: these ranges, which :func:`value_disjoint_twin` requires.
    ell: int = 48


#: Small instances for sampled REAL-mode runs (per-bit OTs are slow).
TINY_CONFIG = GeneratorConfig(
    max_relations=3,
    max_arity=2,
    max_private_attrs=1,
    max_tuples=4,
    key_range=3,
)


@dataclass
class QueryInstance:
    """One concrete fuzz instance: relations, owners, output, plan flags.

    Serialisable to plain JSON so failing instances can be kept as
    corpus files and replayed byte-for-byte by future versions even if
    the generator's drawing order changes.
    """

    seed: Tuple[int, int]
    relations: Dict[str, AnnotatedRelation]
    owners: Dict[str, str]
    output: Tuple[str, ...]
    two_phase: bool = False
    ell: int = 48
    note: str = ""

    # -- structure -------------------------------------------------------

    def hypergraph(self) -> Hypergraph:
        return Hypergraph(
            {n: r.attributes for n, r in self.relations.items()}
        )

    def query(self) -> JoinAggregateQuery:
        q = JoinAggregateQuery(output=self.output)
        for name, rel in self.relations.items():
            q.add_relation(name, rel, owner=self.owners[name])
        return q

    def sizes(self) -> Dict[str, int]:
        return {n: len(r) for n, r in self.relations.items()}

    def describe(self) -> str:
        parts = [
            f"{n}({','.join(r.attributes)})[{len(r)} @{self.owners[n]}]"
            for n, r in self.relations.items()
        ]
        plan = "two-phase" if self.two_phase else "reduce-first"
        return (
            f"seed={list(self.seed)} output={list(self.output)} "
            f"{plan} ell={self.ell}: " + " ".join(parts)
        )

    # -- serialisation ---------------------------------------------------

    def to_json(self) -> dict:
        return {
            "seed": list(self.seed),
            "ell": self.ell,
            "two_phase": self.two_phase,
            "output": list(self.output),
            "note": self.note,
            "relations": {
                name: {
                    "owner": self.owners[name],
                    "attributes": list(rel.attributes),
                    "tuples": [list(t) for t in rel.tuples],
                    "annotations": [int(v) for v in rel.annotations],
                }
                for name, rel in self.relations.items()
            },
        }

    @classmethod
    def from_json(cls, blob: dict) -> "QueryInstance":
        ring = IntegerRing(blob["ell"])
        relations: Dict[str, AnnotatedRelation] = {}
        owners: Dict[str, str] = {}
        for name, spec in blob["relations"].items():
            relations[name] = AnnotatedRelation(
                tuple(spec["attributes"]),
                [tuple(t) for t in spec["tuples"]],
                spec["annotations"],
                ring,
            )
            owners[name] = spec["owner"]
        return cls(
            seed=tuple(blob.get("seed", (0, 0))),
            relations=relations,
            owners=owners,
            output=tuple(blob["output"]),
            two_phase=bool(blob.get("two_phase", False)),
            ell=int(blob["ell"]),
            note=blob.get("note", ""),
        )


# ----------------------------------------------------------------------
# schema generation
# ----------------------------------------------------------------------


def _random_schema(
    rng: np.random.Generator, config: GeneratorConfig
) -> Tuple[Dict[str, List[str]], List[Optional[int]]]:
    """A random acyclic schema grown from a random tree.  Returns the
    per-relation attribute lists and the tree's parent array."""
    n_rel = int(
        rng.integers(config.min_relations, config.max_relations + 1)
    )
    parent: List[Optional[int]] = [None]
    for i in range(1, n_rel):
        parent.append(int(rng.integers(0, i)))

    attrs: List[List[str]] = [[] for _ in range(n_rel)]
    counter = 0

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"a{counter - 1}"

    attrs[0].append(fresh())
    for i in range(1, n_rel):
        p = parent[i]
        n_join = int(rng.integers(1, 3))  # 1 or 2 join attributes
        for _ in range(n_join):
            if len(attrs[i]) >= config.max_arity:
                break
            reusable = [a for a in attrs[p] if a not in attrs[i]]
            if reusable and rng.random() < config.reuse_attr_prob:
                a = reusable[int(rng.integers(0, len(reusable)))]
            else:
                a = fresh()
                if len(attrs[p]) < config.max_arity:
                    attrs[p].append(a)
                elif attrs[p]:
                    # Parent is full: reuse one of its attributes so the
                    # edge still shares something.
                    a = attrs[p][int(rng.integers(0, len(attrs[p])))]
                    if a in attrs[i]:
                        continue
            if a not in attrs[i]:
                attrs[i].append(a)
        if not set(attrs[i]) & set(attrs[p]):
            # Degenerate draw (parent full, all reuses collided): force
            # one genuinely shared attribute.
            shared = attrs[p][int(rng.integers(0, len(attrs[p])))]
            if shared not in attrs[i]:
                attrs[i].append(shared)
    for i in range(n_rel):
        n_priv = int(rng.integers(0, config.max_private_attrs + 1))
        while n_priv and len(attrs[i]) < config.max_arity:
            attrs[i].append(fresh())
            n_priv -= 1
    return {f"R{i}": attrs[i] for i in range(n_rel)}, parent


def _subtree_output(
    rng: np.random.Generator,
    schema: Dict[str, List[str]],
    parent: List[Optional[int]],
) -> Tuple[str, ...]:
    """The attribute union of a random connected subtree containing the
    tree root — always a free-connex output for this schema."""
    n_rel = len(parent)
    in_subtree = [False] * n_rel
    in_subtree[0] = True
    for i in range(1, n_rel):
        if in_subtree[parent[i]] and rng.random() < 0.5:
            in_subtree[i] = True
    out: List[str] = []
    for i in range(n_rel):
        if in_subtree[i]:
            for a in schema[f"R{i}"]:
                if a not in out:
                    out.append(a)
    return tuple(sorted(out))


def _draw_output(
    rng: np.random.Generator,
    schema: Dict[str, List[str]],
    parent: List[Optional[int]],
    hypergraph: Hypergraph,
) -> Tuple[str, ...]:
    """A free-connex output set: random subsets under rejection, then
    the guaranteed fallbacks (subtree union, full aggregate)."""
    all_attrs = sorted({a for attrs in schema.values() for a in attrs})
    for _ in range(8):
        k = int(rng.integers(0, len(all_attrs) + 1))
        if k == 0:
            return ()
        pick = rng.choice(len(all_attrs), size=k, replace=False)
        candidate = tuple(sorted(all_attrs[i] for i in pick))
        if is_free_connex(hypergraph, set(candidate)):
            return candidate
    if rng.random() < 0.5:
        return _subtree_output(rng, schema, parent)
    return ()


# ----------------------------------------------------------------------
# database + instance generation
# ----------------------------------------------------------------------


def _random_database(
    rng: np.random.Generator,
    schema: Dict[str, List[str]],
    config: GeneratorConfig,
) -> Dict[str, AnnotatedRelation]:
    ring = IntegerRing(config.ell)
    count_query = rng.random() < config.count_query_prob
    out: Dict[str, AnnotatedRelation] = {}
    for name, attrs in schema.items():
        n = int(rng.integers(config.min_tuples, config.max_tuples + 1))
        tuples = [
            tuple(
                int(v)
                for v in rng.integers(0, config.key_range, len(attrs))
            )
            for _ in range(n)
        ]
        if count_query:
            annots = [1] * n
        else:
            annots = [
                0
                if rng.random() < config.zero_annotation_prob
                else int(rng.integers(1, config.max_annotation + 1))
                for _ in range(n)
            ]
        out[name] = AnnotatedRelation(tuple(attrs), tuples, annots, ring)
    return out


def generate_instance(
    master_seed: int,
    index: int,
    config: GeneratorConfig = GeneratorConfig(),
) -> QueryInstance:
    """The ``index``-th instance of the ``master_seed`` stream."""
    rng = np.random.default_rng([master_seed, index])
    schema, parent = _random_schema(rng, config)
    hypergraph = Hypergraph(schema)
    output = _draw_output(rng, schema, parent, hypergraph)
    relations = _random_database(rng, schema, config)
    owners = {
        name: (ALICE if rng.random() < 0.5 else BOB) for name in schema
    }
    two_phase = rng.random() < config.two_phase_prob
    return QueryInstance(
        seed=(master_seed, index),
        relations=relations,
        owners=owners,
        output=output,
        two_phase=two_phase,
        ell=config.ell,
    )


def value_disjoint_twin(
    instance: QueryInstance, twin_seed: int = 1
) -> QueryInstance:
    """A database sharing *no* attribute value with ``instance`` but with
    identical public shape — the pair the obliviousness audit compares.

    The twin applies one injective per-attribute remap ``v -> v +
    TWIN_OFFSET + salt(attr)`` (consistent across relations, so the join
    structure — and hence the revealed ``|J*|``, the paper's allowed
    output-size leakage — is preserved exactly), and redraws every
    nonzero annotation as a fresh nonzero value.  Because generated
    annotations are small positives in a wide ring (no wrap-around),
    zero-ness of every intermediate aggregate is a function of the input
    zero pattern and the join structure alone, so the twin's transcript
    must match byte for byte; any divergence is an obliviousness bug.
    """
    rng = np.random.default_rng([TWIN_OFFSET, twin_seed, *instance.seed])
    attr_salt: Dict[str, int] = {}
    relations: Dict[str, AnnotatedRelation] = {}
    for name, rel in instance.relations.items():
        for a in rel.attributes:
            if a not in attr_salt:
                attr_salt[a] = int(rng.integers(0, 1000)) * 100
        remapped = [
            tuple(
                int(v) + TWIN_OFFSET + attr_salt[a]
                for v, a in zip(t, rel.attributes)
            )
            for t in rel.tuples
        ]
        annots = [
            0 if int(v) == 0 else int(rng.integers(1, 10))
            for v in rel.annotations
        ]
        relations[name] = AnnotatedRelation(
            rel.attributes, remapped, annots, rel.semiring
        )
    return QueryInstance(
        seed=instance.seed,
        relations=relations,
        owners=dict(instance.owners),
        output=instance.output,
        two_phase=instance.two_phase,
        ell=instance.ell,
        note=f"value-disjoint twin of {list(instance.seed)}",
    )
