"""Differential query fuzzer + data-obliviousness transcript auditor.

The randomized safety net behind the ROADMAP's "refactor freely"
stance: seeded random free-connex join-aggregate instances are executed
through the full secure pipeline (both scheduler policies, SIMULATED
plus sampled REAL mode) and compared against the plaintext oracles,
while a transcript auditor machine-checks the paper's obliviousness
claim on value-disjoint database twins.  See ``docs/TESTING.md``.
"""

from .corpus import default_corpus_dir, iter_corpus, save_instance
from .generator import (
    GeneratorConfig,
    QueryInstance,
    TINY_CONFIG,
    generate_instance,
    value_disjoint_twin,
)
from .runner import (
    FuzzFailure,
    FuzzReport,
    audit_leakage,
    audit_obliviousness,
    check_instance,
    fuzz,
    minimize_instance,
    perturb_one_share,
    replay_file,
    run_differential,
    save_failure,
)

__all__ = [
    "GeneratorConfig",
    "TINY_CONFIG",
    "QueryInstance",
    "generate_instance",
    "value_disjoint_twin",
    "FuzzFailure",
    "FuzzReport",
    "audit_leakage",
    "audit_obliviousness",
    "check_instance",
    "fuzz",
    "minimize_instance",
    "perturb_one_share",
    "replay_file",
    "run_differential",
    "save_failure",
    "default_corpus_dir",
    "iter_corpus",
    "save_instance",
]
