"""Plaintext Yannakakis: the modified 3-phase algorithm of Section 3.2."""

from .naive import full_join, naive_join_aggregate
from .plain import execute_plan, yannakakis
from .plan import (
    JoinStep,
    ReduceAggregate,
    ReduceFold,
    SemijoinStep,
    YannakakisPlan,
    build_plan,
    build_two_phase_plan,
)

__all__ = [
    "JoinStep",
    "ReduceAggregate",
    "ReduceFold",
    "SemijoinStep",
    "YannakakisPlan",
    "build_plan",
    "build_two_phase_plan",
    "execute_plan",
    "full_join",
    "naive_join_aggregate",
    "yannakakis",
]
