"""Naive join-then-aggregate evaluation.

Materialises the full annotated join (possibly a Cartesian product across
disconnected components) and then aggregates.  Exponentially worse than
Yannakakis on queries with large intermediate joins — it plays the role of
the unoptimised plan whose blow-up motivates the paper, and doubles as an
independent correctness oracle in tests.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..relalg.operators import aggregate, join
from ..relalg.relation import AnnotatedRelation

__all__ = ["naive_join_aggregate", "full_join"]


def full_join(relations: Dict[str, AnnotatedRelation]) -> AnnotatedRelation:
    """The annotated natural join of all relations, in a join order that
    prefers connected relations (to avoid needless Cartesian blow-up)."""
    if not relations:
        raise ValueError("need at least one relation")
    remaining = dict(relations)
    name, current = next(iter(remaining.items()))
    del remaining[name]
    while remaining:
        # Prefer a relation sharing attributes with the current result.
        pick = next(
            (
                n
                for n, r in remaining.items()
                if set(r.attributes) & set(current.attributes)
            ),
            next(iter(remaining)),
        )
        current = join(current, remaining.pop(pick))
    return current


def naive_join_aggregate(
    relations: Dict[str, AnnotatedRelation], output: Sequence[str]
) -> AnnotatedRelation:
    """``pi_output^(+)( ⋈⊗ relations )`` by brute force."""
    return aggregate(full_join(relations), output).nonzero()
