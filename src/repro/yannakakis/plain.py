"""Plaintext execution of the 3-phase Yannakakis plan.

This is both the non-private baseline (standing in for MySQL in the
paper's experiments) and the correctness oracle for the secure protocol:
both execute the identical :class:`~repro.yannakakis.plan.YannakakisPlan`.
"""

from __future__ import annotations

from types import ModuleType
from typing import Dict, Optional, Sequence

from ..relalg import operators as columnar_operators
from ..relalg.join_tree import JoinTree, find_free_connex_tree
from ..relalg.hypergraph import Hypergraph
from ..relalg.relation import AnnotatedRelation
from .plan import (
    ReduceAggregate,
    ReduceFold,
    YannakakisPlan,
    build_plan,
)

__all__ = ["execute_plan", "yannakakis"]


def execute_plan(
    plan: YannakakisPlan,
    relations: Dict[str, AnnotatedRelation],
    operators: Optional[ModuleType] = None,
) -> AnnotatedRelation:
    """Run the three phases on plaintext annotated relations and return the
    query result with attributes ordered as ``plan.output``.

    ``operators`` selects the relational-operator implementation: the
    default columnar :mod:`repro.relalg.operators`, or the retained
    tuple-path :mod:`repro.relalg._reference` (the differential-testing
    oracle and the "tuple path" side of the columnar benchmarks).
    """
    ops = operators if operators is not None else columnar_operators
    aggregate, join, semijoin = ops.aggregate, ops.join, ops.semijoin
    rels = dict(relations)
    missing = set(plan.tree.nodes) - set(rels)
    if missing:
        raise KeyError(f"missing input relations: {sorted(missing)}")

    def run_semijoins() -> None:
        for step in plan.semijoin_steps:
            rels[step.target] = semijoin(
                rels[step.target], rels[step.filter]
            )

    # The two-phase ablation order: semijoins on the unreduced tree.
    if plan.semijoin_first:
        run_semijoins()

    # Phase 1: reduce.
    for step in plan.reduce_steps:
        if isinstance(step, ReduceFold):
            folded = aggregate(rels[step.child], step.agg_attrs)
            rels[step.parent] = join(rels[step.parent], folded)
            del rels[step.child]
        elif isinstance(step, ReduceAggregate):
            rels[step.node] = aggregate(rels[step.node], step.attrs)
        else:  # pragma: no cover - plan only emits the two step types
            raise TypeError(f"unknown reduce step {step!r}")

    # Phase 2: semijoins (remove dangling tuples).
    if not plan.semijoin_first:
        run_semijoins()

    # Phase 3: full join.
    for step in plan.join_steps:
        rels[step.parent] = join(rels[step.parent], rels[step.child])
        del rels[step.child]

    result = rels[plan.root]
    # Reorder columns to the requested output order and drop zero groups.
    result = aggregate(result, plan.output)
    return result.nonzero()


def yannakakis(
    relations: Dict[str, AnnotatedRelation],
    output: Sequence[str],
    tree: Optional[JoinTree] = None,
) -> AnnotatedRelation:
    """Evaluate a free-connex join-aggregate query on plaintext relations.

    If ``tree`` is not supplied, a free-connex rooted join tree is searched
    for automatically; ``ValueError`` is raised when none exists.
    """
    if tree is None:
        hypergraph = Hypergraph(
            {name: rel.attributes for name, rel in relations.items()}
        )
        tree = find_free_connex_tree(hypergraph, output)
        if tree is None:
            raise ValueError(
                "query is not free-connex; no valid rooted join tree exists"
            )
    plan = build_plan(tree, output)
    return execute_plan(plan, relations)
