"""The 3-phase Yannakakis plan (Section 3.2, modified version).

The paper splits the classical two-phase Yannakakis algorithm into

1. **Reduce** — a bottom-up pass that removes all non-output attributes,
   folding each fully-processed node into its parent via
   ``R_Fp <- R_Fp ⋈⊗ pi_F'^(+)(R_F)`` when ``F' ⊆ Fp``, or stopping with a
   local aggregation ``R_F <- pi_F'^(+)(R_F)`` when ``F'`` has attributes
   outside the parent (all of which are output attributes, by
   free-connexity).
2. **Semijoin** — a bottom-up then top-down pass of annotated semijoins
   that removes (secure version: zero-annotates) dangling tuples.
3. **Full join** — a bottom-up pass of annotated joins; the root relation
   is then exactly the query result.

Both the plaintext executor and the secure protocol run the *same* plan,
which is what makes the plaintext algorithm a correctness oracle for the
secure one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..relalg.join_tree import JoinTree

__all__ = [
    "ReduceFold",
    "ReduceAggregate",
    "SemijoinStep",
    "JoinStep",
    "YannakakisPlan",
    "build_plan",
]


@dataclass(frozen=True)
class ReduceFold:
    """``R_parent <- R_parent ⋈⊗ pi_agg_attrs^(+)(R_child)``; child removed."""

    child: str
    parent: str
    agg_attrs: Tuple[str, ...]


@dataclass(frozen=True)
class ReduceAggregate:
    """``R_node <- pi_attrs^(+)(R_node)``; node stays with new attributes."""

    node: str
    attrs: Tuple[str, ...]


@dataclass(frozen=True)
class SemijoinStep:
    """``R_target <- R_target ⋉⊗ R_filter``."""

    target: str
    filter: str


@dataclass(frozen=True)
class JoinStep:
    """``R_parent <- R_parent ⋈⊗ R_child``; child removed."""

    child: str
    parent: str


@dataclass
class YannakakisPlan:
    """A fully-ordered 3-phase plan over a rooted join tree.

    ``semijoin_first`` marks the *original* two-phase Yannakakis order
    (semijoins on the unreduced relations, then reduce, then full join)
    — kept as an ablation of the paper's Section 6.4 remark that
    semijoining before reducing "would incur unnecessary computation".
    """

    tree: JoinTree
    output: Tuple[str, ...]
    reduce_steps: List[object]
    #: Attribute sets of the nodes that survive the reduce phase.
    reduced_attrs: Dict[str, Tuple[str, ...]]
    #: Parent map of the reduced tree (root maps to ``None``).
    reduced_parent: Dict[str, Optional[str]]
    semijoin_steps: List[SemijoinStep]
    join_steps: List[JoinStep]
    root: str = ""
    semijoin_first: bool = False

    def __post_init__(self):
        if not self.root:
            roots = [n for n, p in self.reduced_parent.items() if p is None]
            if len(roots) != 1:
                raise ValueError(
                    "reduced_parent must describe a single-rooted tree; "
                    f"found roots {roots!r}"
                )
            self.root = roots[0]

    @property
    def reduced_nodes(self) -> List[str]:
        return list(self.reduced_attrs)

    def describe(self) -> str:
        """Human-readable plan listing, one step per line."""
        lines = [f"root: {self.tree.root}  output: {list(self.output)}"]
        lines.append("-- reduce --")
        for s in self.reduce_steps:
            if isinstance(s, ReduceFold):
                lines.append(
                    f"{s.parent} <- {s.parent} JOIN agg_{list(s.agg_attrs)}({s.child})"
                )
            else:
                lines.append(f"{s.node} <- agg_{list(s.attrs)}({s.node})")
        lines.append("-- semijoin --")
        for s in self.semijoin_steps:
            lines.append(f"{s.target} <- {s.target} SEMIJOIN {s.filter}")
        lines.append("-- full join --")
        for s in self.join_steps:
            lines.append(f"{s.parent} <- {s.parent} JOIN {s.child}")
        return "\n".join(lines)


def build_plan(tree: JoinTree, output: Sequence[str]) -> YannakakisPlan:
    """Compile a rooted free-connex join tree into a 3-phase plan.

    Raises ``ValueError`` if the rooted tree violates the free-connex
    condition — callers should obtain the tree from
    :func:`repro.relalg.find_free_connex_tree`.
    """
    output_set = set(output)

    # --- Phase 1: reduce ------------------------------------------------
    # Bottom-up over the rooted tree.  A childless node folds into its
    # parent when its needed attributes fit there, else it stops with a
    # local aggregation.  A node with remaining (stopped) children — and
    # the root — may still aggregate away attributes needed by no other
    # remaining relation and not in the output: this is the standard
    # aggregation push-down, valid by semiring distributivity, and it
    # extends the paper's reduce phase to Cartesian-product components.
    reduce_steps: List[object] = []
    attrs: Dict[str, FrozenSet[str]] = {
        n: tree.attrs(n) for n in tree.nodes
    }
    removed: set = set()
    remaining_children: Dict[str, set] = {
        n: set(tree.children[n]) for n in tree.nodes
    }

    for node in tree.bottom_up():
        parent = tree.parent[node]
        parent_attrs = attrs[parent] if parent is not None else frozenset()
        if not remaining_children[node] and parent is not None:
            f_prime = (output_set | parent_attrs) & attrs[node]
            if f_prime <= parent_attrs:
                reduce_steps.append(
                    ReduceFold(node, parent, tuple(sorted(f_prime)))
                )
                removed.add(node)
                remaining_children[parent].discard(node)
                continue
        needed = output_set | parent_attrs
        for child in remaining_children[node]:
            needed |= attrs[child]
        new_attrs = frozenset(needed & attrs[node])
        if new_attrs != attrs[node]:
            reduce_steps.append(
                ReduceAggregate(node, tuple(sorted(new_attrs)))
            )
            attrs[node] = new_attrs

    reduced = [n for n in tree.nodes if n not in removed]
    for n in reduced:
        if not attrs[n] <= output_set:
            raise ValueError(
                f"reduce leaves non-output attributes in {n}: "
                f"{set(attrs[n]) - output_set} — this rooted join tree "
                "does not witness the free-connex property"
            )
    reduced_attrs = {n: tuple(sorted(attrs[n])) for n in reduced}
    reduced_parent: Dict[str, Optional[str]] = {}
    for n in reduced:
        p = tree.parent[n]
        while p is not None and p in removed:  # cannot happen, but be safe
            p = tree.parent[p]
        reduced_parent[n] = p

    # --- Phase 2: semijoins ----------------------------------------------
    # Bottom-up: parent <- parent ⋉ child; top-down: child <- child ⋉ parent.
    reduced_set = set(reduced)
    bottom_up = [n for n in tree.bottom_up() if n in reduced_set]
    semijoin_steps: List[SemijoinStep] = []
    for n in bottom_up:
        p = reduced_parent[n]
        if p is not None:
            semijoin_steps.append(SemijoinStep(target=p, filter=n))
    for n in reversed(bottom_up):
        p = reduced_parent[n]
        if p is not None:
            semijoin_steps.append(SemijoinStep(target=n, filter=p))

    # --- Phase 3: full join ------------------------------------------------
    join_steps = [
        JoinStep(child=n, parent=reduced_parent[n])
        for n in bottom_up
        if reduced_parent[n] is not None
    ]

    return YannakakisPlan(
        tree=tree,
        output=tuple(output),
        reduce_steps=reduce_steps,
        reduced_attrs=reduced_attrs,
        reduced_parent=reduced_parent,
        semijoin_steps=semijoin_steps,
        join_steps=join_steps,
    )


def build_two_phase_plan(
    tree: JoinTree, output: Sequence[str]
) -> YannakakisPlan:
    """The ORIGINAL Yannakakis order: two semijoin passes over the
    *unreduced* tree first, then the reduce folds, then the full join.

    Semantically equivalent to :func:`build_plan`, but the semijoins run
    on relations whose non-output attributes have not been aggregated
    away — the extra cost the paper's Section 6.4 remark warns about.
    Exposed for the ablation benchmark only.
    """
    base = build_plan(tree, output)
    semijoins: List[SemijoinStep] = []
    order = tree.bottom_up()
    for n in order:
        p = tree.parent[n]
        if p is not None:
            semijoins.append(SemijoinStep(target=p, filter=n))
    for n in reversed(order):
        p = tree.parent[n]
        if p is not None:
            semijoins.append(SemijoinStep(target=n, filter=p))
    return YannakakisPlan(
        tree=tree,
        output=base.output,
        reduce_steps=base.reduce_steps,
        reduced_attrs=base.reduced_attrs,
        reduced_parent=base.reduced_parent,
        semijoin_steps=semijoins,
        join_steps=base.join_steps,
        semijoin_first=True,
    )
