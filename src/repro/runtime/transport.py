"""Real two-party transport: PR-5 frames over a TCP socket.

The whole pipeline is a deterministic orchestration that computes both
parties' views from one seed, and the metered channel records message
*metadata* (sender, size, label), never payloads.  Two OS processes
therefore execute in **lockstep mirror** mode: each runs the full
deterministic computation, and the transport exchanges the frame
*headers* — a process transmits the frames whose sender is its own
role and, for every peer-sender frame, blocks until the peer's copy
arrives and verifies it byte-for-byte against the locally mirrored
expectation (sequence number, declared size, label, SHA-256 header
digest).  Any disagreement is a ``peer-divergence``
:class:`~repro.runtime.aborts.TransportAbort` — the cross-process
analogue of the session layer's checksum check.

Transport control traffic — HELLO handshakes, ACKs, heartbeats, BYE —
is deliberately **never metered**: the transcript of a two-process run
stays byte-identical to the solo in-process run (the acceptance test
of ``repro net``).

Reliability model
-----------------

* **Handshake** — on every (re)connect both sides exchange HELLO
  records carrying the session id, the role, and the per-sender
  *expected* frame counters (next sequence number wanted).  A session
  or role mismatch is ``handshake-failed``.
* **Outbox replay** — transmitted frames stay in a bounded outbox
  until the peer acknowledges them *durably*; ACKs are sent only at
  checkpoint commits (see :class:`~repro.runtime.durable.DurableStore`),
  so after any crash the outbox still covers everything since the
  peer's last committed checkpoint.  After a handshake the sender
  replays every outbox frame at or past the peer's expected counter;
  the receiver drops already-seen sequence numbers.
* **Reconnect** — connection loss inside an exchange triggers
  transparent re-establishment under a capped exponential backoff with
  deterministic jitter (seeded RNG, never wall-clock entropy — the
  schedule itself is replayable).  Exhausting the budget raises
  ``connection-lost``; recovery from that point is process restart +
  ``repro net --resume``, not an in-node retry, which would
  desynchronise the mirrors.
* **Heartbeats** — a daemon thread emits unmetered keepalives so a
  peer that is busy computing a long node is distinguishable from a
  dead one; only a *silent* connection (no bytes at all within the
  idle timeout) is torn down and reconnected.

See ``docs/ROBUSTNESS.md`` for the state machine.
"""

from __future__ import annotations

import json
import os
import select
import signal
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from ..mpc.transcript import ALICE, BOB, other_party
from .aborts import TransportAbort
from .framing import Frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import Session

__all__ = [
    "WIRE_MAGIC",
    "ReconnectPolicy",
    "ProcessFaults",
    "SocketTransport",
    "free_port",
]

#: Wire magic for transport records ("Secure Yannakakis Wire v1").
WIRE_MAGIC = b"SYW1"

_MSG_HEADER = struct.Struct("<4sBI")

_MSG_HELLO = 1
_MSG_FRAME = 2
_MSG_ACK = 3
_MSG_HEARTBEAT = 4
_MSG_BYE = 5

#: Domain-separation constant for reconnect-jitter RNG subkeys.
_RECONNECT_STREAM = 0x53594E54  # "SYNT"


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (for tests and the chaos harness)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
        s.bind((host, 0))
        return int(s.getsockname()[1])


@dataclass(frozen=True)
class ReconnectPolicy:
    """Capped exponential backoff with deterministic jitter.

    The jitter is drawn from a seeded RNG keyed on ``(stream, seed,
    reconnect index)`` — never wall-clock or :mod:`random` — so a
    party's reconnect schedule is a pure function of its seed and its
    reconnect count, replayable across runs (OBL003-clean)."""

    max_attempts: int = 10
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter_frac: float = 0.25
    attempt_timeout_s: float = 2.0

    def schedule(self, seed: int, reconnect_index: int) -> List[float]:
        """Pre-retry delays for one reconnect episode (length
        ``max_attempts``; entry *i* precedes attempt *i*)."""
        rng = np.random.default_rng(
            [_RECONNECT_STREAM, int(seed), int(reconnect_index)]
        )
        delays = []
        for attempt in range(self.max_attempts):
            base = min(
                self.base_delay_s * (2 ** attempt), self.max_delay_s
            )
            delays.append(base * (1.0 + self.jitter_frac * float(rng.random())))
        return delays


@dataclass
class ProcessFaults:
    """Process-level fault injection for the chaos harness.

    Unlike PR-5's in-session :class:`~repro.runtime.faults.FaultPlan`
    (which perturbs *frames*), these faults hit the OS process and the
    socket: SIGKILL at a plan node or wire exchange, a forced
    connection drop, a stall, or a partition (drop + refuse to talk
    for a while).  Each fires once."""

    kill_at_node: Optional[int] = None
    kill_at_wire: Optional[int] = None
    drop_at_wire: Optional[int] = None
    stall_at_wire: Optional[int] = None
    stall_ms: int = 0
    partition_at_wire: Optional[int] = None
    partition_ms: int = 0
    _fired: Set[str] = field(default_factory=set)

    def at_node(self, node_id: int) -> None:
        if (
            self.kill_at_node is not None
            and node_id == self.kill_at_node
            and "kill_node" not in self._fired
        ):
            self._fired.add("kill_node")
            os.kill(os.getpid(), signal.SIGKILL)

    def at_wire(self, wire: int, transport: "SocketTransport") -> None:
        if (
            self.kill_at_wire is not None
            and wire == self.kill_at_wire
            and "kill_wire" not in self._fired
        ):
            self._fired.add("kill_wire")
            os.kill(os.getpid(), signal.SIGKILL)
        if (
            self.drop_at_wire is not None
            and wire == self.drop_at_wire
            and "drop" not in self._fired
        ):
            self._fired.add("drop")
            transport.force_drop()
        if (
            self.stall_at_wire is not None
            and wire == self.stall_at_wire
            and "stall" not in self._fired
        ):
            self._fired.add("stall")
            time.sleep(self.stall_ms / 1000.0)
        if (
            self.partition_at_wire is not None
            and wire == self.partition_at_wire
            and "partition" not in self._fired
        ):
            self._fired.add("partition")
            transport.force_drop()
            time.sleep(self.partition_ms / 1000.0)


def _encode(msg_type: int, payload: bytes) -> bytes:
    return _MSG_HEADER.pack(WIRE_MAGIC, msg_type, len(payload)) + payload


def _frame_payload(frame: Frame) -> bytes:
    return json.dumps(
        {
            "seq": frame.seq,
            "sender": frame.sender,
            "n_bytes": frame.n_bytes,
            "length": frame.length,
            "label": frame.label,
            "digest": frame.digest.hex(),
        },
        sort_keys=True,
    ).encode()


def _frame_from_payload(payload: bytes) -> Frame:
    d = json.loads(payload.decode())
    return Frame(
        seq=int(d["seq"]),
        sender=str(d["sender"]),
        n_bytes=int(d["n_bytes"]),
        length=int(d["length"]),
        label=str(d["label"]),
        digest=bytes.fromhex(d["digest"]),
    )


class SocketTransport:
    """One party's end of the two-process frame exchange.

    Attach to a session (``session.wire = transport`` via
    :meth:`attach`), then :meth:`start` establishes the connection and
    runs the first handshake.  The session calls :meth:`exchange` for
    every delivered frame and :meth:`ack` at every durable checkpoint
    commit; the runner calls :meth:`close` after the final barrier.
    """

    def __init__(
        self,
        role: str,
        session_id: str,
        listen: Optional[Tuple[str, int]] = None,
        connect: Optional[Tuple[str, int]] = None,
        reconnect: Optional[ReconnectPolicy] = None,
        faults: Optional[ProcessFaults] = None,
        seed: int = 0,
        heartbeat_s: float = 0.5,
        idle_timeout_s: float = 15.0,
        exchange_deadline_s: float = 120.0,
        outbox_limit: int = 8192,
    ) -> None:
        if role not in (ALICE, BOB):
            raise ValueError(f"unknown role {role!r}")
        if (listen is None) == (connect is None):
            raise ValueError("exactly one of listen/connect is required")
        self.role = role
        self.peer = other_party(role)
        self.session_id = session_id
        self.listen = listen
        self.connect = connect
        self.reconnect = reconnect or ReconnectPolicy()
        self.faults = faults
        self.seed = int(seed)
        self.heartbeat_s = float(heartbeat_s)
        self.idle_timeout_s = float(idle_timeout_s)
        self.exchange_deadline_s = float(exchange_deadline_s)
        self.outbox_limit = int(outbox_limit)

        self.session: Optional["Session"] = None
        self._sock: Optional[socket.socket] = None
        self._listener: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._recv_buf = bytearray()
        self._inbox: Deque[Frame] = deque()
        self._outbox: Deque[Frame] = deque()
        self._wire_count = 0
        self._peer_bye = False
        self._closed = False
        self._hb_stop = threading.Event()
        self._hb_thread: Optional[threading.Thread] = None
        self.stats: Dict[str, int] = {
            "frames_sent": 0,
            "frames_received": 0,
            "dup_skipped": 0,
            "replayed": 0,
            "reconnects": 0,
            "acks_sent": 0,
            "acks_received": 0,
            "heartbeats_sent": 0,
        }

    # -- lifecycle -------------------------------------------------------

    def attach(self, session: "Session") -> None:
        """Wire this transport into a session: every delivered frame
        flows through :meth:`exchange` before it is metered."""
        self.session = session
        session.wire = self

    def start(self) -> None:
        """Open the listener (listen mode), establish the connection,
        run the first handshake, and start the heartbeat thread."""
        if self.listen is not None:
            self._listener = socket.socket(
                socket.AF_INET, socket.SOCK_STREAM
            )
            self._listener.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            self._listener.bind(self.listen)
            self._listener.listen(8)
        self._reconnect_loop(initial=True)
        if self.heartbeat_s > 0:
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop, daemon=True
            )
            self._hb_thread.start()

    def finish_barrier(self, timeout_s: Optional[float] = None) -> bool:
        """Graceful shutdown handshake after the session's final
        barrier: announce BYE, then keep serving the connection —
        answering reconnect handshakes, replaying the outbox, dropping
        duplicate frames — until the peer's BYE arrives (``True``) or
        the timeout elapses (``False``).

        This is what makes a *tail-node* kill recoverable: the
        surviving party may have everything it needs and finish first,
        but the killed party's resume still depends on the survivor's
        handshake replay.  The survivor therefore lingers here instead
        of vanishing the moment its own run completes."""
        if self._sock is None and self._listener is None:
            return self._peer_bye
        budget = (
            self.exchange_deadline_s if timeout_s is None else timeout_s
        )
        deadline = time.monotonic() + budget
        try:
            self._send_raw(_encode(_MSG_BYE, b""))
        except OSError:
            pass
        while not self._peer_bye and time.monotonic() < deadline:
            self._inbox.clear()  # anything arriving now is a replay dup
            try:
                if not self._fill_buffer(deadline):
                    continue
            except OSError:
                try:
                    self._reconnect_loop(initial=False)
                    # The peer of a fresh handshake needs our BYE again.
                    self._send_raw(_encode(_MSG_BYE, b""))
                except (TransportAbort, OSError):
                    # The peer is gone for good — it either finished
                    # and exited, or will find an empty socket and
                    # abort cleanly.  Our run is already complete.
                    return self._peer_bye
                continue
            self._parse_buffer()
        return self._peer_bye

    def close(self, say_bye: bool = True) -> None:
        self._closed = True
        self._hb_stop.set()
        if say_bye and self._sock is not None:
            try:
                self._send_raw(_encode(_MSG_BYE, b""))
            except OSError:
                pass
        self._drop_socket()
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def force_drop(self) -> None:
        """Chaos hook: tear down the live connection (the next exchange
        reconnects transparently)."""
        self._drop_socket()

    def _drop_socket(self) -> None:
        with self._send_lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None
        self._recv_buf.clear()

    # -- the session-facing API ------------------------------------------

    def exchange(self, frame: Frame) -> None:
        """Called by the session for every frame, in the global
        deterministic delivery order.  Own-role frames are transmitted;
        peer-role frames block until the peer's copy arrives and is
        verified against the local mirror."""
        wire = self._wire_count
        self._wire_count += 1
        if self.faults is not None:
            self.faults.at_wire(wire, self)
        if frame.sender == self.role:
            self._transmit(frame)
        else:
            self._await_peer(frame)

    def ack(self, expected: Dict[str, int]) -> None:
        """Durable acknowledgement: tells the peer every frame below
        ``expected`` survives a crash on this side (sent at checkpoint
        commits only — see the module docstring)."""
        payload = json.dumps(
            {"expected": dict(expected)}, sort_keys=True
        ).encode()
        try:
            self._send_raw(_encode(_MSG_ACK, payload))
            self.stats["acks_sent"] += 1
        except OSError:
            # A lost ACK only delays outbox pruning; the next
            # handshake resynchronises.
            pass

    # -- sending ---------------------------------------------------------

    def _transmit(self, frame: Frame) -> None:
        self._outbox.append(frame)
        if len(self._outbox) > self.outbox_limit:
            raise TransportAbort(
                "outbox-overflow",
                node=self._node(),
                label=frame.label,
                seq=frame.seq,
                party=self.role,
            )
        deadline = time.monotonic() + self.exchange_deadline_s
        while True:
            try:
                self._send_raw(_encode(_MSG_FRAME, _frame_payload(frame)))
                self.stats["frames_sent"] += 1
                break
            except OSError:
                self._reconnect_or_abort(deadline, frame)
                # The handshake replay already retransmitted this
                # frame (it is in the outbox); done.
                self.stats["frames_sent"] += 1
                break
        self._poll_control()

    def _send_raw(self, data: bytes) -> None:
        with self._send_lock:
            if self._sock is None:
                raise ConnectionError("no connection")
            self._sock.sendall(data)

    # -- receiving -------------------------------------------------------

    def _await_peer(self, expected: Frame) -> None:
        session = self.session
        assert session is not None
        want = session._expected[expected.sender]
        deadline = time.monotonic() + self.exchange_deadline_s
        while True:
            got = self._next_frame(deadline, expected)
            if got.sender != expected.sender:
                raise TransportAbort(
                    "peer-divergence",
                    node=self._node(),
                    label=got.label,
                    seq=got.seq,
                    party=got.sender,
                )
            if got.seq < want:
                self.stats["dup_skipped"] += 1
                continue
            if (
                got.seq != expected.seq
                or got.n_bytes != expected.n_bytes
                or got.length != expected.length
                or got.label != expected.label
                or got.digest != expected.digest
            ):
                raise TransportAbort(
                    "peer-divergence",
                    node=self._node(),
                    label=got.label,
                    seq=got.seq,
                    expected=expected.seq,
                    party=got.sender,
                    n_bytes=got.n_bytes,
                )
            self.stats["frames_received"] += 1
            return

    def _next_frame(self, deadline: float, expected: Frame) -> Frame:
        """The next peer FRAME (from the parsed inbox or the socket),
        reconnecting on connection loss, aborting at the deadline."""
        while True:
            if self._inbox:
                return self._inbox.popleft()
            if self._peer_bye:
                raise TransportAbort(
                    "peer-divergence",
                    node=self._node(),
                    label=expected.label,
                    seq=expected.seq,
                    party=self.peer,
                )
            if time.monotonic() >= deadline:
                raise TransportAbort(
                    "connection-lost",
                    node=self._node(),
                    label=expected.label,
                    seq=expected.seq,
                    party=self.peer,
                )
            try:
                got_data = self._fill_buffer(deadline)
            except OSError:
                self._reconnect_or_abort(deadline, expected)
                continue
            if not got_data:
                # A whole idle window with zero bytes: even an idle
                # peer heartbeats, so the connection is dead.
                self._reconnect_or_abort(deadline, expected)
                continue
            self._parse_buffer()

    def _wait_readable(self, timeout: float) -> bool:
        sock = self._sock
        if sock is None:
            raise ConnectionError("no connection")
        try:
            ready, _, _ = select.select([sock], [], [], max(timeout, 0.0))
        except (OSError, ValueError):
            raise ConnectionError("connection dropped") from None
        return bool(ready)

    def _fill_buffer(self, deadline: float) -> bool:
        """Block up to one idle window for bytes; ``False`` means the
        window elapsed in total silence (sockets stay in blocking mode
        — readiness is select-gated, so the heartbeat thread's sends
        never race a timeout mode change)."""
        remaining = deadline - time.monotonic()
        window = min(max(remaining, 0.05), self.idle_timeout_s)
        if not self._wait_readable(window):
            return False
        sock = self._sock
        if sock is None:
            raise ConnectionError("no connection")
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("peer closed connection")
        self._recv_buf.extend(chunk)
        return True

    def _parse_buffer(self) -> None:
        """Consume every complete message in the receive buffer;
        FRAMEs go to the inbox, control messages are handled inline."""
        while True:
            if len(self._recv_buf) < _MSG_HEADER.size:
                return
            magic, msg_type, length = _MSG_HEADER.unpack_from(
                self._recv_buf
            )
            if magic != WIRE_MAGIC:
                raise TransportAbort(
                    "peer-divergence", node=self._node(), party=self.peer
                )
            end = _MSG_HEADER.size + length
            if len(self._recv_buf) < end:
                return
            payload = bytes(self._recv_buf[_MSG_HEADER.size:end])
            del self._recv_buf[:end]
            if msg_type == _MSG_FRAME:
                self._inbox.append(_frame_from_payload(payload))
            elif msg_type == _MSG_ACK:
                self._handle_ack(payload)
            elif msg_type == _MSG_HEARTBEAT:
                pass
            elif msg_type == _MSG_BYE:
                self._peer_bye = True
            elif msg_type == _MSG_HELLO:
                # A handshake outside _handshake(): the peer
                # reconnected behind our back (cannot happen with the
                # blocking establish protocol) — treat as divergence.
                raise TransportAbort(
                    "peer-divergence", node=self._node(), party=self.peer
                )

    def _poll_control(self) -> None:
        """Drain any already-arrived bytes without blocking (ACK
        pruning keeps the outbox small while this side is sending)."""
        try:
            while self._wait_readable(0.0):
                sock = self._sock
                if sock is None:
                    return
                chunk = sock.recv(65536)
                if not chunk:
                    return
                self._recv_buf.extend(chunk)
        except OSError:
            # A dead connection surfaces at the next blocking exchange.
            return
        self._parse_buffer()

    def _handle_ack(self, payload: bytes) -> None:
        expected = json.loads(payload.decode())["expected"]
        self.stats["acks_received"] += 1
        self._prune_outbox(int(expected.get(self.role, 0)))

    def _prune_outbox(self, peer_expected: int) -> None:
        while self._outbox and self._outbox[0].seq < peer_expected:
            self._outbox.popleft()

    # -- connection management -------------------------------------------

    def _node(self) -> Optional[int]:
        return self.session.node if self.session is not None else None

    def _reconnect_or_abort(self, deadline: float, frame: Frame) -> None:
        if self._closed:
            raise TransportAbort(
                "connection-lost", node=self._node(), party=self.peer
            )
        try:
            self._reconnect_loop(initial=False)
        except TransportAbort:
            raise
        except OSError:
            raise TransportAbort(
                "connection-lost",
                node=self._node(),
                label=frame.label,
                seq=frame.seq,
                party=self.peer,
            ) from None

    def _reconnect_loop(self, initial: bool) -> None:
        """Establish + handshake under the backoff schedule."""
        episode = self.stats["reconnects"]
        if not initial:
            self.stats["reconnects"] += 1
            self._drop_socket()
        delays = self.reconnect.schedule(self.seed, episode)
        last_error: Optional[Exception] = None
        for attempt, delay in enumerate(delays):
            if attempt > 0 or not initial:
                time.sleep(delay)
            try:
                self._establish()
                self._handshake()
                return
            except TransportAbort:
                self._drop_socket()
                raise
            except (OSError, json.JSONDecodeError) as exc:
                last_error = exc
                self._drop_socket()
        raise TransportAbort(
            "connection-lost",
            node=self._node(),
            party=self.peer,
            attempts=len(delays),
        ) from last_error

    def _establish(self) -> None:
        timeout = self.reconnect.attempt_timeout_s
        if self._listener is not None:
            self._listener.settimeout(timeout)
            conn, _addr = self._listener.accept()
        else:
            assert self.connect is not None
            conn = socket.create_connection(self.connect, timeout=timeout)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.settimeout(None)  # blocking; all waits are select-gated
        with self._send_lock:
            self._sock = conn
        self._recv_buf.clear()

    def _handshake(self) -> None:
        """Exchange HELLOs, then replay the outbox tail the peer has
        not durably acknowledged."""
        session = self.session
        expected = dict(session._expected) if session is not None else {}
        hello = json.dumps(
            {
                "session": self.session_id,
                "role": self.role,
                "expected": expected,
            },
            sort_keys=True,
        ).encode()
        self._send_raw(_encode(_MSG_HELLO, hello))
        peer_hello = self._recv_hello()
        if (
            peer_hello.get("session") != self.session_id
            or peer_hello.get("role") != self.peer
        ):
            raise TransportAbort(
                "handshake-failed", node=self._node(), party=self.peer
            )
        peer_expected = int(
            peer_hello.get("expected", {}).get(self.role, 0)
        )
        self._prune_outbox(peer_expected)
        for frame in self._outbox:
            if frame.seq >= peer_expected:
                self._send_raw(
                    _encode(_MSG_FRAME, _frame_payload(frame))
                )
                self.stats["replayed"] += 1

    def _recv_hello(self) -> Dict[str, Any]:
        """The peer's HELLO, skipping any stale pre-reconnect traffic
        still buffered ahead of it."""
        deadline = time.monotonic() + self.reconnect.attempt_timeout_s
        while True:
            while len(self._recv_buf) >= _MSG_HEADER.size:
                magic, msg_type, length = _MSG_HEADER.unpack_from(
                    self._recv_buf
                )
                if magic != WIRE_MAGIC:
                    raise ConnectionError("bad magic in handshake")
                end = _MSG_HEADER.size + length
                if len(self._recv_buf) < end:
                    break
                payload = bytes(self._recv_buf[_MSG_HEADER.size:end])
                del self._recv_buf[:end]
                if msg_type == _MSG_HELLO:
                    out = json.loads(payload.decode())
                    if not isinstance(out, dict):
                        raise ConnectionError("malformed HELLO")
                    return out
                # Frames/ACKs that raced ahead of the HELLO belong to
                # the new connection's replay; keep them.
                if msg_type == _MSG_FRAME:
                    self._inbox.append(_frame_from_payload(payload))
                elif msg_type == _MSG_ACK:
                    self._handle_ack(payload)
                elif msg_type == _MSG_BYE:
                    self._peer_bye = True
            if time.monotonic() >= deadline or not self._fill_buffer(deadline):
                raise ConnectionError("handshake timed out")

    def _heartbeat_loop(self) -> None:  # pragma: no cover - timing thread
        while not self._hb_stop.wait(self.heartbeat_s):
            try:
                self._send_raw(_encode(_MSG_HEARTBEAT, b""))
                self.stats["heartbeats_sent"] += 1
            except OSError:
                # The main thread owns reconnection.
                continue
