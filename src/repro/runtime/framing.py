"""Message framing: sequence numbers, lengths and SHA-256 checksums.

The metered channel (:class:`repro.mpc.transcript.Transcript`) records
message *sizes*, not payloads — both back-ends account bytes without
materialising ciphertexts.  The session layer therefore frames the
channel *metadata*: each logical send becomes a :class:`Frame` whose
digest covers the canonical header encoding (magic, sequence number,
sender, payload length, label).  A fault that corrupts or truncates a
frame is detected exactly as a real wire protocol would detect it —
checksum or length mismatch on the receiver side — and the framing
overhead (:data:`FRAME_HEADER_BYTES` per message) is metered into the
transcript so REAL and SIMULATED accounting stay comparable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

__all__ = [
    "FRAME_MAGIC",
    "FRAME_HEADER_BYTES",
    "Frame",
    "make_frame",
    "frame_digest",
    "verify_frame",
    "corrupted",
    "truncated",
]

#: Wire magic identifying a session frame ("Secure Yannakakis Frame v1").
FRAME_MAGIC = b"SYF1"

#: Framing overhead per message: 4-byte magic + 8-byte sequence number
#: + 4-byte payload length + 32-byte SHA-256 checksum.
FRAME_HEADER_BYTES = 4 + 8 + 4 + 32


@dataclass(frozen=True)
class Frame:
    """One framed message: header fields plus the header digest."""

    seq: int
    sender: str
    n_bytes: int  #: payload length the sender declared
    length: int  #: payload length on the wire (differs iff truncated)
    label: str
    digest: bytes

    @property
    def wire_bytes(self) -> int:
        """Metered size: payload plus framing overhead."""
        return self.length + FRAME_HEADER_BYTES


def _header(seq: int, sender: str, length: int, label: str) -> bytes:
    return b"|".join(
        (
            FRAME_MAGIC,
            str(int(seq)).encode(),
            sender.encode(),
            str(int(length)).encode(),
            label.encode(),
        )
    )


def frame_digest(seq: int, sender: str, length: int, label: str) -> bytes:
    return hashlib.sha256(_header(seq, sender, length, label)).digest()


def make_frame(seq: int, sender: str, n_bytes: int, label: str) -> Frame:
    return Frame(
        seq=seq,
        sender=sender,
        n_bytes=int(n_bytes),
        length=int(n_bytes),
        label=label,
        digest=frame_digest(seq, sender, int(n_bytes), label),
    )


def verify_frame(frame: Frame) -> str:
    """Receiver-side verification.  Returns ``""`` when the frame is
    intact, else the abort reason (``length-mismatch`` when the wire
    length disagrees with the declared payload size, ``checksum-
    mismatch`` when the digest fails)."""
    if frame.length != frame.n_bytes:
        return "length-mismatch"
    if frame.digest != frame_digest(
        frame.seq, frame.sender, frame.n_bytes, frame.label
    ):
        return "checksum-mismatch"
    return ""


def corrupted(frame: Frame) -> Frame:
    """The frame after an in-flight bit flip: same header, digest no
    longer matches."""
    flipped = bytes([frame.digest[0] ^ 0x01]) + frame.digest[1:]
    return replace(frame, digest=flipped)


def truncated(frame: Frame) -> Frame:
    """The frame after losing its final payload byte (empty payloads
    lose part of the header instead, surfacing as a checksum failure)."""
    if frame.length == 0:
        return corrupted(frame)
    return replace(frame, length=frame.length - 1)
