"""Disk-durable checkpoints: the append-only journal.

The supervisor already captures a node-granular
:class:`~repro.runtime.checkpoint.Checkpoint` before every plan node —
slot environment, engine state (including the one-time base-OT
charging), transcript position and session counters, with the context
graph *pinned* (shared, not cloned) so the captured checkpoint carries
the live transcript prefix, RNG state and setup cache.  A
:class:`DurableStore` serialises each capture to an append-only journal
with atomic fsync'd commits, so a party can be ``kill -9``'d mid-query
and restarted with ``repro net --resume``: :func:`revive` rebuilds the
engine, session and slot environment from the newest committed record
alone, and the resumed run's transcript fingerprint is byte-identical
to the unfaulted one (pinned by ``tests/test_durable.py``).

Record format (little-endian)::

    magic "SYJ1" | kind (1 byte) | payload length (8 bytes)
    | sha256(payload) (32 bytes) | payload

Appends are atomic in the torn-write sense: a record counts only if its
payload is complete and its digest verifies, so :func:`Journal.scan`
stops at the first torn or corrupt tail record and recovery resumes
from the last *committed* checkpoint — exactly the state the peer's
last durable ACK covers.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from .faults import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpc.engine import Engine
    from .checkpoint import Checkpoint
    from .session import Session

__all__ = [
    "JOURNAL_MAGIC",
    "KIND_META",
    "KIND_CHECKPOINT",
    "KIND_DONE",
    "Journal",
    "JournalState",
    "DurableStore",
    "revive",
]

#: File magic identifying a journal record ("Secure Yannakakis Journal v1").
JOURNAL_MAGIC = b"SYJ1"

_HEADER = struct.Struct("<4sBQ32s")

#: Run configuration (JSON) — always the first record.
KIND_META = 1
#: One committed checkpoint (pickled :class:`Checkpoint`).
KIND_CHECKPOINT = 2
#: Terminal success marker (JSON run profile).
KIND_DONE = 3

_KINDS = (KIND_META, KIND_CHECKPOINT, KIND_DONE)


class Journal:
    """Append-only record log with fsync'd, digest-verified commits."""

    def __init__(self, path: str, truncate: bool = False) -> None:
        self.path = path
        mode = "wb" if truncate else "ab"
        self._fh: Optional[io.BufferedWriter] = open(path, mode)

    def append(self, kind: int, payload: bytes) -> None:
        """Commit one record: header + payload, flushed and fsync'd
        before returning — after this call the record survives a
        ``kill -9`` (and a torn write of a *later* record)."""
        if kind not in _KINDS:
            raise ValueError(f"unknown journal record kind {kind!r}")
        if self._fh is None:
            raise ValueError("journal is closed")
        digest = hashlib.sha256(payload).digest()
        self._fh.write(_HEADER.pack(JOURNAL_MAGIC, kind, len(payload), digest))
        self._fh.write(payload)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @staticmethod
    def scan(path: str) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(kind, payload)`` for every committed record,
        stopping silently at the first torn or corrupt tail record —
        an interrupted append must look like "that record never
        happened", never like an error."""
        with open(path, "rb") as fh:
            while True:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return
                magic, kind, length, digest = _HEADER.unpack(header)
                if magic != JOURNAL_MAGIC or kind not in _KINDS:
                    return
                payload = fh.read(length)
                if len(payload) < length:
                    return
                if hashlib.sha256(payload).digest() != digest:
                    return
                yield kind, payload


@dataclass
class JournalState:
    """Everything :func:`DurableStore.load` recovers from a journal."""

    meta: Dict[str, Any]
    checkpoints: List[Tuple[int, bytes]] = field(default_factory=list)
    done: Optional[Dict[str, Any]] = None

    @property
    def latest(self) -> Optional[Tuple[int, bytes]]:
        """Newest committed ``(step_id, pickled checkpoint)``."""
        return self.checkpoints[-1] if self.checkpoints else None


class DurableStore:
    """The session-facing sink over a :class:`Journal`.

    The supervisor calls :meth:`save_checkpoint` at every capture; the
    runner calls :meth:`save_done` after the final barrier.  ``create``
    starts a fresh journal (first record = run meta, so a resume can
    rebuild the public plan deterministically); ``append_to`` reopens
    an existing one for the records of a resumed run.
    """

    def __init__(self, journal: Journal) -> None:
        self.journal = journal
        self.n_commits = 0

    @classmethod
    def create(cls, path: str, meta: Dict[str, Any]) -> "DurableStore":
        store = cls(Journal(path, truncate=True))
        store.journal.append(
            KIND_META, json.dumps(meta, sort_keys=True).encode()
        )
        return store

    @classmethod
    def append_to(cls, path: str) -> "DurableStore":
        return cls(Journal(path, truncate=False))

    def save_checkpoint(self, step_id: int, checkpoint: "Checkpoint") -> None:
        """Commit one captured checkpoint.  The checkpoint *pins* the
        live context (transcript, RNG, cache, session), so pickling at
        capture time snapshots the whole recoverable state in one
        record."""
        self.journal.append(KIND_CHECKPOINT, pickle.dumps(checkpoint))
        self.n_commits += 1

    def save_done(self, profile: Dict[str, Any]) -> None:
        self.journal.append(
            KIND_DONE, json.dumps(profile, sort_keys=True).encode()
        )

    def close(self) -> None:
        self.journal.close()

    @staticmethod
    def load(path: str) -> JournalState:
        """Replay a journal into a :class:`JournalState`."""
        state: Optional[JournalState] = None
        for kind, payload in Journal.scan(path):
            if kind == KIND_META:
                meta = json.loads(payload.decode())
                if state is None:
                    state = JournalState(meta=meta)
                else:
                    # A resumed run re-records its meta; keep the first.
                    state.meta.setdefault("resumes", 0)
                    state.meta["resumes"] += 1
            elif state is None:
                raise ValueError(
                    f"journal {path!r} does not start with a meta record"
                )
            elif kind == KIND_CHECKPOINT:
                step_id = pickle.loads(payload).step_id
                state.checkpoints.append((step_id, payload))
            elif kind == KIND_DONE:
                state.done = json.loads(payload.decode())
        if state is None:
            raise ValueError(f"journal {path!r} has no committed records")
        return state


def revive(
    blob: bytes,
) -> Tuple["Engine", "Session", Dict[str, Any], "Checkpoint"]:
    """Reconstruct a live ``(engine, session, env, checkpoint)`` from
    one committed checkpoint record.

    The pickled checkpoint's engine state carries the pinned context —
    transcript prefix, RNG, setup cache, session counters — so nothing
    outside the record is needed.  Two deliberate resets:

    * the revived session's :class:`~repro.runtime.faults.FaultPlan` is
      cleared — the plan was pickled *before* its one-shot specs fired
      (capture precedes ``begin_node``), and the fault that killed the
      original process must not re-fire on the resumed one;
    * ephemeral process-local hooks (transport, durable sink, process
      faults) were nulled by ``Session.__getstate__`` and are re-wired
      by the caller.
    """
    from ..mpc.engine import Engine

    checkpoint: "Checkpoint" = pickle.loads(blob)
    engine_state = checkpoint._engine_state
    engine = Engine.__new__(Engine)
    engine.__dict__.update(engine_state)
    ctx = engine.ctx
    session = ctx.session
    if session is None:
        raise ValueError("checkpoint carries no session")
    session.faults = FaultPlan()
    env: Dict[str, Any] = {}
    checkpoint.restore(env, engine, session, None)
    return engine, session, env, checkpoint
