"""A virtual clock for deterministic deadlines and backoff.

The session layer never reads wall-clock time (OBL004): progress is
measured in *ticks*, advanced by frame deliveries, injected hangs and
retry backoff.  Two runs with the same fault plan therefore observe the
identical clock, which is what makes deadline expiry reproducible.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotone integer time."""

    def __init__(self, start: int = 0) -> None:
        self.now = int(start)

    def advance(self, ticks: int) -> int:
        if ticks < 0:
            raise ValueError("the virtual clock cannot run backwards")
        self.now += int(ticks)
        return self.now

    def advance_to(self, t: int) -> int:
        if t > self.now:
            self.now = int(t)
        return self.now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self.now})"
