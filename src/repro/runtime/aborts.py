"""The typed protocol-abort taxonomy.

Every fault the session layer can *detect* maps to exactly one
:class:`ProtocolAbort` subclass, and every abort is built from a fixed
vocabulary of **public** fields: reason codes, sequence numbers,
transcript labels, byte counts, virtual-clock ticks and party names.
No constructor accepts free-form payloads, so no abort path can ever
surface reconstructed plaintext — the chaos harness and the unit tests
assert :meth:`ProtocolAbort.is_sanitized` on every abort they observe.

The supervisor's retry decision is a class attribute: transient channel
faults (integrity, sequencing, deadline) are ``retryable``; a peer
crash is terminal.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "REASONS",
    "ProtocolAbort",
    "IntegrityAbort",
    "SequenceAbort",
    "TimeoutAbort",
    "PeerCrash",
    "TransportAbort",
]

#: The closed vocabulary of abort reasons.  ``reason`` must be one of
#: these strings; anything else is a programming error, not a fault.
REASONS = (
    "checksum-mismatch",
    "length-mismatch",
    "sequence-gap",
    "sequence-replay",
    "deadline-expired",
    "peer-crashed",
    "retries-exhausted",
    "connection-lost",
    "handshake-failed",
    "peer-divergence",
    "outbox-overflow",
)


class ProtocolAbort(RuntimeError):
    """Base of the abort taxonomy.

    Fields are restricted to public channel metadata; see the module
    docstring.  ``retryable`` tells the supervisor whether a
    node-granular checkpoint retry is permitted.
    """

    retryable = False

    def __init__(
        self,
        reason: str,
        *,
        node: Optional[int] = None,
        label: str = "",
        seq: Optional[int] = None,
        expected: Optional[int] = None,
        party: Optional[str] = None,
        n_bytes: Optional[int] = None,
        tick: Optional[int] = None,
        deadline: Optional[int] = None,
        attempts: Optional[int] = None,
    ) -> None:
        if reason not in REASONS:
            raise ValueError(f"unknown abort reason {reason!r}")
        self.reason = reason
        self.node = node
        self.label = label
        self.seq = seq
        self.expected = expected
        self.party = party
        self.n_bytes = n_bytes
        self.tick = tick
        self.deadline = deadline
        self.attempts = attempts
        super().__init__(self._describe())

    def _describe(self) -> str:
        parts = [self.reason]
        if self.node is not None:
            parts.append(f"node={self.node}")
        if self.label:
            parts.append(f"label={self.label}")
        if self.seq is not None:
            parts.append(f"seq={self.seq}")
        if self.expected is not None:
            parts.append(f"expected={self.expected}")
        if self.party is not None:
            parts.append(f"party={self.party}")
        if self.n_bytes is not None:
            parts.append(f"n_bytes={self.n_bytes}")
        if self.tick is not None:
            parts.append(f"tick={self.tick}")
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline}")
        if self.attempts is not None:
            parts.append(f"attempts={self.attempts}")
        return " ".join(parts)

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": type(self).__name__,
            "reason": self.reason,
            "retryable": self.retryable,
            "node": self.node,
            "label": self.label,
            "seq": self.seq,
            "expected": self.expected,
            "party": self.party,
            "n_bytes": self.n_bytes,
            "tick": self.tick,
            "deadline": self.deadline,
            "attempts": self.attempts,
        }

    def is_sanitized(self) -> bool:
        """The structural no-leak check: the reason code is from the
        closed vocabulary and the message is exactly the canonical
        rendering of the public fields (nothing smuggled in)."""
        return self.reason in REASONS and str(self) == self._describe()


class IntegrityAbort(ProtocolAbort):
    """A frame failed verification: checksum or length mismatch."""

    retryable = True


class SequenceAbort(ProtocolAbort):
    """A frame arrived out of order: gap (lost/held frame ahead of it)
    or replay (sequence number already delivered)."""

    retryable = True


class TimeoutAbort(ProtocolAbort):
    """The virtual-clock deadline of the current plan node expired, or
    the node ended with sent-but-undelivered frames outstanding."""

    retryable = True


class PeerCrash(ProtocolAbort):
    """The remote party crashed; no retry can help."""

    retryable = False


class TransportAbort(ProtocolAbort):
    """A real (socket) transport failed terminally: the reconnect
    budget is exhausted (``connection-lost``), the peer identified as
    a different session or role (``handshake-failed``), the peer's
    frame stream disagreed with the locally mirrored one
    (``peer-divergence``), or the unacknowledged-frame outbox
    overflowed its bound (``outbox-overflow``).

    Terminal by design: an in-node retry would re-run the node on one
    OS process while the peer's mirror stays put, desynchronising the
    two frame streams.  Recovery from transport loss is process
    restart + ``repro net --resume`` over the durable journal, not a
    supervisor retry."""

    retryable = False
