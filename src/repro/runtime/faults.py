"""Deterministic fault injection: :class:`FaultSpec` and :class:`FaultPlan`.

A fault plan is pure data — *which* fault, at *which* wire-message
index or plan node, against *which* party — so any faulted run replays
from its JSON spec alone.  Each spec fires **once**: the session's wire
index is monotone across checkpoint retries (rollback rewinds sequence
counters and the metered transcript, never the wire index), so a fault
consumed on attempt 1 does not re-fire on attempt 2.  That one-shot
semantics is what makes "retry from checkpoint" converge.

Fault kinds
-----------

=================  ====================================================
``corrupt``        flip a checksum bit of wire message *k*
``truncate``       drop the last payload byte of wire message *k*
``drop``           wire message *k* never arrives
``duplicate``      wire message *k* is delivered twice
``reorder``        wire message *k* is held and overtaken by the next
                   same-sender message
``hang``           the channel stalls ``ticks`` virtual ticks at *k*
``crash``          party ``party`` crashes entering plan node ``node``
``perturb_share``  additively perturb one input share (semantic fault;
                   detected by the differential oracle, not the
                   session — see ``repro fuzz --inject-fault``)
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.relation import SecureRelation
    from ..mpc.engine import Engine

__all__ = [
    "FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "perturb_share",
]

#: Kinds that target a wire-message index.
MESSAGE_FAULT_KINDS = (
    "corrupt",
    "truncate",
    "drop",
    "duplicate",
    "reorder",
    "hang",
)

FAULT_KINDS = MESSAGE_FAULT_KINDS + ("crash", "perturb_share")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, fully determined by its fields."""

    kind: str
    message_index: Optional[int] = None  #: wire index for message faults
    node: Optional[int] = None  #: plan-node id for ``crash``
    party: Optional[str] = None  #: crashing party for ``crash``
    ticks: int = 0  #: stall duration for ``hang``

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind in MESSAGE_FAULT_KINDS and self.message_index is None:
            raise ValueError(f"{self.kind!r} fault needs a message_index")
        if self.kind == "crash" and self.node is None:
            raise ValueError("crash fault needs a node id")

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "message_index": self.message_index,
            "node": self.node,
            "party": self.party,
            "ticks": self.ticks,
        }

    @staticmethod
    def from_json(d: Dict[str, Any]) -> "FaultSpec":
        return FaultSpec(
            kind=d["kind"],
            message_index=d.get("message_index"),
            node=d.get("node"),
            party=d.get("party"),
            ticks=int(d.get("ticks", 0)),
        )

    def __str__(self) -> str:
        where = []
        if self.message_index is not None:
            where.append(f"msg={self.message_index}")
        if self.node is not None:
            where.append(f"node={self.node}")
        if self.party is not None:
            where.append(f"party={self.party}")
        if self.ticks:
            where.append(f"ticks={self.ticks}")
        return f"{self.kind}({', '.join(where)})"


class FaultPlan:
    """A set of one-shot fault specs the session consults.

    ``for_message`` / ``for_node`` return (and consume) the first
    un-fired spec matching the probe; :meth:`fresh` returns an un-fired
    copy for the next run of a campaign.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self._fired: Set[int] = set()

    def __len__(self) -> int:
        return len(self.specs)

    def __str__(self) -> str:
        return "+".join(str(s) for s in self.specs) or "(no faults)"

    def fresh(self) -> "FaultPlan":
        return FaultPlan(self.specs)

    @property
    def fired(self) -> List[FaultSpec]:
        return [self.specs[i] for i in sorted(self._fired)]

    def for_message(self, wire_index: int) -> Optional[FaultSpec]:
        for i, spec in enumerate(self.specs):
            if (
                i not in self._fired
                and spec.kind in MESSAGE_FAULT_KINDS
                and spec.message_index == wire_index
            ):
                self._fired.add(i)
                return spec
        return None

    def for_node(self, node_id: int) -> Optional[FaultSpec]:
        for i, spec in enumerate(self.specs):
            if (
                i not in self._fired
                and spec.kind == "crash"
                and spec.node == node_id
            ):
                self._fired.add(i)
                return spec
        return None

    def input_faults(self) -> List[FaultSpec]:
        """The semantic (pre-run) faults: applied to the secret-shared
        inputs before the protocol starts."""
        return [s for s in self.specs if s.kind == "perturb_share"]

    def to_json(self) -> List[Dict[str, Any]]:
        return [s.to_json() for s in self.specs]

    @staticmethod
    def from_json(blobs: Sequence[Dict[str, Any]]) -> "FaultPlan":
        return FaultPlan([FaultSpec.from_json(b) for b in blobs])


def perturb_share(
    engine: "Engine", inputs: Dict[str, "SecureRelation"]
) -> None:
    """The semantic fault: secret-share the first relation's
    annotations and add 1 to Alice's share of entry 0.  The sharing is
    transcript-neutral in accounting terms, but the reconstructed
    annotation is wrong — the differential oracle must catch it."""
    name = sorted(inputs)[0]
    rel = inputs[name]
    if len(rel) == 0:  # pragma: no cover - generators emit >=1 tuple
        return
    from ..core.relation import SecureAnnotations

    shares = rel.annotations.to_shared(engine, label="fault")
    shares.alice[0] = (int(shares.alice[0]) + 1) % engine.ctx.modulus
    rel.annotations = SecureAnnotations.shared(shares)
