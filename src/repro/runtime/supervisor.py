"""The retrying step supervisor.

When a context has a session attached, the exec scheduler routes every
plan node through :meth:`Supervisor.run_step`: checkpoint, arm the node
deadline, run the operator, barrier.  A raised
:class:`~repro.runtime.aborts.ProtocolAbort` — and **only** a
``ProtocolAbort``; operator bugs must propagate untouched — is handled
per taxonomy: retryable aborts on restartable steps restore the
checkpoint, advance the virtual clock by a bounded exponential backoff,
re-key the context RNG with a fresh deterministic subkey, and re-run;
terminal aborts (peer crash, retries exhausted, non-restartable steps)
propagate.

The retried node re-executes against the rewound secret-share state
with the identical public shapes, so its messages are byte-identical
in (sender, size, label) to the unfaulted run — the checkpoint/resume
equality test pins this down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

import numpy as np

from .aborts import ProtocolAbort
from .checkpoint import Checkpoint
from .session import Session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.ir import Step
    from ..exec.trace import ExecutionTrace
    from ..mpc.engine import Engine

__all__ = ["RetryPolicy", "Supervisor"]

#: Domain-separation constant for retry RNG subkeys.
_RETRY_STREAM = 0x53594E31  # "SYN1"

#: Domain-separation constant for backoff-jitter subkeys (distinct
#: stream: jitter draws must never perturb the retry rekeying).
_JITTER_STREAM = 0x53594E4A  # "SYNJ"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff in virtual time, plus deterministic
    jitter.

    The jitter is *additive* on top of :meth:`backoff` (whose schedule
    stays exact and pinned by tests) and is derived from a seeded RNG
    keyed on ``(stream, session seed, step, attempt)`` — never
    wall-clock or :mod:`random` — so the full retry schedule is a pure
    function of the session seed and replays identically
    (OBL003/OBL004-clean).
    """

    max_attempts: int = 3
    base_backoff_ticks: int = 8
    max_backoff_ticks: int = 1024
    jitter_ticks: int = 8

    def backoff(self, attempt: int) -> int:
        """Deterministic base: ticks to wait before retry number
        ``attempt`` (1-based), jitter excluded."""
        ticks = self.base_backoff_ticks << max(attempt - 1, 0)
        return min(ticks, self.max_backoff_ticks)

    def jitter(self, attempt: int, seed: int, step_id: int) -> int:
        """The deterministic jitter for one retry: uniform in
        ``[0, jitter_ticks]``, keyed so distinct steps, attempts and
        sessions de-synchronise without sacrificing replayability."""
        if self.jitter_ticks <= 0:
            return 0
        rng = np.random.default_rng(
            [_JITTER_STREAM, int(seed), int(step_id), int(attempt)]
        )
        return int(rng.integers(0, self.jitter_ticks + 1))

    def jittered_backoff(self, attempt: int, seed: int, step_id: int) -> int:
        return self.backoff(attempt) + self.jitter(attempt, seed, step_id)


class Supervisor:
    """Runs plan nodes under a session with checkpoint retries."""

    def __init__(
        self,
        session: Session,
        engine: "Engine",
        policy: Optional[RetryPolicy] = None,
        trace: Optional["ExecutionTrace"] = None,
    ) -> None:
        self.session = session
        self.engine = engine
        override = session.retry_policy
        if policy is not None:
            self.policy = policy
        elif isinstance(override, RetryPolicy):
            self.policy = override
        else:
            self.policy = RetryPolicy()
        self.trace = trace

    def run_step(
        self,
        step: "Step",
        env: Dict[str, Any],
        thunk: Callable[[], None],
    ) -> None:
        """Execute one plan node, retrying per the policy."""
        session = self.session
        attempts = 0
        while True:
            checkpoint = Checkpoint.capture(
                step.id, env, self.engine, session, self.trace
            )
            # Durable mode: journal the capture (and ACK the peer) so a
            # kill -9 from here on resumes at this node.
            session.commit_checkpoint(step, checkpoint)
            try:
                session.begin_node(step.id, step.label)
                thunk()
                session.end_node()
                return
            except ProtocolAbort as abort:
                session.n_aborts += 1
                attempts += 1
                self._event("abort", step, attempts, abort)
                if not (abort.retryable and step.restartable):
                    raise
                if attempts >= self.policy.max_attempts:
                    raise type(abort)(
                        "retries-exhausted",
                        node=step.id,
                        label=step.label,
                        attempts=attempts,
                    ) from abort
                checkpoint.restore(
                    env, self.engine, session, self.trace
                )
                session.clock.advance(
                    self.policy.jittered_backoff(
                        attempts, session.seed, step.id
                    )
                )
                self._rekey(step.id, attempts)
                session.n_retries += 1
                self._event("retry", step, attempts, abort)

    def _rekey(self, step_id: int, attempt: int) -> None:
        """Fresh deterministic RNG subkey for the retry: the rewound
        node re-runs with independent randomness, never reusing the
        masks the aborted attempt may have half-spent."""
        self.engine.ctx.rng = np.random.default_rng(
            [_RETRY_STREAM, self.session.seed, step_id, attempt]
        )

    def _event(
        self,
        event: str,
        step: "Step",
        attempt: int,
        abort: ProtocolAbort,
    ) -> None:
        if self.trace is None:
            return
        self.trace.record_event(
            {
                "type": event,
                "node": step.id,
                "kind": step.kind,
                "label": step.label,
                "attempt": attempt,
                "tick": self.session.clock.now,
                "abort": abort.to_json(),
            }
        )
