"""The fault-tolerant session layer over the metered channel.

A :class:`Session` interposes between :class:`repro.mpc.context.Context`
and its :class:`~repro.mpc.transcript.Transcript`: every logical send
becomes a framed, sequence-numbered, checksummed message
(:mod:`repro.runtime.framing`), delivery advances a virtual clock
against the current plan node's deadline, and an attached
:class:`~repro.runtime.faults.FaultPlan` can deterministically corrupt,
truncate, drop, duplicate, reorder or stall any wire message, or crash
a party at a plan node.  Detected faults raise the typed aborts of
:mod:`repro.runtime.aborts`; the supervisor turns retryable aborts into
checkpoint retries.

Two invariants the tests pin down:

* **Accounting neutrality** — with ``meter_overhead=True`` every
  delivered frame meters ``payload + FRAME_HEADER_BYTES`` under the
  payload's own label, so a session-enabled run's transcript is the
  plain run's transcript plus a fixed per-message constant, identically
  in REAL and SIMULATED mode.
* **Monotone wire index** — :meth:`rollback` rewinds sequence counters
  (and the transcript, via ``Transcript.rollback``) but never the wire
  index, so one-shot faults do not re-fire on retry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..mpc.transcript import ALICE, BOB, Transcript
from .aborts import (
    IntegrityAbort,
    PeerCrash,
    SequenceAbort,
    TimeoutAbort,
)
from .clock import VirtualClock
from .faults import FaultPlan
from .framing import FRAME_HEADER_BYTES, Frame, make_frame, verify_frame
from .framing import corrupted as _corrupted
from .framing import truncated as _truncated

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.ir import Step
    from ..mpc.context import Context
    from .checkpoint import Checkpoint
    from .durable import DurableStore
    from .transport import ProcessFaults, SocketTransport

__all__ = [
    "DEFAULT_NODE_BUDGET",
    "SessionState",
    "Session",
    "enable_session",
]

#: Virtual ticks a plan node may consume before its deadline expires.
#: Deliveries cost one tick each; real nodes use a few hundred at most,
#: so only an injected ``hang`` (or a genuinely stalled channel) can
#: exhaust this.
DEFAULT_NODE_BUDGET = 1 << 20


@dataclass(frozen=True)
class SessionState:
    """Channel counters captured by a checkpoint (the wire index is
    deliberately absent: it is monotone across retries)."""

    seq: Dict[str, int]
    expected: Dict[str, int]


class Session:
    """Framed, deadline-supervised view of one metered transcript."""

    def __init__(
        self,
        transcript: Transcript,
        faults: Optional[FaultPlan] = None,
        clock: Optional[VirtualClock] = None,
        node_budget: int = DEFAULT_NODE_BUDGET,
        meter_overhead: bool = True,
        seed: int = 0,
    ) -> None:
        self.transcript = transcript
        self.faults = faults if faults is not None else FaultPlan()
        self.clock = clock if clock is not None else VirtualClock()
        self.node_budget = int(node_budget)
        self.meter_overhead = meter_overhead
        self.seed = int(seed)
        #: Optional per-session override of the supervisor retry policy.
        self.retry_policy: Optional[object] = None
        #: Process-local hooks of a two-process run (``repro net``):
        #: the socket transport every delivered frame is exchanged
        #: through, the durable journal the supervisor commits
        #: checkpoints to, and the process-level chaos faults.  All
        #: three are ephemeral — :meth:`__getstate__` nulls them, and
        #: the resume path re-wires fresh ones.
        self.wire: Optional["SocketTransport"] = None
        self.durable: Optional["DurableStore"] = None
        self.process_faults: Optional["ProcessFaults"] = None
        self._seq: Dict[str, int] = {ALICE: 0, BOB: 0}
        self._expected: Dict[str, int] = {ALICE: 0, BOB: 0}
        self._held: Dict[str, Frame] = {}
        self._wire_index = 0
        self.node: Optional[int] = None
        self.node_label = ""
        self.deadline: Optional[int] = None
        self.nodes_seen: List[int] = []
        self.n_aborts = 0
        self.n_retries = 0

    # -- the channel ----------------------------------------------------

    @property
    def wire_index(self) -> int:
        """Wire messages attempted so far (monotone; includes dropped,
        held and re-sent frames)."""
        return self._wire_index

    def send(self, sender: str, n_bytes: int, label: str = "") -> None:
        """Frame and deliver one logical message, applying at most one
        injected fault keyed on the monotone wire index."""
        seq = self._seq[sender]
        self._seq[sender] = seq + 1
        frame = make_frame(seq, sender, n_bytes, label)
        wire = self._wire_index
        self._wire_index = wire + 1
        spec = self.faults.for_message(wire)
        kind = spec.kind if spec is not None else ""
        if kind == "drop":
            return  # never arrives; the end-of-node barrier notices
        if kind == "reorder":
            # Held back: the next same-sender frame overtakes it and
            # trips the receiver's sequence-gap check.
            self._held[sender] = frame
            return
        if kind == "corrupt":
            frame = _corrupted(frame)
        elif kind == "truncate":
            frame = _truncated(frame)
        elif kind == "hang" and spec is not None:
            self.clock.advance(spec.ticks)
        self._deliver(frame)
        if kind == "duplicate":
            self._deliver(frame)

    def _deliver(self, frame: Frame) -> None:
        self.clock.advance(1)
        if self.deadline is not None and self.clock.now > self.deadline:
            raise TimeoutAbort(
                "deadline-expired",
                node=self.node,
                label=frame.label,
                party=frame.sender,
                tick=self.clock.now,
                deadline=self.deadline,
            )
        reason = verify_frame(frame)
        if reason:
            raise IntegrityAbort(
                reason,
                node=self.node,
                label=frame.label,
                seq=frame.seq,
                party=frame.sender,
                n_bytes=frame.length,
            )
        expected = self._expected[frame.sender]
        if frame.seq != expected:
            raise SequenceAbort(
                "sequence-gap" if frame.seq > expected
                else "sequence-replay",
                node=self.node,
                label=frame.label,
                seq=frame.seq,
                expected=expected,
                party=frame.sender,
            )
        if self.wire is not None:
            # Two-process mode: transmit own-role frames, block on and
            # cross-verify peer-role frames, before anything is
            # metered.  Transport control traffic is unmetered, so the
            # transcript stays byte-identical to the solo run.
            self.wire.exchange(frame)
        self._expected[frame.sender] = expected + 1
        metered = frame.n_bytes + (
            FRAME_HEADER_BYTES if self.meter_overhead else 0
        )
        self.transcript.send(frame.sender, metered, frame.label)

    # -- node scoping ----------------------------------------------------

    def begin_node(self, node_id: int, label: str = "") -> None:
        """Enter a plan node: arm its deadline and fire any node-scoped
        fault (a party crash) before work starts."""
        if self.process_faults is not None:
            self.process_faults.at_node(node_id)
        self.node = node_id
        self.node_label = label
        self.nodes_seen.append(node_id)
        self.deadline = self.clock.now + self.node_budget
        spec = self.faults.for_node(node_id)
        if spec is not None:
            raise PeerCrash(
                "peer-crashed",
                node=node_id,
                label=label,
                party=spec.party,
            )

    def end_node(self) -> None:
        """Leave a plan node; the barrier requires every sent frame to
        have been delivered (a dropped or held frame stalls the node
        until its deadline)."""
        try:
            self._barrier()
        finally:
            self.node = None
            self.node_label = ""
            self.deadline = None

    def finish(self) -> None:
        """End-of-run barrier for traffic outside any node."""
        self._barrier()

    def _barrier(self) -> None:
        for party in (ALICE, BOB):
            if self._expected[party] != self._seq[party]:
                if self.deadline is not None:
                    self.clock.advance_to(self.deadline + 1)
                raise TimeoutAbort(
                    "deadline-expired",
                    node=self.node,
                    label=self.node_label,
                    seq=self._seq[party],
                    expected=self._expected[party],
                    party=party,
                    tick=self.clock.now,
                    deadline=self.deadline,
                )

    # -- checkpointing ---------------------------------------------------

    def commit_checkpoint(
        self, step: "Step", checkpoint: "Checkpoint"
    ) -> None:
        """Durable commit of one supervisor capture: journal the
        checkpoint (fsync'd), then — and only then — send the peer a
        durable ACK carrying the committed expected counters.  Acking
        at commit time is what makes the peer's outbox a complete
        replay source after any crash on this side."""
        if self.durable is not None:
            self.durable.save_checkpoint(step.id, checkpoint)
            if self.wire is not None:
                self.wire.ack(dict(self._expected))

    def __getstate__(self) -> Dict[str, object]:
        """Pickled sessions (durable checkpoints) drop the
        process-local hooks: sockets, journal file handles and chaos
        hooks neither pickle nor belong to the resumed process."""
        state = self.__dict__.copy()
        state["wire"] = None
        state["durable"] = None
        state["process_faults"] = None
        return state

    def state(self) -> SessionState:
        return SessionState(
            seq=dict(self._seq), expected=dict(self._expected)
        )

    def rollback(self, state: SessionState) -> None:
        """Rewind the channel counters to a checkpoint.  Held frames
        are discarded and the node scope cleared; the wire index and
        the virtual clock keep advancing (see the module docstring)."""
        self._seq = dict(state.seq)
        self._expected = dict(state.expected)
        self._held.clear()
        self.node = None
        self.node_label = ""
        self.deadline = None


def enable_session(
    ctx: "Context",
    faults: Optional[FaultPlan] = None,
    **kwargs: object,
) -> Session:
    """Attach a session to a context; every subsequent ``ctx.send``
    routes through it.  Returns the session."""
    session = Session(ctx.transcript, faults=faults, **kwargs)  # type: ignore[arg-type]
    ctx.session = session
    return session
