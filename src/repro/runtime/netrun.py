"""Two-process query execution: ``repro net``.

One OS process per party, a real TCP socket between them
(:mod:`repro.runtime.transport`), and a disk journal under the
supervisor's checkpoints (:mod:`repro.runtime.durable`).  Both parties
run the same deterministic orchestration from the same seed (the
lockstep mirror model — see the transport module docstring); the
invariant this module exists to enforce is that the *result rows* and
the *transcript fingerprint* of a two-process run — faulted, killed,
reconnected, resumed — are byte-identical to the solo in-process run.

Flow of a party::

    config -> dataset/plan (deterministic)   [fresh and resume alike]
    fresh : context + engine + session, DurableStore.create
    resume: DurableStore.load -> revive(newest checkpoint)
    wire  : SocketTransport.attach + start (handshake reconciles the
            journal position against the peer's expected counters)
    run   : Scheduler.run(..., env=revived, start_at=checkpoint.step)
    finish: session.finish barrier, profile, KIND_DONE record, BYE

Net mode pins ``max_attempts=1``: an in-node supervisor retry would
re-run a node on one process while the peer's mirror stays put,
desynchronising the frame streams — in two-process operation the
recovery path *is* restart + ``--resume`` over the journal.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..mpc.context import Mode
from ..mpc.transcript import ALICE, BOB
from .chaos import RunProfile, profile_run
from .durable import DurableStore, revive
from .session import DEFAULT_NODE_BUDGET, enable_session
from .supervisor import RetryPolicy
from .transport import ProcessFaults, ReconnectPolicy, SocketTransport

__all__ = [
    "NET_QUERIES",
    "NetConfig",
    "profile_to_json",
    "profile_from_json",
    "solo_profile",
    "run_party",
    "parse_endpoint",
    "fingerprint_sha256",
    "equal_to_baseline",
]

#: Queries ``repro net`` can run: the single-plan benchmarks (the
#: decomposed Q8/Q9 compose several plans per run and are out of scope
#: for the resume path).
NET_QUERIES = ("Q3", "Q10", "Q18")


@dataclass
class NetConfig:
    """Everything one party needs; both parties must agree on all
    protocol-visible fields (enforced by the handshake session id)."""

    role: str
    query: str = "Q3"
    scale_mb: float = 0.1
    seed: int = 7
    backend: str = "yannakakis"
    policy: str = "program"
    group_bits: int = 1536
    node_budget: int = DEFAULT_NODE_BUDGET
    listen: Optional[Tuple[str, int]] = None
    connect: Optional[Tuple[str, int]] = None
    journal: Optional[str] = None
    resume: bool = False
    reconnect: ReconnectPolicy = field(default_factory=ReconnectPolicy)
    heartbeat_s: float = 0.25
    idle_timeout_s: float = 10.0
    exchange_deadline_s: float = 120.0
    faults: Optional[ProcessFaults] = None

    def __post_init__(self) -> None:
        if self.role not in (ALICE, BOB):
            raise ValueError(f"unknown role {self.role!r}")
        if self.query.upper() not in NET_QUERIES:
            raise ValueError(
                f"net mode supports {NET_QUERIES}, not {self.query!r}"
            )
        self.query = self.query.upper()

    @property
    def session_id(self) -> str:
        """Digest of every protocol-visible knob: the handshake rejects
        a peer configured for a different run."""
        blob = (
            f"{self.query}|{self.scale_mb}|{self.seed}|{self.backend}"
            f"|{self.policy}|{self.group_bits}|{self.node_budget}"
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def meta(self) -> Dict[str, Any]:
        """The journal's meta record: enough to rebuild the public
        plan structures deterministically on resume."""
        return {
            "role": self.role,
            "query": self.query,
            "scale_mb": self.scale_mb,
            "seed": self.seed,
            "backend": self.backend,
            "policy": self.policy,
            "group_bits": self.group_bits,
            "node_budget": self.node_budget,
            "session_id": self.session_id,
        }


def profile_to_json(profile: RunProfile) -> Dict[str, Any]:
    return {
        "rows": [list(r) for r in profile.rows],
        "bytes_by_section": [list(r) for r in profile.bytes_by_section],
        "rounds_by_section": [list(r) for r in profile.rounds_by_section],
        "fingerprint": [list(r) for r in profile.fingerprint],
        "n_messages": profile.n_messages,
        "nodes_seen": list(profile.nodes_seen),
        "n_retries": profile.n_retries,
    }


def profile_from_json(d: Dict[str, Any]) -> RunProfile:
    return RunProfile(
        rows=tuple((str(a), int(b)) for a, b in d["rows"]),
        bytes_by_section=tuple(
            (str(a), int(b)) for a, b in d["bytes_by_section"]
        ),
        rounds_by_section=tuple(
            (str(a), int(b)) for a, b in d["rounds_by_section"]
        ),
        fingerprint=tuple(
            (str(a), int(b), str(c)) for a, b, c in d["fingerprint"]
        ),
        n_messages=int(d["n_messages"]),
        nodes_seen=tuple(int(n) for n in d["nodes_seen"]),
        n_retries=int(d["n_retries"]),
    )


# -- deterministic (re)construction of the public run structure --------


def _prepared(config: NetConfig) -> Any:
    from ..tpch import PREPARED, generate

    dataset = generate(config.scale_mb)
    return PREPARED[config.query](dataset)


def _compiled(query_obj: Any, engine: Any) -> Tuple[Any, Any, Dict[str, Any]]:
    """(yannakakis plan, exec plan, secure inputs) for one run — the
    exact structures ``run_secure`` builds, exposed so the resume path
    can drive the scheduler directly."""
    from ..exec import compile_plan

    inputs = query_obj.secure_inputs()
    plan = query_obj.plan()
    exec_plan = compile_plan(
        plan,
        owners={name: rel.owner for name, rel in inputs.items()},
        input_order=list(inputs),
        reveal_result=True,
        backends=query_obj._effective_backends(engine),
    )
    return plan, exec_plan, inputs


def _reveal(ctx: Any, plan: Any, env: Dict[str, Any]) -> Any:
    """The post-scheduler tail of ``secure_yannakakis``: assemble the
    revealed result relation from the final slot environment."""
    from ..core.protocol import _finish

    shared, values = env["output"]
    result, _stats = _finish(ctx, plan, shared, values, 0.0, 0)
    return result


def solo_profile(config: NetConfig) -> RunProfile:
    """The unfaulted single-process baseline for this configuration —
    what both parties of a two-process run must reproduce exactly."""
    from ..mpc.engine import Engine

    prepared = _prepared(config)
    ctx = prepared.make_context(Mode.SIMULATED, seed=config.seed)
    engine = Engine(
        ctx, config.group_bits, exec_policy=config.policy
    )
    engine.backend = config.backend
    session = enable_session(
        ctx, None, node_budget=config.node_budget, seed=config.seed
    )
    result, _ = prepared.run_secure(engine)
    session.finish()
    return profile_run(ctx, session, result)


# -- one party's run ---------------------------------------------------


def run_party(config: NetConfig) -> Dict[str, Any]:
    """Execute one party end to end (fresh or resumed).  Returns the
    outcome payload ``repro net`` serialises: the run profile, the
    transport statistics and the resume position (if any).

    Raises whatever the run raises — the CLI maps sanitized
    :class:`~repro.runtime.aborts.ProtocolAbort` to a clean-abort exit
    code; anything else is a hard failure."""
    from ..exec import Scheduler
    from ..mpc.engine import Engine

    prepared = _prepared(config)
    build = prepared._build
    if build is None:  # pragma: no cover - guarded by NET_QUERIES
        raise ValueError(f"{config.query} has no single-plan build")
    query_obj = build()

    resumed_from: Optional[int] = None
    store: Optional[DurableStore] = None
    if config.resume:
        if not config.journal:
            raise ValueError("--resume needs a journal path")
        state = DurableStore.load(config.journal)
        if state.done is not None:
            # Idempotent: the previous incarnation already finished
            # and journalled its profile.
            return dict(state.done, already_done=True)
        if state.meta.get("session_id") != config.session_id:
            raise ValueError(
                "journal belongs to a different run configuration"
            )
        latest = state.latest
        if latest is None:
            raise ValueError(
                f"journal {config.journal!r} has no committed "
                "checkpoint to resume from"
            )
        step_id, blob = latest
        engine, session, env, _checkpoint = revive(blob)
        ctx = engine.ctx
        resumed_from = step_id
        store = DurableStore.append_to(config.journal)
    else:
        ctx = prepared.make_context(Mode.SIMULATED, seed=config.seed)
        engine = Engine(
            ctx, config.group_bits, exec_policy=config.policy
        )
        engine.backend = config.backend
        session = enable_session(
            ctx, None, node_budget=config.node_budget, seed=config.seed
        )
        env = {}
        if config.journal:
            store = DurableStore.create(config.journal, config.meta())

    # Net mode fails closed on in-node faults: recovery is --resume.
    session.retry_policy = RetryPolicy(max_attempts=1)
    session.durable = store
    session.process_faults = config.faults

    plan, exec_plan, inputs = _compiled(query_obj, engine)

    transport: Optional[SocketTransport] = None
    if config.listen is not None or config.connect is not None:
        transport = SocketTransport(
            role=config.role,
            session_id=config.session_id,
            listen=config.listen,
            connect=config.connect,
            reconnect=config.reconnect,
            faults=config.faults,
            seed=config.seed,
            heartbeat_s=config.heartbeat_s,
            idle_timeout_s=config.idle_timeout_s,
            exchange_deadline_s=config.exchange_deadline_s,
        )
        transport.attach(session)
        transport.start()

    try:
        env = Scheduler(engine).run(
            exec_plan, inputs, env=env, start_at=resumed_from
        )
        result = _reveal(ctx, plan, env)
        session.finish()
        if transport is not None:
            # Linger until the peer is done too (or provably gone):
            # a killed peer's resume still needs our handshake replay.
            transport.finish_barrier()
    finally:
        if transport is not None:
            transport.close()

    profile = profile_run(ctx, session, result)
    outcome: Dict[str, Any] = {
        "status": "done",
        "role": config.role,
        "query": config.query,
        "resumed_from": resumed_from,
        "profile": profile_to_json(profile),
        "transport": dict(transport.stats) if transport else None,
        "checkpoints_committed": store.n_commits if store else 0,
    }
    if store is not None:
        store.save_done(outcome)
        store.close()
    return outcome


def parse_endpoint(text: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (for the CLI)."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected host:port, got {text!r}")
    return host, int(port)


def fingerprint_sha256(profile: RunProfile) -> str:
    """Stable digest of a transcript fingerprint, for log-friendly
    parity checks across processes."""
    blob = json.dumps(
        [list(r) for r in profile.fingerprint], sort_keys=True
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def equal_to_baseline(
    outcome: Dict[str, Any], baseline: RunProfile
) -> str:
    """'' when an outcome's profile matches the baseline, else the
    first material difference."""
    profile = profile_from_json(outcome["profile"])
    return profile.diff(baseline)
