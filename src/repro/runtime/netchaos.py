"""Process-level chaos: kill, drop, stall and partition real parties.

The PR-5 chaos harness perturbs *frames* inside one process; this one
perturbs *processes and sockets*.  Every scenario launches the two
parties of a query as separate OS processes (``python -m repro net``)
talking TCP over localhost, injects exactly one process-level fault
into one of them, lets the built-in recovery machinery do its work —
transparent reconnect for connection faults, restart + ``--resume``
over the durable journal for kills — and classifies the outcome
against the solo in-process baseline:

* ``completed-correct`` — both parties finished (the killed one after
  a resume) and **both** run profiles are byte-equal to the baseline:
  same rows, same per-section accounting, same transcript fingerprint;
* ``clean-abort`` — at least one party ended with a sanitized
  :class:`~repro.runtime.aborts.ProtocolAbort` (exit code 2) and no
  party produced a wrong answer;
* ``VIOLATION`` — anything else: profile drift, an unsanitized error,
  a hung scenario, an unexpected exit code.

The acceptance gate (``repro chaos --level process``) requires zero
VIOLATIONs across kills at every plan node plus connection faults at
strided wire-exchange indices.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..mpc.transcript import ALICE, BOB
from .aborts import REASONS
from .chaos import RunProfile
from .netrun import (
    NetConfig,
    fingerprint_sha256,
    profile_from_json,
    solo_profile,
)
from .transport import free_port

__all__ = [
    "PROCESS_FAULT_KINDS",
    "ProcessFaultSpec",
    "ProcessOutcome",
    "ProcessChaosReport",
    "build_process_specs",
    "run_scenario",
    "sweep_processes",
]

#: Fault kinds the process-level sweep injects.  ``kill-node`` /
#: ``kill-wire`` SIGKILL one party (recovered via ``--resume``);
#: ``drop`` force-closes the TCP connection once; ``stall`` freezes
#: one party mid-exchange; ``partition`` drops the connection *and*
#: freezes, so both reconnect paths exercise their backoff.
PROCESS_FAULT_KINDS = (
    "kill-node",
    "kill-wire",
    "drop",
    "stall",
    "partition",
)


@dataclass(frozen=True)
class ProcessFaultSpec:
    """One process-level fault, fully determined by its fields."""

    kind: str
    party: str = BOB
    node: Optional[int] = None  #: plan-node id for ``kill-node``
    wire: Optional[int] = None  #: wire-exchange index for the rest
    ms: int = 400  #: stall/partition duration

    def __post_init__(self) -> None:
        if self.kind not in PROCESS_FAULT_KINDS:
            raise ValueError(f"unknown process fault {self.kind!r}")
        if self.kind == "kill-node" and self.node is None:
            raise ValueError("kill-node needs a node id")
        if self.kind != "kill-node" and self.wire is None:
            raise ValueError(f"{self.kind} needs a wire index")

    @property
    def is_kill(self) -> bool:
        return self.kind in ("kill-node", "kill-wire")

    def flags(self) -> List[str]:
        """CLI flags injecting this fault into the target party."""
        if self.kind == "kill-node":
            return ["--kill-at-node", str(self.node)]
        if self.kind == "kill-wire":
            return ["--kill-at-wire", str(self.wire)]
        if self.kind == "drop":
            return ["--drop-at-wire", str(self.wire)]
        if self.kind == "stall":
            return [
                "--stall-at-wire", str(self.wire),
                "--stall-ms", str(self.ms),
            ]
        return [
            "--partition-at-wire", str(self.wire),
            "--partition-ms", str(self.ms),
        ]

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "party": self.party,
            "node": self.node,
            "wire": self.wire,
            "ms": self.ms,
        }

    def __str__(self) -> str:
        where = []
        if self.node is not None:
            where.append(f"node={self.node}")
        if self.wire is not None:
            where.append(f"wire={self.wire}")
        where.append(f"party={self.party}")
        return f"{self.kind}({', '.join(where)})"


@dataclass
class ProcessOutcome:
    """Classification of one two-process scenario."""

    fault: Optional[ProcessFaultSpec]
    classification: str
    detail: str = ""
    resumed: bool = False
    reconnects: int = 0
    abort: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "fault": self.fault.to_json() if self.fault else None,
            "classification": self.classification,
            "detail": self.detail,
            "resumed": self.resumed,
            "reconnects": self.reconnects,
            "abort": self.abort,
        }

    def __str__(self) -> str:
        extra = f": {self.detail}" if self.detail else ""
        tags = []
        if self.resumed:
            tags.append("resumed")
        if self.reconnects:
            tags.append(f"reconnects={self.reconnects}")
        suffix = f" [{', '.join(tags)}]" if tags else ""
        return (
            f"{self.fault or 'no-fault'} -> "
            f"{self.classification}{suffix}{extra}"
        )


@dataclass
class ProcessChaosReport:
    """One process-level sweep's outcomes."""

    outcomes: List[ProcessOutcome] = field(default_factory=list)
    baseline_messages: int = 0
    baseline_nodes: int = 0
    baseline_fingerprint: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def counts(self) -> Dict[str, int]:
        out = {
            "completed-correct": 0, "clean-abort": 0, "VIOLATION": 0
        }
        for o in self.outcomes:
            out[o.classification] += 1
        return out

    @property
    def violations(self) -> List[ProcessOutcome]:
        return [
            o for o in self.outcomes if o.classification == "VIOLATION"
        ]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        c = self.counts
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"{status}: {len(self.outcomes)} process-fault scenarios "
            f"over {self.baseline_messages} messages / "
            f"{self.baseline_nodes} nodes — "
            f"{c['completed-correct']} completed-correct, "
            f"{c['clean-abort']} clean-abort, "
            f"{c['VIOLATION']} violations"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "meta": dict(self.meta),
            "baseline_messages": self.baseline_messages,
            "baseline_nodes": self.baseline_nodes,
            "baseline_fingerprint": self.baseline_fingerprint,
            "counts": self.counts,
            "ok": self.ok,
            "outcomes": [o.to_json() for o in self.outcomes],
        }


def build_process_specs(
    baseline: RunProfile,
    kinds: Sequence[str] = PROCESS_FAULT_KINDS,
    stride: int = 6,
    fault_ms: int = 400,
) -> List[ProcessFaultSpec]:
    """The sweep's scenarios: a kill at every plan node (the killed
    party alternating with node parity), and every ``stride``-th
    wire-exchange index for the connection-level kinds."""
    specs: List[ProcessFaultSpec] = []
    for kind in kinds:
        if kind == "kill-node":
            for node in baseline.nodes_seen:
                specs.append(
                    ProcessFaultSpec(
                        "kill-node",
                        node=node,
                        party=ALICE if node % 2 else BOB,
                    )
                )
            continue
        for wire in range(0, baseline.n_messages, max(stride, 1)):
            specs.append(
                ProcessFaultSpec(
                    kind,
                    wire=wire,
                    party=ALICE if (wire // max(stride, 1)) % 2 else BOB,
                    ms=fault_ms,
                )
            )
    return specs


# -- scenario execution ------------------------------------------------


def _src_env() -> Dict[str, str]:
    """Subprocess environment with ``repro``'s source tree importable."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src + os.pathsep + existing if existing else src
    )
    return env


def _party_cmd(
    config: NetConfig,
    role: str,
    endpoint: str,
    journal: str,
    out: str,
    fault: Optional[ProcessFaultSpec],
    resume: bool = False,
    python: str = sys.executable,
) -> List[str]:
    cmd = [
        python, "-m", "repro", "net",
        "--role", role,
        "--listen" if role == ALICE else "--connect", endpoint,
        "--query", config.query,
        "--scale", str(config.scale_mb),
        "--seed", str(config.seed),
        "--backend", config.backend,
        "--policy", config.policy,
        "--journal", journal,
        "--out", out,
        "--heartbeat", str(config.heartbeat_s),
        "--idle-timeout", str(config.idle_timeout_s),
        "--exchange-deadline", str(config.exchange_deadline_s),
    ]
    if resume:
        cmd.append("--resume")
    elif fault is not None and fault.party == role:
        cmd.extend(fault.flags())
    return cmd


def _read_outcome(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path) as fh:
            out = json.load(fh)
        return out if isinstance(out, dict) else None
    except (OSError, json.JSONDecodeError):
        return None


def run_scenario(
    config: NetConfig,
    baseline: RunProfile,
    fault: Optional[ProcessFaultSpec],
    workdir: str,
    timeout_s: float = 120.0,
    python: str = sys.executable,
) -> ProcessOutcome:
    """Launch both parties, inject ``fault``, recover, classify."""
    os.makedirs(workdir, exist_ok=True)
    port = free_port()
    endpoint = f"127.0.0.1:{port}"
    env = _src_env()
    paths = {
        role: {
            "journal": os.path.join(workdir, f"{role}.journal"),
            "out": os.path.join(workdir, f"{role}.json"),
            "log": os.path.join(workdir, f"{role}.log"),
        }
        for role in (ALICE, BOB)
    }

    procs: Dict[str, subprocess.Popen] = {}
    logs = []
    resumed = False
    try:
        for role in (ALICE, BOB):
            log = open(paths[role]["log"], "w")
            logs.append(log)
            procs[role] = subprocess.Popen(
                _party_cmd(
                    config, role, endpoint, paths[role]["journal"],
                    paths[role]["out"], fault, python=python,
                ),
                stdout=log, stderr=subprocess.STDOUT, env=env,
            )
        deadline = time.monotonic() + timeout_s

        if fault is not None and fault.is_kill:
            victim = procs[fault.party]
            try:
                victim.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                return ProcessOutcome(
                    fault, "VIOLATION",
                    detail="faulted party never died",
                )
            if victim.returncode != -9:
                return ProcessOutcome(
                    fault, "VIOLATION",
                    detail=(
                        "faulted party exited "
                        f"{victim.returncode}, expected SIGKILL"
                    ),
                )
            # Restart the killed party from its journal.
            log = open(paths[fault.party]["log"], "a")
            logs.append(log)
            procs[fault.party] = subprocess.Popen(
                _party_cmd(
                    config, fault.party, endpoint,
                    paths[fault.party]["journal"],
                    paths[fault.party]["out"], fault,
                    resume=True, python=python,
                ),
                stdout=log, stderr=subprocess.STDOUT, env=env,
            )
            resumed = True

        for role in (ALICE, BOB):
            remaining = deadline - time.monotonic()
            try:
                procs[role].wait(timeout=max(remaining, 1.0))
            except subprocess.TimeoutExpired:
                return ProcessOutcome(
                    fault, "VIOLATION",
                    detail=f"{role} hung past {timeout_s:.0f}s",
                    resumed=resumed,
                )
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        for log in logs:
            log.close()

    outcomes = {
        role: _read_outcome(paths[role]["out"]) for role in (ALICE, BOB)
    }
    codes = {role: procs[role].returncode for role in (ALICE, BOB)}
    reconnects = sum(
        (o or {}).get("transport", {}).get("reconnects", 0) or 0
        for o in outcomes.values()
        if isinstance((o or {}).get("transport"), dict)
    )

    aborts = [
        (role, outcomes[role])
        for role in (ALICE, BOB)
        if codes[role] == 2
    ]
    hard = [
        role for role in (ALICE, BOB) if codes[role] not in (0, 2)
    ]
    if hard:
        return ProcessOutcome(
            fault, "VIOLATION",
            detail=(
                "unexpected exit codes "
                + ", ".join(f"{r}={codes[r]}" for r in hard)
            ),
            resumed=resumed, reconnects=reconnects,
        )

    # Any completed party must match the baseline exactly, abort or not.
    for role in (ALICE, BOB):
        if codes[role] != 0:
            continue
        out = outcomes[role]
        if out is None or "profile" not in out:
            return ProcessOutcome(
                fault, "VIOLATION",
                detail=f"{role} exited 0 without a result payload",
                resumed=resumed, reconnects=reconnects,
            )
        drift = profile_from_json(out["profile"]).diff(baseline)
        if drift:
            return ProcessOutcome(
                fault, "VIOLATION",
                detail=f"{role}: {drift}",
                resumed=resumed, reconnects=reconnects,
            )

    if aborts:
        role, out = aborts[0]
        abort = (out or {}).get("abort")
        reason = (abort or {}).get("reason")
        if not isinstance(abort, dict) or reason not in REASONS:
            return ProcessOutcome(
                fault, "VIOLATION",
                detail=f"{role} aborted without a sanitized reason",
                resumed=resumed, reconnects=reconnects, abort=abort,
            )
        return ProcessOutcome(
            fault, "clean-abort",
            detail=f"{role}: {reason}",
            resumed=resumed, reconnects=reconnects, abort=abort,
        )

    return ProcessOutcome(
        fault, "completed-correct",
        resumed=resumed, reconnects=reconnects,
    )


def sweep_processes(
    config: NetConfig,
    kinds: Sequence[str] = PROCESS_FAULT_KINDS,
    stride: int = 6,
    workdir: str = ".",
    timeout_s: float = 120.0,
    fault_ms: int = 400,
    python: str = sys.executable,
    on_progress: Optional[
        Callable[[int, int, ProcessOutcome], None]
    ] = None,
) -> ProcessChaosReport:
    """Baseline solo, smoke the no-fault two-process run, then
    classify every scenario from :func:`build_process_specs`."""
    baseline = solo_profile(config)
    specs: List[Optional[ProcessFaultSpec]] = [None]
    specs.extend(
        build_process_specs(
            baseline, kinds=kinds, stride=stride, fault_ms=fault_ms
        )
    )
    report = ProcessChaosReport(
        baseline_messages=baseline.n_messages,
        baseline_nodes=len(baseline.nodes_seen),
        baseline_fingerprint=fingerprint_sha256(baseline),
    )
    for i, spec in enumerate(specs):
        scenario_dir = os.path.join(
            workdir, f"scenario-{i:03d}" if spec else "scenario-base"
        )
        outcome = run_scenario(
            config, baseline, spec, scenario_dir,
            timeout_s=timeout_s, python=python,
        )
        report.outcomes.append(outcome)
        if on_progress is not None:
            on_progress(i + 1, len(specs), outcome)
    return report
