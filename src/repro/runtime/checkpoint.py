"""Node-granular checkpoints of secret-share state.

Before each plan node the supervisor captures everything a retry must
rewind:

* the **slot environment** (secret-shared relations, factors, the
  joined table …) — deep-copied;
* the **engine state** (OT back-ends carry one-time base-OT phases and
  batch counters; re-running a node without rewinding them would charge
  different bytes than the unfaulted run) — deep-copied with the
  context, tracer and run cache shared, not cloned;
* the **transcript position** (message count, last sender, round
  count) via ``Transcript.state``;
* the **session channel counters** via ``Session.state``;
* the **trace length**, so a failed attempt's node record is dropped.

``restore`` rewinds all five in place.  The checkpoint keeps its own
private deep copies, so a node can be restored more than once (bounded
by the retry policy).
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any, Dict, Optional

from ..mpc.transcript import Transcript, TranscriptState
from .session import Session, SessionState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.trace import ExecutionTrace
    from ..mpc.engine import Engine

__all__ = ["Checkpoint"]

#: Engine attributes that are coordination plumbing, not protocol
#: state: never captured or restored.  ``yield_hook`` is the serving
#: layer's baton callback — it closes over scheduler machinery
#: (threads, events) that neither pickles nor belongs in a retry.
_COORDINATION_FIELDS = frozenset({"yield_hook"})


class Checkpoint:
    """A restorable snapshot taken immediately before one plan node."""

    def __init__(
        self,
        step_id: int,
        env: Dict[str, Any],
        engine_state: Dict[str, Any],
        transcript_state: TranscriptState,
        session_state: SessionState,
        n_trace_nodes: int,
    ) -> None:
        self.step_id = step_id
        self._env = env
        self._engine_state = engine_state
        self._transcript_state = transcript_state
        self._session_state = session_state
        self._n_trace_nodes = n_trace_nodes

    @staticmethod
    def _shared_memo(engine: "Engine") -> Dict[int, Any]:
        """Deep-copy memo pinning run-global objects: the context (its
        transcript/rng/cache are rewound separately or deliberately
        shared) and the tracer."""
        memo: Dict[int, Any] = {id(engine.ctx): engine.ctx}
        tracer = getattr(engine, "tracer", None)
        if tracer is not None:
            memo[id(tracer)] = tracer
        return memo

    @classmethod
    def capture(
        cls,
        step_id: int,
        env: Dict[str, Any],
        engine: "Engine",
        session: Session,
        trace: Optional["ExecutionTrace"] = None,
    ) -> "Checkpoint":
        memo = cls._shared_memo(engine)
        return cls(
            step_id=step_id,
            env=copy.deepcopy(env, memo),
            engine_state=copy.deepcopy(
                {
                    k: v
                    for k, v in engine.__dict__.items()
                    if k not in _COORDINATION_FIELDS
                },
                memo,
            ),
            transcript_state=session.transcript.state(),
            session_state=session.state(),
            n_trace_nodes=len(trace.nodes) if trace is not None else 0,
        )

    def restore(
        self,
        env: Dict[str, Any],
        engine: "Engine",
        session: Session,
        trace: Optional["ExecutionTrace"] = None,
    ) -> None:
        memo = self._shared_memo(engine)
        env.clear()
        env.update(copy.deepcopy(self._env, memo))
        engine.__dict__.update(
            copy.deepcopy(self._engine_state, memo)
        )
        session.transcript.rollback(self._transcript_state)
        session.rollback(self._session_state)
        if trace is not None:
            del trace.nodes[self._n_trace_nodes:]
