"""Fault-tolerant session layer for the secure pipeline.

Framed, sequence-numbered, checksummed messaging over the metered
channel; deterministic fault injection; typed protocol aborts;
node-granular checkpoint/retry; the chaos-sweep harness; and the
two-process execution stack — real TCP transport with reconnect
(:mod:`.transport`), disk-durable crash recovery (:mod:`.durable`),
the ``repro net`` party runner (:mod:`.netrun`) and the process-level
chaos sweep (:mod:`.netchaos`).  See ``docs/ROBUSTNESS.md``.
"""

from .aborts import (
    REASONS,
    IntegrityAbort,
    PeerCrash,
    ProtocolAbort,
    SequenceAbort,
    TimeoutAbort,
    TransportAbort,
)
from .chaos import (
    CLASSIFICATIONS,
    ChaosOutcome,
    ChaosReport,
    RunProfile,
    build_specs,
    classify_fault,
    make_tpch_runner,
    profile_run,
    sweep,
)
from .clock import VirtualClock
from .durable import DurableStore, Journal, JournalState, revive
from .faults import (
    FAULT_KINDS,
    MESSAGE_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    perturb_share,
)
from .framing import FRAME_HEADER_BYTES, FRAME_MAGIC, Frame
from .session import (
    DEFAULT_NODE_BUDGET,
    Session,
    SessionState,
    enable_session,
)
from .netchaos import (
    PROCESS_FAULT_KINDS,
    ProcessChaosReport,
    ProcessFaultSpec,
    ProcessOutcome,
    build_process_specs,
    run_scenario,
    sweep_processes,
)
from .netrun import (
    NET_QUERIES,
    NetConfig,
    fingerprint_sha256,
    parse_endpoint,
    run_party,
    solo_profile,
)
from .supervisor import RetryPolicy, Supervisor
from .transport import (
    ProcessFaults,
    ReconnectPolicy,
    SocketTransport,
    free_port,
)

__all__ = [
    "REASONS",
    "ProtocolAbort",
    "IntegrityAbort",
    "SequenceAbort",
    "TimeoutAbort",
    "PeerCrash",
    "TransportAbort",
    "VirtualClock",
    "FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "perturb_share",
    "FRAME_MAGIC",
    "FRAME_HEADER_BYTES",
    "Frame",
    "DEFAULT_NODE_BUDGET",
    "Session",
    "SessionState",
    "enable_session",
    "RetryPolicy",
    "Supervisor",
    "CLASSIFICATIONS",
    "RunProfile",
    "ChaosOutcome",
    "ChaosReport",
    "profile_run",
    "build_specs",
    "classify_fault",
    "sweep",
    "make_tpch_runner",
    "Journal",
    "JournalState",
    "DurableStore",
    "revive",
    "SocketTransport",
    "ReconnectPolicy",
    "ProcessFaults",
    "free_port",
    "NET_QUERIES",
    "NetConfig",
    "solo_profile",
    "run_party",
    "parse_endpoint",
    "fingerprint_sha256",
    "PROCESS_FAULT_KINDS",
    "ProcessFaultSpec",
    "ProcessOutcome",
    "ProcessChaosReport",
    "build_process_specs",
    "run_scenario",
    "sweep_processes",
]
