"""Fault-tolerant session layer for the secure pipeline.

Framed, sequence-numbered, checksummed messaging over the metered
channel; deterministic fault injection; typed protocol aborts;
node-granular checkpoint/retry; and the chaos-sweep harness.  See
``docs/ROBUSTNESS.md``.
"""

from .aborts import (
    REASONS,
    IntegrityAbort,
    PeerCrash,
    ProtocolAbort,
    SequenceAbort,
    TimeoutAbort,
)
from .chaos import (
    CLASSIFICATIONS,
    ChaosOutcome,
    ChaosReport,
    RunProfile,
    build_specs,
    classify_fault,
    make_tpch_runner,
    profile_run,
    sweep,
)
from .clock import VirtualClock
from .faults import (
    FAULT_KINDS,
    MESSAGE_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    perturb_share,
)
from .framing import FRAME_HEADER_BYTES, FRAME_MAGIC, Frame
from .session import (
    DEFAULT_NODE_BUDGET,
    Session,
    SessionState,
    enable_session,
)
from .supervisor import RetryPolicy, Supervisor

__all__ = [
    "REASONS",
    "ProtocolAbort",
    "IntegrityAbort",
    "SequenceAbort",
    "TimeoutAbort",
    "PeerCrash",
    "VirtualClock",
    "FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "perturb_share",
    "FRAME_MAGIC",
    "FRAME_HEADER_BYTES",
    "Frame",
    "DEFAULT_NODE_BUDGET",
    "Session",
    "SessionState",
    "enable_session",
    "RetryPolicy",
    "Supervisor",
    "CLASSIFICATIONS",
    "RunProfile",
    "ChaosOutcome",
    "ChaosReport",
    "profile_run",
    "build_specs",
    "classify_fault",
    "sweep",
    "make_tpch_runner",
]
