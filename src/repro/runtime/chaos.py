"""The chaos-sweep harness: every message is a fault point.

A sweep first runs the query **unfaulted** (session enabled, no fault
plan) to obtain the baseline :class:`RunProfile` — canonical output
rows, per-section byte/round accounting and the full transcript
fingerprint — then re-runs it once per fault point and classifies each
run:

* ``completed-correct`` — the run finished and its profile is
  byte-equal to the baseline (retried-after-fault runs must land here:
  same output, same accounting, same fingerprint);
* ``clean-abort`` — the run raised a sanitized
  :class:`~repro.runtime.aborts.ProtocolAbort`;
* ``VIOLATION`` — anything else: a wrong answer, a profile drift, an
  uncaught exception, or an abort carrying non-public payload.

The acceptance gate (``repro chaos --query q3 --scale tiny --sweep
all``) requires zero VIOLATIONs over the full cross product of message
indices × message-fault kinds, plus a party crash at every plan node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..mpc.transcript import ALICE, BOB
from .aborts import ProtocolAbort
from .faults import MESSAGE_FAULT_KINDS, FaultPlan, FaultSpec
from .session import DEFAULT_NODE_BUDGET, Session, enable_session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpc.context import Context

__all__ = [
    "CLASSIFICATIONS",
    "RunProfile",
    "ChaosOutcome",
    "ChaosReport",
    "profile_run",
    "classify_fault",
    "sweep",
    "make_tpch_runner",
]

CLASSIFICATIONS = ("completed-correct", "clean-abort", "VIOLATION")

#: A runner executes the query once under the given fault plan and
#: returns the run's profile (raising whatever the run raises).
Runner = Callable[[FaultPlan], "RunProfile"]


@dataclass(frozen=True)
class RunProfile:
    """Everything two runs must agree on to be 'the same run'."""

    rows: Tuple[Tuple[str, int], ...]
    bytes_by_section: Tuple[Tuple[str, int], ...]
    rounds_by_section: Tuple[Tuple[str, int], ...]
    fingerprint: Tuple[Tuple[str, int, str], ...]
    n_messages: int
    nodes_seen: Tuple[int, ...]
    n_retries: int

    def diff(self, other: "RunProfile") -> str:
        """First material difference against a baseline ("" if equal;
        retry counts and wire indices are run-local, not compared)."""
        if self.rows != other.rows:
            return "output rows differ"
        if self.bytes_by_section != other.bytes_by_section:
            return "per-section byte accounting differs"
        if self.rounds_by_section != other.rounds_by_section:
            return "per-section round accounting differs"
        if self.fingerprint != other.fingerprint:
            return "transcript fingerprint differs"
        return ""


def profile_run(
    ctx: "Context", session: Session, result: Iterable[Tuple[Any, Any]]
) -> RunProfile:
    rows = tuple(
        sorted((str(row), int(value)) for row, value in result)
    )
    t = ctx.transcript
    return RunProfile(
        rows=rows,
        bytes_by_section=tuple(sorted(t.bytes_by_section().items())),
        rounds_by_section=tuple(sorted(t.rounds_by_section().items())),
        fingerprint=t.fingerprint(),
        n_messages=len(t.messages),
        nodes_seen=tuple(session.nodes_seen),
        n_retries=session.n_retries,
    )


@dataclass
class ChaosOutcome:
    """Classification of one faulted run."""

    fault: FaultSpec
    classification: str
    detail: str = ""
    abort: Optional[Dict[str, Any]] = None
    retried: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "fault": self.fault.to_json(),
            "classification": self.classification,
            "detail": self.detail,
            "abort": self.abort,
            "retried": self.retried,
        }

    def __str__(self) -> str:
        extra = f": {self.detail}" if self.detail else ""
        retried = " [retried]" if self.retried else ""
        return f"{self.fault} -> {self.classification}{retried}{extra}"


@dataclass
class ChaosReport:
    """One sweep's outcomes plus the baseline it judged against."""

    outcomes: List[ChaosOutcome] = field(default_factory=list)
    baseline_messages: int = 0
    baseline_nodes: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def counts(self) -> Dict[str, int]:
        out = {c: 0 for c in CLASSIFICATIONS}
        for o in self.outcomes:
            out[o.classification] += 1
        return out

    @property
    def violations(self) -> List[ChaosOutcome]:
        return [
            o for o in self.outcomes if o.classification == "VIOLATION"
        ]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        c = self.counts
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"{status}: {len(self.outcomes)} fault points over "
            f"{self.baseline_messages} messages / "
            f"{self.baseline_nodes} nodes — "
            f"{c['completed-correct']} completed-correct, "
            f"{c['clean-abort']} clean-abort, "
            f"{c['VIOLATION']} violations"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "meta": dict(self.meta),
            "baseline_messages": self.baseline_messages,
            "baseline_nodes": self.baseline_nodes,
            "counts": self.counts,
            "ok": self.ok,
            "outcomes": [o.to_json() for o in self.outcomes],
        }


def classify_fault(
    run: Runner, baseline: RunProfile, spec: FaultSpec
) -> ChaosOutcome:
    """Run once with ``spec`` injected and classify the outcome."""
    try:
        profile = run(FaultPlan([spec]))
    except ProtocolAbort as abort:
        if abort.is_sanitized():
            return ChaosOutcome(
                spec, "clean-abort",
                detail=str(abort), abort=abort.to_json(),
            )
        return ChaosOutcome(
            spec, "VIOLATION",
            detail=f"unsanitized abort {type(abort).__name__}",
            abort=abort.to_json(),
        )
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        # A fault surfacing as anything but a ProtocolAbort is exactly
        # the failure mode the session layer exists to close off.
        return ChaosOutcome(
            spec, "VIOLATION",
            detail=f"uncaught {type(exc).__name__}",
        )
    drift = profile.diff(baseline)
    if drift:
        return ChaosOutcome(spec, "VIOLATION", detail=drift)
    return ChaosOutcome(
        spec, "completed-correct", retried=profile.n_retries > 0
    )


def build_specs(
    baseline: RunProfile,
    kinds: Sequence[str] = MESSAGE_FAULT_KINDS + ("crash",),
    stride: int = 1,
    hang_ticks: int = DEFAULT_NODE_BUDGET + 1,
) -> List[FaultSpec]:
    """The sweep's fault points: every ``stride``-th wire-message index
    for each message-fault kind, plus a crash at every plan node (the
    crashing party alternates with node parity)."""
    specs: List[FaultSpec] = []
    for kind in kinds:
        if kind == "crash":
            for node in baseline.nodes_seen:
                specs.append(
                    FaultSpec(
                        "crash",
                        node=node,
                        party=ALICE if node % 2 else BOB,
                    )
                )
            continue
        for index in range(0, baseline.n_messages, max(stride, 1)):
            specs.append(
                FaultSpec(
                    kind,
                    message_index=index,
                    ticks=hang_ticks if kind == "hang" else 0,
                )
            )
    return specs


def sweep(
    run: Runner,
    kinds: Sequence[str] = MESSAGE_FAULT_KINDS + ("crash",),
    stride: int = 1,
    hang_ticks: int = DEFAULT_NODE_BUDGET + 1,
    on_progress: Optional[Callable[[int, int, ChaosOutcome], None]] = None,
) -> ChaosReport:
    """Baseline once, then classify every fault point."""
    baseline = run(FaultPlan())
    specs = build_specs(
        baseline, kinds=kinds, stride=stride, hang_ticks=hang_ticks
    )
    report = ChaosReport(
        baseline_messages=baseline.n_messages,
        baseline_nodes=len(baseline.nodes_seen),
    )
    for i, spec in enumerate(specs):
        outcome = classify_fault(run, baseline, spec)
        report.outcomes.append(outcome)
        if on_progress is not None:
            on_progress(i + 1, len(specs), outcome)
    return report


def make_tpch_runner(
    query: str = "Q3",
    scale_mb: float = 0.1,
    real: bool = False,
    policy: str = "program",
    seed: int = 7,
    group_bits: int = 1536,
    node_budget: int = DEFAULT_NODE_BUDGET,
    backend: Optional[str] = None,
) -> Runner:
    """A :data:`Runner` over one prepared TPC-H query.  The dataset and
    query are built once; every call gets a fresh context, engine and
    session (the prepared query rebuilds its relations per run, so runs
    are independent).  ``backend`` selects the join back-end
    (``yannakakis``/``linear``/``auto``) so the chaos sweep can cover
    the DH-OPRF protocol's wire pattern too."""
    from ..mpc.context import Mode
    from ..mpc.engine import Engine
    from ..tpch import PREPARED, generate

    dataset = generate(scale_mb)
    prepared = PREPARED[query.upper()](dataset)
    mode = Mode.REAL if real else Mode.SIMULATED

    def run(faults: FaultPlan) -> RunProfile:
        ctx = prepared.make_context(mode, seed=seed)
        engine = Engine(ctx, group_bits, exec_policy=policy)
        if backend is not None:
            engine.backend = backend
        session = enable_session(
            ctx, faults, node_budget=node_budget, seed=seed
        )
        result, _ = prepared.run_secure(engine)
        session.finish()
        return profile_run(ctx, session, result)

    return run
