"""Selection conditions under privacy constraints (Section 7).

Three policies for a per-relation predicate, trading protocol cost
against what the relation's *size* reveals:

* ``PUBLIC``  — the selectivity is not sensitive: actually filter, the
  protocol runs on the smaller relation (cheapest).
* ``PRIVATE`` — nothing about the selectivity may leak: failing tuples
  become zero-annotated dummies, the size (and the cost) stays that of
  the unfiltered relation.
* ``BOUNDED`` — a public upper bound on the selectivity is acceptable:
  filter, then pad with dummies up to the bound.  "Strikes a good
  balance between cost and privacy, and is perhaps a common scenario
  in practice" (the paper's example: the number of customers in one
  state may be revealed, or at least an upper bound).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

import numpy as np

from ..relalg.operators import select, select_with_dummies
from ..relalg.relation import AnnotatedRelation

__all__ = ["SelectionPolicy", "apply_selection"]


class SelectionPolicy(enum.Enum):
    PUBLIC = "public"
    PRIVATE = "private"
    BOUNDED = "bounded"


def apply_selection(
    rel: AnnotatedRelation,
    predicate: Callable[[dict], bool],
    policy: SelectionPolicy = SelectionPolicy.PRIVATE,
    bound: Optional[int] = None,
) -> AnnotatedRelation:
    """Apply a selection before the relation enters the protocol.

    The returned relation's *size* is what the other party will learn:

    * ``PUBLIC``  → the true selected cardinality;
    * ``PRIVATE`` → the original size;
    * ``BOUNDED`` → exactly ``bound`` (which must be >= the true
      selected cardinality — the owner knows both, so this is checked
      locally).
    """
    if policy == SelectionPolicy.PUBLIC:
        return select(rel, predicate)
    if policy == SelectionPolicy.PRIVATE:
        return select_with_dummies(rel, predicate)
    if policy != SelectionPolicy.BOUNDED:  # pragma: no cover
        raise ValueError(f"unknown policy {policy!r}")

    if bound is None:
        raise ValueError("the BOUNDED policy needs an explicit bound")
    selected = select(rel, predicate)
    if len(selected) > bound:
        raise ValueError(
            f"declared bound {bound} is below the true selected "
            f"cardinality {len(selected)} — it would not be an upper "
            "bound"
        )
    pad = bound - len(selected)
    annots = np.concatenate(
        [selected.annotations, np.zeros(pad, dtype=np.uint64)]
    )
    return AnnotatedRelation(
        rel.attributes,
        selected.store.with_dummies(pad),
        annots,
        rel.semiring,
    )
