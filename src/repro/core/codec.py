"""Fixed-width tuple wire format for the oblivious join's reveal step.

When a Bob-owned relation's nonzero tuples are revealed to Alice inside
a garbled circuit (Section 6.3 step 1), the tuple content must enter
the circuit as a fixed number of bits — a width that depends on the
public schema, not on the data.  Each attribute gets a fixed-width slot
(4- or 8-byte two's-complement integers, zero-padded UTF-8 for
strings); the per-relation layout is public.

Dummy tuples encode as all-zero slots; they are only ever produced for
zero-annotated rows, which the circuit never reveals.

Two granularities share the same wire format:

* per-tuple — :func:`encode_tuple_bits` / :func:`decode_tuple_bits`
  over Python bit lists (the historical API, kept for small callers);
* per-relation — :func:`encode_store_bits` / :func:`decode_bits_store`
  over ``(n, bits)`` ``uint8`` matrices built straight from a
  :class:`~repro.relalg.columns.TupleStore`: integer columns encode by
  one vectorised byte-view, dictionary columns encode each distinct
  value once and gather by code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

import numpy as np

from ..relalg.columns import Column, TupleStore, is_dummy_value
from .relation import is_dummy_tuple

__all__ = [
    "AttrSpec",
    "infer_specs",
    "infer_specs_store",
    "tuple_bits",
    "encode_tuple_bits",
    "decode_tuple_bits",
    "encode_store_bits",
    "decode_bits_store",
]


@dataclass(frozen=True)
class AttrSpec:
    """Public layout of one attribute slot."""

    kind: str  # "int" | "str"
    n_bytes: int


def infer_specs(tuples: Sequence[Tuple], arity: int) -> List[AttrSpec]:
    """A public per-relation layout: ints use 4 bytes (8 when any value
    needs it), strings their maximum length rounded up to 4 bytes.
    Dummy tuples are skipped — their slots follow the real values'."""
    specs: List[AttrSpec] = []
    for pos in range(arity):
        kind, width = "int", 4
        for t in tuples:
            if is_dummy_tuple(t):
                continue
            v = t[pos]
            if isinstance(v, str):
                kind = "str"
                width = max(width, (len(v.encode()) + 3) // 4 * 4)
            elif isinstance(v, (int,)):
                if not -(2**31) <= v < 2**31:
                    width = max(width, 8)
            else:
                raise TypeError(
                    f"cannot lay out attribute value {v!r} "
                    f"({type(v).__name__})"
                )
        specs.append(AttrSpec(kind, width))
    return specs


def infer_specs_store(store: TupleStore) -> List[AttrSpec]:
    """:func:`infer_specs` computed columnar: integer columns resolve
    their width with two array reductions; dictionary columns inspect
    each distinct value once.  Dummy rows (and dummy values inside
    mixed rows) are skipped, as in the tuple path."""
    real = np.flatnonzero(store.nonce == 0)
    specs: List[AttrSpec] = []
    for col in store.columns:
        kind, width = "int", 4
        if col.is_int:
            if len(real):
                vals = col.codes[real]
                if len(vals) and (
                    int(vals.min()) < -(2**31)
                    or int(vals.max()) >= 2**31
                ):
                    width = 8
        else:
            assert col.values is not None
            used = np.unique(col.codes[real]) if len(real) else []
            for c in np.asarray(used).tolist():
                v = col.values[int(c)]
                if is_dummy_value(v):
                    continue
                if isinstance(v, str):
                    kind = "str"
                    width = max(width, (len(v.encode()) + 3) // 4 * 4)
                elif isinstance(v, (int,)):
                    if not -(2**31) <= v < 2**31:
                        width = max(width, 8)
                else:
                    raise TypeError(
                        f"cannot lay out attribute value {v!r} "
                        f"({type(v).__name__})"
                    )
        specs.append(AttrSpec(kind, width))
    return specs


def tuple_bits(specs: Sequence[AttrSpec]) -> int:
    return 8 * sum(s.n_bytes for s in specs)


def _encode_value(v: Any, spec: AttrSpec) -> bytes:
    if spec.kind == "int":
        return int(v).to_bytes(spec.n_bytes, "little", signed=True)
    raw = str(v).encode("utf-8")
    if len(raw) > spec.n_bytes:
        raise ValueError(
            f"string {v!r} exceeds its {spec.n_bytes}-byte slot"
        )
    if b"\x00" in raw:
        raise ValueError("strings with NUL bytes cannot be encoded")
    return raw + b"\x00" * (spec.n_bytes - len(raw))


def encode_tuple_bits(t: Tuple, specs: Sequence[AttrSpec]) -> List[int]:
    """Little-endian bit list of the tuple's fixed slots; dummy tuples
    become all zeros (they are never revealed)."""
    if is_dummy_tuple(t):
        return [0] * tuple_bits(specs)
    if len(t) != len(specs):
        raise ValueError("tuple arity does not match the layout")
    raw = b"".join(_encode_value(v, s) for v, s in zip(t, specs))
    bits: List[int] = []
    for byte in raw:
        bits.extend((byte >> i) & 1 for i in range(8))
    return bits


def decode_tuple_bits(
    bits: Sequence[int], specs: Sequence[AttrSpec]
) -> Tuple:
    """Invert :func:`encode_tuple_bits`."""
    raw = bytearray()
    for i in range(0, len(bits), 8):
        byte = 0
        for j, b in enumerate(bits[i : i + 8]):
            byte |= (int(b) & 1) << j
        raw.append(byte)
    out = []
    pos = 0
    for s in specs:
        chunk = bytes(raw[pos : pos + s.n_bytes])
        pos += s.n_bytes
        if s.kind == "int":
            out.append(int.from_bytes(chunk, "little", signed=True))
        else:
            out.append(chunk.rstrip(b"\x00").decode("utf-8"))
    return tuple(out)


# ----------------------------------------------------------------------
# columnar (whole-relation) encode/decode
# ----------------------------------------------------------------------


def _dummy_row_mask(store: TupleStore) -> np.ndarray:
    """Rows that encode as all zeros: whole-row dummies plus any row
    holding a dummy *value* (the ``is_dummy_tuple`` rule)."""
    mask = store.nonce != 0
    for col in store.columns:
        if col.values is None:
            continue
        flags = np.fromiter(
            (is_dummy_value(v) for v in col.values),
            dtype=bool,
            count=len(col.values),
        )
        if flags.any():
            mask = mask | flags[col.codes]
    return mask


def _encode_int_column(codes: np.ndarray, width: int) -> np.ndarray:
    """``(n, width)`` little-endian two's-complement bytes."""
    le = np.ascontiguousarray(codes.astype("<i8"))
    byts = le.view(np.uint8).reshape(len(codes), 8)
    if width >= 8:
        return byts
    if len(codes) and (
        int(codes.min()) < -(2 ** (8 * width - 1))
        or int(codes.max()) >= 2 ** (8 * width - 1)
    ):
        raise OverflowError("int too big to convert")
    return byts[:, :width]


def encode_store_bits(
    store: TupleStore, specs: Sequence[AttrSpec]
) -> np.ndarray:
    """Bit matrix of the whole store: row ``i`` is
    ``encode_tuple_bits(store.row(i), specs)`` as a ``uint8`` vector."""
    if len(specs) != store.arity:
        raise ValueError("layout arity does not match the store")
    n = store.n
    zero_rows = _dummy_row_mask(store)
    parts: List[np.ndarray] = []
    for col, spec in zip(store.columns, specs):
        if col.is_int and spec.kind == "int":
            parts.append(_encode_int_column(col.codes, spec.n_bytes))
            continue
        # Dictionary path: encode each distinct value once, gather by
        # code.  Only values referenced by an encoded (non-zeroed) row
        # are touched, so placeholders behind dummy rows never error.
        if col.is_int:
            distinct, inv = np.unique(col.codes, return_inverse=True)
            dvals: List = distinct.tolist()
            codes = inv.astype(np.int64, copy=False)
        else:
            assert col.values is not None
            dvals = col.values
            codes = col.codes
        enc = np.zeros((max(len(dvals), 1), spec.n_bytes), dtype=np.uint8)
        used = (
            np.unique(codes[~zero_rows]) if n and not zero_rows.all()
            else np.zeros(0, dtype=np.int64)
        )
        for c in used.tolist():
            enc[int(c)] = np.frombuffer(
                _encode_value(dvals[int(c)], spec), dtype=np.uint8
            )
        parts.append(
            enc[codes] if n else np.zeros((0, spec.n_bytes), np.uint8)
        )
    if parts:
        byte_mat = np.concatenate(parts, axis=1)
    else:
        byte_mat = np.zeros((n, 0), dtype=np.uint8)
    byte_mat[zero_rows] = 0
    return np.unpackbits(byte_mat, axis=1, bitorder="little")


def decode_bits_store(
    bits: np.ndarray,
    specs: Sequence[AttrSpec],
    attributes: Sequence[str],
) -> TupleStore:
    """Invert :func:`encode_store_bits` row-wise into a fresh store.
    Integer slots decode with one byte-view per column; string slots
    decode per row (they only appear in revealed — i.e. small — sets)."""
    mat = np.asarray(bits, dtype=np.uint8)
    k = len(mat)
    total = sum(s.n_bytes for s in specs)
    if k and mat.shape[1] != 8 * total:
        raise ValueError("bit-matrix width does not match the layout")
    packed = (
        np.packbits(mat, axis=1, bitorder="little")
        if mat.size
        else np.zeros((k, total), dtype=np.uint8)
    )
    cols: List[Column] = []
    pos = 0
    for s in specs:
        chunk = packed[:, pos : pos + s.n_bytes]
        pos += s.n_bytes
        if s.kind == "int":
            w = 8 if s.n_bytes >= 8 else 4
            if s.n_bytes not in (4, 8):
                vals = [
                    int.from_bytes(bytes(row), "little", signed=True)
                    for row in chunk
                ]
                cols.append(Column.from_ints(vals))
                continue
            arr = np.ascontiguousarray(chunk).view(f"<i{w}")
            cols.append(
                Column.from_ints(arr.reshape(k).astype(np.int64))
            )
        else:
            cols.append(
                Column.from_objects(
                    [
                        bytes(row).rstrip(b"\x00").decode("utf-8")
                        for row in chunk
                    ]
                )
            )
    return TupleStore.from_columns(
        attributes, cols, np.zeros(k, dtype=np.int64)
    )
