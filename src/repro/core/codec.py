"""Fixed-width tuple wire format for the oblivious join's reveal step.

When a Bob-owned relation's nonzero tuples are revealed to Alice inside
a garbled circuit (Section 6.3 step 1), the tuple content must enter
the circuit as a fixed number of bits — a width that depends on the
public schema, not on the data.  Each attribute gets a fixed-width slot
(4- or 8-byte two's-complement integers, zero-padded UTF-8 for
strings); the per-relation layout is public.

Dummy tuples encode as all-zero slots; they are only ever produced for
zero-annotated rows, which the circuit never reveals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .relation import is_dummy_tuple

__all__ = [
    "AttrSpec",
    "infer_specs",
    "tuple_bits",
    "encode_tuple_bits",
    "decode_tuple_bits",
]


@dataclass(frozen=True)
class AttrSpec:
    """Public layout of one attribute slot."""

    kind: str  # "int" | "str"
    n_bytes: int


def infer_specs(tuples: Sequence[Tuple], arity: int) -> List[AttrSpec]:
    """A public per-relation layout: ints use 4 bytes (8 when any value
    needs it), strings their maximum length rounded up to 4 bytes.
    Dummy tuples are skipped — their slots follow the real values'."""
    specs: List[AttrSpec] = []
    for pos in range(arity):
        kind, width = "int", 4
        for t in tuples:
            if is_dummy_tuple(t):
                continue
            v = t[pos]
            if isinstance(v, str):
                kind = "str"
                width = max(width, (len(v.encode()) + 3) // 4 * 4)
            elif isinstance(v, (int,)):
                if not -(2**31) <= v < 2**31:
                    width = max(width, 8)
            else:
                raise TypeError(
                    f"cannot lay out attribute value {v!r} "
                    f"({type(v).__name__})"
                )
        specs.append(AttrSpec(kind, width))
    return specs


def tuple_bits(specs: Sequence[AttrSpec]) -> int:
    return 8 * sum(s.n_bytes for s in specs)


def _encode_value(v, spec: AttrSpec) -> bytes:
    if spec.kind == "int":
        return int(v).to_bytes(spec.n_bytes, "little", signed=True)
    raw = str(v).encode("utf-8")
    if len(raw) > spec.n_bytes:
        raise ValueError(
            f"string {v!r} exceeds its {spec.n_bytes}-byte slot"
        )
    if b"\x00" in raw:
        raise ValueError("strings with NUL bytes cannot be encoded")
    return raw + b"\x00" * (spec.n_bytes - len(raw))


def encode_tuple_bits(t: Tuple, specs: Sequence[AttrSpec]) -> List[int]:
    """Little-endian bit list of the tuple's fixed slots; dummy tuples
    become all zeros (they are never revealed)."""
    if is_dummy_tuple(t):
        return [0] * tuple_bits(specs)
    if len(t) != len(specs):
        raise ValueError("tuple arity does not match the layout")
    raw = b"".join(_encode_value(v, s) for v, s in zip(t, specs))
    bits: List[int] = []
    for byte in raw:
        bits.extend((byte >> i) & 1 for i in range(8))
    return bits


def decode_tuple_bits(
    bits: Sequence[int], specs: Sequence[AttrSpec]
) -> Tuple:
    """Invert :func:`encode_tuple_bits`."""
    raw = bytearray()
    for i in range(0, len(bits), 8):
        byte = 0
        for j, b in enumerate(bits[i : i + 8]):
            byte |= (int(b) & 1) << j
        raw.append(byte)
    out = []
    pos = 0
    for s in specs:
        chunk = bytes(raw[pos : pos + s.n_bytes])
        pos += s.n_bytes
        if s.kind == "int":
            out.append(int.from_bytes(chunk, "little", signed=True))
        else:
            out.append(chunk.rstrip(b"\x00").decode("utf-8"))
    return tuple(out)
