"""Role-oriented view of the MPC engine.

The Section 6 protocols are described with "Alice" as the party holding
the relation being operated on — but in an actual query either physical
party may own any relation.  :class:`OrientedEngine` re-exposes the
role-sensitive primitives so that ``owner`` always plays the protocol's
Alice: when the owner is physically Bob, share vectors are mirrored and
the transcript's sender labels are swapped for the duration of the call.
This keeps every operator implementation a literal transcription of the
paper's prose.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional, Sequence, Union

import numpy as np

from ..leakage import leaks
from ..mpc.context import ALICE, BOB, Context
from ..mpc.dhoprf import DhOprfMatch, dh_oprf_match
from ..mpc.engine import Engine
from ..mpc.oep import oblivious_extended_permutation, oblivious_permutation
from ..mpc.psi import PsiResult, psi_with_payloads
from ..mpc.sharing import SharedVector
from ..mpc.transcript import other_party

__all__ = ["OrientedEngine"]


class OrientedEngine:
    """Engine facade in which ``owner`` is the protocol-Alice."""

    def __init__(self, engine: Engine, owner: str):
        if owner not in (ALICE, BOB):
            raise ValueError(f"unknown party {owner!r}")
        self.engine = engine
        self.ctx = engine.ctx
        self.owner = owner
        self.other = other_party(owner)
        self._swap = owner == BOB

    def flipped(self) -> "OrientedEngine":
        """The opposite orientation (protocol-Alice = the other party)."""
        return OrientedEngine(self.engine, self.other)

    # -- share plumbing ---------------------------------------------------

    def _in(self, sv: SharedVector) -> SharedVector:
        return sv.swapped() if self._swap else sv

    def _out(self, sv: SharedVector) -> SharedVector:
        return sv.swapped() if self._swap else sv

    def _call(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Any:
        if not self._swap:
            return fn(*args, **kwargs)
        with self.ctx.swapped_roles():
            return fn(*args, **kwargs)

    # -- oriented primitives ------------------------------------------------

    def mul_shared(self, x: SharedVector, y: SharedVector,
                   label: str = "mul") -> SharedVector:
        out = self._call(
            self.engine.mul_shared, self._in(x), self._in(y), label
        )
        return self._out(out)

    def mul_owner_plain(self, plain: Union[Sequence[int], np.ndarray],
                        y: SharedVector,
                        label: str = "mul_plain") -> SharedVector:
        """Multiply by a vector the *owner* knows in the clear."""
        out = self._call(
            self.engine.mul_alice_plain, plain, self._in(y), label
        )
        return self._out(out)

    def indicator_nonzero(self, x: SharedVector,
                          label: str = "nonzero") -> SharedVector:
        out = self._call(
            self.engine.indicator_nonzero, self._in(x), label
        )
        return self._out(out)

    def merge_aggregate_sum(self,
                            same_as_next: Union[Sequence[int], np.ndarray],
                            v: SharedVector,
                            label: str = "merge_sum") -> SharedVector:
        """Merge chain whose boundary indicators the owner knows."""
        out = self._call(
            self.engine.merge_aggregate_sum, same_as_next, self._in(v), label
        )
        return self._out(out)

    def merge_aggregate_or(self,
                           same_as_next: Union[Sequence[int], np.ndarray],
                           v: SharedVector,
                           label: str = "merge_or") -> SharedVector:
        out = self._call(
            self.engine.merge_aggregate_or, same_as_next, self._in(v), label
        )
        return self._out(out)

    def product_across(self, factors: Sequence[SharedVector],
                       label: str = "prod") -> SharedVector:
        out = self._call(
            self.engine.product_across, [self._in(f) for f in factors], label
        )
        return self._out(out)

    def psi(
        self,
        owner_items: Sequence[Hashable],
        other_items: Sequence[Hashable],
        other_payloads: Sequence[int],
        other_fallbacks: Optional[Sequence[int]] = None,
        reveal_payload: bool = False,
        label: str = "psi",
    ) -> PsiResult:
        """PSI with the owner on the cuckoo side (protocol-Alice)."""

        def run() -> PsiResult:
            return psi_with_payloads(
                self.ctx,
                self.engine.ot,
                owner_items,
                other_items,
                other_payloads,
                other_fallbacks,
                reveal_payload,
                label,
            )

        res = self._call(run)
        res.ind = self._out(res.ind)
        if isinstance(res.payload, SharedVector):
            res.payload = self._out(res.payload)
        return res

    @leaks("join_pattern:parent")
    def dh_oprf_match(
        self,
        owner_items: Sequence[Hashable],
        other_items: Sequence[Hashable],
        label: str = "dhoprf",
    ) -> DhOprfMatch:
        """DH-OPRF matching with the owner on the blinding side
        (protocol-Alice); the linear join back-end's core primitive."""
        return self._call(
            dh_oprf_match, self.ctx, owner_items, other_items, label
        )

    def oep(self, xi: Union[Sequence[int], np.ndarray],
            values: SharedVector, n_out: int,
            label: str = "oep/ext") -> SharedVector:
        """Extended permutation held by the owner."""
        out = self._call(
            oblivious_extended_permutation,
            self.ctx,
            self.engine.ot,
            xi,
            self._in(values),
            n_out,
            label,
        )
        return self._out(out)

    def permute(self, perm: Union[Sequence[int], np.ndarray],
                values: SharedVector,
                label: str = "oep/perm") -> SharedVector:
        out = self._call(
            oblivious_permutation,
            self.ctx,
            self.engine.ot,
            perm,
            self._in(values),
            label,
        )
        return self._out(out)
