"""The secure Yannakakis protocol (Section 6.4).

Runs the same 3-phase :class:`~repro.yannakakis.plan.YannakakisPlan` as
the plaintext algorithm, with each phase realised by the oblivious
operators:

1. **Reduce** — oblivious projection-aggregation + oblivious reduce-join
   per fold; sizes never change, only annotations.
2. **Semijoin** — dangling tuples are *zero-annotated* (not removed)
   via oblivious semijoins, bottom-up then top-down.
3. **Full join** — the oblivious join reveals ``J*`` to Alice and
   computes its annotations in shared form.

``secure_yannakakis`` reveals the annotations (they are the query
results); ``secure_yannakakis_shared`` keeps them shared for query
compositions (Section 7).

Both entry points are thin wrappers over the :mod:`repro.exec` layer:
the plan is compiled to an execution DAG and run by the scheduler,
which reproduces the historical transcript byte-for-byte under its
default policy.  The pre-IR sequential orchestrations are kept as
``legacy_secure_yannakakis``/``legacy_secure_yannakakis_shared`` — the
reference implementations the scheduler is tested against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..leakage import leaks
from ..mpc.context import ALICE, Context
from ..mpc.engine import Engine
from ..mpc.sharing import reveal_vector
from ..relalg.operators import aggregate as plain_aggregate
from ..relalg.relation import AnnotatedRelation
from ..relalg.semiring import IntegerRing
from ..yannakakis.plan import (
    ReduceAggregate,
    ReduceFold,
    YannakakisPlan,
)
from .aggregation import oblivious_aggregate
from .join import ObliviousJoinResult, oblivious_join
from .relation import SecureRelation
from .semijoin import oblivious_reduce_join, oblivious_semijoin

__all__ = [
    "secure_yannakakis",
    "secure_yannakakis_shared",
    "secure_yannakakis_with_plan",
    "legacy_secure_yannakakis",
    "legacy_secure_yannakakis_shared",
    "ProtocolStats",
]


@dataclass
class ProtocolStats:
    """Cost summary of one protocol run."""

    seconds: float
    total_bytes: int
    rounds: int
    bytes_by_phase: Dict[str, int] = field(default_factory=dict)


def secure_yannakakis_shared(
    engine: Engine,
    relations: Dict[str, SecureRelation],
    plan: YannakakisPlan,
    pad_out_to: int = 0,
    backends: Optional[Dict[str, str]] = None,
) -> ObliviousJoinResult:
    """Run the protocol, returning ``J*`` (Alice's) with annotations in
    shared form — the building block for query composition.

    ``pad_out_to`` hides the true output size from Bob behind a declared
    upper bound (Section 4 / Section 6.3 step 2).  ``backends`` maps
    fold/semijoin labels to a join back-end (see
    :func:`repro.query.planner.route_backends`); unlisted nodes run the
    paper's PSI protocol."""
    # Imported lazily: repro.exec imports the core operators, so a
    # module-level import here would be circular.
    from ..exec import Scheduler, compile_plan

    exec_plan = compile_plan(
        plan,
        owners={name: rel.owner for name, rel in relations.items()},
        input_order=list(relations),
        pad_out_to=pad_out_to,
        backends=backends,
    )
    env = Scheduler(engine).run(exec_plan, relations)
    return env["result"]


def secure_yannakakis(
    engine: Engine,
    relations: Dict[str, SecureRelation],
    plan: YannakakisPlan,
    backends: Optional[Dict[str, str]] = None,
) -> Tuple[AnnotatedRelation, ProtocolStats]:
    """Evaluate the query and reveal the results to Alice.

    Returns the result relation (attributes ordered as ``plan.output``,
    duplicate group keys merged, zero groups dropped) and cost stats.
    """
    from ..exec import compile_plan

    exec_plan = compile_plan(
        plan,
        owners={name: rel.owner for name, rel in relations.items()},
        input_order=list(relations),
        reveal_result=True,
        backends=backends,
    )
    return secure_yannakakis_with_plan(engine, relations, plan, exec_plan)


def secure_yannakakis_with_plan(
    engine: Engine,
    relations: Dict[str, SecureRelation],
    plan: YannakakisPlan,
    exec_plan: "object",
) -> Tuple[AnnotatedRelation, ProtocolStats]:
    """:func:`secure_yannakakis` over an already-compiled
    :class:`~repro.exec.ir.ExecPlan`.

    The compiled plan is pure public structure (step DAG over relation
    names), so it may be shared across runs — the
    :class:`~repro.serve.plancache.PlanCache` hands the same object to
    every tenant whose query fingerprints identically, and the
    transcript is byte-identical to a freshly-compiled run.  The plan
    must have been compiled with ``reveal_result=True`` and an
    ``input_order`` matching ``relations``' iteration order.
    """
    from ..exec import ExecPlan, Scheduler

    if not isinstance(exec_plan, ExecPlan):
        raise TypeError(f"expected an ExecPlan, got {type(exec_plan)!r}")
    ctx = engine.ctx
    start_msgs = len(ctx.transcript.messages)
    t0 = time.perf_counter()
    env = Scheduler(engine).run(exec_plan, relations)
    shared, values = env["output"]
    elapsed = time.perf_counter() - t0
    return _finish(ctx, plan, shared, values, elapsed, start_msgs)


def _finish(
    ctx: Context,
    plan: YannakakisPlan,
    shared: ObliviousJoinResult,
    values: Sequence[int],
    elapsed: float,
    start_msgs: int,
) -> Tuple[AnnotatedRelation, ProtocolStats]:
    """Assemble the revealed result relation and the cost summary."""
    ring = IntegerRing(ctx.params.ell)
    result = AnnotatedRelation(
        shared.attributes, shared.tuples, values, ring
    )
    result = plain_aggregate(result, plan.output).nonzero()

    new_msgs = ctx.transcript.messages[start_msgs:]
    by_phase: Dict[str, int] = {}
    for m in new_msgs:
        key = m.label.split("/")[0] if m.label else ""
        by_phase[key] = by_phase.get(key, 0) + m.n_bytes
    stats = ProtocolStats(
        seconds=elapsed,
        total_bytes=sum(m.n_bytes for m in new_msgs),
        rounds=ctx.transcript.rounds,
        bytes_by_phase=by_phase,
    )
    return result, stats


# ----------------------------------------------------------------------
# Reference implementations (pre-IR sequential orchestration).  The
# scheduler's transcript is asserted byte-identical to these in
# tests/test_exec.py and tests/test_exec_tpch.py.
# ----------------------------------------------------------------------


def _require_yannakakis_routes(
    backends: Optional[Dict[str, str]],
) -> None:
    """The legacy orchestrations predate the back-end selector and only
    implement the paper's PSI protocol; they accept the ``backends``
    map for signature compatibility (tests swap them in for the
    scheduler path) but refuse any non-default route."""
    other = {
        k: v for k, v in (backends or {}).items() if v != "yannakakis"
    }
    if other:
        raise ValueError(
            "the legacy orchestration only supports the 'yannakakis' "
            f"back-end; got routes {other}"
        )


def legacy_secure_yannakakis_shared(
    engine: Engine,
    relations: Dict[str, SecureRelation],
    plan: YannakakisPlan,
    pad_out_to: int = 0,
    backends: Optional[Dict[str, str]] = None,
) -> ObliviousJoinResult:
    """Sequential reference implementation of
    :func:`secure_yannakakis_shared`."""
    _require_yannakakis_routes(backends)
    ctx = engine.ctx
    rels = dict(relations)
    missing = set(plan.tree.nodes) - set(rels)
    if missing:
        raise KeyError(f"missing input relations: {sorted(missing)}")

    def run_semijoins() -> None:
        with ctx.section("semijoin"):
            for step in plan.semijoin_steps:
                rels[step.target] = oblivious_semijoin(
                    engine, rels[step.target], rels[step.filter],
                    label=f"semi/{step.target}<-{step.filter}",
                )

    if plan.semijoin_first:  # the two-phase ablation order
        run_semijoins()

    with ctx.section("reduce"):
        for step in plan.reduce_steps:
            if isinstance(step, ReduceFold):
                folded = oblivious_aggregate(
                    engine, rels[step.child], step.agg_attrs,
                    label=f"agg/{step.child}",
                )
                rels[step.parent] = oblivious_reduce_join(
                    engine, rels[step.parent], folded,
                    label=f"fold/{step.child}->{step.parent}",
                )
                del rels[step.child]
            elif isinstance(step, ReduceAggregate):
                rels[step.node] = oblivious_aggregate(
                    engine, rels[step.node], step.attrs,
                    label=f"agg/{step.node}",
                )
            else:  # pragma: no cover
                raise TypeError(f"unknown reduce step {step!r}")

    if not plan.semijoin_first:
        run_semijoins()

    with ctx.section("full_join"):
        join_steps = [(s.child, s.parent) for s in plan.join_steps]
        return oblivious_join(
            engine, rels, join_steps, pad_out_to=pad_out_to
        )


@leaks("opened:result")
def legacy_secure_yannakakis(
    engine: Engine,
    relations: Dict[str, SecureRelation],
    plan: YannakakisPlan,
    backends: Optional[Dict[str, str]] = None,
) -> Tuple[AnnotatedRelation, ProtocolStats]:
    """Sequential reference implementation of
    :func:`secure_yannakakis`."""
    _require_yannakakis_routes(backends)
    ctx = engine.ctx
    start_msgs = len(ctx.transcript.messages)
    t0 = time.perf_counter()
    shared = legacy_secure_yannakakis_shared(engine, relations, plan)
    values = reveal_vector(
        ctx, shared.annotations, ALICE, label="result"
    )
    elapsed = time.perf_counter() - t0
    return _finish(ctx, plan, shared, values, elapsed, start_msgs)
