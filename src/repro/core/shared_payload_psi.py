"""PSI with secret-shared payloads (Section 5.5).

When a semijoin's filter relation carries *shared* annotations (any
intermediate result does), the plain payload-PSI cannot be used — the
payloads must stay hidden from both parties.  The paper's composition:

1. Extend the shared payload vector ``z[0..N-1]`` with ``B`` trivial
   zero shares.
2. The filter's owner ("Bob" of the PSI) draws a random permutation
   ``xi1`` of ``[N+B]`` and the parties OEP-permute the shares to
   ``z'_j = z_{xi1(j)}``.
3. Run PSI where the payload of item ``y_j`` is the *index*
   ``xi1^{-1}(j)`` and the per-bin fallback is ``xi1^{-1}(N + i)``; the
   per-bin outputs ``k_i`` are *revealed* to the cuckoo-side owner —
   they are distinct uniform values from ``[N+B]``, independent of the
   data.
4. A second OEP with ``xi2(i) = k_i`` maps the permuted shares onto the
   bins: matched bins receive the true payload share, unmatched bins a
   zero share.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from ..mpc.cuckoo import num_bins
from ..mpc.engine import Engine
from ..mpc.psi import PsiResult
from ..mpc.sharing import SharedVector
from .oriented import OrientedEngine

__all__ = ["psi_with_shared_payloads"]


def psi_with_shared_payloads(
    engine: Engine,
    owner: str,
    owner_items: Sequence[Hashable],
    other_items: Sequence[Hashable],
    other_payload_shares: SharedVector,
    label: str = "psi_shared",
) -> PsiResult:
    """PSI where the non-owner side's payloads are secret-shared.

    Returns a :class:`PsiResult` whose ``payload`` is a shared per-bin
    vector: the matching item's payload share for matched bins, a fresh
    zero share otherwise.
    """
    if len(other_items) != len(other_payload_shares):
        raise ValueError("one payload share per item is required")
    ctx = engine.ctx
    oe = OrientedEngine(engine, owner)
    n = len(other_items)
    b = num_bins(len(owner_items), ctx.params.cuckoo_expansion)

    with ctx.section(label):
        # (1) extend with B zero shares.
        extended = other_payload_shares.concat(
            SharedVector.zeros(b, ctx.modulus)
        )
        # (2) the other party's private random permutation of [N+B].
        xi1 = np.asarray(ctx.rng.permutation(n + b), dtype=np.int64)
        z_prime = oe.flipped().oep(
            list(xi1), extended, n + b, label="oep_xi1"
        )
        inv = np.empty(n + b, dtype=np.int64)
        inv[xi1] = np.arange(n + b)
        # (3) PSI carrying permuted indices; outputs revealed to owner.
        res = oe.psi(
            owner_items,
            other_items,
            [int(inv[j]) for j in range(n)],
            other_fallbacks=[int(inv[n + i]) for i in range(b)],
            reveal_payload=True,
            label="psi",
        )
        if res.n_bins != b:
            raise AssertionError(
                "bin-count mismatch between PSI and the xi1 extension"
            )
        k = np.asarray(res.payload, dtype=np.int64)
        # (4) map the permuted shares onto the bins.
        z_bins = oe.oep(list(k), z_prime, b, label="oep_xi2")
    return PsiResult(res.table, b, res.ind, z_bins)
