"""Differential privacy on the query results (Section 7).

The 2PC protocol protects the *transcript*; the revealed results can
additionally be protected with output perturbation.  Following the
paper's sketch (after Johnson et al. [19] for join-count queries):

1. each party finds the maximum multiplicity of the join attribute in
   its own relations;
2. the global sensitivity ``Delta`` is the product of the two maxima,
   computed jointly (one multiplication circuit);
3. Bob draws Laplace(Delta / epsilon) noise and adds it to *his share*
   of each aggregate before the reveal — addition of shares is local,
   so Alice only ever sees the noisy result.

Noise is integer-valued (a two-sided geometric / discrete Laplace), the
standard choice when aggregates live in a finite ring.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..leakage import leaks
from ..mpc.context import ALICE, BOB, Context
from ..mpc.engine import Engine
from ..mpc.sharing import SharedVector, reveal_vector
from ..relalg.relation import AnnotatedRelation

__all__ = [
    "max_multiplicity",
    "joint_sensitivity",
    "discrete_laplace",
    "dp_reveal",
]


def max_multiplicity(rel: AnnotatedRelation, attrs: Sequence[str]) -> int:
    """The largest number of tuples sharing one value of ``attrs`` —
    each party evaluates this locally on its own relations."""
    counts: Dict = {}
    idx = rel.index_of(attrs)
    for t in rel.tuples:
        key = tuple(t[i] for i in idx)
        counts[key] = counts.get(key, 0) + 1
    return max(counts.values(), default=0)


@leaks("opened:result")
def joint_sensitivity(
    engine: Engine, alice_max: int, bob_max: int
) -> int:
    """``Delta = alice_max * bob_max`` computed jointly and revealed (the
    sensitivity itself is treated as public, as in [19])."""
    a = engine.share(ALICE, [alice_max], label="dp/max_a")
    b = engine.share(BOB, [bob_max], label="dp/max_b")
    prod = engine.mul_shared(a, b, label="dp/sensitivity")
    return int(reveal_vector(engine.ctx, prod, BOB, label="dp/delta")[0])


def discrete_laplace(
    rng: np.random.Generator, scale: float, n: int
) -> np.ndarray:
    """Two-sided geometric noise with the given scale (``b = scale``):
    ``P[k] ∝ exp(-|k| / b)``."""
    if scale <= 0:
        return np.zeros(n, dtype=np.int64)
    p = 1.0 - np.exp(-1.0 / scale)
    pos = rng.geometric(p, size=n) - 1
    neg = rng.geometric(p, size=n) - 1
    return (pos - neg).astype(np.int64)


@leaks("opened:result")
def dp_reveal(
    engine: Engine,
    values: SharedVector,
    sensitivity: int,
    epsilon: float,
    label: str = "dp/reveal",
) -> np.ndarray:
    """Reveal ``values`` to Alice with Laplace(sensitivity/epsilon)
    noise added by Bob to his shares (local, then one reveal)."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    ctx = engine.ctx
    noise = discrete_laplace(
        ctx.rng, sensitivity / epsilon, len(values)
    )
    noisy = values.add_public(noise, holder=BOB)
    return reveal_vector(ctx, noisy, ALICE, label=label)
