"""Query composition (Section 7).

Some aggregates (avg, ratio-of-sums, differences) are not expressible in
a single semiring, but decompose into several free-connex join-aggregate
queries whose *shared* results are combined by a final small circuit:

* :func:`align_shared`   — line two shared result vectors up on a common
  group-key list via OEP (the group keys are Alice's, the positions are
  her private extended permutation).
* :func:`divide_compose` — ``num / den`` per group, revealed to Alice
  (used for ``avg`` and Q8's ``mkt_share``).
* :func:`subtract_compose` — ``x - y`` per group (local on shares) then
  revealed (used for Q9's ``amount``).
* :func:`run_decomposed` — convenience: run several plans over the same
  inputs and hand the shared results to a combiner.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..leakage import leaks
from ..mpc.context import ALICE
from ..mpc.engine import Engine
from ..mpc.sharing import SharedVector, reveal_vector
from ..exec.trace import traced
from ..relalg.relation import AnnotatedRelation
from ..relalg.semiring import IntegerRing
from .join import ObliviousJoinResult
from .oriented import OrientedEngine

__all__ = [
    "align_shared",
    "divide_compose",
    "subtract_compose",
]


def align_shared(
    engine: Engine,
    base_tuples: Sequence[Tuple],
    result: ObliviousJoinResult,
    label: str = "align",
) -> SharedVector:
    """Shares of ``result``'s annotation for each tuple of
    ``base_tuples`` (zero where absent).  The alignment map is Alice's
    private information, so an OEP carries it."""
    pos = {t: i for i, t in enumerate(result.tuples)}
    n = len(result.tuples)
    extended = result.annotations.concat(
        SharedVector.zeros(1, result.annotations.modulus)
    )
    xi = [pos.get(t, n) for t in base_tuples]
    oe = OrientedEngine(engine, ALICE)
    with traced(engine, "align", label, section="compose"):
        return oe.oep(xi, extended, len(xi), label=label)


@leaks("opened:result")
def divide_compose(
    engine: Engine,
    numerator: ObliviousJoinResult,
    denominator: ObliviousJoinResult,
    scale: int = 1,
    label: str = "divide",
) -> AnnotatedRelation:
    """``scale * num / den`` per group, revealed to Alice.

    The group list is the denominator's (a group with zero denominator
    has no defined ratio).  ``scale`` implements fixed-point precision:
    Q8 reports ``mkt_share`` with ``scale = 10**4`` for 4 decimal digits.
    """
    if set(numerator.attributes) != set(denominator.attributes):
        raise ValueError("numerator and denominator group keys differ")
    ctx = engine.ctx
    with ctx.section(label):
        base = list(denominator.tuples)
        num = align_shared(engine, base, numerator, label="align_num")
        num = num.mul_public(np.full(len(base), scale, dtype=np.uint64))
        den = denominator.annotations
        with traced(engine, "divide", f"{label}/div", section="compose"):
            quotients = engine.divide_reveal(num, den, label="div")
    ring = IntegerRing(ctx.params.ell)
    return AnnotatedRelation(
        denominator.attributes, base, quotients, ring
    )


@leaks("opened:result")
def subtract_compose(
    engine: Engine,
    left: ObliviousJoinResult,
    right: ObliviousJoinResult,
    label: str = "subtract",
) -> AnnotatedRelation:
    """``left - right`` per group over the union of both group lists,
    revealed to Alice (subtraction of shares is local)."""
    if set(left.attributes) != set(right.attributes):
        raise ValueError("left and right group keys differ")
    ctx = engine.ctx
    with ctx.section(label):
        perm = _column_permutation(right.attributes, left.attributes)
        right_tuples = [
            tuple(t[i] for i in perm) for t in right.tuples
        ]
        base = list(left.tuples)
        seen = set(base)
        for t in right_tuples:
            if t not in seen:
                base.append(t)
                seen.add(t)
        right_aligned = ObliviousJoinResult(
            left.attributes, right_tuples, right.annotations
        )
        lv = align_shared(engine, base, left, label="align_left")
        rv = align_shared(engine, base, right_aligned, label="align_right")
        with traced(engine, "subtract", f"{label}/result", section="compose"):
            values = reveal_vector(ctx, lv - rv, ALICE, label="result")
    ring = IntegerRing(ctx.params.ell)
    return AnnotatedRelation(left.attributes, base, values, ring).nonzero()


def _column_permutation(src: Sequence[str], dst: Sequence[str]) -> List[int]:
    return [src.index(a) for a in dst]
