"""Oblivious projection-aggregation (Section 6.1).

Two operators:

* ``oblivious_aggregate``          — ``pi_F^(+)(R)``
* ``oblivious_support_projection`` — ``pi_F^1(R)``

Both return an output relation of the *same size* as the input: the
owner sorts her tuples by the group key, the annotation shares are
permuted consistently with OEP, and a garbled merge-gate chain folds
each group's annotations into its last position; all other positions
become zero-annotated dummy tuples.  The output is therefore
*semantically equivalent* to the true projection while its size and
access pattern depend only on the (public) input size.

The owner-local sort runs columnar: group keys become ``int64`` row
codes (:func:`~repro.relalg.columns.joint_row_codes`) and one
``np.argsort`` yields both the permutation and the same-as-next
boundary flags — no per-tuple encoding.  The sort order (code order) is
deterministic and mode-independent; only the *grouping* matters to the
protocol, and the transcript depends only on the public size ``n``.

When the annotations are plain and owner-held (Section 6.5), the whole
operator runs locally — the output is still padded with dummies to the
input size so no intermediate cardinality is disclosed downstream.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..mpc.engine import Engine
from ..relalg.columns import (
    TupleStore,
    fresh_nonces,
    group_by_first_appearance,
    joint_row_codes,
    sort_with_same_flags,
)
from .oriented import OrientedEngine
from .relation import SecureAnnotations, SecureRelation

__all__ = ["oblivious_aggregate", "oblivious_support_projection"]


def _group_layout(
    rel: SecureRelation, attrs: Tuple[str, ...]
) -> Tuple[np.ndarray, TupleStore, np.ndarray]:
    """Owner-local: the sort order over tuples by group key, the
    projected store in that order, and the same-as-next boundary flags."""
    proj = rel.store.project(attrs)
    codes = joint_row_codes([proj])[0]
    order, same = sort_with_same_flags(codes)
    return order, proj.take(order), same


def _output_store(
    sorted_proj: TupleStore, same: np.ndarray
) -> TupleStore:
    """Group keys at last-of-group positions, fresh dummies elsewhere
    (one vectorised nonce-block reservation)."""
    n = sorted_proj.n
    last = np.ones(n, dtype=bool)
    if n > 1:
        last[:-1] = ~same
    nonce = sorted_proj.nonce.copy()
    inner = ~last
    nonce[inner] = fresh_nonces(int(inner.sum()))
    return TupleStore(
        sorted_proj.attributes, sorted_proj.columns, nonce
    )


def oblivious_aggregate(
    engine: Engine,
    rel: SecureRelation,
    attrs: Sequence[str],
    label: str = "aggregate",
) -> SecureRelation:
    """``pi_attrs^(+)(rel)``, output padded to ``len(rel)`` tuples."""
    attrs = tuple(attrs)
    rel.index_of(attrs)  # validate
    n = len(rel)
    if n == 0:
        return SecureRelation(
            rel.owner, attrs, [], SecureAnnotations.plain(rel.owner, [])
        )

    if rel.annotations.kind == "plain":
        # Section 6.5 fast path: entirely local to the owner.
        proj = rel.store.project(attrs)
        codes = joint_row_codes([proj])[0]
        gid, first = group_by_first_appearance(codes)
        assert rel.annotations.values is not None
        sums = np.zeros(len(first), dtype=np.uint64)
        np.add.at(sums, gid, rel.annotations.values)
        sums &= engine.ctx.mask
        out_store = proj.take(first).with_dummies(n - len(first))
        out_annots = np.zeros(n, dtype=np.uint64)
        out_annots[: len(first)] = sums
        return SecureRelation(
            rel.owner,
            attrs,
            out_store,
            SecureAnnotations.plain(rel.owner, out_annots),
        )

    oe = OrientedEngine(engine, rel.owner)
    with engine.ctx.section(label):
        order, sorted_proj, same = _group_layout(rel, attrs)
        assert rel.annotations.shares is not None
        permuted = oe.oep(order, rel.annotations.shares, n, label="oep")
        merged = oe.merge_aggregate_sum(same, permuted)
    return SecureRelation(
        rel.owner,
        attrs,
        _output_store(sorted_proj, same),
        SecureAnnotations.shared(merged),
    )


def oblivious_support_projection(
    engine: Engine,
    rel: SecureRelation,
    attrs: Sequence[str],
    label: str = "support",
) -> SecureRelation:
    """``pi_attrs^1(rel)``: distinct keys of nonzero-annotated tuples,
    annotations in {0, 1}, padded to ``len(rel)`` tuples."""
    attrs = tuple(attrs)
    rel.index_of(attrs)
    n = len(rel)
    if n == 0:
        return SecureRelation(
            rel.owner, attrs, [], SecureAnnotations.plain(rel.owner, [])
        )

    if rel.annotations.kind == "plain":
        assert rel.annotations.values is not None
        nz = np.flatnonzero(rel.annotations.values != 0)
        sub = rel.store.project(attrs).take(nz)
        codes = joint_row_codes([sub])[0]
        _, first = group_by_first_appearance(codes)
        out_store = sub.take(first).with_dummies(n - len(first))
        out_annots = np.zeros(n, dtype=np.uint64)
        out_annots[: len(first)] = 1
        return SecureRelation(
            rel.owner,
            attrs,
            out_store,
            SecureAnnotations.plain(rel.owner, out_annots),
        )

    oe = OrientedEngine(engine, rel.owner)
    with engine.ctx.section(label):
        order, sorted_proj, same = _group_layout(rel, attrs)
        assert rel.annotations.shares is not None
        permuted = oe.oep(order, rel.annotations.shares, n, label="oep")
        indicators = oe.indicator_nonzero(permuted)
        merged = oe.merge_aggregate_or(same, indicators)
    return SecureRelation(
        rel.owner,
        attrs,
        _output_store(sorted_proj, same),
        SecureAnnotations.shared(merged),
    )
