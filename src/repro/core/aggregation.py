"""Oblivious projection-aggregation (Section 6.1).

Two operators:

* ``oblivious_aggregate``          — ``pi_F^(+)(R)``
* ``oblivious_support_projection`` — ``pi_F^1(R)``

Both return an output relation of the *same size* as the input: the
owner sorts her tuples by the group key, the annotation shares are
permuted consistently with OEP, and a garbled merge-gate chain folds
each group's annotations into its last position; all other positions
become zero-annotated dummy tuples.  The output is therefore
*semantically equivalent* to the true projection while its size and
access pattern depend only on the (public) input size.

When the annotations are plain and owner-held (Section 6.5), the whole
operator runs locally — the output is still padded with dummies to the
input size so no intermediate cardinality is disclosed downstream.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..mpc.engine import Engine
from .oriented import OrientedEngine
from .relation import (
    SecureAnnotations,
    SecureRelation,
    dummy_tuple,
    sort_key,
)

__all__ = ["oblivious_aggregate", "oblivious_support_projection"]


def _sorted_groups(
    rel: SecureRelation, attrs: Sequence[str]
) -> Tuple[List[int], List[Tuple], List[bool]]:
    """Owner-local: sort order over tuples by group key, the projected
    keys in that order, and the same-as-next boundary flags."""
    idx = rel.index_of(attrs)
    keys = [tuple(t[i] for i in idx) for t in rel.tuples]
    order = sorted(range(len(keys)), key=lambda j: sort_key(keys[j]))
    sorted_keys = [keys[j] for j in order]
    same = [
        sorted_keys[i] == sorted_keys[i + 1]
        for i in range(len(sorted_keys) - 1)
    ]
    return order, sorted_keys, same


def _output_tuples(
    sorted_keys: List[Tuple], same: List[bool], arity: int
) -> List[Tuple]:
    """Group keys at last-of-group positions, fresh dummies elsewhere."""
    n = len(sorted_keys)
    out: List[Tuple] = []
    for i in range(n):
        last = i == n - 1 or not same[i]
        out.append(sorted_keys[i] if last else dummy_tuple(arity))
    return out


def oblivious_aggregate(
    engine: Engine,
    rel: SecureRelation,
    attrs: Sequence[str],
    label: str = "aggregate",
) -> SecureRelation:
    """``pi_attrs^(+)(rel)``, output padded to ``len(rel)`` tuples."""
    attrs = tuple(attrs)
    rel.index_of(attrs)  # validate
    n = len(rel)
    if n == 0:
        return SecureRelation(
            rel.owner, attrs, [], SecureAnnotations.plain(rel.owner, [])
        )

    if rel.annotations.kind == "plain":
        # Section 6.5 fast path: entirely local to the owner.
        idx = rel.index_of(attrs)
        keys = [tuple(t[i] for i in idx) for t in rel.tuples]
        totals: dict = {}
        order: List[Tuple] = []
        for key, v in zip(keys, rel.annotations.values):
            if key not in totals:
                totals[key] = int(v)
                order.append(key)
            else:
                totals[key] = (totals[key] + int(v)) % (
                    engine.ctx.modulus
                )
        out_tuples = list(order)
        out_annots = [totals[k] for k in order]
        while len(out_tuples) < n:
            out_tuples.append(dummy_tuple(len(attrs)))
            out_annots.append(0)
        return SecureRelation(
            rel.owner,
            attrs,
            out_tuples,
            SecureAnnotations.plain(rel.owner, out_annots),
        )

    oe = OrientedEngine(engine, rel.owner)
    with engine.ctx.section(label):
        order, sorted_keys, same = _sorted_groups(rel, attrs)
        permuted = oe.oep(order, rel.annotations.shares, n, label="oep")
        merged = oe.merge_aggregate_sum(same, permuted)
    return SecureRelation(
        rel.owner,
        attrs,
        _output_tuples(sorted_keys, same, len(attrs)),
        SecureAnnotations.shared(merged),
    )


def oblivious_support_projection(
    engine: Engine,
    rel: SecureRelation,
    attrs: Sequence[str],
    label: str = "support",
) -> SecureRelation:
    """``pi_attrs^1(rel)``: distinct keys of nonzero-annotated tuples,
    annotations in {0, 1}, padded to ``len(rel)`` tuples."""
    attrs = tuple(attrs)
    rel.index_of(attrs)
    n = len(rel)
    if n == 0:
        return SecureRelation(
            rel.owner, attrs, [], SecureAnnotations.plain(rel.owner, [])
        )

    if rel.annotations.kind == "plain":
        idx = rel.index_of(attrs)
        seen: dict = {}
        for t, v in zip(rel.tuples, rel.annotations.values):
            if int(v) != 0:
                seen.setdefault(tuple(t[i] for i in idx), None)
        out_tuples: List[Tuple] = list(seen)
        out_annots = [1] * len(out_tuples)
        while len(out_tuples) < n:
            out_tuples.append(dummy_tuple(len(attrs)))
            out_annots.append(0)
        return SecureRelation(
            rel.owner,
            attrs,
            out_tuples,
            SecureAnnotations.plain(rel.owner, out_annots),
        )

    oe = OrientedEngine(engine, rel.owner)
    with engine.ctx.section(label):
        order, sorted_keys, same = _sorted_groups(rel, attrs)
        permuted = oe.oep(order, rel.annotations.shares, n, label="oep")
        indicators = oe.indicator_nonzero(permuted)
        merged = oe.merge_aggregate_or(same, indicators)
    return SecureRelation(
        rel.owner,
        attrs,
        _output_tuples(sorted_keys, same, len(attrs)),
        SecureAnnotations.shared(merged),
    )
