"""Secure relations: the data model of the oblivious operators.

A :class:`SecureRelation` is a relation whose *tuples* are held by one
party (the owner) and whose *annotations* are either known to the owner
in the clear (:class:`SecureAnnotations` of kind ``plain`` — the common
situation for protocol inputs, Section 6.5) or secret-shared between the
parties (always the case for intermediate results).

Tuples are stored columnar (:class:`~repro.relalg.columns.TupleStore`):
per-attribute code arrays plus a row-level dummy-nonce vector, with the
tuple-list view available through the ``.tuples`` property.  Dummy
tuples (Section 4, footnote 2) are built from per-tuple nonces so that
they are pairwise distinct, never collide with real domain values, and
survive projection; their annotations are zero, so they contribute
nothing to any aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..mpc.context import Context
from ..mpc.cuckoo import encode_item
from ..mpc.engine import Engine
from ..mpc.sharing import SharedVector
from ..relalg.columns import (
    DUMMY_MARKER,
    TupleStore,
    dummy_tuple,
    is_dummy_tuple,
)
from ..relalg.relation import AnnotatedRelation

__all__ = [
    "DUMMY_MARKER",
    "dummy_tuple",
    "is_dummy_tuple",
    "sort_key",
    "SecureAnnotations",
    "SecureRelation",
]


def sort_key(t: Tuple[Any, ...]) -> bytes:
    """A total order over heterogeneous tuples (ints, strings, dummies):
    the canonical item encoding.  Owners sort locally with this key."""
    return encode_item(tuple(t))


@dataclass
class SecureAnnotations:
    """Annotation vector: plain (owner-known) or secret-shared."""

    kind: str  # "plain" | "shared"
    owner: Optional[str] = None
    values: Optional[np.ndarray] = None
    shares: Optional[SharedVector] = None

    @classmethod
    def plain(cls, owner: str, values: Any) -> "SecureAnnotations":
        arr = np.asarray(values, dtype=np.uint64)
        return cls(kind="plain", owner=owner, values=arr)

    @classmethod
    def shared(cls, shares: SharedVector) -> "SecureAnnotations":
        return cls(kind="shared", shares=shares)

    def __len__(self) -> int:
        if self.kind == "plain":
            assert self.values is not None
            return len(self.values)
        assert self.shares is not None
        return len(self.shares)

    def to_shared(self, engine: Engine, label: str = "annot") -> SharedVector:
        """Convert to shared form (the owner shares its vector: one
        column-level entry point, one transcript charge)."""
        if self.kind == "shared":
            assert self.shares is not None
            return self.shares
        assert self.owner is not None and self.values is not None
        return engine.share_column(self.owner, self.values, label)

    def reconstruct(self) -> np.ndarray:
        """Test-only / designated reveals: the cleartext annotations."""
        if self.kind == "plain":
            assert self.values is not None
            return self.values.copy()
        assert self.shares is not None
        return self.shares.reconstruct()


class SecureRelation:
    """Tuples held by ``owner`` (columnar); annotations plain or shared."""

    __slots__ = ("owner", "attributes", "_store", "annotations")

    def __init__(
        self,
        owner: str,
        attributes: Sequence[str],
        tuples: Union[TupleStore, Sequence[Tuple[Any, ...]]],
        annotations: SecureAnnotations,
    ) -> None:
        self.owner = owner
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if isinstance(tuples, TupleStore):
            if tuples.attributes != self.attributes:
                tuples = tuples.with_attributes(self.attributes)
            self._store = tuples
        else:
            self._store = TupleStore.from_tuples(self.attributes, tuples)
        self.annotations = annotations
        if self._store.n != len(annotations):
            raise ValueError(
                f"{self._store.n} tuples but "
                f"{len(annotations)} annotations"
            )

    def __len__(self) -> int:
        return self._store.n

    def __repr__(self) -> str:
        return (
            f"SecureRelation(owner={self.owner!r}, "
            f"attributes={self.attributes!r}, n={len(self)})"
        )

    @property
    def store(self) -> TupleStore:
        """The columnar tuple block (primary representation)."""
        return self._store

    @property
    def tuples(self) -> List[Tuple[Any, ...]]:
        """Tuple-list compatibility view (cached materialisation)."""
        return self._store.materialize()

    @property
    def dummy_mask(self) -> np.ndarray:
        """Boolean mask of dummy rows (columnar dummy representation)."""
        return self._store.dummy_mask

    @classmethod
    def from_annotated(
        cls, owner: str, rel: AnnotatedRelation
    ) -> "SecureRelation":
        """Wrap a party's plaintext input relation (annotations plain) —
        zero-copy: the columnar store is shared with the source."""
        return cls(
            owner=owner,
            attributes=rel.attributes,
            tuples=rel.store,
            annotations=SecureAnnotations.plain(owner, rel.annotations),
        )

    def index_of(self, attrs: Sequence[str]) -> List[int]:
        missing = [a for a in attrs if a not in self.attributes]
        if missing:
            raise KeyError(f"attributes {missing} not in {self.attributes}")
        return [self.attributes.index(a) for a in attrs]

    def project_store(self, attrs: Sequence[str]) -> TupleStore:
        """Columnar projection onto ``attrs`` (no materialisation)."""
        return self._store.project(attrs)

    def project_tuples(self, attrs: Sequence[str]) -> List[Tuple[Any, ...]]:
        return self._store.project(attrs).materialize()

    def to_annotated(self, ctx: Context) -> AnnotatedRelation:
        """Test-only: reconstruct the plaintext K-relation this secure
        relation represents (dummies keep their zero annotations)."""
        from ..relalg.semiring import IntegerRing

        return AnnotatedRelation(
            self.attributes,
            self._store,
            self.annotations.reconstruct(),
            IntegerRing(ctx.params.ell),
        )
