"""Secure relations: the data model of the oblivious operators.

A :class:`SecureRelation` is a relation whose *tuples* are held by one
party (the owner) and whose *annotations* are either known to the owner
in the clear (:class:`SecureAnnotations` of kind ``plain`` — the common
situation for protocol inputs, Section 6.5) or secret-shared between the
parties (always the case for intermediate results).

Dummy tuples (Section 4, footnote 2) are built from per-tuple nonces so
that they are pairwise distinct, never collide with real domain values,
and survive projection; their annotations are zero, so they contribute
nothing to any aggregate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..mpc.context import Context
from ..mpc.cuckoo import encode_item
from ..mpc.engine import Engine
from ..mpc.sharing import SharedVector
from ..relalg.relation import AnnotatedRelation

__all__ = [
    "DUMMY_MARKER",
    "dummy_tuple",
    "is_dummy_tuple",
    "sort_key",
    "SecureAnnotations",
    "SecureRelation",
]

DUMMY_MARKER = "__dummy__"
_dummy_nonce = itertools.count(1)


def dummy_tuple(arity: int) -> Tuple:
    """A fresh dummy tuple: every attribute carries the same unique nonce,
    so any projection of a dummy is itself a distinct dummy value."""
    nonce = next(_dummy_nonce)
    return tuple((DUMMY_MARKER, nonce) for _ in range(max(arity, 1)))[
        :arity
    ] or ()


def is_dummy_tuple(t: Tuple) -> bool:
    return any(
        isinstance(v, tuple) and len(v) == 2 and v[0] == DUMMY_MARKER
        for v in t
    )


def sort_key(t: Tuple) -> bytes:
    """A total order over heterogeneous tuples (ints, strings, dummies):
    the canonical item encoding.  Owners sort locally with this key."""
    return encode_item(tuple(t))


@dataclass
class SecureAnnotations:
    """Annotation vector: plain (owner-known) or secret-shared."""

    kind: str  # "plain" | "shared"
    owner: Optional[str] = None
    values: Optional[np.ndarray] = None
    shares: Optional[SharedVector] = None

    @classmethod
    def plain(cls, owner: str, values) -> "SecureAnnotations":
        arr = np.asarray(values, dtype=np.uint64)
        return cls(kind="plain", owner=owner, values=arr)

    @classmethod
    def shared(cls, shares: SharedVector) -> "SecureAnnotations":
        return cls(kind="shared", shares=shares)

    def __len__(self) -> int:
        if self.kind == "plain":
            return len(self.values)
        return len(self.shares)

    def to_shared(self, engine: Engine, label: str = "annot") -> SharedVector:
        """Convert to shared form (the owner shares its vector)."""
        if self.kind == "shared":
            return self.shares
        return engine.share(self.owner, self.values, label)

    def reconstruct(self) -> np.ndarray:
        """Test-only / designated reveals: the cleartext annotations."""
        if self.kind == "plain":
            return self.values.copy()
        return self.shares.reconstruct()


@dataclass
class SecureRelation:
    """Tuples held by ``owner``; annotations plain or shared."""

    owner: str
    attributes: Tuple[str, ...]
    tuples: List[Tuple]
    annotations: SecureAnnotations

    def __post_init__(self):
        self.attributes = tuple(self.attributes)
        if len(self.tuples) != len(self.annotations):
            raise ValueError(
                f"{len(self.tuples)} tuples but "
                f"{len(self.annotations)} annotations"
            )

    def __len__(self) -> int:
        return len(self.tuples)

    @classmethod
    def from_annotated(
        cls, owner: str, rel: AnnotatedRelation
    ) -> "SecureRelation":
        """Wrap a party's plaintext input relation (annotations plain)."""
        return cls(
            owner=owner,
            attributes=rel.attributes,
            tuples=list(rel.tuples),
            annotations=SecureAnnotations.plain(owner, rel.annotations),
        )

    def index_of(self, attrs: Sequence[str]) -> List[int]:
        missing = [a for a in attrs if a not in self.attributes]
        if missing:
            raise KeyError(f"attributes {missing} not in {self.attributes}")
        return [self.attributes.index(a) for a in attrs]

    def project_tuples(self, attrs: Sequence[str]) -> List[Tuple]:
        idx = self.index_of(attrs)
        return [tuple(tup[i] for i in idx) for tup in self.tuples]

    def to_annotated(self, ctx: Context) -> AnnotatedRelation:
        """Test-only: reconstruct the plaintext K-relation this secure
        relation represents (dummies keep their zero annotations)."""
        from ..relalg.semiring import IntegerRing

        return AnnotatedRelation(
            self.attributes,
            self.tuples,
            self.annotations.reconstruct(),
            IntegerRing(ctx.params.ell),
        )
