"""The linear-communication reduce-join back-end (LINQ / Bifrost style).

An alternative to the PSI-based cross-owner reduce-join of
:mod:`repro.core.semijoin`: instead of cuckoo hashing + batched OPRF +
per-bin garbled circuits, one DH-OPRF invocation
(:func:`repro.mpc.dhoprf.dh_oprf_match`) pseudonymises both key sets
and the parent owner matches tokens locally.  Communication is three
messages of ``O(m + n)`` group elements / tokens — no per-bin circuit
material — at the price of revealing the PRF-pseudonymised join
pattern to the parent owner (docs/BACKENDS.md discusses the model).

The surrounding algebra is unchanged from the PSI back-end: the
parent's key projection is deduplicated and dummy-padded to ``m``, the
child's payload vector is extended with a shared zero for non-matching
keys, one OEP (held by the parent owner) routes payloads to parent
rows, and the annotation product refreshes the shares.  The child's
payloads are aligned to the token-sorted slot order either by a local
reorder + share (owner-plain annotations) or by one oblivious
permutation held by the child owner (shared annotations).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..leakage import leaks
from ..mpc.engine import Engine
from ..mpc.sharing import SharedVector
from ..relalg.columns import group_by_first_appearance, joint_row_codes
from .oriented import OrientedEngine
from .relation import SecureAnnotations, SecureRelation, dummy_tuple

__all__ = ["linear_cross_owner_payloads"]


@leaks("join_pattern:parent")
def linear_cross_owner_payloads(
    engine: Engine,
    parent: SecureRelation,
    child: SecureRelation,
) -> SecureAnnotations:
    """Cross-owner reduce-join payloads via the linear back-end."""
    owner = parent.owner
    ctx = engine.ctx
    m = len(parent)
    n = len(child)
    oe = OrientedEngine(engine, owner)

    # X = pi_{F'}(parent), deduplicated, padded with dummies to M —
    # identical preparation to the PSI back-end.
    proj = parent.store.project(child.attributes)
    pcodes = joint_row_codes([proj])[0]
    gid, first = group_by_first_appearance(pcodes)
    x_items: List[Tuple] = [proj.row(int(i)) for i in first.tolist()]
    while len(x_items) < m:
        x_items.append(dummy_tuple(len(child.attributes)))

    child_items = [tuple(t) for t in child.tuples]
    match = oe.dh_oprf_match(x_items, child_items, label="dhoprf")

    # Child payloads in token-sorted slot order, secret-shared, with a
    # shared zero appended as the no-match slot ``n``.
    if n == 0:
        extended = SharedVector.zeros(1, ctx.modulus)
    else:
        order = match.order
        if child.annotations.kind == "plain":
            payload = engine.share_column(
                child.owner,
                child.annotations.values[order],
                label="payload",
            )
        else:
            inv = np.empty(n, dtype=np.int64)
            inv[order] = np.arange(n, dtype=np.int64)
            payload = OrientedEngine(engine, child.owner).permute(
                inv, child.annotations.shares, label="payload"
            )
        extended = payload.concat(SharedVector.zeros(1, ctx.modulus))

    # Parent row i's key is distinct-key gid[i], matched to sorted slot
    # slot[gid[i]] (or the zero slot when it has no join partner).
    xi_items = np.where(match.slot >= 0, match.slot, n)
    xi = xi_items[gid]
    z = oe.oep(xi, extended, m, label="oep")
    if parent.annotations.kind == "plain":
        new = oe.mul_owner_plain(parent.annotations.values, z)
    else:
        new = oe.mul_shared(parent.annotations.shares, z)
    return SecureAnnotations.shared(new)
