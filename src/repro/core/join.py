"""The oblivious join (Section 6.3).

Preconditions (established by the reduce and semijoin phases): every
remaining attribute is an output attribute and every dangling tuple is
zero-annotated, so the nonzero sub-relations satisfy
``R*_F = pi_F(J*)`` — they are derivable from the query result and may
be revealed to Alice.  Three steps:

1. **Reveal** — per relation, a batch of small garbled circuits tests
   ``v(t) != 0`` and outputs either the (encoded) tuple or a dummy to
   Alice.  For Alice-owned relations only the indicator is needed.
2. **Join** — Alice joins the revealed ``R*`` locally with the
   (non-annotated) Yannakakis join order and sends ``|J*|`` to Bob.
3. **Annotations** — for each relation, an OEP indexed by Alice's
   extended permutation ``xi_F(i) = position of pi_F(t_i) in R_F``
   aligns the annotation shares with the join results; a batch of
   product circuits multiplies them up.

The annotation shares of ``J*`` are returned (the caller reveals them —
they are the query results — or feeds them into a composition circuit).

The data plane is columnar end to end: a Bob-owned relation's tuples
are marshalled into ONE ``(n, bits)`` payload matrix
(:func:`~repro.core.codec.encode_store_bits`), the circuit batch
returns the revealed rows as a matrix, and Alice's local star join runs
over :class:`~repro.relalg.columns.TupleStore` blocks with the source
positions riding along as ordinary ``__idx_`` integer columns.

The three steps are exposed as composable pieces (``reveal_relation``,
``local_star_join``, ``align_factor``, ``finish_join``) so that the
:mod:`repro.exec` scheduler can run them as separate DAG nodes;
:func:`oblivious_join` strings them together for monolithic callers.
Both paths produce byte-identical transcripts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence, Tuple, Union

import numpy as np

from ..leakage import leaks
from ..mpc.context import ALICE, Context
from ..mpc.engine import Engine
from ..mpc.sharing import SharedVector
from ..relalg.columns import Column, TupleStore, fresh_nonces, dummy_value
from ..relalg.relation import AnnotatedRelation
from ..relalg.operators import join as plain_join
from ..relalg.semiring import IntegerRing
from .codec import decode_bits_store, encode_store_bits, infer_specs_store
from .oriented import OrientedEngine
from .relation import SecureRelation

__all__ = [
    "ObliviousJoinResult",
    "RevealedRelation",
    "oblivious_join",
    "reveal_relation",
    "local_star_join",
    "empty_join_result",
    "align_factor",
    "finish_join",
]


class ObliviousJoinResult:
    """Join tuples (Alice's) plus their shared annotations."""

    __slots__ = ("attributes", "_store", "annotations")

    def __init__(
        self,
        attributes: Tuple[str, ...],
        tuples: Union[TupleStore, Sequence[Tuple]],
        annotations: SharedVector,
    ):
        self.attributes = attributes
        if isinstance(tuples, TupleStore):
            self._store = tuples
        else:
            self._store = TupleStore.from_tuples(attributes, tuples)
        self.annotations = annotations

    @property
    def store(self) -> TupleStore:
        return self._store

    @property
    def tuples(self) -> List[Tuple]:
        return self._store.materialize()


class RevealedRelation:
    """Step-1 output for one relation: the nonzero rows Alice learned,
    plus their original positions in the owner's relation."""

    __slots__ = ("positions", "store")

    def __init__(self, positions: np.ndarray, store: TupleStore):
        self.positions = positions
        self.store = store

    def __iter__(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """``(position, tuple)`` pairs — the historical view."""
        return iter(
            zip(self.positions.tolist(), self.store.materialize())
        )


@leaks("support:result")
def _reveal_nonzero(
    engine: Engine, rel: SecureRelation, label: str
) -> RevealedRelation:
    """Step 1 for one relation: Alice learns the nonzero-annotated rows
    (with their original positions)."""
    sv = rel.annotations.to_shared(engine, label=f"{label}/share")
    if rel.owner == ALICE:
        flags, _ = engine.reveal_nonzero_flags(sv, None, label=label)
        keep = np.flatnonzero(np.asarray(flags, dtype=bool))
        return RevealedRelation(keep, rel.store.take(keep))
    specs = infer_specs_store(rel.store)
    payload_bits = encode_store_bits(rel.store, specs)
    flags, payloads = engine.reveal_nonzero_flags(
        sv, payload_bits, label=label
    )
    keep = np.flatnonzero(np.asarray(flags, dtype=bool))
    revealed = decode_bits_store(
        np.asarray(payloads, dtype=np.uint8)[keep], specs, rel.attributes
    )
    return RevealedRelation(keep, revealed)


def _pad_join(
    joined: AnnotatedRelation,
    relations: Dict[str, SecureRelation],
    pad_out_to: int,
    ring: IntegerRing,
) -> AnnotatedRelation:
    """Append zero-annotated dummy join rows up to the declared size;
    their hidden index columns point at each relation's extra zero slot
    so the annotation product vanishes."""
    if len(joined) > pad_out_to:
        raise ValueError(
            f"true output size {len(joined)} exceeds the declared "
            f"bound {pad_out_to}"
        )
    pad = pad_out_to - len(joined)
    # One dummy nonce per padding row, shared across its visible
    # attributes (the row is a mixed dummy: real __idx_ slots, dummy
    # data slots — exactly the tuple-path layout).
    nonces = fresh_nonces(pad)
    dummy_vals = [dummy_value(int(x)) for x in nonces.tolist()]
    pad_cols = []
    for a in joined.attributes:
        if a.startswith("__idx_"):
            slot = len(relations[a[len("__idx_"):]])
            pad_cols.append(
                Column.from_ints(np.full(pad, slot, dtype=np.int64))
            )
        else:
            pad_cols.append(Column.from_objects(dummy_vals))
    pad_store = TupleStore.from_columns(
        joined.attributes, pad_cols, np.zeros(pad, dtype=np.int64)
    )
    return AnnotatedRelation(
        joined.attributes,
        joined.store.concat(pad_store),
        None,
        ring,
    )


def reveal_relation(
    engine: Engine, rel: SecureRelation, name: str
) -> Tuple[SharedVector, RevealedRelation]:
    """Step 1 for one relation: share its annotations, then reveal the
    nonzero-annotated rows to Alice."""
    shares = rel.annotations.to_shared(engine, label="share")
    revealed = _reveal_nonzero(engine, rel, f"reveal/{name}")
    return shares, revealed


def local_star_join(
    ctx: Context,
    relations: Dict[str, SecureRelation],
    revealed: Dict[str, RevealedRelation],
    join_steps: List[Tuple[str, str]],
    pad_out_to: int = 0,
) -> AnnotatedRelation:
    """Step 2: Alice's local non-annotated join over the revealed ``R*``,
    tracking per-relation source positions through hidden ``__idx_``
    columns, then disclosing ``|J*|`` (optionally padded) to Bob."""
    ring = IntegerRing(ctx.params.ell)
    star: Dict[str, AnnotatedRelation] = {}
    for name, rel in relations.items():
        rev = revealed[name]
        star_store = rev.store.with_column(
            f"__idx_{name}",
            Column.from_ints(
                np.asarray(rev.positions, dtype=np.int64)
            ),
        )
        star[name] = AnnotatedRelation(
            star_store.attributes, star_store, None, ring
        )
    order = list(join_steps)
    if order:
        rels = dict(star)
        for child, parent in order:
            rels[parent] = plain_join(rels[parent], rels[child])
            del rels[child]
        (root_name, joined), = rels.items()
    else:
        (root_name, joined), = star.items()
    if pad_out_to:
        joined = _pad_join(joined, relations, pad_out_to, ring)
    ctx.send(ALICE, 8, "out_size")
    return joined


def empty_join_result(
    ctx: Context, joined: AnnotatedRelation
) -> ObliviousJoinResult:
    """The ``|J*| = 0`` early exit: no OEPs, no product circuits."""
    attrs = tuple(
        a for a in joined.attributes if not a.startswith("__idx_")
    )
    return ObliviousJoinResult(
        attrs, TupleStore.empty(attrs), SharedVector.zeros(0, ctx.modulus)
    )


def align_factor(
    engine: Engine,
    name: str,
    shares: SharedVector,
    joined: AnnotatedRelation,
) -> SharedVector:
    """Step 3a for one relation: the OEP aligning its annotation shares
    with the join rows via Alice's ``__idx_`` column."""
    ctx = engine.ctx
    oe = OrientedEngine(engine, ALICE)
    xi = joined.column_array(f"__idx_{name}")
    # One extra zero slot receives the padding rows' indices, so
    # their annotation product is a (shared) zero.
    extended = shares.concat(SharedVector.zeros(1, ctx.modulus))
    return oe.oep(xi, extended, len(joined), label=f"oep/{name}")


def finish_join(
    engine: Engine,
    joined: AnnotatedRelation,
    factors: List[SharedVector],
) -> ObliviousJoinResult:
    """Step 3b: one product circuit per join row, then strip the hidden
    index columns."""
    oe = OrientedEngine(engine, ALICE)
    annots = oe.product_across(factors, label="prod")
    attrs = tuple(
        a for a in joined.attributes if not a.startswith("__idx_")
    )
    return ObliviousJoinResult(attrs, joined.store.project(attrs), annots)


def oblivious_join(
    engine: Engine,
    relations: Dict[str, SecureRelation],
    join_steps: List[Tuple[str, str]],
    label: str = "oblivious_join",
    pad_out_to: int = 0,
) -> ObliviousJoinResult:
    """Compute ``J*`` and its shared annotations.

    ``join_steps`` is the reduced plan's bottom-up ``(child, parent)``
    order; the last surviving node is the root.

    ``pad_out_to``: if the true output size is sensitive, Alice pads
    ``J*`` with zero-annotated dummy tuples up to this declared size
    before disclosing it to Bob (Section 6.3 step 2); raises if the
    true size exceeds the declared bound.
    """
    ctx = engine.ctx
    with ctx.section(label):
        # Step 1: reveal R*_F to Alice (with original positions).
        revealed: Dict[str, RevealedRelation] = {}
        shares: Dict[str, SharedVector] = {}
        for name, rel in relations.items():
            shares[name], revealed[name] = reveal_relation(
                engine, rel, name
            )

        # Step 2: Alice's local join; |J*| goes to Bob.
        joined = local_star_join(
            ctx, relations, revealed, join_steps, pad_out_to
        )

        # Step 3: per-relation OEP + one product circuit per join row.
        if len(joined) == 0:
            return empty_join_result(ctx, joined)
        factors = [
            align_factor(engine, name, shares[name], joined)
            for name in relations
        ]
        return finish_join(engine, joined, factors)
