"""The oblivious join (Section 6.3).

Preconditions (established by the reduce and semijoin phases): every
remaining attribute is an output attribute and every dangling tuple is
zero-annotated, so the nonzero sub-relations satisfy
``R*_F = pi_F(J*)`` — they are derivable from the query result and may
be revealed to Alice.  Three steps:

1. **Reveal** — per relation, a batch of small garbled circuits tests
   ``v(t) != 0`` and outputs either the (encoded) tuple or a dummy to
   Alice.  For Alice-owned relations only the indicator is needed.
2. **Join** — Alice joins the revealed ``R*`` locally with the
   (non-annotated) Yannakakis join order and sends ``|J*|`` to Bob.
3. **Annotations** — for each relation, an OEP indexed by Alice's
   extended permutation ``xi_F(i) = position of pi_F(t_i) in R_F``
   aligns the annotation shares with the join results; a batch of
   product circuits multiplies them up.

The annotation shares of ``J*`` are returned (the caller reveals them —
they are the query results — or feeds them into a composition circuit).

The three steps are exposed as composable pieces (``reveal_relation``,
``local_star_join``, ``align_factor``, ``finish_join``) so that the
:mod:`repro.exec` scheduler can run them as separate DAG nodes;
:func:`oblivious_join` strings them together for monolithic callers.
Both paths produce byte-identical transcripts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..mpc.context import ALICE, Context
from ..mpc.engine import Engine
from ..mpc.sharing import SharedVector
from ..relalg.relation import AnnotatedRelation
from ..relalg.operators import join as plain_join
from ..relalg.semiring import IntegerRing
from .codec import decode_tuple_bits, encode_tuple_bits, infer_specs
from .oriented import OrientedEngine
from .relation import SecureRelation, dummy_tuple

__all__ = [
    "ObliviousJoinResult",
    "oblivious_join",
    "reveal_relation",
    "local_star_join",
    "empty_join_result",
    "align_factor",
    "finish_join",
]


class ObliviousJoinResult:
    """Join tuples (Alice's) plus their shared annotations."""

    def __init__(
        self,
        attributes: Tuple[str, ...],
        tuples: List[Tuple],
        annotations: SharedVector,
    ):
        self.attributes = attributes
        self.tuples = tuples
        self.annotations = annotations


def _reveal_nonzero(
    engine: Engine, rel: SecureRelation, label: str
) -> List[Tuple[int, Tuple]]:
    """Step 1 for one relation: Alice learns the list of
    ``(original position, tuple)`` for nonzero-annotated tuples."""
    sv = rel.annotations.to_shared(engine, label=f"{label}/share")
    if rel.owner == ALICE:
        flags, _ = engine.reveal_nonzero_flags(sv, None, label=label)
        return [
            (i, tuple(rel.tuples[i]))
            for i in range(len(rel))
            if flags[i]
        ]
    specs = infer_specs(rel.tuples, len(rel.attributes))
    payload_bits = [
        encode_tuple_bits(t, specs) for t in rel.tuples
    ]
    flags, payloads = engine.reveal_nonzero_flags(
        sv, payload_bits, label=label
    )
    out: List[Tuple[int, Tuple]] = []
    for i in range(len(rel)):
        if flags[i]:
            out.append((i, decode_tuple_bits(payloads[i], specs)))
    return out


def _pad_join(
    joined: AnnotatedRelation,
    relations: Dict[str, SecureRelation],
    pad_out_to: int,
    ring: IntegerRing,
) -> AnnotatedRelation:
    """Append zero-annotated dummy join rows up to the declared size;
    their hidden index columns point at each relation's extra zero slot
    so the annotation product vanishes."""
    if len(joined) > pad_out_to:
        raise ValueError(
            f"true output size {len(joined)} exceeds the declared "
            f"bound {pad_out_to}"
        )
    visible = [
        a for a in joined.attributes if not a.startswith("__idx_")
    ]
    idx_cols = {
        a: len(relations[a[len("__idx_"):]])
        for a in joined.attributes
        if a.startswith("__idx_")
    }
    rows = list(joined.tuples)
    for _ in range(pad_out_to - len(joined)):
        dummy = dict(zip(visible, dummy_tuple(len(visible))))
        rows.append(
            tuple(
                idx_cols[a] if a.startswith("__idx_") else dummy[a]
                for a in joined.attributes
            )
        )
    return AnnotatedRelation(joined.attributes, rows, None, ring)


def reveal_relation(
    engine: Engine, rel: SecureRelation, name: str
) -> Tuple[SharedVector, List[Tuple[int, Tuple]]]:
    """Step 1 for one relation: share its annotations, then reveal the
    nonzero-annotated ``(position, tuple)`` list to Alice."""
    shares = rel.annotations.to_shared(engine, label="share")
    revealed = _reveal_nonzero(engine, rel, f"reveal/{name}")
    return shares, revealed


def local_star_join(
    ctx: Context,
    relations: Dict[str, SecureRelation],
    revealed: Dict[str, List[Tuple[int, Tuple]]],
    join_steps: List[Tuple[str, str]],
    pad_out_to: int = 0,
) -> AnnotatedRelation:
    """Step 2: Alice's local non-annotated join over the revealed ``R*``,
    tracking per-relation source positions through hidden ``__idx_``
    columns, then disclosing ``|J*|`` (optionally padded) to Bob."""
    ring = IntegerRing(ctx.params.ell)
    star: Dict[str, AnnotatedRelation] = {}
    for name, rel in relations.items():
        idx_attr = f"__idx_{name}"
        star[name] = AnnotatedRelation(
            tuple(rel.attributes) + (idx_attr,),
            [t + (pos,) for pos, t in revealed[name]],
            None,
            ring,
        )
    order = list(join_steps)
    if order:
        rels = dict(star)
        for child, parent in order:
            rels[parent] = plain_join(rels[parent], rels[child])
            del rels[child]
        (root_name, joined), = rels.items()
    else:
        (root_name, joined), = star.items()
    if pad_out_to:
        joined = _pad_join(joined, relations, pad_out_to, ring)
    ctx.send(ALICE, 8, "out_size")
    return joined


def empty_join_result(
    ctx: Context, joined: AnnotatedRelation
) -> ObliviousJoinResult:
    """The ``|J*| = 0`` early exit: no OEPs, no product circuits."""
    attrs = tuple(
        a for a in joined.attributes if not a.startswith("__idx_")
    )
    return ObliviousJoinResult(
        attrs, [], SharedVector.zeros(0, ctx.modulus)
    )


def align_factor(
    engine: Engine,
    name: str,
    shares: SharedVector,
    joined: AnnotatedRelation,
) -> SharedVector:
    """Step 3a for one relation: the OEP aligning its annotation shares
    with the join rows via Alice's ``__idx_`` column."""
    ctx = engine.ctx
    oe = OrientedEngine(engine, ALICE)
    xi = [int(v) for v in joined.column(f"__idx_{name}")]
    # One extra zero slot receives the padding rows' indices, so
    # their annotation product is a (shared) zero.
    extended = shares.concat(SharedVector.zeros(1, ctx.modulus))
    return oe.oep(xi, extended, len(joined), label=f"oep/{name}")


def finish_join(
    engine: Engine,
    joined: AnnotatedRelation,
    factors: List[SharedVector],
) -> ObliviousJoinResult:
    """Step 3b: one product circuit per join row, then strip the hidden
    index columns."""
    oe = OrientedEngine(engine, ALICE)
    annots = oe.product_across(factors, label="prod")
    keep = [
        i
        for i, a in enumerate(joined.attributes)
        if not a.startswith("__idx_")
    ]
    attrs = tuple(joined.attributes[i] for i in keep)
    tuples = [tuple(t[i] for i in keep) for t in joined.tuples]
    return ObliviousJoinResult(attrs, tuples, annots)


def oblivious_join(
    engine: Engine,
    relations: Dict[str, SecureRelation],
    join_steps: List[Tuple[str, str]],
    label: str = "oblivious_join",
    pad_out_to: int = 0,
) -> ObliviousJoinResult:
    """Compute ``J*`` and its shared annotations.

    ``join_steps`` is the reduced plan's bottom-up ``(child, parent)``
    order; the last surviving node is the root.

    ``pad_out_to``: if the true output size is sensitive, Alice pads
    ``J*`` with zero-annotated dummy tuples up to this declared size
    before disclosing it to Bob (Section 6.3 step 2); raises if the
    true size exceeds the declared bound.
    """
    ctx = engine.ctx
    with ctx.section(label):
        # Step 1: reveal R*_F to Alice (with original positions).
        revealed: Dict[str, List[Tuple[int, Tuple]]] = {}
        shares: Dict[str, SharedVector] = {}
        for name, rel in relations.items():
            shares[name], revealed[name] = reveal_relation(
                engine, rel, name
            )

        # Step 2: Alice's local join; |J*| goes to Bob.
        joined = local_star_join(
            ctx, relations, revealed, join_steps, pad_out_to
        )

        # Step 3: per-relation OEP + one product circuit per join row.
        if len(joined) == 0:
            return empty_join_result(ctx, joined)
        factors = [
            align_factor(engine, name, shares[name], joined)
            for name in relations
        ]
        return finish_join(engine, joined, factors)
