"""Oblivious semijoin and reduce-join (Section 6.2).

``oblivious_reduce_join(parent, child)`` computes the annotated join
``R = parent ⋈⊗ child`` under the reduce-phase constraint
``child.attributes ⊆ parent.attributes``: the output has *exactly the
parent's tuples*, only the annotations change — a parent tuple that
joins a child tuple gets the product of their annotations, others get a
(shared) zero.

``oblivious_semijoin(target, filter)`` is
``target ⋈⊗ pi^1_{T∩F}(filter)`` — it zero-annotates the target tuples
with no nonzero join partner, leaving the rest untouched (multiplied by
the shared indicator 1).

Three regimes, matching the paper:

* different owners, child annotations owner-known — PSI with plain
  payloads (Section 6.5 fast path);
* different owners, child annotations shared — PSI with secret-shared
  payloads (Section 5.5);
* same owner — no PSI: the owner locally aligns child tuples with
  parent tuples (a dummy slot for non-joining tuples) and one OEP plus
  the multiplication circuits refresh the shares.  Fully plain
  same-owner inputs never leave the owner at all.

The owner-local alignment maps run columnar: parent keys and child
tuples are re-encoded into one shared ``int64`` code space
(:func:`~repro.relalg.columns.joint_row_codes`) and the position maps
``mu``/``xi`` fall out of one sort + ``searchsorted`` (same owner) or
one group-by (cross owner) instead of per-tuple dict probes.  Only the
PSI input items are ever materialised as Python tuples.
"""

from __future__ import annotations

from typing import Any, List, Tuple

import numpy as np

from ..mpc.context import Context
from ..mpc.engine import Engine
from ..mpc.sharing import SharedVector
from ..relalg.columns import group_by_first_appearance, joint_row_codes
from .aggregation import oblivious_support_projection
from .linear import linear_cross_owner_payloads
from .oriented import OrientedEngine
from .relation import SecureAnnotations, SecureRelation, dummy_tuple
from .shared_payload_psi import psi_with_shared_payloads

__all__ = ["BACKENDS", "oblivious_reduce_join", "oblivious_semijoin"]

#: Selectable join back-ends: "yannakakis" is the paper's PSI/OEP
#: protocol, "linear" the LINQ/Bifrost-style DH-OPRF protocol of
#: :mod:`repro.core.linear`.  The back-end only changes the cross-owner
#: regime — same-owner and scalar-child nodes take identical paths.
BACKENDS = ("yannakakis", "linear")


def _psi_items(rel: SecureRelation) -> List[Tuple]:
    """A relation's tuples as PSI items (they are distinct whenever the
    relation came out of a projection-aggregation, which the Yannakakis
    plan guarantees)."""
    return [tuple(t) for t in rel.tuples]


def oblivious_reduce_join(
    engine: Engine,
    parent: SecureRelation,
    child: SecureRelation,
    label: str = "reduce_join",
    backend: str = "yannakakis",
) -> SecureRelation:
    """``parent ⋈⊗ child`` with ``child.attributes ⊆ parent.attributes``."""
    if not set(child.attributes) <= set(parent.attributes):
        raise ValueError(
            "reduce-join requires the child's attributes to be a subset "
            f"of the parent's ({child.attributes} vs {parent.attributes})"
        )
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown join back-end {backend!r}; choose from {BACKENDS}"
        )
    ctx = engine.ctx
    m = len(parent)
    if m == 0:
        return parent

    with ctx.section(label):
        if not child.attributes:
            new_annots = _scalar_child_payloads(engine, parent, child)
        elif parent.owner == child.owner:
            new_annots = _same_owner_payloads(engine, parent, child)
        elif backend == "linear":
            new_annots = linear_cross_owner_payloads(engine, parent, child)
        else:
            new_annots = _cross_owner_payloads(engine, parent, child)
    return SecureRelation(
        parent.owner, parent.attributes, parent.store, new_annots
    )


def _scalar_child_payloads(
    engine: Engine, parent: SecureRelation, child: SecureRelation
) -> SecureAnnotations:
    """Child aggregated to zero attributes: semantically a single empty
    tuple whose annotation is the (local) sum of the child's annotation
    vector — every parent tuple's annotation is scaled by that scalar.
    No PSI is needed; summing shares and replicating them is local."""
    ctx = engine.ctx
    m = len(parent)
    if (
        parent.annotations.kind == "plain"
        and child.annotations.kind == "plain"
        and parent.owner == child.owner
    ):
        total = int(child.annotations.values.sum()) % ctx.modulus
        new_vals = (
            parent.annotations.values * np.uint64(total)
        ) & ctx.mask
        return SecureAnnotations.plain(parent.owner, new_vals)
    oe = OrientedEngine(engine, parent.owner)
    child_sv = child.annotations.to_shared(engine)
    total_sv = child_sv.sum()
    z = SharedVector(
        np.tile(total_sv.alice, m), np.tile(total_sv.bob, m), ctx.modulus
    )
    if parent.annotations.kind == "plain":
        new = oe.mul_owner_plain(parent.annotations.values, z)
    else:
        new = oe.mul_shared(parent.annotations.shares, z)
    return SecureAnnotations.shared(new)


def _child_alignment(
    parent: SecureRelation, child: SecureRelation
) -> Tuple[np.ndarray, np.ndarray]:
    """Owner-local: shared row codes for the parent's key projection and
    the child's tuples (``(pcodes, ccodes)``)."""
    proj = parent.store.project(child.attributes)
    return tuple(joint_row_codes([proj, child.store]))  # type: ignore[return-value]


def _same_owner_payloads(
    engine: Engine,
    parent: SecureRelation,
    child: SecureRelation,
) -> SecureAnnotations:
    """The simplified same-party protocol (end of Section 6.2)."""
    owner = parent.owner
    ctx = engine.ctx
    n = len(child)
    pcodes, ccodes = _child_alignment(parent, child)
    if len(np.unique(ccodes)) != n:
        raise ValueError(
            "reduce-join requires distinct child tuples (run the "
            "child through an oblivious projection-aggregation "
            "first, as the Yannakakis plan does)"
        )
    if n == 0:
        mu = np.zeros(len(pcodes), dtype=np.int64)
    else:
        order = np.argsort(ccodes)
        sorted_codes = ccodes[order]
        pos = np.searchsorted(sorted_codes, pcodes)
        pos_c = np.minimum(pos, n - 1)
        found = (pos < n) & (sorted_codes[pos_c] == pcodes)
        mu = np.where(found, order[pos_c], n)  # n = the dummy slot

    if (
        parent.annotations.kind == "plain"
        and child.annotations.kind == "plain"
    ):
        # Both relations fully at the owner: pure local computation.
        ext = np.concatenate(
            [child.annotations.values, np.zeros(1, dtype=np.uint64)]
        )
        new_vals = (parent.annotations.values * ext[mu]) & ctx.mask
        return SecureAnnotations.plain(owner, new_vals)

    oe = OrientedEngine(engine, owner)
    child_sv = child.annotations.to_shared(engine)
    extended = child_sv.concat(SharedVector.zeros(1, ctx.modulus))
    z = oe.oep(mu, extended, len(parent), label="oep")
    if parent.annotations.kind == "plain":
        new = oe.mul_owner_plain(parent.annotations.values, z)
    else:
        new = oe.mul_shared(parent.annotations.shares, z)
    return SecureAnnotations.shared(new)


def _cross_owner_payloads(
    engine: Engine,
    parent: SecureRelation,
    child: SecureRelation,
) -> SecureAnnotations:
    """The PSI-based protocol of Section 6.2 (different owners)."""
    owner = parent.owner
    m = len(parent)
    oe = OrientedEngine(engine, owner)

    # X = pi_{F'}(parent), deduplicated, padded with dummies to M.
    proj = parent.store.project(child.attributes)
    pcodes = joint_row_codes([proj])[0]
    gid, first = group_by_first_appearance(pcodes)
    x_items: List[Tuple] = [proj.row(int(i)) for i in first.tolist()]
    while len(x_items) < m:
        x_items.append(dummy_tuple(len(child.attributes)))

    child_items = _psi_items(child)
    if child.annotations.kind == "plain":
        res = oe.psi(
            x_items,
            child_items,
            [int(v) for v in child.annotations.values],
            label="psi",
        )
    else:
        res = psi_with_shared_payloads(
            engine, owner, x_items, child_items,
            child.annotations.shares, label="psi_shared",
        )

    # Map per-bin payloads back to the parent's tuple positions: row i's
    # key is distinct-key gid[i], which sits in bin item_bins[gid[i]].
    item_bins = np.asarray(res.bin_of_item_index(), dtype=np.int64)
    xi = item_bins[gid]
    z = oe.oep(xi, _as_shared(res.payload, engine.ctx), m, label="oep")
    if parent.annotations.kind == "plain":
        new = oe.mul_owner_plain(parent.annotations.values, z)
    else:
        new = oe.mul_shared(parent.annotations.shares, z)
    return SecureAnnotations.shared(new)


def _as_shared(payload: Any, ctx: Context) -> SharedVector:
    if isinstance(payload, SharedVector):
        return payload
    raise TypeError("expected a shared per-bin payload vector")


def oblivious_semijoin(
    engine: Engine,
    target: SecureRelation,
    filter_rel: SecureRelation,
    label: str = "semijoin",
    backend: str = "yannakakis",
) -> SecureRelation:
    """``target ⋉⊗ filter``: zero-annotate the target tuples that join no
    nonzero-annotated filter tuple (Section 6.2, second type)."""
    shared_attrs = [
        a for a in filter_rel.attributes if a in set(target.attributes)
    ]
    with engine.ctx.section(label):
        support = oblivious_support_projection(
            engine, filter_rel, shared_attrs, label="support"
        )
        return oblivious_reduce_join(
            engine, target, support, label="join", backend=backend
        )
