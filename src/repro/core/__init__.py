"""The paper's primary contribution: oblivious relational operators and
the secure Yannakakis protocol (Sections 5.5, 6 and 7)."""

from .aggregation import oblivious_aggregate, oblivious_support_projection
from .join import ObliviousJoinResult, oblivious_join
from .oriented import OrientedEngine
from .protocol import (
    ProtocolStats,
    secure_yannakakis,
    secure_yannakakis_shared,
)
from .relation import (
    SecureAnnotations,
    SecureRelation,
    dummy_tuple,
    is_dummy_tuple,
)
from .selection import SelectionPolicy, apply_selection
from .semijoin import oblivious_reduce_join, oblivious_semijoin
from .shared_payload_psi import psi_with_shared_payloads

__all__ = [
    "ObliviousJoinResult",
    "OrientedEngine",
    "ProtocolStats",
    "SecureAnnotations",
    "SecureRelation",
    "SelectionPolicy",
    "apply_selection",
    "dummy_tuple",
    "is_dummy_tuple",
    "oblivious_aggregate",
    "oblivious_join",
    "oblivious_reduce_join",
    "oblivious_semijoin",
    "oblivious_support_projection",
    "psi_with_shared_payloads",
    "secure_yannakakis",
    "secure_yannakakis_shared",
]
