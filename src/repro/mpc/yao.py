"""The garbled-circuit 2PC protocol wrapper (Section 5.2).

Bob garbles, Alice evaluates; the circuit's outputs are decoded to Alice.
Shared outputs are realised by the standard mask trick: the circuit
computes ``f(...) + r`` with Bob's fresh random ``r`` as an extra input,
Alice's output *is* her arithmetic share and Bob's share is ``-r`` — this
is the Yao-to-arithmetic conversion of [ABY, 12] that the paper invokes
in Section 5.2.

Communication per batch of instances of one circuit:

* garbled tables: two ``16``-byte ciphertexts per AND gate (half-gates)
* Bob's input and constant wire labels: 16 bytes each
* Alice's input labels: one OT per bit (via OT extension)
* output decode bits: one bit per output wire

``charge_garbled_batch`` charges exactly these bytes in SIMULATED mode so
that transcripts agree between modes.
"""

from __future__ import annotations

from typing import List, Sequence

from .circuits.circuit import Circuit
from .circuits.garbling import (
    LABEL_BYTES,
    ROWS_PER_AND,
    evaluate_garbled,
    garble,
)
from .context import ALICE, BOB, Context
from .ot import SimulatedOT

__all__ = [
    "run_garbled_batch",
    "charge_garbled_batch",
    "charge_ot",
]


def charge_ot(
    ctx: Context, ot, n_transfers: int, total_pair_bytes: int
) -> None:
    """Charge the transcript what an IKNP batch of ``n_transfers`` OTs
    costs, where ``total_pair_bytes`` is the summed length of *both*
    messages over all pairs (SIMULATED mode only)."""
    if n_transfers == 0:
        return
    kappa = ctx.params.kappa
    if isinstance(ot, SimulatedOT) and not ot._base_charged:
        elem = 2048 // 8
        ctx.send(ALICE, elem, "ot/ext/base/A")
        ctx.send(BOB, elem * kappa, "ot/ext/base/B")
        ctx.send(ALICE, 32 * kappa, "ot/ext/base/ciphertexts")
        ot._base_charged = True
    ctx.send(ALICE, kappa * ((n_transfers + 7) // 8), "ot/ext/u")
    ctx.send(BOB, total_pair_bytes, "ot/ext/ciphertexts")


def run_garbled_batch(
    ctx: Context,
    ot,
    circuit: Circuit,
    alice_bits_list: Sequence[Sequence[int]],
    bob_bits_list: Sequence[Sequence[int]],
) -> List[List[int]]:
    """REAL mode: garble and evaluate ``circuit`` once per instance,
    batching all of Alice's input-label OTs into a single extension call.
    Returns each instance's output bits (known to Alice)."""
    if len(alice_bits_list) != len(bob_bits_list):
        raise ValueError("need matching numbers of Alice/Bob input vectors")
    n = len(alice_bits_list)
    if n == 0:
        return []

    garblings = []
    tables_bytes = 0
    bob_label_bytes = 0
    label_pairs = []
    choice_bits: List[int] = []
    for alice_bits, bob_bits in zip(alice_bits_list, bob_bits_list):
        g = garble(circuit, ctx.random_bytes)
        garblings.append(g)
        tables_bytes += g.tables.n_bytes
        bob_label_bytes += LABEL_BYTES * (
            len(circuit.bob_inputs) + len(circuit.const_wires)
        )
        for w, bit in zip(circuit.alice_inputs, alice_bits):
            pair = (
                g.label(w, 0).to_bytes(LABEL_BYTES, "little"),
                g.label(w, 1).to_bytes(LABEL_BYTES, "little"),
            )
            label_pairs.append(pair)
            choice_bits.append(int(bit) & 1)
    ctx.send(BOB, tables_bytes, "gc/tables")
    ctx.send(BOB, bob_label_bytes, "gc/bob_labels")
    with ctx.section("gc/alice_labels"):
        alice_labels = ot.transfer(label_pairs, choice_bits)

    outputs: List[List[int]] = []
    decode_bytes = 0
    cursor = 0
    for g, bob_bits in zip(garblings, bob_bits_list):
        input_labels = {}
        for w in circuit.alice_inputs:
            input_labels[w] = int.from_bytes(alice_labels[cursor], "little")
            cursor += 1
        for w, bit in zip(circuit.bob_inputs, bob_bits):
            input_labels[w] = g.label(w, int(bit) & 1)
        for w, bit in circuit.const_wires:
            input_labels[w] = g.label(w, bit)
        active = evaluate_garbled(circuit, g.tables, input_labels)
        permute = g.output_permute_bits()
        decode_bytes += (len(circuit.outputs) + 7) // 8
        outputs.append(
            [
                (active[w] & 1) ^ p
                for w, p in zip(circuit.outputs, permute)
            ]
        )
    ctx.send(BOB, decode_bytes, "gc/decode")
    return outputs


def charge_garbled_batch(
    ctx: Context, ot, circuit: Circuit, n_instances: int
) -> None:
    """SIMULATED mode: charge exactly what :func:`run_garbled_batch`
    would send for ``n_instances`` of ``circuit``."""
    if n_instances == 0:
        return
    ctx.send(
        BOB,
        ROWS_PER_AND * LABEL_BYTES * circuit.and_count * n_instances,
        "gc/tables",
    )
    ctx.send(
        BOB,
        LABEL_BYTES
        * (len(circuit.bob_inputs) + len(circuit.const_wires))
        * n_instances,
        "gc/bob_labels",
    )
    n_alice_bits = len(circuit.alice_inputs) * n_instances
    with ctx.section("gc/alice_labels"):
        charge_ot(ctx, ot, n_alice_bits, 2 * LABEL_BYTES * n_alice_bits)
    ctx.send(
        BOB, ((len(circuit.outputs) + 7) // 8) * n_instances, "gc/decode"
    )
