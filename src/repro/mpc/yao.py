"""The garbled-circuit 2PC protocol wrapper (Section 5.2).

Bob garbles, Alice evaluates; the circuit's outputs are decoded to Alice.
Shared outputs are realised by the standard mask trick: the circuit
computes ``f(...) + r`` with Bob's fresh random ``r`` as an extra input,
Alice's output *is* her arithmetic share and Bob's share is ``-r`` — this
is the Yao-to-arithmetic conversion of [ABY, 12] that the paper invokes
in Section 5.2.

Communication per batch of instances of one circuit:

* garbled tables: two ``16``-byte ciphertexts per AND gate (half-gates)
* Bob's input and constant wire labels: 16 bytes each
* Alice's input labels: one OT per bit (via OT extension)
* output decode bits: one bit per output wire

``charge_garbled_batch`` charges exactly these bytes in SIMULATED mode so
that transcripts agree between modes.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .circuits.circuit import Circuit
from .circuits.garbling import (
    LABEL_BYTES,
    ROWS_PER_AND,
    evaluate_batch,
    garble_batch,
)
from .context import ALICE, BOB, Context
from .ot import OT, SimulatedOT

__all__ = [
    "run_garbled_batch",
    "charge_garbled_batch",
    "charge_ot",
]


def charge_ot(
    ctx: Context, ot: OT, n_transfers: int, total_pair_bytes: int
) -> None:
    """Charge the transcript what an IKNP batch of ``n_transfers`` OTs
    costs, where ``total_pair_bytes`` is the summed length of *both*
    messages over all pairs (SIMULATED mode only)."""
    if n_transfers == 0:
        return
    kappa = ctx.params.kappa
    if isinstance(ot, SimulatedOT) and not ot._base_charged:
        elem = ot.group_bits // 8
        ctx.send(ALICE, elem, "ot/ext/base/A")
        ctx.send(BOB, elem * kappa, "ot/ext/base/B")
        ctx.send(ALICE, 32 * kappa, "ot/ext/base/ciphertexts")
        ot._base_charged = True
    ctx.send(ALICE, kappa * ((n_transfers + 7) // 8), "ot/ext/u")
    ctx.send(BOB, total_pair_bytes, "ot/ext/ciphertexts")


def run_garbled_batch(
    ctx: Context,
    ot,
    circuit: Circuit,
    alice_bits_list: Sequence[Sequence[int]],
    bob_bits_list: Sequence[Sequence[int]],
) -> List[List[int]]:
    """REAL mode: garble and evaluate ``circuit`` once per instance,
    batching all of Alice's input-label OTs into a single extension call.
    Returns each instance's output bits (known to Alice).

    The whole batch runs instance-parallel: the template's
    :class:`~repro.mpc.circuits.garbling.GarblePlan` comes from the run
    cache, inputs/outputs are marshalled as bit matrices, and Alice's
    label OTs move as one contiguous matrix through the extension
    (:mod:`repro.mpc._reference` keeps the scalar original)."""
    if len(alice_bits_list) != len(bob_bits_list):
        raise ValueError("need matching numbers of Alice/Bob input vectors")
    n = len(alice_bits_list)
    if n == 0:
        return []
    plan = ctx.cache.garble_plan(circuit)
    n_alice = len(circuit.alice_inputs)
    n_bob = len(circuit.bob_inputs)
    a_bits = _bit_matrix(alice_bits_list, n_alice)
    b_bits = _bit_matrix(bob_bits_list, n_bob)

    g = garble_batch(plan, n, ctx.random_bytes)
    ctx.send(BOB, g.tables_bytes, "gc/tables")
    ctx.send(
        BOB,
        LABEL_BYTES * (n_bob + len(circuit.const_wires)) * n,
        "gc/bob_labels",
    )
    with ctx.section("gc/alice_labels"):
        if n_alice:
            zeros = g.zero[plan.alice_wires].transpose(1, 0, 2)
            m0 = zeros.reshape(n * n_alice, LABEL_BYTES)
            m1 = (zeros ^ g.delta[:, None, :]).reshape(
                n * n_alice, LABEL_BYTES
            )
            alice_labels = _ot_matrix(ot, m0, m1, a_bits.reshape(-1))

    active = np.zeros((plan.n_wires, n, LABEL_BYTES), dtype=np.uint8)
    if n_alice:
        active[plan.alice_wires] = alice_labels.reshape(
            n, n_alice, LABEL_BYTES
        ).transpose(1, 0, 2)
    if n_bob:
        active[plan.bob_wires] = g.labels(plan.bob_wires, b_bits)
    if len(plan.const_wires):
        active[plan.const_wires] = g.labels(
            plan.const_wires,
            np.broadcast_to(plan.const_bits, (n, len(plan.const_bits))),
        )
    select = evaluate_batch(plan, g.tables, active)
    out_bits = select ^ g.output_permute_bits()
    ctx.send(BOB, ((len(circuit.outputs) + 7) // 8) * n, "gc/decode")
    return out_bits.astype(int).tolist()


def _bit_matrix(
    bits_list: Sequence[Sequence[int]], n_wires: int
) -> np.ndarray:
    """Stack per-instance bit lists into an ``(n, n_wires)`` matrix,
    ignoring trailing extra bits like the scalar path's ``zip`` did."""
    mat = np.asarray(bits_list, dtype=np.uint8) & 1
    if mat.ndim == 1:  # zero-width inputs
        mat = mat.reshape(len(bits_list), 0)
    return mat[:, :n_wires]


def _ot_matrix(
    ot: OT, m0: np.ndarray, m1: np.ndarray, choices: np.ndarray
) -> np.ndarray:
    """Label-pair OT through the matrix fast path when the back-end has
    one, else through the generic ``bytes`` interface."""
    tm = getattr(ot, "transfer_matrix", None)
    if tm is not None:
        return tm(m0, m1, choices)
    got = ot.transfer(
        [(a.tobytes(), b.tobytes()) for a, b in zip(m0, m1)],
        [int(c) for c in choices],
    )
    return np.frombuffer(b"".join(got), dtype=np.uint8).reshape(
        len(got), m0.shape[1]
    )


def charge_garbled_batch(
    ctx: Context, ot: OT, circuit: Circuit, n_instances: int
) -> None:
    """SIMULATED mode: charge exactly what :func:`run_garbled_batch`
    would send for ``n_instances`` of ``circuit``."""
    if n_instances == 0:
        return
    ctx.send(
        BOB,
        ROWS_PER_AND * LABEL_BYTES * circuit.and_count * n_instances,
        "gc/tables",
    )
    ctx.send(
        BOB,
        LABEL_BYTES
        * (len(circuit.bob_inputs) + len(circuit.const_wires))
        * n_instances,
        "gc/bob_labels",
    )
    n_alice_bits = len(circuit.alice_inputs) * n_instances
    with ctx.section("gc/alice_labels"):
        charge_ot(ctx, ot, n_alice_bits, 2 * LABEL_BYTES * n_alice_bits)
    ctx.send(
        BOB, ((len(circuit.outputs) + 7) // 8) * n_instances, "gc/decode"
    )
