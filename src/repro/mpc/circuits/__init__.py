"""Boolean circuits and Yao garbling (Section 5.2 substrate)."""

from .builder import CircuitBuilder
from .circuit import AND, INV, XOR, Circuit, Gate
from .garbling import (
    GarbledTables,
    GarblingResult,
    evaluate_garbled,
    garble,
)

__all__ = [
    "AND",
    "Circuit",
    "CircuitBuilder",
    "Gate",
    "GarbledTables",
    "GarblingResult",
    "INV",
    "XOR",
    "evaluate_garbled",
    "garble",
]
