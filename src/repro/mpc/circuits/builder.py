"""Circuit builder with the arithmetic gadgets the protocol needs.

Words are little-endian bit lists over ``Z_{2^ell}`` (wrap-around
arithmetic, matching the arithmetic secret-sharing ring).  Gadgets:

* ``add`` / ``sub`` / ``neg``  — ripple-carry, final carry dropped (mod 2^ell)
* ``mul``                      — shift-and-add schoolbook multiplier, low ell bits
* ``eq`` / ``is_zero`` / ``nonzero``
* ``mux``                      — word select
* ``lt_unsigned`` / ``gt_unsigned``
* ``div_unsigned``             — restoring long division (for avg/ratio
                                 query composition, Section 7)

Gate-count formulas for these gadgets (used by the SIMULATED cost model)
live in :mod:`repro.mpc.costs` and are asserted against real builds in the
test suite.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .circuit import AND, INV, XOR, Circuit, Gate

__all__ = ["CircuitBuilder"]

Wire = int
Word = List[int]


class CircuitBuilder:
    """Incrementally builds a :class:`Circuit`."""

    def __init__(self) -> None:
        self._n_wires = 0
        self._gates: List[Gate] = []
        self._alice: List[int] = []
        self._bob: List[int] = []
        self._consts: List[Tuple[int, int]] = []
        self._const_cache: dict = {}

    # -- wires ----------------------------------------------------------

    def _new_wire(self) -> Wire:
        w = self._n_wires
        self._n_wires += 1
        return w

    def alice_input_bits(self, n: int) -> Word:
        ws = [self._new_wire() for _ in range(n)]
        self._alice.extend(ws)
        return ws

    def bob_input_bits(self, n: int) -> Word:
        ws = [self._new_wire() for _ in range(n)]
        self._bob.extend(ws)
        return ws

    def constant(self, bit: int) -> Wire:
        bit = int(bit) & 1
        if bit not in self._const_cache:
            w = self._new_wire()
            self._consts.append((w, bit))
            self._const_cache[bit] = w
        return self._const_cache[bit]

    def constant_word(self, value: int, n_bits: int) -> Word:
        return [self.constant((value >> i) & 1) for i in range(n_bits)]

    # -- primitive gates --------------------------------------------------

    def xor(self, a: Wire, b: Wire) -> Wire:
        out = self._new_wire()
        self._gates.append(Gate(XOR, a, b, out))
        return out

    def and_(self, a: Wire, b: Wire) -> Wire:
        out = self._new_wire()
        self._gates.append(Gate(AND, a, b, out))
        return out

    def not_(self, a: Wire) -> Wire:
        out = self._new_wire()
        self._gates.append(Gate(INV, a, -1, out))
        return out

    def or_(self, a: Wire, b: Wire) -> Wire:
        # a OR b = NOT(NOT a AND NOT b): one AND gate
        return self.not_(self.and_(self.not_(a), self.not_(b)))

    # -- word gadgets -----------------------------------------------------

    def add(self, xs: Word, ys: Word) -> Word:
        """Ripple-carry addition mod ``2^len``; carry into bit i+1 is
        ``maj(x, y, c) = c ^ ((x^c) & (y^c))`` — one AND per bit."""
        self._check_words(xs, ys)
        out: Word = []
        carry: Optional[Wire] = None
        for x, y in zip(xs, ys):
            if carry is None:
                out.append(self.xor(x, y))
                carry = self.and_(x, y)
            else:
                xc = self.xor(x, carry)
                yc = self.xor(y, carry)
                out.append(self.xor(xc, y))
                carry = self.xor(carry, self.and_(xc, yc))
        return out

    def neg(self, xs: Word) -> Word:
        """Two's complement: ``~x + 1`` mod ``2^len``."""
        inv = [self.not_(x) for x in xs]
        one = self.constant_word(1, len(xs))
        return self.add(inv, one)

    def sub(self, xs: Word, ys: Word) -> Word:
        return self.add(xs, self.neg(ys))

    def mul(self, xs: Word, ys: Word) -> Word:
        """Schoolbook multiplier keeping the low ``len`` bits.

        Partial product i is ``(x & y_i) << i`` truncated to the word, so
        the AND cost is ``sum_i (ell - i)`` for the masks plus the adders.
        """
        self._check_words(xs, ys)
        n = len(xs)
        acc: Optional[Word] = None
        for i, y in enumerate(ys):
            masked = [self.and_(x, y) for x in xs[: n - i]]
            if i == 0:
                acc = list(masked)
            else:
                hi = acc[i:]
                summed = self.add(hi, masked)
                acc = acc[:i] + summed
        if acc is None:
            raise ValueError("mul requires non-empty operand words")
        return acc

    def eq(self, xs: Word, ys: Word) -> Wire:
        """1 iff the words are equal: AND-tree over NOT(x^y)."""
        self._check_words(xs, ys)
        bits = [self.not_(self.xor(x, y)) for x, y in zip(xs, ys)]
        return self._and_tree(bits)

    def is_zero(self, xs: Word) -> Wire:
        return self._and_tree([self.not_(x) for x in xs])

    def nonzero(self, xs: Word) -> Wire:
        return self.not_(self.is_zero(xs))

    def mux(self, sel: Wire, xs: Word, ys: Word) -> Word:
        """``sel ? xs : ys`` per bit: ``y ^ (sel & (x ^ y))`` — one AND/bit."""
        self._check_words(xs, ys)
        return [
            self.xor(y, self.and_(sel, self.xor(x, y)))
            for x, y in zip(xs, ys)
        ]

    def mux_bit(self, sel: Wire, a: Wire, b: Wire) -> Wire:
        return self.xor(b, self.and_(sel, self.xor(a, b)))

    def lt_unsigned(self, xs: Word, ys: Word) -> Wire:
        """1 iff ``x < y`` as unsigned words (ripple comparator)."""
        self._check_words(xs, ys)
        lt = self.constant(0)
        for x, y in zip(xs, ys):  # LSB to MSB; higher bits dominate
            x_ne_y = self.xor(x, y)
            y_gt = self.and_(self.not_(x), y)
            lt = self.mux_bit(x_ne_y, y_gt, lt)
        return lt

    def gt_unsigned(self, xs: Word, ys: Word) -> Wire:
        return self.lt_unsigned(ys, xs)

    def div_unsigned(self, xs: Word, ys: Word) -> Tuple[Word, Word]:
        """Restoring division: returns (quotient, remainder).

        Division by zero yields quotient ``2^len - 1`` and remainder ``x``
        (the all-subtractions-fail path), a total function as circuits
        require.  Used by the avg/ratio query composition of Section 7.
        """
        self._check_words(xs, ys)
        n = len(xs)
        # One extra remainder bit: after the shift the remainder can reach
        # 2*ys - 1 < 2^(n+1), and the invariant rem < 2^n restores it.
        ys_ext = list(ys) + [self.constant(0)]
        rem = self.constant_word(0, n + 1)
        quot: Word = [self.constant(0)] * n
        for i in range(n - 1, -1, -1):
            rem = [xs[i]] + rem[:-1]  # shift left, bring down bit i
            trial = self.sub(rem, ys_ext)
            no_borrow = self.not_(self.lt_unsigned(rem, ys_ext))
            rem = self.mux(no_borrow, trial, rem)
            quot[i] = no_borrow
        return quot, rem[:n]

    # -- helpers ----------------------------------------------------------

    def _and_tree(self, bits: Sequence[Wire]) -> Wire:
        bits = list(bits)
        if not bits:
            return self.constant(1)
        while len(bits) > 1:
            nxt = [
                self.and_(bits[i], bits[i + 1])
                for i in range(0, len(bits) - 1, 2)
            ]
            if len(bits) % 2:
                nxt.append(bits[-1])
            bits = nxt
        return bits[0]

    @staticmethod
    def _check_words(xs: Word, ys: Word) -> None:
        if len(xs) != len(ys):
            raise ValueError(
                f"word length mismatch: {len(xs)} vs {len(ys)}"
            )

    # -- finalisation ------------------------------------------------------

    def build(self, outputs: Sequence[Wire]) -> Circuit:
        return Circuit(
            n_wires=self._n_wires,
            alice_inputs=tuple(self._alice),
            bob_inputs=tuple(self._bob),
            const_wires=tuple(self._consts),
            gates=tuple(self._gates),
            outputs=tuple(outputs),
        )
