"""Boolean circuit representation.

Circuits are the unit the garbled-circuit protocol (Section 5.2) operates
on.  A circuit has Alice (evaluator) input wires, Bob (garbler) input
wires, constant wires, and a gate list in topological (construction)
order.  The gate basis is ``XOR / AND / INV`` — the free-XOR garbling
technique makes XOR and INV communication-free, so the circuit's cost is
its AND count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["Gate", "Circuit", "XOR", "AND", "INV"]

XOR = "XOR"
AND = "AND"
INV = "INV"


@dataclass(frozen=True)
class Gate:
    op: str
    a: int
    b: int  # unused (-1) for INV
    out: int


@dataclass
class Circuit:
    """An immutable compiled circuit.

    Wire numbering: inputs and constants first (in allocation order), then
    one new wire per gate output.
    """

    n_wires: int
    alice_inputs: Tuple[int, ...]
    bob_inputs: Tuple[int, ...]
    const_wires: Tuple[Tuple[int, int], ...]  # (wire, bit)
    gates: Tuple[Gate, ...]
    outputs: Tuple[int, ...]

    @property
    def and_count(self) -> int:
        return sum(1 for g in self.gates if g.op == AND)

    @property
    def size(self) -> int:
        return len(self.gates)

    def evaluate(
        self, alice_bits: Sequence[int], bob_bits: Sequence[int]
    ) -> List[int]:
        """Plaintext evaluation — the reference semantics that garbled
        evaluation must match (asserted by the test suite)."""
        if len(alice_bits) != len(self.alice_inputs):
            raise ValueError(
                f"expected {len(self.alice_inputs)} Alice bits, "
                f"got {len(alice_bits)}"
            )
        if len(bob_bits) != len(self.bob_inputs):
            raise ValueError(
                f"expected {len(self.bob_inputs)} Bob bits, "
                f"got {len(bob_bits)}"
            )
        value: Dict[int, int] = {}
        for w, bit in zip(self.alice_inputs, alice_bits):
            value[w] = int(bit) & 1
        for w, bit in zip(self.bob_inputs, bob_bits):
            value[w] = int(bit) & 1
        for w, bit in self.const_wires:
            value[w] = bit
        for g in self.gates:
            if g.op == XOR:
                value[g.out] = value[g.a] ^ value[g.b]
            elif g.op == AND:
                value[g.out] = value[g.a] & value[g.b]
            elif g.op == INV:
                value[g.out] = value[g.a] ^ 1
            else:  # pragma: no cover
                raise ValueError(f"unknown gate op {g.op}")
        return [value[w] for w in self.outputs]
