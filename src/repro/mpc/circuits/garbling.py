"""Garbled circuits: free-XOR + half-gates, SHA-256 based.

This is the REAL-mode back-end for Section 5.2.  Bob is the garbler and
Alice the evaluator throughout (the roles never need to swap in the
secure Yannakakis protocol, because outputs are re-shared).

Construction:

* A global 128-bit offset ``delta`` with LSB 1 (free-XOR).  Each wire
  has labels ``W0`` and ``W1 = W0 ^ delta``; the LSB of a label is its
  public "select bit" (point-and-permute).
* XOR gates are free: ``Wc0 = Wa0 ^ Wb0``.
* INV gates are free: ``Wc0 = Wa0 ^ delta`` (relabelling).
* AND gates use the half-gates technique of Zahur, Rosulek & Evans:
  two ciphertexts per gate — the modern standard, and what the ABY
  framework underlying the paper's implementation ships.

The evaluator learns exactly one label per wire; select bits are
independent of semantic values.  Output wires are decoded with
garbler-supplied permute bits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..batch import sha256_rows
from .circuit import AND, INV, XOR, Circuit

__all__ = [
    "GarblingResult",
    "GarbledTables",
    "garble",
    "evaluate_garbled",
    "GarblePlan",
    "BatchGarbling",
    "make_garble_plan",
    "garble_batch",
    "evaluate_batch",
]

LABEL_BYTES = 16
#: Ciphertexts per AND gate (half-gates).
ROWS_PER_AND = 2


def _hash_label(label: int, index: int) -> int:
    data = label.to_bytes(LABEL_BYTES, "little") + index.to_bytes(
        8, "little"
    )
    return int.from_bytes(
        hashlib.sha256(data).digest()[:LABEL_BYTES], "little"
    )


@dataclass
class GarbledTables:
    """What the garbler sends: two ciphertexts per AND gate."""

    tables: List[Tuple[int, int]]

    @property
    def n_bytes(self) -> int:
        return len(self.tables) * ROWS_PER_AND * LABEL_BYTES


@dataclass
class GarblingResult:
    """The garbler's full view after garbling."""

    delta: int
    #: label-for-0 per wire
    zero_labels: Dict[int, int]
    tables: GarbledTables
    circuit: Circuit

    def label(self, wire: int, bit: int) -> int:
        return self.zero_labels[wire] ^ (self.delta if bit else 0)

    def output_permute_bits(self) -> List[int]:
        """Select bit of each output wire's 0-label; XORing with the
        evaluator's observed select bit yields the cleartext bit."""
        return [self.zero_labels[w] & 1 for w in self.circuit.outputs]


def garble(
    circuit: Circuit, rand_bytes: Callable[[int], bytes]
) -> GarblingResult:
    """Garble ``circuit``.  ``rand_bytes(n)`` supplies randomness (kept
    as a parameter so tests can be deterministic)."""

    def rand_label() -> int:
        return int.from_bytes(rand_bytes(LABEL_BYTES), "little")

    delta = rand_label() | 1  # LSB 1 so select bits of W0/W1 differ
    zero: Dict[int, int] = {}
    for w in circuit.alice_inputs:
        zero[w] = rand_label()
    for w in circuit.bob_inputs:
        zero[w] = rand_label()
    for w, _bit in circuit.const_wires:
        # Constants are garbler-known inputs: a fresh wire whose active
        # label (sent to the evaluator) encodes the constant.
        zero[w] = rand_label()

    tables: List[Tuple[int, int]] = []
    for gate_id, g in enumerate(circuit.gates):
        if g.op == XOR:
            zero[g.out] = zero[g.a] ^ zero[g.b]
        elif g.op == INV:
            zero[g.out] = zero[g.a] ^ delta
        elif g.op == AND:
            wa0, wb0 = zero[g.a], zero[g.b]
            wa1, wb1 = wa0 ^ delta, wb0 ^ delta
            p_a, p_b = wa0 & 1, wb0 & 1
            j, j2 = 2 * gate_id, 2 * gate_id + 1
            # Generator half-gate: computes a AND p_b.
            t_g = _hash_label(wa0, j) ^ _hash_label(wa1, j) ^ (
                delta if p_b else 0
            )
            w_g0 = _hash_label(wa0, j) ^ (t_g if p_a else 0)
            # Evaluator half-gate: computes a AND (b XOR p_b).
            t_e = _hash_label(wb0, j2) ^ _hash_label(wb1, j2) ^ wa0
            w_e0 = _hash_label(wb0, j2) ^ (
                (t_e ^ wa0) if p_b else 0
            )
            zero[g.out] = w_g0 ^ w_e0
            tables.append((t_g, t_e))
        else:  # pragma: no cover
            raise ValueError(f"unknown gate {g.op}")
    return GarblingResult(delta, zero, GarbledTables(tables), circuit)


# ----------------------------------------------------------------------
# Batched (instance-parallel) garbling
# ----------------------------------------------------------------------
#
# ``run_garbled_batch`` garbles the SAME template for every instance of a
# batch, so the per-gate control flow is identical across instances and
# the whole batch can be garbled SIMD-style: wire labels become
# ``(n_instances, 16)`` byte matrices, XOR gates are one vectorised XOR,
# and each AND gate's 4 (garble) / 2 (evaluate) hashes run as one
# row-batched SHA-256 pass over all instances.  A :class:`GarblePlan`
# precompiles the per-template constants (gate operand arrays, the
# half-gate index bytes, the input-wire ordering) once per run — cached
# in the :class:`~repro.mpc.runcache.RunCache` — so repeated templates
# reuse their wire orderings.


@dataclass
class GarblePlan:
    """Precompiled, instance-independent view of one circuit template."""

    circuit: Circuit
    n_wires: int
    #: wires drawing fresh labels, in the scalar path's draw order
    #: (alice, bob, const)
    input_wires: np.ndarray
    alice_wires: np.ndarray
    bob_wires: np.ndarray
    const_wires: np.ndarray
    const_bits: np.ndarray
    output_wires: np.ndarray
    #: per gate: (op, a, b, out, and_index, jb_row, jb2_row) with
    #: ``jb = (2*gate_id)_le64`` / ``jb2 = (2*gate_id+1)_le64``
    steps: List[Tuple] = field(repr=False, default_factory=list)
    n_ands: int = 0

    @property
    def n_inputs(self) -> int:
        return len(self.input_wires)


def make_garble_plan(circuit: Circuit) -> GarblePlan:
    alice = np.asarray(circuit.alice_inputs, dtype=np.int64)
    bob = np.asarray(circuit.bob_inputs, dtype=np.int64)
    const_w = np.asarray(
        [w for w, _ in circuit.const_wires], dtype=np.int64
    )
    const_b = np.asarray(
        [b & 1 for _, b in circuit.const_wires], dtype=np.uint8
    )
    steps: List[Tuple] = []
    n_ands = 0
    for gate_id, g in enumerate(circuit.gates):
        if g.op == AND:
            jb = np.frombuffer(
                (2 * gate_id).to_bytes(8, "little"), dtype=np.uint8
            )
            jb2 = np.frombuffer(
                (2 * gate_id + 1).to_bytes(8, "little"), dtype=np.uint8
            )
            steps.append((AND, g.a, g.b, g.out, n_ands, jb, jb2))
            n_ands += 1
        elif g.op in (XOR, INV):
            steps.append((g.op, g.a, g.b, g.out, None, None, None))
        else:  # pragma: no cover
            raise ValueError(f"unknown gate {g.op}")
    return GarblePlan(
        circuit=circuit,
        n_wires=circuit.n_wires,
        input_wires=np.concatenate([alice, bob, const_w]),
        alice_wires=alice,
        bob_wires=bob,
        const_wires=const_w,
        const_bits=const_b,
        output_wires=np.asarray(circuit.outputs, dtype=np.int64),
        steps=steps,
        n_ands=n_ands,
    )


@dataclass
class BatchGarbling:
    """The garbler's view over a whole batch: per-wire ``(n, 16)``
    zero-label matrices (little-endian label bytes), the per-instance
    free-XOR offsets, and the AND-gate tables."""

    plan: GarblePlan
    delta: np.ndarray  # (n, 16)
    zero: np.ndarray  # (n_wires, n, 16)
    tables: np.ndarray  # (n_ands, 2, n, 16)

    @property
    def n_instances(self) -> int:
        return self.delta.shape[0]

    @property
    def tables_bytes(self) -> int:
        return self.tables.size

    def labels(self, wires: np.ndarray, bits: np.ndarray) -> np.ndarray:
        """Active labels for ``wires`` given per-instance ``bits`` of
        shape ``(n, len(wires))``; returns ``(len(wires), n, 16)``."""
        z = self.zero[wires]
        if z.shape[0] == 0:
            return z
        return z ^ (self.delta[None, :, :] * bits.T[:, :, None])

    def output_permute_bits(self) -> np.ndarray:
        """``(n, n_outputs)`` select bits of the output zero-labels."""
        return (self.zero[self.plan.output_wires][:, :, 0] & 1).T


def _hash_rows(labels: np.ndarray, index_bytes: np.ndarray) -> np.ndarray:
    """Row-batched :func:`_hash_label`: SHA-256 of ``label || index``
    truncated to 16 bytes, for an ``(n, 16)`` label matrix."""
    n = labels.shape[0]
    inp = np.empty((n, LABEL_BYTES + 8), dtype=np.uint8)
    inp[:, :LABEL_BYTES] = labels
    inp[:, LABEL_BYTES:] = index_bytes
    return sha256_rows(inp)[:, :LABEL_BYTES]


def garble_batch(
    plan: GarblePlan, n: int, rand_bytes: Callable[[int], bytes]
) -> BatchGarbling:
    """Garble ``n`` instances of the plan's template at once; instance
    ``k``'s garbling is an independent sample of :func:`garble`."""
    blob = np.frombuffer(
        rand_bytes(LABEL_BYTES * n * (1 + plan.n_inputs)), dtype=np.uint8
    ).reshape(n, 1 + plan.n_inputs, LABEL_BYTES)
    delta = blob[:, 0, :].copy()
    delta[:, 0] |= 1  # LSB 1 so select bits of W0/W1 differ
    zero = np.zeros((plan.n_wires, n, LABEL_BYTES), dtype=np.uint8)
    if plan.n_inputs:
        zero[plan.input_wires] = blob[:, 1:, :].transpose(1, 0, 2)
    tables = np.empty((plan.n_ands, 2, n, LABEL_BYTES), dtype=np.uint8)

    for op, a, b, out, ai, jb, jb2 in plan.steps:
        if op == XOR:
            np.bitwise_xor(zero[a], zero[b], out=zero[out])
        elif op == INV:
            np.bitwise_xor(zero[a], delta, out=zero[out])
        else:
            wa0, wb0 = zero[a], zero[b]
            p_a = wa0[:, :1] & 1
            p_b = wb0[:, :1] & 1
            hashes = np.empty((4 * n, LABEL_BYTES + 8), dtype=np.uint8)
            hashes[:n, :LABEL_BYTES] = wa0
            hashes[n : 2 * n, :LABEL_BYTES] = wa0 ^ delta
            hashes[2 * n : 3 * n, :LABEL_BYTES] = wb0
            hashes[3 * n :, :LABEL_BYTES] = wb0 ^ delta
            hashes[: 2 * n, LABEL_BYTES:] = jb
            hashes[2 * n :, LABEL_BYTES:] = jb2
            h = sha256_rows(hashes)[:, :LABEL_BYTES]
            h_a0, h_a1 = h[:n], h[n : 2 * n]
            h_b0, h_b1 = h[2 * n : 3 * n], h[3 * n :]
            # Generator half-gate: computes a AND p_b.
            t_g = h_a0 ^ h_a1 ^ (delta * p_b)
            w_g0 = h_a0 ^ (t_g * p_a)
            # Evaluator half-gate: computes a AND (b XOR p_b).
            t_e = h_b0 ^ h_b1 ^ wa0
            w_e0 = h_b0 ^ ((t_e ^ wa0) * p_b)
            zero[out] = w_g0 ^ w_e0
            tables[ai, 0] = t_g
            tables[ai, 1] = t_e
    return BatchGarbling(plan, delta, zero, tables)


def evaluate_batch(
    plan: GarblePlan,
    tables: np.ndarray,
    active_inputs: np.ndarray,
) -> np.ndarray:
    """Evaluate all instances at once from the ``(n_wires, n, 16)``
    matrix with every input/constant wire's active label filled in;
    returns the ``(n, n_outputs)`` decoded select bits."""
    active = active_inputs
    n = active.shape[1]
    for op, a, b, out, ai, jb, jb2 in plan.steps:
        if op == XOR:
            np.bitwise_xor(active[a], active[b], out=active[out])
        elif op == INV:
            active[out] = active[a]  # relabelled: flipped meaning
        else:
            wa, wb = active[a], active[b]
            s_a = wa[:, :1] & 1
            s_b = wb[:, :1] & 1
            inp = np.empty((2 * n, LABEL_BYTES + 8), dtype=np.uint8)
            inp[:n, :LABEL_BYTES] = wa
            inp[n:, :LABEL_BYTES] = wb
            inp[:n, LABEL_BYTES:] = jb
            inp[n:, LABEL_BYTES:] = jb2
            h = sha256_rows(inp)[:, :LABEL_BYTES]
            t_g, t_e = tables[ai, 0], tables[ai, 1]
            w_g = h[:n] ^ (t_g * s_a)
            w_e = h[n:] ^ ((t_e ^ wa) * s_b)
            active[out] = w_g ^ w_e
    return (active[plan.output_wires][:, :, 0] & 1).T


def evaluate_garbled(
    circuit: Circuit,
    tables: GarbledTables,
    input_labels: Dict[int, int],
) -> Dict[int, int]:
    """Evaluate with one active label per input/constant wire; returns
    the active label of every output wire."""
    label: Dict[int, int] = dict(input_labels)
    table_iter = iter(tables.tables)
    for gate_id, g in enumerate(circuit.gates):
        if g.op == XOR:
            label[g.out] = label[g.a] ^ label[g.b]
        elif g.op == INV:
            label[g.out] = label[g.a]  # relabelled: flipped meaning
        elif g.op == AND:
            t_g, t_e = next(table_iter)
            wa, wb = label[g.a], label[g.b]
            sa, sb = wa & 1, wb & 1
            j, j2 = 2 * gate_id, 2 * gate_id + 1
            w_g = _hash_label(wa, j) ^ (t_g if sa else 0)
            w_e = _hash_label(wb, j2) ^ ((t_e ^ wa) if sb else 0)
            label[g.out] = w_g ^ w_e
        else:  # pragma: no cover
            raise ValueError(f"unknown gate {g.op}")
    return {w: label[w] for w in circuit.outputs}
