"""Garbled circuits: free-XOR + half-gates, SHA-256 based.

This is the REAL-mode back-end for Section 5.2.  Bob is the garbler and
Alice the evaluator throughout (the roles never need to swap in the
secure Yannakakis protocol, because outputs are re-shared).

Construction:

* A global 128-bit offset ``delta`` with LSB 1 (free-XOR).  Each wire
  has labels ``W0`` and ``W1 = W0 ^ delta``; the LSB of a label is its
  public "select bit" (point-and-permute).
* XOR gates are free: ``Wc0 = Wa0 ^ Wb0``.
* INV gates are free: ``Wc0 = Wa0 ^ delta`` (relabelling).
* AND gates use the half-gates technique of Zahur, Rosulek & Evans:
  two ciphertexts per gate — the modern standard, and what the ABY
  framework underlying the paper's implementation ships.

The evaluator learns exactly one label per wire; select bits are
independent of semantic values.  Output wires are decoded with
garbler-supplied permute bits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .circuit import AND, INV, XOR, Circuit

__all__ = ["GarblingResult", "GarbledTables", "garble", "evaluate_garbled"]

LABEL_BYTES = 16
#: Ciphertexts per AND gate (half-gates).
ROWS_PER_AND = 2


def _hash_label(label: int, index: int) -> int:
    data = label.to_bytes(LABEL_BYTES, "little") + index.to_bytes(
        8, "little"
    )
    return int.from_bytes(
        hashlib.sha256(data).digest()[:LABEL_BYTES], "little"
    )


@dataclass
class GarbledTables:
    """What the garbler sends: two ciphertexts per AND gate."""

    tables: List[Tuple[int, int]]

    @property
    def n_bytes(self) -> int:
        return len(self.tables) * ROWS_PER_AND * LABEL_BYTES


@dataclass
class GarblingResult:
    """The garbler's full view after garbling."""

    delta: int
    #: label-for-0 per wire
    zero_labels: Dict[int, int]
    tables: GarbledTables
    circuit: Circuit

    def label(self, wire: int, bit: int) -> int:
        return self.zero_labels[wire] ^ (self.delta if bit else 0)

    def output_permute_bits(self) -> List[int]:
        """Select bit of each output wire's 0-label; XORing with the
        evaluator's observed select bit yields the cleartext bit."""
        return [self.zero_labels[w] & 1 for w in self.circuit.outputs]


def garble(circuit: Circuit, rand_bytes) -> GarblingResult:
    """Garble ``circuit``.  ``rand_bytes(n)`` supplies randomness (kept
    as a parameter so tests can be deterministic)."""

    def rand_label() -> int:
        return int.from_bytes(rand_bytes(LABEL_BYTES), "little")

    delta = rand_label() | 1  # LSB 1 so select bits of W0/W1 differ
    zero: Dict[int, int] = {}
    for w in circuit.alice_inputs:
        zero[w] = rand_label()
    for w in circuit.bob_inputs:
        zero[w] = rand_label()
    for w, _bit in circuit.const_wires:
        # Constants are garbler-known inputs: a fresh wire whose active
        # label (sent to the evaluator) encodes the constant.
        zero[w] = rand_label()

    tables: List[Tuple[int, int]] = []
    for gate_id, g in enumerate(circuit.gates):
        if g.op == XOR:
            zero[g.out] = zero[g.a] ^ zero[g.b]
        elif g.op == INV:
            zero[g.out] = zero[g.a] ^ delta
        elif g.op == AND:
            wa0, wb0 = zero[g.a], zero[g.b]
            wa1, wb1 = wa0 ^ delta, wb0 ^ delta
            p_a, p_b = wa0 & 1, wb0 & 1
            j, j2 = 2 * gate_id, 2 * gate_id + 1
            # Generator half-gate: computes a AND p_b.
            t_g = _hash_label(wa0, j) ^ _hash_label(wa1, j) ^ (
                delta if p_b else 0
            )
            w_g0 = _hash_label(wa0, j) ^ (t_g if p_a else 0)
            # Evaluator half-gate: computes a AND (b XOR p_b).
            t_e = _hash_label(wb0, j2) ^ _hash_label(wb1, j2) ^ wa0
            w_e0 = _hash_label(wb0, j2) ^ (
                (t_e ^ wa0) if p_b else 0
            )
            zero[g.out] = w_g0 ^ w_e0
            tables.append((t_g, t_e))
        else:  # pragma: no cover
            raise ValueError(f"unknown gate {g.op}")
    return GarblingResult(delta, zero, GarbledTables(tables), circuit)


def evaluate_garbled(
    circuit: Circuit,
    tables: GarbledTables,
    input_labels: Dict[int, int],
) -> Dict[int, int]:
    """Evaluate with one active label per input/constant wire; returns
    the active label of every output wire."""
    label: Dict[int, int] = dict(input_labels)
    table_iter = iter(tables.tables)
    for gate_id, g in enumerate(circuit.gates):
        if g.op == XOR:
            label[g.out] = label[g.a] ^ label[g.b]
        elif g.op == INV:
            label[g.out] = label[g.a]  # relabelled: flipped meaning
        elif g.op == AND:
            t_g, t_e = next(table_iter)
            wa, wb = label[g.a], label[g.b]
            sa, sb = wa & 1, wb & 1
            j, j2 = 2 * gate_id, 2 * gate_id + 1
            w_g = _hash_label(wa, j) ^ (t_g if sa else 0)
            w_e = _hash_label(wb, j2) ^ ((t_e ^ wa) if sb else 0)
            label[g.out] = w_g ^ w_e
        else:  # pragma: no cover
            raise ValueError(f"unknown gate {g.op}")
    return {w: label[w] for w in circuit.outputs}
