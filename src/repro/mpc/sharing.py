"""Additive (arithmetic) secret sharing over ``Z_{2^ell}`` (Section 5.1).

A value ``v`` is split as ``v = ([[v]]_1 + [[v]]_2) mod 2^ell`` with
``[[v]]_1`` uniform — each share alone is a uniform random ring element and
reveals nothing.  :class:`SharedVector` holds both parties' share arrays;
this is an artefact of the in-process simulation — protocol code only ever
combines the two arrays through metered primitives, and the obliviousness
tests check the resulting traffic is input-independent.

Local operations (addition of shares, negation, multiplication by a public
constant) need no communication, exactly as in the paper.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..leakage import leaks
from .context import ALICE, Context
from .transcript import other_party

__all__ = [
    "SharedVector",
    "share_vector",
    "reveal_vector",
    "as_ring_column",
]


def _to_ring(values: Sequence[int] | np.ndarray, modulus: int) -> np.ndarray:
    arr = np.asarray(values)
    if arr.size == 0:
        return np.zeros(0, dtype=np.uint64)
    if arr.dtype.kind == "f":
        raise TypeError("annotations must be integers, not floats")
    if arr.dtype.kind not in ("i", "u", "b"):
        # Object arrays (Python bignums): reduce in object space.
        return np.asarray(
            [int(v) % modulus for v in arr.tolist()], dtype=np.uint64
        )
    # Reduce in uint64 space: the unsigned cast wraps mod 2^64 (exact
    # for negatives), and the ring modulus divides 2^64, so the mask
    # finishes the reduction.  An int64 detour would corrupt uint64
    # inputs >= 2^63 and overflow for 2^63-moduli.
    return arr.astype(np.uint64, copy=False) & np.uint64(modulus - 1)


def as_ring_column(
    values: Sequence[int] | np.ndarray, modulus: int
) -> np.ndarray:
    """Validate/coerce a ``(n,)`` integer vector into ring elements.

    The column-level entry points (``Engine.share_column`` and friends)
    funnel through here so every phase marshals whole columns with one
    call and one transcript charge."""
    arr = _to_ring(values, modulus)
    if arr.ndim != 1:
        raise ValueError(
            f"expected a flat (n,) column, got shape {np.asarray(values).shape}"
        )
    return arr


class SharedVector:
    """A vector of secret-shared ring elements.

    ``alice + bob (mod 2^ell)`` reconstructs the cleartext vector.
    """

    __slots__ = ("alice", "bob", "modulus")

    def __init__(
        self, alice: np.ndarray, bob: np.ndarray, modulus: int
    ) -> None:
        alice = np.asarray(alice, dtype=np.uint64)
        bob = np.asarray(bob, dtype=np.uint64)
        if alice.shape != bob.shape:
            raise ValueError(
                f"share shapes differ: {alice.shape} vs {bob.shape}"
            )
        self.alice = alice
        self.bob = bob
        self.modulus = modulus

    def __len__(self) -> int:
        return len(self.alice)

    @property
    def _mask(self) -> np.uint64:
        return np.uint64(self.modulus - 1)

    # -- local (communication-free) share arithmetic ---------------------

    def __add__(self, other: "SharedVector") -> "SharedVector":
        self._check(other)
        return SharedVector(
            (self.alice + other.alice) & self._mask,
            (self.bob + other.bob) & self._mask,
            self.modulus,
        )

    def __sub__(self, other: "SharedVector") -> "SharedVector":
        self._check(other)
        return SharedVector(
            (self.alice - other.alice) & self._mask,
            (self.bob - other.bob) & self._mask,
            self.modulus,
        )

    def __neg__(self) -> "SharedVector":
        return SharedVector(
            (-self.alice) & self._mask, (-self.bob) & self._mask, self.modulus
        )

    def add_public(
        self, values: Sequence[int] | np.ndarray, holder: str = ALICE
    ) -> "SharedVector":
        """Add a public (or ``holder``-known) vector: only the holder's
        share changes, no communication."""
        vals = _to_ring(values, self.modulus)
        if holder == ALICE:
            return SharedVector(
                (self.alice + vals) & self._mask, self.bob, self.modulus
            )
        return SharedVector(
            self.alice, (self.bob + vals) & self._mask, self.modulus
        )

    def mul_public(self, values: Sequence[int] | np.ndarray) -> "SharedVector":
        """Multiply elementwise by a *public* vector (both parties know it,
        so each scales their own share — no communication)."""
        vals = _to_ring(values, self.modulus)
        return SharedVector(
            (self.alice * vals) & self._mask,
            (self.bob * vals) & self._mask,
            self.modulus,
        )

    def sum(self) -> "SharedVector":
        """Shares of the ring sum of all elements (local)."""
        return SharedVector(
            np.asarray([self.alice.sum() & self._mask], dtype=np.uint64),
            np.asarray([self.bob.sum() & self._mask], dtype=np.uint64),
            self.modulus,
        )

    def take(self, indices: Sequence[int] | np.ndarray) -> "SharedVector":
        """Sub-vector by position.

        NOTE: a plain ``take`` exposes *which* positions are selected; the
        secure protocol only uses it with position sets that are public or
        known to the party doing the selection (e.g. Alice's own cuckoo
        table layout).  Data-dependent selection must go through OEP.
        """
        idx = np.asarray(indices, dtype=np.int64)
        return SharedVector(self.alice[idx], self.bob[idx], self.modulus)

    def concat(self, other: "SharedVector") -> "SharedVector":
        self._check(other)
        return SharedVector(
            np.concatenate([self.alice, other.alice]),
            np.concatenate([self.bob, other.bob]),
            self.modulus,
        )

    def swapped(self) -> "SharedVector":
        """The same sharing with the parties' roles mirrored — used with
        :meth:`Context.swapped_roles` to run a protocol in the opposite
        orientation."""
        return SharedVector(self.bob, self.alice, self.modulus)

    @classmethod
    def zeros(cls, n: int, modulus: int) -> "SharedVector":
        """The trivial all-zero sharing of the zero vector (both shares
        zero — used for padding slots whose value is publicly zero)."""
        return cls(
            np.zeros(n, dtype=np.uint64), np.zeros(n, dtype=np.uint64), modulus
        )

    def _check(self, other: "SharedVector") -> None:
        if self.modulus != other.modulus:
            raise ValueError("mixing shares over different rings")

    # -- test-only ------------------------------------------------------

    def reconstruct(self) -> np.ndarray:
        """Combine both shares.  For tests and for *designated reveals*
        only — never called on data that must stay hidden."""
        return (self.alice + self.bob) & self._mask

    def __repr__(self) -> str:
        return f"SharedVector(n={len(self)}, modulus=2**{self.modulus.bit_length() - 1})"


def share_vector(
    ctx: Context, owner: str, values: Sequence[int] | np.ndarray, label: str = "share"
) -> SharedVector:
    """``owner`` secret-shares a vector it holds: it samples its own share
    uniformly and sends the complement to the other party."""
    vals = _to_ring(values, ctx.modulus)
    own = ctx.random_ring_vector(len(vals))
    complement = (vals - own) & ctx.mask
    ctx.send(owner, len(vals) * (ctx.params.ell // 8 or 1), label)
    if owner == ALICE:
        return SharedVector(own, complement, ctx.modulus)
    return SharedVector(complement, own, ctx.modulus)


@leaks("opened:result")
def reveal_vector(
    ctx: Context, sv: SharedVector, to: str, label: str = "reveal"
) -> np.ndarray:
    """Reveal a shared vector to one party: the other party sends its
    share.  Only used on values that are part of the query result (or
    otherwise derivable from it), per Section 5.1."""
    sender = other_party(to)
    ctx.send(sender, len(sv) * (ctx.params.ell // 8 or 1), label)
    return sv.reconstruct()
