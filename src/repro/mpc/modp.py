"""RFC 3526 MODP Diffie–Hellman groups, derived from first principles.

The base-OT protocol needs a group where DDH is believed hard.  RFC 3526
defines its safe primes by the closed form

    p = 2^b - 2^(b-64) - 1 + 2^64 * ( floor(2^(b-130) * pi) + c )

so rather than embedding kilobytes of magic hex, we compute pi to the
required precision with Machin's formula in integer arithmetic and verify
the result is a safe prime with Miller–Rabin.  The derivation is cached
per bit-length.
"""

from __future__ import annotations

import functools
import random  # oblint: disable=OBL003 — only used with a fixed seed in _is_probable_prime, a public-parameter sanity check; no protocol randomness is drawn here
from dataclasses import dataclass
from typing import Callable

try:  # OpenSSL-backed modular exponentiation (~10x CPython's pow).
    from cryptography.hazmat.primitives.asymmetric import dh as _dh
except ImportError:  # pragma: no cover - optional accelerator
    _dh = None

__all__ = ["ModpGroup", "modp_group"]

#: RFC 3526 correction constants per bit length.
_RFC3526_C = {1536: 741804, 2048: 124476, 3072: 1690314, 4096: 240904}


def _pi_scaled(prec_bits: int) -> int:
    """``floor(pi * 2**prec_bits)`` via Machin:
    ``pi = 16*atan(1/5) - 4*atan(1/239)`` in fixed-point integers."""
    guard = 64
    unity = 1 << (prec_bits + guard)

    def atan_inv(x: int) -> int:
        total = term = unity // x
        n, x2, sign = 3, x * x, -1
        while term:
            term //= x2
            total += sign * (term // n)
            sign, n = -sign, n + 2
        return total

    pi = 16 * atan_inv(5) - 4 * atan_inv(239)
    return pi >> guard


def _is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller–Rabin with random bases (error < 4^-rounds)."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = random.Random(0x5EC1)  # deterministic: this is a sanity check
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class ModpGroup:
    """A safe-prime group ``(p, g)`` with subgroup order ``q = (p-1)/2``."""

    bits: int
    p: int
    g: int = 2

    @property
    def q(self) -> int:
        return (self.p - 1) // 2

    @property
    def element_bytes(self) -> int:
        return (self.bits + 7) // 8

    def pow(self, base: int, exp: int) -> int:
        if (
            _dh is not None
            and exp.bit_length() > 320
            and 2 <= base <= self.p - 2
        ):
            try:
                return _openssl_pow(base, exp, self.p)
            except Exception:  # pragma: no cover - fall back on edge inputs
                pass
        return pow(base, exp, self.p)

    def inv(self, x: int) -> int:
        return self.pow(x % self.p, self.p - 2)

    def random_exponent(
        self, random_bytes: Callable[[int], bytes]
    ) -> int:
        """Uniform secret exponent in ``[1, q)`` by rejection sampling.

        ``random_bytes(n)`` supplies the randomness (the protocol
        context's metered source).  Full-width exponents are required:
        sampling only ``k`` bits exposes the exponent to a
        ``O(2^(k/2))`` Pollard-kangaroo recovery, which for the 62–124
        bit exponents this library once drew was a practical break.
        """
        qbits = self.q.bit_length()
        nbytes = (qbits + 7) // 8
        top = (1 << qbits) - 1
        while True:
            x = int.from_bytes(random_bytes(nbytes), "little") & top
            if 1 <= x < self.q:
                return x


def _openssl_pow(base: int, exp: int, p: int) -> int:
    """``base^exp mod p`` through OpenSSL's DH shared-secret kernel.

    ``DHPrivateNumbers(exp).private_key()`` does not validate the
    (unused) public component, so the construction is cheap and
    ``exchange`` performs exactly one modular exponentiation in C.
    """
    pn = _dh_param_numbers(p)
    priv = _dh.DHPrivateNumbers(
        exp, _dh.DHPublicNumbers(4, pn)
    ).private_key()
    pub = _dh.DHPublicNumbers(base, pn).public_key()
    return int.from_bytes(priv.exchange(pub), "big")


@functools.lru_cache(maxsize=8)
def _dh_param_numbers(p: int) -> "_dh.DHParameterNumbers":
    return _dh.DHParameterNumbers(p, 2)


@functools.lru_cache(maxsize=None)
def modp_group(bits: int = 2048, verify: bool = True) -> ModpGroup:
    """Derive the RFC 3526 group of the given bit length.

    ``verify=True`` (default) Miller-Rabin checks both ``p`` and
    ``q = (p-1)/2`` — the derivation is exercised rather than trusted.
    """
    if bits not in _RFC3526_C:
        raise ValueError(
            f"no RFC 3526 group of {bits} bits; "
            f"choose from {sorted(_RFC3526_C)}"
        )
    pi = _pi_scaled(bits - 130)
    p = (1 << bits) - (1 << (bits - 64)) - 1 + (1 << 64) * (
        pi + _RFC3526_C[bits]
    )
    if verify:
        if not _is_probable_prime(p):
            raise ArithmeticError(f"derived MODP-{bits} modulus is composite")
        if not _is_probable_prime((p - 1) // 2):
            raise ArithmeticError(
                f"derived MODP-{bits} modulus is not a safe prime"
            )
    return ModpGroup(bits=bits, p=p)
