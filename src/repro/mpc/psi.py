"""Circuit-based PSI with payloads (Sections 5.3 and 6.5 fast path).

Protocol outline (Pinkas et al. [27], PSTY19 shape):

1. Alice cuckoo-hashes her set into ``B = 1.27 M`` bins (3 hash
   functions, at most one item per bin) and sends the hash seeds.
2. Bob simple-hashes each of his items into all 3 candidate bins; the
   per-bin load is padded to the public bound ``L`` (Section 5.3's
   "details of cuckoo hashing").
3. A batched OPRF gives Alice one pseudorandom value per bin; Bob
   programs per-bin OPPRF polynomials so that any of his items in the
   bin evaluates to his chosen match token ``s_b`` and to the masked
   payload ``z_y - w_b``.
4. One small garbled circuit per bin compares Alice's OPPRF output with
   ``s_b`` and produces ``[[Ind(x_b in Y)]]`` and the payload — in
   shared form (with Bob's masks ``r``), or revealed to Alice for the
   Section 5.5 composition where the revealed values are uniform
   permutation indices.

Cost: ``~O(M + N)`` communication and computation, constant rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Union

import numpy as np

from .context import ALICE, BOB, Context, Mode
from .cuckoo import (
    DUMMY_ALICE,
    CuckooTable,
    fingerprint,
    max_bin_load,
    num_bins,
    simple_hash_bins,
)
from .gadgets import bits_of, int_of, psi_bin_circuit
from .oprf import OPPRF_PRIME, BatchedOprf, poly_eval, poly_interpolate
from .ot import OT
from .sharing import SharedVector
from .yao import charge_garbled_batch, run_garbled_batch

__all__ = ["PsiResult", "psi_with_payloads"]

_FP_SALT = b"secyan-psi-fingerprint"


def _token_bits(n_bins: int, sigma: int) -> int:
    """Match-token width: sigma + log2(B) bits bound the probability of
    any bin's comparison colliding spuriously by 2^-sigma (PSTY19);
    capped at the OPPRF field size."""
    import math

    return min(61, sigma + max(1, math.ceil(math.log2(max(n_bins, 2)))))


@dataclass
class PsiResult:
    """Output of one PSI-with-payloads invocation.

    ``table`` (Alice-local) maps her items to bins; ``ind`` and
    ``payload`` are per-*bin* vectors of length ``n_bins``.
    """

    table: CuckooTable
    n_bins: int
    ind: SharedVector
    payload: Union[SharedVector, np.ndarray]

    def bin_of_item_index(self) -> np.ndarray:
        """For each of Alice's item indices, its bin (Alice-local)."""
        out = np.full(len(self.table.items), -1, dtype=np.int64)
        for b, idx in enumerate(self.table.bins):
            if idx >= 0:
                out[idx] = b
        return out


def psi_with_payloads(
    ctx: Context,
    ot: OT,
    alice_items: Sequence[Hashable],
    bob_items: Sequence[Hashable],
    bob_payloads: Sequence[int],
    bob_fallbacks: Optional[Sequence[int]] = None,
    reveal_payload: bool = False,
    label: str = "psi",
) -> PsiResult:
    """Run PSI where Bob's payloads are known to Bob in the clear.

    ``bob_fallbacks``, if given, supplies the per-bin payload for
    non-matching bins (defaults to 0); it is what the Section 5.5
    composition programs with unused permutation indices.
    ``reveal_payload=True`` outputs the payload to Alice in the clear
    (only used when the payloads are data-independent by construction).
    """
    if len(bob_items) != len(bob_payloads):
        raise ValueError("one payload per Bob item is required")
    if len(set(bob_items)) != len(bob_items):
        raise ValueError("PSI requires distinct items on Bob's side")
    ell = ctx.params.ell
    modulus = ctx.modulus

    with ctx.section(label):
        table = CuckooTable(
            alice_items,
            num_bins(len(alice_items), ctx.params.cuckoo_expansion),
            ctx.params.cuckoo_hashes,
            seed=int(ctx.rng.integers(0, 2**31)),
        )
        n_bins = table.n_bins
        ctx.send(ALICE, 16 * ctx.params.cuckoo_hashes, "seeds")

        bob_fps = [fingerprint(y, _FP_SALT) for y in bob_items]
        bob_bins = simple_hash_bins(bob_items, table.seeds, n_bins)
        load = max_bin_load(
            len(bob_items), n_bins, ctx.params.cuckoo_hashes,
            ctx.params.sigma,
        )
        if any(len(b) > load for b in bob_bins):
            raise RuntimeError(
                "simple-hash bin exceeded its statistical load bound "
                "(probability < 2^-sigma); re-run with fresh seeds"
            )

        fallbacks = (
            np.zeros(n_bins, dtype=np.uint64)
            if bob_fallbacks is None
            else np.asarray(bob_fallbacks, dtype=np.uint64) % modulus
        )
        if len(fallbacks) != n_bins:
            raise ValueError("need one fallback per bin")

        alice_fps = [
            fingerprint(table.items[idx], _FP_SALT)
            if idx >= 0
            else DUMMY_ALICE | int(ctx.rng.integers(0, 1 << 62))
            for idx in table.bins
        ]

        if ctx.mode == Mode.REAL:
            return _psi_real(
                ctx, ot, table, n_bins, alice_fps, bob_fps, bob_bins,
                load, bob_payloads, fallbacks, reveal_payload,
            )
        return _psi_simulated(
            ctx, ot, table, n_bins, alice_fps, bob_fps, bob_bins,
            load, bob_payloads, fallbacks, reveal_payload,
        )


def _psi_real(
    ctx: Context,
    ot: OT,
    table: CuckooTable,
    n_bins: int,
    alice_fps: List[int],
    bob_fps: List[int],
    bob_bins: List[List[int]],
    load: int,
    bob_payloads: Sequence[int],
    fallbacks: np.ndarray,
    reveal_payload: bool,
) -> PsiResult:
    ell = ctx.params.ell
    modulus = ctx.modulus
    rng = ctx.rng
    fp_bits = _token_bits(n_bins, ctx.params.sigma)
    token_mod = 1 << fp_bits
    oprf = BatchedOprf(ctx, alice_fps)

    # Bob programs per-bin OPPRF polynomials: one for the match token,
    # one for the masked payload; both padded to degree L-1.
    s_tokens = [int(rng.integers(0, token_mod)) for _ in range(n_bins)]
    w_masks = [int(rng.integers(0, modulus)) for _ in range(n_bins)]
    hint_bytes = 0
    alice_tokens: List[int] = []
    alice_payload_vals: List[int] = []
    for b in range(n_bins):
        points_t, points_p = [], []
        used_x = set()
        for idx in bob_bins[b]:
            x = oprf.bob_eval(b, bob_fps[idx]) % OPPRF_PRIME
            if x in used_x:
                raise RuntimeError(
                    "OPRF output collision inside a bin (probability "
                    "< 2^-sigma); re-run with fresh seeds"
                )
            used_x.add(x)
            points_t.append((x, s_tokens[b]))
            points_p.append(
                (x, (int(bob_payloads[idx]) - w_masks[b]) % modulus)
            )
        while len(points_t) < load:
            x = int(rng.integers(0, OPPRF_PRIME))
            if x in used_x:
                continue
            used_x.add(x)
            points_t.append((x, int(rng.integers(0, OPPRF_PRIME))))
            points_p.append((x, int(rng.integers(0, modulus))))
        poly_t = poly_interpolate(points_t)
        poly_p = poly_interpolate(points_p)
        hint_bytes += 8 * (len(poly_t) + len(poly_p))
        x_alice = oprf.alice_values[b] % OPPRF_PRIME
        alice_tokens.append(poly_eval(poly_t, x_alice) % token_mod)
        alice_payload_vals.append(poly_eval(poly_p, x_alice) % modulus)
    ctx.send(BOB, hint_bytes, "opprf_hints")

    # One garbled circuit per bin.
    circuit = psi_bin_circuit(ell, fp_bits, reveal_payload)
    r_ind = ctx.random_ring_vector(n_bins)
    r_pay = ctx.random_ring_vector(n_bins)
    alice_bits = [
        bits_of(alice_tokens[b], fp_bits)
        + bits_of(alice_payload_vals[b], ell)
        for b in range(n_bins)
    ]
    bob_bits = [
        bits_of(s_tokens[b], fp_bits)
        + bits_of(w_masks[b], ell)
        + bits_of(int(fallbacks[b]), ell)
        + bits_of(int(r_ind[b]), ell)
        + bits_of(int(r_pay[b]), ell)
        for b in range(n_bins)
    ]
    with ctx.section("bin_circuits"):
        outputs = run_garbled_batch(ctx, ot, circuit, alice_bits, bob_bits)

    ind_alice = np.asarray(
        [int_of(o[:ell]) for o in outputs], dtype=np.uint64
    )
    pay_alice = np.asarray(
        [int_of(o[ell:]) for o in outputs], dtype=np.uint64
    )
    mask = np.uint64(modulus - 1)
    ind = SharedVector(ind_alice, (-r_ind) & mask, modulus)
    if reveal_payload:
        payload: Union[SharedVector, np.ndarray] = pay_alice
    else:
        payload = SharedVector(pay_alice, (-r_pay) & mask, modulus)
    return PsiResult(table, n_bins, ind, payload)


def _psi_simulated(
    ctx: Context,
    ot: OT,
    table: CuckooTable,
    n_bins: int,
    alice_fps: List[int],
    bob_fps: List[int],
    bob_bins: List[List[int]],
    load: int,
    bob_payloads: Sequence[int],
    fallbacks: np.ndarray,
    reveal_payload: bool,
) -> PsiResult:
    ell = ctx.params.ell
    modulus = ctx.modulus
    mask = np.uint64(modulus - 1)

    # Charge what the real protocol sends.
    elem = 2048 // 8
    ctx.send(ALICE, elem, "oprf/base/A")
    ctx.send(BOB, elem * 448, "oprf/base/B")
    ctx.send(ALICE, 32 * 448, "oprf/base/ciphertexts")
    ctx.send(ALICE, 448 * ((n_bins + 7) // 8), "oprf/u")
    ctx.send(BOB, 8 * 2 * load * n_bins, "opprf_hints")
    with ctx.section("bin_circuits"):
        charge_garbled_batch(
            ctx,
            ot,
            psi_bin_circuit(
                ell, _token_bits(n_bins, ctx.params.sigma), reveal_payload
            ),
            n_bins,
        )

    # Functionality: per bin, match iff Alice's item is one of Bob's.
    payload_of = {
        fp: int(z) % modulus for fp, z in zip(bob_fps, bob_payloads)
    }
    ind_plain = np.zeros(n_bins, dtype=np.uint64)
    pay_plain = fallbacks.copy() & mask
    for b, idx in enumerate(table.bins):
        if idx < 0:
            continue
        fp = alice_fps[b]
        if fp in payload_of:
            ind_plain[b] = 1
            pay_plain[b] = payload_of[fp]

    rng = ctx.rng
    ind_a = ctx.random_ring_vector(n_bins)
    ind = SharedVector(ind_a, (ind_plain - ind_a) & mask, modulus)
    if reveal_payload:
        payload: Union[SharedVector, np.ndarray] = pay_plain
    else:
        pay_a = ctx.random_ring_vector(n_bins)
        payload = SharedVector(pay_a, (pay_plain - pay_a) & mask, modulus)
    return PsiResult(table, n_bins, ind, payload)
