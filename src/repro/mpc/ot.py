"""Oblivious transfer: Chou–Orlandi base OT and IKNP OT extension.

OT is the asymmetric-crypto bedrock under the garbled-circuit protocol
(the evaluator's input labels) and the oblivious switching network.  Two
back-ends share one interface:

* :class:`ChouOrlandiOT` — the "simplest OT" protocol over an RFC 3526
  group: sender publishes ``A = g^a``; per transfer the receiver sends
  ``B = g^b * A^c`` and derives ``H(A^b)``; the sender derives
  ``k0 = H(B^a)`` and ``k1 = H((B/A)^a)`` and sends both messages
  encrypted.  Exponentiations make this expensive, so it is used directly
  only for small batches and as the base for extension.
* :class:`IknpExtension` — stretches ``kappa`` base OTs (run in reversed
  roles with the extension sender choosing a secret ``s``) into any number
  of OTs using only SHA-256: the classic column-correlation construction.
* :class:`SimulatedOT` — delivers the chosen messages directly while
  charging the transcript exactly what the real extension would send.

All message sizes are metered through the shared :class:`Context`.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

import numpy as np

from .context import ALICE, BOB, Context
from .modp import ModpGroup, modp_group

__all__ = ["ChouOrlandiOT", "IknpExtension", "SimulatedOT", "make_ot"]

Pair = Tuple[bytes, bytes]


def _kdf(*parts: bytes) -> bytes:
    return hashlib.sha256(b"\x00".join(parts)).digest()


def _stream_xor(key: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt with a SHA-256-based stream cipher."""
    out = bytearray()
    counter = 0
    while len(out) < len(data):
        out.extend(_kdf(key, counter.to_bytes(8, "little")))
        counter += 1
    return bytes(a ^ b for a, b in zip(data, out[: len(data)]))


def _int_bytes(x: int, group: ModpGroup) -> bytes:
    return x.to_bytes(group.element_bytes, "little")


class ChouOrlandiOT:
    """1-out-of-2 OT where Bob is the sender (he garbles, so he owns the
    label pairs) and Alice the receiver."""

    def __init__(self, ctx: Context, group_bits: int = 2048):
        self.ctx = ctx
        self.group = modp_group(group_bits)

    def transfer(
        self, pairs: Sequence[Pair], choices: Sequence[int]
    ) -> List[bytes]:
        """Alice receives ``pairs[i][choices[i]]``; Bob learns nothing of
        ``choices``; Alice learns nothing of the other message."""
        if len(pairs) != len(choices):
            raise ValueError("one choice bit per message pair is required")
        g, ctx = self.group, self.ctx
        rng = ctx.rng

        # Bob: publish A = g^a.
        a = int(rng.integers(1, 1 << 62)) | (
            int(rng.integers(0, 1 << 62)) << 62
        )
        a %= g.q
        big_a = g.pow(g.g, a)
        ctx.send(BOB, g.element_bytes, "ot/base/A")
        inv_a = g.inv(big_a)

        # Alice: per choice, B = g^b * A^c and her key H(A^b).
        bs, big_bs, alice_keys = [], [], []
        for c in choices:
            b = int(rng.integers(1, 1 << 62)) % g.q
            big_b = g.pow(g.g, b)
            if c:
                big_b = (big_b * big_a) % g.p
            big_bs.append(big_b)
            alice_keys.append(_kdf(_int_bytes(g.pow(big_a, b), g)))
        ctx.send(ALICE, g.element_bytes * len(choices), "ot/base/B")

        # Bob: derive both keys per transfer, send both ciphertexts.
        out: List[bytes] = []
        total = 0
        ciphertexts: List[Pair] = []
        for (m0, m1), big_b in zip(pairs, big_bs):
            if len(m0) != len(m1):
                raise ValueError("OT messages in a pair must be equal-length")
            k0 = _kdf(_int_bytes(g.pow(big_b, a), g))
            k1 = _kdf(_int_bytes(g.pow((big_b * inv_a) % g.p, a), g))
            ciphertexts.append((_stream_xor(k0, m0), _stream_xor(k1, m1)))
            total += len(m0) + len(m1)
        ctx.send(BOB, total, "ot/base/ciphertexts")

        # Alice: decrypt her chosen message.
        for (c0, c1), c, key in zip(ciphertexts, choices, alice_keys):
            out.append(_stream_xor(key, c1 if c else c0))
        return out


def _prg_bits(seed: bytes, n_bits: int, salt: bytes) -> np.ndarray:
    """Expand ``seed`` into ``n_bits`` pseudorandom bits (uint8 array)."""
    n_bytes = (n_bits + 7) // 8
    chunks = []
    counter = 0
    while sum(len(c) for c in chunks) < n_bytes:
        chunks.append(_kdf(seed, salt, counter.to_bytes(8, "little")))
        counter += 1
    raw = b"".join(chunks)[:n_bytes]
    return np.unpackbits(np.frombuffer(raw, dtype=np.uint8))[:n_bits]


class IknpExtension:
    """IKNP OT extension: ``kappa`` base OTs, then any number of OTs with
    symmetric crypto only.

    Base phase (roles reversed): extension-sender Bob picks secret bits
    ``s`` and acts as base-OT *receiver* to obtain seed ``k_i^{s_i}``;
    extension-receiver Alice owns both seeds per column.
    """

    def __init__(self, ctx: Context, group_bits: int = 2048):
        self.ctx = ctx
        self.kappa = ctx.params.kappa
        self._base_done = False
        self._group_bits = group_bits
        self._s: np.ndarray = np.zeros(0, dtype=np.uint8)
        self._seeds_alice: List[Pair] = []
        self._seeds_bob: List[bytes] = []
        self._batch = 0

    def _base_phase(self) -> None:
        ctx = self.ctx
        rng = ctx.rng
        self._s = rng.integers(0, 2, size=self.kappa, dtype=np.uint8)
        self._seeds_alice = [
            (ctx.random_bytes(16), ctx.random_bytes(16))
            for _ in range(self.kappa)
        ]
        # Roles reversed: Alice is the base-OT *sender*.  The base
        # protocol below is written Bob->Alice, so we meter it manually
        # with swapped parties and run the arithmetic inline.
        g = modp_group(self._group_bits)
        a = int(rng.integers(1, 1 << 62)) % g.q
        big_a = g.pow(g.g, a)
        ctx.send(ALICE, g.element_bytes, "ot/ext/base/A")
        inv_a = g.inv(big_a)
        received: List[bytes] = []
        total_ct = 0
        for i in range(self.kappa):
            b = int(rng.integers(1, 1 << 62)) % g.q
            big_b = g.pow(g.g, b)
            if self._s[i]:
                big_b = (big_b * big_a) % g.p
            bob_key = _kdf(_int_bytes(g.pow(big_a, b), g))
            k0 = _kdf(_int_bytes(g.pow(big_b, a), g))
            k1 = _kdf(_int_bytes(g.pow((big_b * inv_a) % g.p, a), g))
            m0, m1 = self._seeds_alice[i]
            c0, c1 = _stream_xor(k0, m0), _stream_xor(k1, m1)
            total_ct += len(c0) + len(c1)
            received.append(
                _stream_xor(bob_key, c1 if self._s[i] else c0)
            )
        ctx.send(BOB, g.element_bytes * self.kappa, "ot/ext/base/B")
        ctx.send(ALICE, total_ct, "ot/ext/base/ciphertexts")
        self._seeds_bob = received
        self._base_done = True

    def transfer(
        self, pairs: Sequence[Pair], choices: Sequence[int]
    ) -> List[bytes]:
        if len(pairs) != len(choices):
            raise ValueError("one choice bit per message pair is required")
        if not pairs:
            return []
        if not self._base_done:
            self._base_phase()
        ctx = self.ctx
        m = len(pairs)
        salt = self._batch.to_bytes(8, "little")
        self._batch += 1
        r = np.asarray(choices, dtype=np.uint8) & 1

        # Alice: T columns from k^0; correction u = G(k0) ^ G(k1) ^ r.
        t_cols = np.stack(
            [
                _prg_bits(self._seeds_alice[i][0], m, salt)
                for i in range(self.kappa)
            ]
        )  # kappa x m
        u_cols = np.stack(
            [
                t_cols[i]
                ^ _prg_bits(self._seeds_alice[i][1], m, salt)
                ^ r
                for i in range(self.kappa)
            ]
        )
        ctx.send(ALICE, self.kappa * ((m + 7) // 8), "ot/ext/u")

        # Bob: q columns; row j satisfies Q_j = T_j ^ (r_j * s).
        q_cols = np.stack(
            [
                _prg_bits(self._seeds_bob[i], m, salt)
                ^ (self._s[i] * u_cols[i])
                for i in range(self.kappa)
            ]
        )
        q_rows = np.packbits(q_cols.T, axis=1)  # m x kappa/8
        t_rows = np.packbits(t_cols.T, axis=1)
        s_packed = np.packbits(self._s)

        out: List[bytes] = []
        total = 0
        for j, (m0, m1) in enumerate(pairs):
            if len(m0) != len(m1):
                raise ValueError("OT messages in a pair must be equal-length")
            qj = q_rows[j].tobytes()
            qj_s = (q_rows[j] ^ s_packed).tobytes()
            jb = j.to_bytes(8, "little")
            y0 = _stream_xor(_kdf(jb, salt, qj), m0)
            y1 = _stream_xor(_kdf(jb, salt, qj_s), m1)
            total += len(y0) + len(y1)
            tj = t_rows[j].tobytes()
            key = _kdf(jb, salt, tj)  # equals the k_{r_j} key
            out.append(_stream_xor(key, y1 if r[j] else y0))
        ctx.send(BOB, total, "ot/ext/ciphertexts")
        return out


class SimulatedOT:
    """Functionally-identical OT that skips the crypto but charges the
    transcript what :class:`IknpExtension` would send."""

    def __init__(self, ctx: Context):
        self.ctx = ctx
        self._base_charged = False

    def transfer(
        self, pairs: Sequence[Pair], choices: Sequence[int]
    ) -> List[bytes]:
        if len(pairs) != len(choices):
            raise ValueError("one choice bit per message pair is required")
        if not pairs:
            return []
        ctx = self.ctx
        kappa = ctx.params.kappa
        if not self._base_charged:
            elem = 2048 // 8  # MODP-2048 group element
            ctx.send(ALICE, elem, "ot/ext/base/A")
            ctx.send(BOB, elem * kappa, "ot/ext/base/B")
            ctx.send(ALICE, 32 * kappa, "ot/ext/base/ciphertexts")
            self._base_charged = True
        m = len(pairs)
        ctx.send(ALICE, kappa * ((m + 7) // 8), "ot/ext/u")
        total = sum(len(m0) + len(m1) for m0, m1 in pairs)
        ctx.send(BOB, total, "ot/ext/ciphertexts")
        return [p[1] if c else p[0] for p, c in zip(pairs, choices)]


def make_ot(ctx: Context, group_bits: int = 2048):
    """The OT back-end matching the context's execution mode."""
    from .context import Mode

    if ctx.mode == Mode.REAL:
        return IknpExtension(ctx, group_bits)
    return SimulatedOT(ctx)
