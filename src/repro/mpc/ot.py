"""Oblivious transfer: Chou–Orlandi base OT and IKNP OT extension.

OT is the asymmetric-crypto bedrock under the garbled-circuit protocol
(the evaluator's input labels) and the oblivious switching network.  Two
back-ends share one interface:

* :class:`ChouOrlandiOT` — the "simplest OT" protocol over an RFC 3526
  group: sender publishes ``A = g^a``; per transfer the receiver sends
  ``B = g^b * A^c`` and derives ``H(A^b)``; the sender derives
  ``k0 = H(B^a)`` and ``k1 = H((B/A)^a)`` and sends both messages
  encrypted.  Exponentiations make this expensive, so it is used directly
  only for small batches and as the base for extension.
* :class:`IknpExtension` — stretches ``kappa`` base OTs (run in reversed
  roles with the extension sender choosing a secret ``s``) into any number
  of OTs using only SHA-256: the classic column-correlation construction.
* :class:`SimulatedOT` — delivers the chosen messages directly while
  charging the transcript exactly what the real extension would send.

The extension's per-transfer work is batched: message pairs enter as
contiguous byte matrices (:meth:`IknpExtension.transfer_matrix` /
:meth:`IknpExtension.transfer_segments`), keys are derived with one
row-batched SHA-256 pass, and the ciphertext/decrypt XORs are single
numpy operations over the whole batch (:mod:`repro.mpc.batch`).  The
scalar reference implementation is kept in :mod:`repro.mpc._reference`
and pinned by differential tests.

All message sizes are metered through the shared :class:`Context`.
"""

from __future__ import annotations

import hashlib
from typing import List, Protocol, Sequence, Tuple

import numpy as np

from .batch import kdf_rows, sha256_rows, stream_xor_rows, words_to_le_bytes
from .context import ALICE, BOB, Context
from .modp import ModpGroup, modp_group

__all__ = ["OT", "ChouOrlandiOT", "IknpExtension", "SimulatedOT", "make_ot"]

Pair = Tuple[bytes, bytes]

#: One staged batch of same-width OT message pairs:
#: ``(m0_matrix, m1_matrix, choice_bits)``.
Segment = Tuple[np.ndarray, np.ndarray, np.ndarray]


class OT(Protocol):
    """Structural interface shared by every OT back-end.

    Only scalar :meth:`transfer` is universal; the vectorised
    ``transfer_matrix`` / ``transfer_segments`` entry points exist on
    the extension and simulated back-ends and are discovered with
    ``getattr`` by callers that can exploit them.
    """

    def transfer(
        self, pairs: Sequence[Pair], choices: Sequence[int]
    ) -> List[bytes]: ...


def _kdf(*parts: bytes) -> bytes:
    return hashlib.sha256(b"\x00".join(parts)).digest()


def _stream_xor(key: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt with a SHA-256-based stream cipher."""
    if not data:
        return b""
    out = stream_xor_rows(
        np.frombuffer(key, dtype=np.uint8)[None, :],
        np.frombuffer(data, dtype=np.uint8)[None, :],
    )
    return out.tobytes()


def _int_bytes(x: int, group: ModpGroup) -> bytes:
    return x.to_bytes(group.element_bytes, "little")


class ChouOrlandiOT:
    """1-out-of-2 OT where Bob is the sender (he garbles, so he owns the
    label pairs) and Alice the receiver."""

    def __init__(self, ctx: Context, group_bits: int = 2048) -> None:
        self.ctx = ctx
        self.group = modp_group(group_bits)
        self.group_bits = group_bits

    def transfer(
        self, pairs: Sequence[Pair], choices: Sequence[int]
    ) -> List[bytes]:
        """Alice receives ``pairs[i][choices[i]]``; Bob learns nothing of
        ``choices``; Alice learns nothing of the other message."""
        if len(pairs) != len(choices):
            raise ValueError("one choice bit per message pair is required")
        g, ctx = self.group, self.ctx

        # Bob: publish A = g^a.
        a = g.random_exponent(ctx.random_bytes)
        big_a = g.pow(g.g, a)
        ctx.send(BOB, g.element_bytes, "ot/base/A")
        inv_a = g.inv(big_a)

        # Alice: per choice, B = g^b * A^c and her key H(A^b).
        big_bs, alice_keys = [], []
        for c in choices:
            b = g.random_exponent(ctx.random_bytes)
            big_b = g.pow(g.g, b)
            if c:
                big_b = (big_b * big_a) % g.p
            big_bs.append(big_b)
            alice_keys.append(_kdf(_int_bytes(g.pow(big_a, b), g)))
        ctx.send(ALICE, g.element_bytes * len(choices), "ot/base/B")

        # Bob: derive both keys per transfer, send both ciphertexts.
        out: List[bytes] = []
        total = 0
        ciphertexts: List[Pair] = []
        for (m0, m1), big_b in zip(pairs, big_bs):
            if len(m0) != len(m1):
                raise ValueError("OT messages in a pair must be equal-length")
            k0 = _kdf(_int_bytes(g.pow(big_b, a), g))
            k1 = _kdf(_int_bytes(g.pow((big_b * inv_a) % g.p, a), g))
            ciphertexts.append((_stream_xor(k0, m0), _stream_xor(k1, m1)))
            total += len(m0) + len(m1)
        ctx.send(BOB, total, "ot/base/ciphertexts")

        # Alice: decrypt her chosen message.
        for (c0, c1), c, key in zip(ciphertexts, choices, alice_keys):
            out.append(_stream_xor(key, c1 if c else c0))
        return out


def _prg_bits(seed: bytes, n_bits: int, salt: bytes) -> np.ndarray:
    """Expand ``seed`` into ``n_bits`` pseudorandom bits (uint8 array)."""
    return _prg_bits_all([seed], n_bits, salt)[0]


def _prg_bits_all(
    seeds: Sequence[bytes], n_bits: int, salt: bytes
) -> np.ndarray:
    """Expand every seed into ``n_bits`` pseudorandom bits at once.

    Row ``i`` equals the legacy per-seed expansion
    ``unpackbits(G(seeds[i], salt))[:n_bits]`` where ``G`` concatenates
    ``_kdf(seed, salt, counter)`` blocks — here all ``len(seeds) *
    n_chunks`` SHA-256 compressions run over one contiguous input matrix.
    """
    k = len(seeds)
    n_bytes = (n_bits + 7) // 8
    n_chunks = (n_bytes + 31) // 32
    slen = len(seeds[0])
    width = slen + len(salt) + 10  # seed | 0 | salt | 0 | counter_le64
    rows = np.empty((k, n_chunks, width), dtype=np.uint8)
    rows[:, :, :slen] = np.frombuffer(
        b"".join(seeds), dtype=np.uint8
    ).reshape(k, slen)[:, None, :]
    rows[:, :, slen] = 0
    rows[:, :, slen + 1 : slen + 1 + len(salt)] = np.frombuffer(
        salt, dtype=np.uint8
    )
    rows[:, :, slen + 1 + len(salt)] = 0
    rows[:, :, slen + 2 + len(salt) :] = words_to_le_bytes(
        np.arange(n_chunks, dtype=np.uint64), 8
    )[None, :, :]
    digests = sha256_rows(rows.reshape(k * n_chunks, width))
    raw = digests.reshape(k, n_chunks * 32)[:, :n_bytes]
    return np.unpackbits(np.ascontiguousarray(raw), axis=1)[:, :n_bits]


class IknpExtension:
    """IKNP OT extension: ``kappa`` base OTs, then any number of OTs with
    symmetric crypto only.

    Base phase (roles reversed): extension-sender Bob picks secret bits
    ``s`` and acts as base-OT *receiver* to obtain seed ``k_i^{s_i}``;
    extension-receiver Alice owns both seeds per column.
    """

    def __init__(self, ctx: Context, group_bits: int = 2048) -> None:
        self.ctx = ctx
        self.kappa = ctx.params.kappa
        self._base_done = False
        self.group_bits = group_bits
        self._s: np.ndarray = np.zeros(0, dtype=np.uint8)
        self._seeds_alice: List[Pair] = []
        self._seeds_bob: List[bytes] = []
        self._batch = 0

    def _base_phase(self) -> None:
        ctx = self.ctx
        self._s = ctx.rng.integers(0, 2, size=self.kappa, dtype=np.uint8)
        self._seeds_alice = [
            (ctx.random_bytes(16), ctx.random_bytes(16))
            for _ in range(self.kappa)
        ]
        # Roles reversed: Alice is the base-OT *sender*.  The base
        # protocol below is written Bob->Alice, so we meter it manually
        # with swapped parties and run the arithmetic inline.
        g = modp_group(self.group_bits)
        a = g.random_exponent(ctx.random_bytes)
        big_a = g.pow(g.g, a)
        ctx.send(ALICE, g.element_bytes, "ot/ext/base/A")
        inv_a = g.inv(big_a)
        received: List[bytes] = []
        total_ct = 0
        for i in range(self.kappa):
            b = g.random_exponent(ctx.random_bytes)
            big_b = g.pow(g.g, b)
            if self._s[i]:
                big_b = (big_b * big_a) % g.p
            bob_key = _kdf(_int_bytes(g.pow(big_a, b), g))
            k0 = _kdf(_int_bytes(g.pow(big_b, a), g))
            k1 = _kdf(_int_bytes(g.pow((big_b * inv_a) % g.p, a), g))
            m0, m1 = self._seeds_alice[i]
            c0, c1 = _stream_xor(k0, m0), _stream_xor(k1, m1)
            total_ct += len(c0) + len(c1)
            received.append(
                _stream_xor(bob_key, c1 if self._s[i] else c0)
            )
        ctx.send(BOB, g.element_bytes * self.kappa, "ot/ext/base/B")
        ctx.send(ALICE, total_ct, "ot/ext/base/ciphertexts")
        self._seeds_bob = received
        self._base_done = True

    def _column_phase(
        self, m: int, r: np.ndarray
    ) -> Tuple[bytes, np.ndarray, np.ndarray, np.ndarray]:
        """One extension batch's column correlation: Alice's ``T`` rows,
        Bob's ``Q`` rows, and the batch salt.  Sends the ``u``
        correction columns."""
        if not self._base_done:
            self._base_phase()
        ctx = self.ctx
        salt = self._batch.to_bytes(8, "little")
        self._batch += 1

        # Alice: T columns from k^0; correction u = G(k0) ^ G(k1) ^ r.
        t_cols = _prg_bits_all(
            [s[0] for s in self._seeds_alice], m, salt
        )  # kappa x m
        u_cols = (
            t_cols
            ^ _prg_bits_all([s[1] for s in self._seeds_alice], m, salt)
            ^ r[None, :]
        )
        ctx.send(ALICE, self.kappa * ((m + 7) // 8), "ot/ext/u")

        # Bob: q columns; row j satisfies Q_j = T_j ^ (r_j * s).
        q_cols = _prg_bits_all(self._seeds_bob, m, salt) ^ (
            self._s[:, None] * u_cols
        )
        q_rows = np.packbits(q_cols.T, axis=1)  # m x kappa/8
        t_rows = np.packbits(t_cols.T, axis=1)
        s_packed = np.packbits(self._s)
        return salt, q_rows, t_rows, s_packed

    def _transfer_core(
        self,
        groups: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        m: int,
        r: np.ndarray,
    ) -> List[np.ndarray]:
        """Run one extension batch over index-disjoint groups of
        same-width pairs; group ``(idx, m0, m1)`` holds the pairs at
        global positions ``idx`` as ``(len(idx), w)`` byte matrices.
        Returns the chosen-message matrix per group."""
        ctx = self.ctx
        salt, q_rows, t_rows, s_packed = self._column_phase(m, r)
        salt_arr = np.frombuffer(salt, dtype=np.uint8)
        out: List[np.ndarray] = []
        total = 0
        for idx, m0, m1 in groups:
            jb = words_to_le_bytes(idx.astype(np.uint64), 8)
            qj = q_rows[idx]
            y0 = stream_xor_rows(kdf_rows(jb, salt_arr, qj), m0)
            y1 = stream_xor_rows(
                kdf_rows(jb, salt_arr, qj ^ s_packed), m1
            )
            total += y0.size + y1.size
            chosen = np.where(r[idx].astype(bool)[:, None], y1, y0)
            # T_j packs the k_{r_j} column, so this key decrypts y_{r_j}.
            out.append(
                stream_xor_rows(
                    kdf_rows(jb, salt_arr, t_rows[idx]), chosen
                )
            )
        ctx.send(BOB, total, "ot/ext/ciphertexts")
        return out

    def transfer(
        self, pairs: Sequence[Pair], choices: Sequence[int]
    ) -> List[bytes]:
        if len(pairs) != len(choices):
            raise ValueError("one choice bit per message pair is required")
        if not pairs:
            return []
        m = len(pairs)
        by_width = {}
        for j, (m0, m1) in enumerate(pairs):
            if len(m0) != len(m1):
                raise ValueError("OT messages in a pair must be equal-length")
            by_width.setdefault(len(m0), []).append(j)
        groups = []
        for w, positions in by_width.items():
            idx = np.asarray(positions, dtype=np.int64)
            m0_mat = np.frombuffer(
                b"".join(pairs[j][0] for j in positions), dtype=np.uint8
            ).reshape(len(positions), w)
            m1_mat = np.frombuffer(
                b"".join(pairs[j][1] for j in positions), dtype=np.uint8
            ).reshape(len(positions), w)
            groups.append((idx, m0_mat, m1_mat))
        r = np.asarray(choices, dtype=np.uint8) & 1
        mats = self._transfer_core(groups, m, r)
        out: List[bytes] = [b""] * m
        for (idx, _, _), mat in zip(groups, mats):
            rows = mat.tobytes()
            w = mat.shape[1]
            for k, j in enumerate(idx):
                out[j] = rows[k * w : (k + 1) * w]
        return out

    def transfer_matrix(
        self, m0: np.ndarray, m1: np.ndarray, choices: np.ndarray
    ) -> np.ndarray:
        """Uniform-width fast path: ``(m, w)`` message matrices in, the
        ``(m, w)`` chosen-message matrix out — no per-pair ``bytes``."""
        m0 = np.ascontiguousarray(m0, dtype=np.uint8)
        m1 = np.ascontiguousarray(m1, dtype=np.uint8)
        if m0.shape != m1.shape:
            raise ValueError("OT messages in a pair must be equal-length")
        m = m0.shape[0]
        if len(choices) != m:
            raise ValueError("one choice bit per message pair is required")
        if m == 0:
            return m0.copy()
        r = np.asarray(choices, dtype=np.uint8) & 1
        return self._transfer_core(
            [(np.arange(m, dtype=np.int64), m0, m1)], m, r
        )[0]

    def transfer_segments(
        self, segments: Sequence[Segment]
    ) -> List[np.ndarray]:
        """One extension batch over consecutively-indexed segments of
        (possibly different-width) pair matrices; returns one
        chosen-message matrix per segment, in order.  Used by the
        switching network, whose layers stage naturally as matrices."""
        groups = []
        r_parts = []
        off = 0
        for m0, m1, ch in segments:
            m0 = np.ascontiguousarray(m0, dtype=np.uint8)
            m1 = np.ascontiguousarray(m1, dtype=np.uint8)
            if m0.shape != m1.shape:
                raise ValueError("OT messages in a pair must be equal-length")
            k = m0.shape[0]
            if len(ch) != k:
                raise ValueError("one choice bit per message pair is required")
            groups.append(
                (np.arange(off, off + k, dtype=np.int64), m0, m1)
            )
            r_parts.append(np.asarray(ch, dtype=np.uint8) & 1)
            off += k
        if off == 0:
            return [m0.copy() for m0, _, _ in segments]
        return self._transfer_core(groups, off, np.concatenate(r_parts))


class SimulatedOT:
    """Functionally-identical OT that skips the crypto but charges the
    transcript what :class:`IknpExtension` would send."""

    def __init__(self, ctx: Context, group_bits: int = 2048) -> None:
        self.ctx = ctx
        self.group_bits = group_bits
        self._base_charged = False

    def _charge(self, m: int, total_pair_bytes: int) -> None:
        ctx = self.ctx
        kappa = ctx.params.kappa
        if not self._base_charged:
            elem = self.group_bits // 8
            ctx.send(ALICE, elem, "ot/ext/base/A")
            ctx.send(BOB, elem * kappa, "ot/ext/base/B")
            ctx.send(ALICE, 32 * kappa, "ot/ext/base/ciphertexts")
            self._base_charged = True
        ctx.send(ALICE, kappa * ((m + 7) // 8), "ot/ext/u")
        ctx.send(BOB, total_pair_bytes, "ot/ext/ciphertexts")

    def transfer(
        self, pairs: Sequence[Pair], choices: Sequence[int]
    ) -> List[bytes]:
        if len(pairs) != len(choices):
            raise ValueError("one choice bit per message pair is required")
        if not pairs:
            return []
        self._charge(
            len(pairs), sum(len(m0) + len(m1) for m0, m1 in pairs)
        )
        return [p[1] if c else p[0] for p, c in zip(pairs, choices)]

    def transfer_matrix(
        self, m0: np.ndarray, m1: np.ndarray, choices: np.ndarray
    ) -> np.ndarray:
        m0 = np.ascontiguousarray(m0, dtype=np.uint8)
        m1 = np.ascontiguousarray(m1, dtype=np.uint8)
        if m0.shape != m1.shape:
            raise ValueError("OT messages in a pair must be equal-length")
        if m0.shape[0] == 0:
            return m0.copy()
        self._charge(m0.shape[0], m0.size + m1.size)
        r = (np.asarray(choices, dtype=np.uint8) & 1).astype(bool)
        return np.where(r[:, None], m1, m0)


def make_ot(ctx: Context, group_bits: int = 2048) -> OT:
    """The OT back-end matching the context's execution mode."""
    from .context import Mode

    if ctx.mode == Mode.REAL:
        return IknpExtension(ctx, group_bits)
    return SimulatedOT(ctx, group_bits)
