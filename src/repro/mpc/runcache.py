"""Per-run cross-operator setup cache.

One protocol run touches the same circuit templates and switching-network
shapes over and over: every merge chain of length ``n`` garbles the same
``merge_sum_circuit(ell, n)`` template, every OEP over ``n`` wires routes
the same Beneš *topology* (the wire-pair structure depends only on the
size; only the switch settings depend on the permutation).  A
:class:`RunCache` hangs off the :class:`~repro.mpc.context.Context` and
memoises both, so a DAG of operators builds each template once per run —
and reports hit/miss statistics that the execution tracer
(:mod:`repro.exec.trace`) surfaces per run.

Cached setup material is *public*: circuit templates and network shapes
depend only on public sizes and bit widths, never on private inputs, so
sharing them across operators leaks nothing and leaves transcripts
byte-identical.

Multi-tenant sharing
--------------------

The storage lives in a :class:`SetupStore`, separable from the
:class:`RunCache` view over it.  A default-constructed ``RunCache``
owns a private store (the single-query behaviour); the serving layer
(:mod:`repro.serve`) instead builds one store per
:class:`~repro.serve.plancache.PlanCache` and hands every tenant
session a ``RunCache(store=shared)`` *view*.  Sharing is safe for the
same reason per-run sharing is safe — the material is a pure function
of public shapes — so a tenant's transcript is byte-identical whether
its store is cold or pre-warmed by another tenant (pinned by
``tests/test_serve.py``).  Hit/miss counters stay on the view, so each
session reports its own cache behaviour; the store serialises its
get-or-build sections with a lock so even non-cooperative interleavings
cannot observe a half-built template.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .circuits.circuit import Circuit
    from .circuits.garbling import GarblePlan

from . import waksman

__all__ = ["SetupStore", "RunCache"]


class SetupStore:
    """Shared storage for public setup material: circuit templates,
    their precompiled garble plans, and Beneš network topologies.

    One store per sharing domain — a single protocol run by default, a
    whole plan cache in the serving layer.  Views (:class:`RunCache`)
    do the counting; the store only holds material and the lock that
    makes concurrent get-or-build race-free."""

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.circuits: Dict[Tuple[object, ...], "Circuit"] = {}
        self.topologies: Dict[int, Tuple[waksman.TopologyLayer, ...]] = {}
        self.garble_plans: Dict[int, "GarblePlan"] = {}

    # The cached material is a pure function of public shapes, so a
    # store survives serialisation (durable checkpoints pickle the
    # whole context graph); only the lock is process-local.
    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        del state["lock"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self.lock = threading.RLock()

    def sizes(self) -> Dict[str, int]:
        return {
            "circuit_templates": len(self.circuits),
            "topologies": len(self.topologies),
            "garble_plans": len(self.garble_plans),
        }


class RunCache:
    """Memoises circuit templates (keyed ``(gadget, *shape)``) and Beneš
    network topologies (keyed by size) for one protocol run.

    ``store`` selects the sharing domain: omitted, the cache owns a
    private :class:`SetupStore` (one run); passed, the cache is a
    per-session counting view over a store shared with other sessions.
    """

    def __init__(self, store: Optional[SetupStore] = None) -> None:
        self.store = store if store is not None else SetupStore()
        self.circuit_hits = 0
        self.circuit_misses = 0
        self.topology_hits = 0
        self.topology_misses = 0
        self.plan_hits = 0
        self.plan_misses = 0

    # -- garbled-circuit gadget templates --------------------------------

    def circuit(self, builder: Callable[..., "Circuit"], *shape: int) -> "Circuit":
        """The circuit template ``builder(*shape)``, built once per
        store.

        ``builder`` is one of the :mod:`repro.mpc.gadgets` constructors;
        the cache key is ``(gadget name, *shape)`` — e.g.
        ``("merge_sum_circuit", 32, 512)``.
        """
        key: Tuple[object, ...] = (builder.__name__,) + shape
        with self.store.lock:
            if key in self.store.circuits:
                self.circuit_hits += 1
                return self.store.circuits[key]
            self.circuit_misses += 1
            template = builder(*shape)
            self.store.circuits[key] = template
            return template

    def garble_plan(self, circuit: "Circuit") -> "GarblePlan":
        """The precompiled :class:`~repro.mpc.circuits.garbling.GarblePlan`
        for a circuit template, built once per store.

        Keyed by object identity: templates are themselves cached (here
        or in the :mod:`repro.mpc.gadgets` ``lru_cache``), so one template
        object stands for one shape — and the plan keeps the circuit
        alive, so the identity key cannot be recycled while cached.
        """
        from .circuits.garbling import make_garble_plan

        key = id(circuit)
        with self.store.lock:
            plan = self.store.garble_plans.get(key)
            if plan is not None:
                self.plan_hits += 1
                return plan
            self.plan_misses += 1
            plan = make_garble_plan(circuit)
            self.store.garble_plans[key] = plan
            return plan

    # -- Beneš switching networks ----------------------------------------

    def benes_topology(self, n: int) -> Tuple[waksman.TopologyLayer, ...]:
        """The size-``n`` Beneš wire-pair layers (permutation-independent)."""
        with self.store.lock:
            if n in self.store.topologies:
                self.topology_hits += 1
                return self.store.topologies[n]
            self.topology_misses += 1
            topology = waksman.benes_topology(n)
            self.store.topologies[n] = topology
            return topology

    def benes_network(self, perm: Sequence[int]) -> List[List[Tuple[int, int, bool]]]:
        """Routed network for ``perm``: cached topology zipped with the
        per-permutation switch settings (same output format as
        :func:`repro.mpc.waksman.benes_network`)."""
        topology = self.benes_topology(len(perm))
        swaps = waksman.benes_routing(perm)
        return [
            [(a, b, s) for (a, b), s in zip(t_layer, s_layer)]
            for t_layer, s_layer in zip(topology, swaps)
        ]

    # -- reporting --------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        sizes = self.store.sizes()
        return {
            "circuit_hits": self.circuit_hits,
            "circuit_misses": self.circuit_misses,
            "circuit_templates": sizes["circuit_templates"],
            "topology_hits": self.topology_hits,
            "topology_misses": self.topology_misses,
            "topologies": sizes["topologies"],
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "garble_plans": sizes["garble_plans"],
        }

    def __repr__(self) -> str:  # pragma: no cover
        s = self.stats()
        return (
            f"RunCache(circuits={s['circuit_templates']} "
            f"hit/miss={s['circuit_hits']}/{s['circuit_misses']}, "
            f"topologies={s['topologies']} "
            f"hit/miss={s['topology_hits']}/{s['topology_misses']})"
        )
