"""Vectorised marshalling kernels for the 2PC hot paths.

The REAL-mode primitives move millions of tiny values between numpy
vectors, Python ints, and wire-format byte strings.  Doing that one
``int.to_bytes`` at a time dominates every benchmark, so the hot paths
(:meth:`repro.mpc.engine.Engine._gilboa_cross`,
:func:`repro.mpc.yao.run_garbled_batch`,
:meth:`repro.mpc.ot.IknpExtension.transfer`, the OEP switch network)
marshal through the batch kernels here instead:

* ring-element <-> little-endian byte **matrices** via ``view(np.uint8)``
  reinterpretation rather than per-element ``int.to_bytes`` loops;
* ring-element <-> little-endian bit matrices (the garbled-circuit input
  encoding of :func:`repro.mpc.gadgets.bits_of`) via ``np.unpackbits``;
* batched SHA-256: one C call per row of a contiguous input matrix,
  digests landing in one output matrix so the stream-cipher XOR is a
  single vectorised operation.

Every kernel is pinned against the scalar reference implementations in
:mod:`repro.mpc._reference` by the differential tests
(``tests/test_batch_kernels.py``): identical outputs, byte-identical
transcript fingerprints.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

__all__ = [
    "words_to_le_bytes",
    "le_bytes_to_words",
    "words_to_bits",
    "bits_to_words",
    "sha256_rows",
    "kdf_rows",
    "keystream_rows",
    "stream_xor_rows",
]

#: Separator byte of :func:`repro.mpc.ot._kdf` (``sha256(b"\x00".join(parts))``).
_KDF_SEP = 0


def words_to_le_bytes(words: np.ndarray, width: int) -> np.ndarray:
    """``(n,)`` uint64 ring elements -> ``(n, width)`` little-endian bytes.

    The vectorised equivalent of ``int(w).to_bytes(width, "little")`` per
    element; ``width`` may be 1..8 (values must fit, high bytes are
    truncated exactly like the ring mask guarantees).
    """
    if not 1 <= width <= 8:
        raise ValueError("ring element width must be 1..8 bytes")
    w = np.ascontiguousarray(words, dtype="<u8")
    return w.view(np.uint8).reshape(-1, 8)[:, :width]


def le_bytes_to_words(mat: np.ndarray) -> np.ndarray:
    """``(n, width)`` little-endian byte matrix -> ``(n,)`` uint64."""
    mat = np.asarray(mat, dtype=np.uint8)
    n, width = mat.shape
    if width > 8:
        raise ValueError("ring element width must be <= 8 bytes")
    if width < 8:
        full = np.zeros((n, 8), dtype=np.uint8)
        full[:, :width] = mat
    else:
        full = np.ascontiguousarray(mat)
    return full.view("<u8").reshape(n)


def words_to_bits(words: np.ndarray, ell: int) -> np.ndarray:
    """``(n,)`` ring elements -> ``(n, ell)`` little-endian bit matrix.

    Row ``i`` equals ``gadgets.bits_of(int(words[i]), ell)``.
    """
    b = words_to_le_bytes(np.asarray(words, dtype=np.uint64), (ell + 7) // 8)
    bits = np.unpackbits(
        np.ascontiguousarray(b), axis=1, bitorder="little"
    )
    return bits[:, :ell]


def bits_to_words(bits: np.ndarray) -> np.ndarray:
    """``(n, ell)`` little-endian bit matrix -> ``(n,)`` uint64 words.

    Row-wise inverse of :func:`words_to_bits`
    (= ``gadgets.int_of`` per row).
    """
    bits = np.asarray(bits, dtype=np.uint8) & 1
    if bits.size == 0:
        # An empty batch arrives as shape (0,): no rows, no words.
        return np.zeros(0, dtype=np.uint64)
    if bits.shape[1] > 64:
        raise ValueError("at most 64 bits per word")
    packed = np.packbits(bits, axis=1, bitorder="little")
    return le_bytes_to_words(packed)


def sha256_rows(rows: np.ndarray) -> np.ndarray:
    """SHA-256 of every row of a ``(m, L)`` byte matrix -> ``(m, 32)``."""
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    m, length = rows.shape
    out = bytearray(m * 32)
    buf = rows.data.cast("B")
    sha = hashlib.sha256
    pos = 0
    start = 0
    for _ in range(m):
        out[pos : pos + 32] = sha(buf[start : start + length]).digest()
        pos += 32
        start += length
    return np.frombuffer(bytes(out), dtype=np.uint8).reshape(m, 32)


def kdf_rows(*parts: np.ndarray) -> np.ndarray:
    """Row-wise :func:`repro.mpc.ot._kdf` over byte-matrix parts.

    Each part is ``(m, w_i)`` (or a 1-D ``(w_i,)`` array broadcast to all
    rows); row ``j`` of the result is
    ``sha256(b"\\x00".join(part[j] for part in parts))``.
    """
    mats = []
    m = None
    for p in parts:
        p = np.asarray(p, dtype=np.uint8)
        if p.ndim == 2:
            m = p.shape[0] if m is None else m
    if m is None:
        raise ValueError("at least one 2-D part is required")
    for i, p in enumerate(parts):
        p = np.asarray(p, dtype=np.uint8)
        if p.ndim == 1:
            p = np.broadcast_to(p, (m, p.shape[0]))
        if i:
            mats.append(np.full((m, 1), _KDF_SEP, dtype=np.uint8))
        mats.append(p)
    return sha256_rows(np.concatenate(mats, axis=1))


def keystream_rows(keys: np.ndarray, length: int) -> np.ndarray:
    """``(m, 32)`` KDF keys -> ``(m, length)`` stream-cipher keystream.

    Row ``j`` equals the first ``length`` bytes of the
    :func:`repro.mpc.ot._stream_xor` keystream under ``keys[j]``:
    block ``c`` is ``sha256(key || 0x00 || c_le64)``.
    """
    keys = np.asarray(keys, dtype=np.uint8)
    m = keys.shape[0]
    blocks = []
    produced = 0
    counter = 0
    while produced < length:
        ctr = np.frombuffer(
            counter.to_bytes(8, "little"), dtype=np.uint8
        )
        blocks.append(kdf_rows(keys, ctr))
        produced += 32
        counter += 1
    ks = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=1)
    return ks[:, :length]


def stream_xor_rows(keys: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Encrypt/decrypt a ``(m, w)`` message matrix row-by-row under the
    ``(m, 32)`` key matrix — the batched form of
    :func:`repro.mpc.ot._stream_xor`."""
    data = np.asarray(data, dtype=np.uint8)
    if data.shape[1] == 0:
        return data.copy()
    return data ^ keystream_rows(keys, data.shape[1])
