"""Reusable circuit templates for the secure operators.

Each function returns a cached :class:`Circuit` for a given shape; the
docstring states the exact input packing (Alice's bits first, then
Bob's, all words little-endian).  REAL mode garbles these templates;
SIMULATED mode charges their exact gate counts — one source of truth for
both behaviour and cost.
"""

from __future__ import annotations

import functools
from typing import List

from .circuits.builder import CircuitBuilder
from .circuits.circuit import Circuit

__all__ = [
    "bits_of",
    "int_of",
    "mul_shared_circuit",
    "mul_plain_circuit",
    "nonzero_circuit",
    "merge_sum_circuit",
    "merge_or_circuit",
    "psi_bin_circuit",
    "prod_shared_circuit",
    "div_reveal_circuit",
    "reveal_tuple_circuit",
]


def bits_of(value: int, n: int) -> List[int]:
    """Little-endian bit list of ``value`` (low ``n`` bits)."""
    return [(int(value) >> i) & 1 for i in range(n)]


def int_of(bits: List[int]) -> int:
    out = 0
    for i, b in enumerate(bits):
        out |= (int(b) & 1) << i
    return out


@functools.lru_cache(maxsize=None)
def mul_shared_circuit(ell: int) -> Circuit:
    """``(x1+x2) * (y1+y2) + r``.

    Alice: ``x1 | y1``; Bob: ``x2 | y2 | r``.  Output: ell bits (Alice's
    arithmetic share; Bob's share is ``-r``).
    """
    b = CircuitBuilder()
    x1, y1 = b.alice_input_bits(ell), b.alice_input_bits(ell)
    x2, y2, r = (
        b.bob_input_bits(ell),
        b.bob_input_bits(ell),
        b.bob_input_bits(ell),
    )
    x, y = b.add(x1, x2), b.add(y1, y2)
    return b.build(b.add(b.mul(x, y), r))


@functools.lru_cache(maxsize=None)
def mul_plain_circuit(ell: int) -> Circuit:
    """``a * (y1+y2) + r`` where ``a`` is known to Alice.

    Alice: ``a | y1``; Bob: ``y2 | r``.  Output: Alice's share.
    """
    b = CircuitBuilder()
    a, y1 = b.alice_input_bits(ell), b.alice_input_bits(ell)
    y2, r = b.bob_input_bits(ell), b.bob_input_bits(ell)
    return b.build(b.add(b.mul(a, b.add(y1, y2)), r))


@functools.lru_cache(maxsize=None)
def nonzero_circuit(ell: int) -> Circuit:
    """``Ind(x1+x2 != 0) + r`` (indicator as a ring element).

    Alice: ``x1``; Bob: ``x2 | r``.  Output: Alice's share.
    """
    b = CircuitBuilder()
    x1 = b.alice_input_bits(ell)
    x2, r = b.bob_input_bits(ell), b.bob_input_bits(ell)
    bit = b.nonzero(b.add(x1, x2))
    word = [bit] + [b.constant(0)] * (ell - 1)
    return b.build(b.add(word, r))


@functools.lru_cache(maxsize=None)
def merge_sum_circuit(ell: int, n: int) -> Circuit:
    """The N-tuple merge-gate chain of Section 6.1 (sum semiring).

    Alice: ``ind[0..n-2] | v1[0..n-1]`` where ``ind[i] = 1`` iff sorted
    tuples ``i`` and ``i+1`` share the group key; Bob:
    ``v2[0..n-1] | r[0..n-1]``.  Output: ``n`` masked group aggregates —
    position ``i`` holds the group total iff ``i`` is the last member of
    its group, else 0 (before masking).
    """
    if n < 1:
        raise ValueError("merge chain needs at least one tuple")
    b = CircuitBuilder()
    ind = b.alice_input_bits(n - 1)
    v1 = [b.alice_input_bits(ell) for _ in range(n)]
    v2 = [b.bob_input_bits(ell) for _ in range(n)]
    r = [b.bob_input_bits(ell) for _ in range(n)]
    zero = b.constant_word(0, ell)
    z = b.add(v1[0], v2[0])
    outs: List[List[int]] = []
    for i in range(n - 1):
        w = b.mux(ind[i], zero, z)
        outs.append(b.add(w, r[i]))
        carried = b.mux(ind[i], z, zero)
        z = b.add(carried, b.add(v1[i + 1], v2[i + 1]))
    outs.append(b.add(z, r[n - 1]))
    return b.build([w for word in outs for w in word])


@functools.lru_cache(maxsize=None)
def merge_or_circuit(ell: int, n: int) -> Circuit:
    """The merge chain with OR in place of the semiring addition, used by
    the support projection ``pi^1`` (Section 6.1).  The shared values are
    0/1 indicators, so only the LSBs of their shares enter the circuit.

    Alice: ``ind[0..n-2] | lsb(v1)[0..n-1]``; Bob:
    ``lsb(v2)[0..n-1] | r[0..n-1]``.  Output: ``n`` masked 0/1 words.
    """
    if n < 1:
        raise ValueError("merge chain needs at least one tuple")
    b = CircuitBuilder()
    ind = b.alice_input_bits(n - 1)
    v1 = b.alice_input_bits(n)
    v2 = b.bob_input_bits(n)
    r = [b.bob_input_bits(ell) for _ in range(n)]
    bits = [b.xor(a, c) for a, c in zip(v1, v2)]  # reconstruct indicators
    z = bits[0]
    outs: List[List[int]] = []
    zero_tail = [b.constant(0)] * (ell - 1)
    for i in range(n - 1):
        w = b.and_(b.not_(ind[i]), z)
        outs.append(b.add([w] + zero_tail, r[i]))
        z = b.or_(b.and_(ind[i], z), bits[i + 1])
    outs.append(b.add([z] + zero_tail, r[n - 1]))
    return b.build([w for word in outs for w in word])


@functools.lru_cache(maxsize=None)
def psi_bin_circuit(ell: int, fp_bits: int, reveal_payload: bool) -> Circuit:
    """Per-bin matching circuit of the PSI protocol (Sections 5.3/5.5).

    Alice: ``t (fp_bits) | p (ell)`` — her OPPRF outputs for this bin;
    Bob: ``s (fp_bits) | w (ell) | fallback (ell) | r_ind (ell) | r_pay (ell)``.

    ``m = eq(t, s)`` detects membership.  Outputs: the masked indicator
    word, then the payload ``m ? (p + w) : fallback`` — masked with
    ``r_pay`` when the payload stays shared (Section 6.2), or revealed
    as-is for the shared-payload composition (Section 5.5, where the
    revealed values are uniformly random permutation indices).
    """
    b = CircuitBuilder()
    t = b.alice_input_bits(fp_bits)
    p = b.alice_input_bits(ell)
    s = b.bob_input_bits(fp_bits)
    w = b.bob_input_bits(ell)
    fallback = b.bob_input_bits(ell)
    r_ind = b.bob_input_bits(ell)
    r_pay = b.bob_input_bits(ell)
    m = b.eq(t, s)
    ind_word = b.add([m] + [b.constant(0)] * (ell - 1), r_ind)
    pay = b.mux(m, b.add(p, w), fallback)
    if not reveal_payload:
        pay = b.add(pay, r_pay)
    return b.build(ind_word + pay)


@functools.lru_cache(maxsize=None)
def prod_shared_circuit(ell: int, k: int) -> Circuit:
    """``(x1_1+x2_1) * ... * (x1_k+x2_k) + r`` — the annotation product of
    one join result over ``k`` relations (Section 6.3 step 3).

    Alice: ``x1_1 | ... | x1_k``; Bob: ``x2_1 | ... | x2_k | r``.
    """
    if k < 1:
        raise ValueError("need at least one factor")
    b = CircuitBuilder()
    xs1 = [b.alice_input_bits(ell) for _ in range(k)]
    xs2 = [b.bob_input_bits(ell) for _ in range(k)]
    r = b.bob_input_bits(ell)
    acc = b.add(xs1[0], xs2[0])
    for i in range(1, k):
        acc = b.mul(acc, b.add(xs1[i], xs2[i]))
    return b.build(b.add(acc, r))


@functools.lru_cache(maxsize=None)
def div_reveal_circuit(ell: int) -> Circuit:
    """``(x1+x2) // (y1+y2)`` revealed to Alice — the final division of an
    avg/ratio query composition (Section 7).

    Alice: ``x1 | y1``; Bob: ``x2 | y2``.
    """
    b = CircuitBuilder()
    x1, y1 = b.alice_input_bits(ell), b.alice_input_bits(ell)
    x2, y2 = b.bob_input_bits(ell), b.bob_input_bits(ell)
    q, _rem = b.div_unsigned(b.add(x1, x2), b.add(y1, y2))
    return b.build(q)


@functools.lru_cache(maxsize=None)
def reveal_tuple_circuit(ell: int, payload_bits: int) -> Circuit:
    """Section 6.3 step 1: reveal Bob's tuple iff its annotation is
    nonzero, else a dummy.

    Alice: ``v1``; Bob: ``v2 | tuple payload (payload_bits)``.
    Outputs (revealed to Alice): ``Ind(v != 0)`` then
    ``Ind ? payload : 0...0``.
    """
    b = CircuitBuilder()
    v1 = b.alice_input_bits(ell)
    v2 = b.bob_input_bits(ell)
    payload = b.bob_input_bits(payload_bits)
    bit = b.nonzero(b.add(v1, v2))
    zeros = [b.constant(0)] * payload_bits
    return b.build([bit] + b.mux(bit, payload, zeros))
