"""The two-party protocol context.

A :class:`Context` bundles everything a protocol invocation needs: the
security parameters, the execution mode, the communication transcript, and
a deterministic randomness source.  Protocols are written as orchestration
functions over one context; in REAL mode the cryptographic primitives
actually run, in SIMULATED mode functionally-identical fast paths run and
charge the identical communication to the transcript.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    ContextManager,
    Iterator,
    Optional,
    Protocol,
    runtime_checkable,
)

import numpy as np

from .params import DEFAULT_PARAMS, SecurityParams
from .runcache import RunCache
from .transcript import ALICE, BOB, Transcript, other_party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.session import Session

__all__ = ["Mode", "Context", "Channel", "ALICE", "BOB"]


@runtime_checkable
class Channel(Protocol):
    """What :meth:`Context.send` needs from a communication layer.

    The bare :class:`~repro.mpc.transcript.Transcript` satisfies it
    (record-only), as does the runtime
    :class:`~repro.runtime.session.Session` (framed, checksummed,
    deadline-supervised — and, in two-process mode, exchanged over a
    real socket transport).  Channels meter message *metadata*; no
    payload ever crosses this interface."""

    def send(self, sender: str, n_bytes: int, label: str = "") -> None:
        """Record/deliver one logical message of ``n_bytes``."""
        ...  # pragma: no cover - protocol stub


class Mode(enum.Enum):
    """Primitive back-end selection.

    ``REAL`` runs genuine cryptography (garbled circuits, DH-based OT,
    masked PSI) — used by the test suite at small scale.  ``SIMULATED``
    computes the same functionality directly and meters the same
    communication — used at TPC-H benchmark scale.  See DESIGN.md,
    "Execution modes".
    """

    REAL = "real"
    SIMULATED = "simulated"


class Context:
    """Shared state of one protocol session between Alice and Bob."""

    def __init__(
        self,
        mode: Mode = Mode.SIMULATED,
        params: SecurityParams = DEFAULT_PARAMS,
        seed: Optional[int] = None,
    ) -> None:
        self.mode = mode
        self.params = params
        self.transcript = Transcript()
        self.rng = np.random.default_rng(seed)
        self.cache = RunCache()
        self._roles_swapped = False
        self._session: Optional["Session"] = None
        self._channel: Channel = self.transcript

    @property
    def channel(self) -> Channel:
        """The pluggable communication layer every :meth:`send` routes
        through.  Defaults to the bare transcript; attaching a session
        (see :attr:`session`) swaps it; custom channels (test doubles,
        alternative transports) may be assigned directly as long as
        they ultimately meter into :attr:`transcript`."""
        return self._channel

    @channel.setter
    def channel(self, channel: Channel) -> None:
        self._channel = channel

    @property
    def session(self) -> Optional["Session"]:
        """Optional fault-tolerant session layer
        (:func:`repro.runtime.session.enable_session` attaches one);
        when set, every :meth:`send` is framed, checksummed and
        deadline-supervised before it is metered.  Assigning a session
        also makes it the active :attr:`channel` (``None`` restores
        the bare transcript)."""
        return self._session

    @session.setter
    def session(self, session: Optional["Session"]) -> None:
        self._session = session
        self._channel = session if session is not None else self.transcript

    # -- convenience ----------------------------------------------------

    @property
    def modulus(self) -> int:
        return self.params.modulus

    @property
    def mask(self) -> np.uint64:
        return np.uint64(self.params.modulus - 1)

    def random_ring_vector(self, n: int) -> np.ndarray:
        """``n`` independent uniform elements of ``Z_{2^ell}``."""
        return self.rng.integers(
            0, self.params.modulus, size=n, dtype=np.uint64
        )

    def random_bytes(self, n: int) -> bytes:
        return self.rng.bytes(n)

    def send(self, sender: str, n_bytes: int, label: str = "") -> None:
        if self._roles_swapped:
            sender = other_party(sender)
        self._channel.send(sender, n_bytes, label)

    def section(self, label: str) -> ContextManager[None]:
        return self.transcript.section(label)

    @contextmanager
    def swapped_roles(self) -> Iterator[None]:
        """Mirror the protocol roles: inside this block, code written for
        "Alice evaluates / Bob garbles" runs with the physical parties
        exchanged.  Operators use this so that the relation *owner* always
        plays the protocol-Alice role of Section 6, whichever physical
        party it is.  Nesting toggles back."""
        self._roles_swapped = not self._roles_swapped
        try:
            yield
        finally:
            self._roles_swapped = not self._roles_swapped

    def cache_stats(self) -> dict:
        """Hit/miss counters of the per-run setup cache (circuit
        templates and Beneš topologies) — see
        :meth:`repro.mpc.runcache.RunCache.stats`.  Because
        :meth:`fresh` shares the cache, these counters aggregate over
        every sub-protocol of the run."""
        return self.cache.stats()

    def fresh(self) -> "Context":
        """A new context with the same configuration but an empty
        transcript (used when measuring a sub-protocol in isolation).

        The role orientation carries over: a sub-protocol measured inside
        a :meth:`swapped_roles` block must keep attributing bytes to the
        correct physical party.  The run cache is shared — setup material
        is public and per-run, not per-transcript.  The session layer is
        deliberately **not** inherited: an isolated measurement meters
        its private transcript unframed."""
        child = Context(self.mode, self.params)
        child.rng = self.rng
        child.cache = self.cache
        child._roles_swapped = self._roles_swapped
        return child

    def __repr__(self) -> str:
        return (
            f"Context(mode={self.mode.value}, kappa={self.params.kappa}, "
            f"sigma={self.params.sigma}, ell={self.params.ell})"
        )
