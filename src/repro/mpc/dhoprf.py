"""Linear-communication join matching via a DH-based OPRF (2HashDH).

The linear join back-end (LINQ / Bifrost style; see docs/BACKENDS.md)
replaces circuit PSI with the classic exponent-blinded Diffie-Hellman
OPRF: the child owner holds a per-invocation key ``k`` and each side
learns ``PRF_k(x) = H2(H1(x)^k)`` only for its own items.

Protocol, with the parent owner as protocol-Alice and the child owner
as protocol-Bob:

1. Alice blinds each of her ``m`` (distinct, dummy-padded) key tuples
   with a fresh exponent: ``a_i = H1(x_i)^{r_i}`` — one message of
   ``m`` group elements ("blind").
2. Bob raises every received element to his key: ``b_i = a_i^k``
   ("eval").
3. Bob tokenises his own ``n`` (distinct) tuples,
   ``t_j = H2(H1(y_j)^k)``, and sends the tokens in sorted order
   ("tokens").
4. Alice unblinds ``b_i^{1/r_i} = H1(x_i)^k`` locally, tokenises, and
   matches against the sorted token list.

``H1`` hashes into the order-``q`` subgroup of quadratic residues (the
SHA-512 image squared mod the RFC 3526 safe prime), so blinding
exponents drawn from ``[1, q)`` are invertible and the blinded elements
are uniform in the subgroup — Bob learns nothing about Alice's keys,
and Alice's unblinding ``r_i^{-1} mod q`` recovers the exact PRF value.

All three message sizes depend only on the public sizes ``m`` and
``n``, and the token order is pseudorandom under the PRF, so the
transcript shape is input-independent.  Alice does learn the
PRF-pseudonymised join pattern (which of her keys occur in Bob's
relation, and in which sorted slot) — exactly the leakage the linear
back-end is specified to reveal (docs/BACKENDS.md); values outside the
intersection stay hidden from both parties.

SIMULATED mode draws one salt from the shared context RNG, tokenises
both item lists with it directly (no exponentiations) and charges the
identical three messages.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Hashable, Sequence

import numpy as np

from ..leakage import leaks
from .context import ALICE, BOB, Context, Mode
from .cuckoo import encode_item
from .modp import ModpGroup, modp_group

__all__ = ["TOKEN_BYTES", "GROUP_BITS", "DhOprfMatch", "dh_oprf_match"]

#: Truncated-hash token width: 128 bits bound the collision probability
#: between any two distinct items by ``m * n / 2^128``, far inside the
#: protocol's ``2^-sigma`` failure budget.
TOKEN_BYTES = 16

#: The OPRF group is pinned independently of the engine's base-OT group
#: (exactly as the KKRT OPRF pins its own width): 2048-bit MODP.
GROUP_BITS = 2048

_H1_SALT = b"secyan-dhoprf-h1"
_H2_SALT = b"secyan-dhoprf-h2"


@dataclass
class DhOprfMatch:
    """Output of one DH-OPRF matching invocation.

    ``slot`` (Alice-local) maps each of her item indices to the sorted
    token slot it matched, or ``-1``; ``order`` (Bob-local) says which
    of his item indices occupies each sorted slot: slot ``j`` holds
    Bob's item ``order[j]``.
    """

    slot: np.ndarray
    order: np.ndarray


def _hash_to_group(group: ModpGroup, item: Hashable) -> int:
    """``H1``: hash into the quadratic-residue subgroup (order ``q``)."""
    digest = hashlib.sha512(_H1_SALT + encode_item(item)).digest()
    h = int.from_bytes(digest, "big") % group.p
    return group.pow(h or 1, 2)


def _token(group: ModpGroup, element: int) -> bytes:
    """``H2``: truncated hash of a group element's fixed-width encoding."""
    return hashlib.sha256(
        _H2_SALT + int(element).to_bytes(group.element_bytes, "big")
    ).digest()[:TOKEN_BYTES]


@leaks("join_pattern:parent")
def dh_oprf_match(
    ctx: Context,
    alice_items: Sequence[Hashable],
    bob_items: Sequence[Hashable],
    label: str = "dhoprf",
) -> DhOprfMatch:
    """Match Alice's items against Bob's under a fresh DH-OPRF key.

    Both sides must supply distinct items (the linear join feeds
    deduplicated, dummy-padded key projections, exactly like PSI).
    """
    if len(set(alice_items)) != len(alice_items):
        raise ValueError("DH-OPRF matching requires distinct Alice items")
    if len(set(bob_items)) != len(bob_items):
        raise ValueError("DH-OPRF matching requires distinct Bob items")
    with ctx.section(label):
        if ctx.mode == Mode.REAL:
            return _match_real(ctx, alice_items, bob_items)
        return _match_simulated(ctx, alice_items, bob_items)


def _sorted_slots(tokens: Sequence[bytes]) -> "tuple[list[int], Dict[bytes, int]]":
    """Sort tokens; return ``(order, token -> slot)``."""
    order = sorted(range(len(tokens)), key=lambda j: tokens[j])
    slot_of = {tokens[j]: s for s, j in enumerate(order)}
    if len(slot_of) != len(tokens):
        raise RuntimeError(
            "DH-OPRF token collision between distinct items "
            "(probability < 2^-100); re-run with a fresh context"
        )
    return order, slot_of


def _match_real(
    ctx: Context,
    alice_items: Sequence[Hashable],
    bob_items: Sequence[Hashable],
) -> DhOprfMatch:
    group = modp_group(GROUP_BITS)
    eb = group.element_bytes
    m, n = len(alice_items), len(bob_items)

    # 1. Alice blinds her hashed keys with fresh per-item exponents.
    blinds = [group.random_exponent(ctx.random_bytes) for _ in range(m)]
    blinded = [
        group.pow(_hash_to_group(group, x), r)
        for x, r in zip(alice_items, blinds)
    ]
    ctx.send(ALICE, m * eb, "blind")

    # 2. Bob applies his OPRF key to every blinded element ...
    k = group.random_exponent(ctx.random_bytes)
    evaluated = [group.pow(a, k) for a in blinded]
    ctx.send(BOB, m * eb, "eval")

    # 3. ... and ships the tokens of his own items, sorted.
    bob_tokens = [
        _token(group, group.pow(_hash_to_group(group, y), k))
        for y in bob_items
    ]
    order, slot_of = _sorted_slots(bob_tokens)
    ctx.send(BOB, n * TOKEN_BYTES, "tokens")

    # 4. Alice unblinds and matches locally.
    slot = np.empty(m, dtype=np.int64)
    for i, (b, r) in enumerate(zip(evaluated, blinds)):
        u = group.pow(b, pow(r, -1, group.q))
        slot[i] = slot_of.get(_token(group, u), -1)
    return DhOprfMatch(slot, np.asarray(order, dtype=np.int64))


def _match_simulated(
    ctx: Context,
    alice_items: Sequence[Hashable],
    bob_items: Sequence[Hashable],
) -> DhOprfMatch:
    group = modp_group(GROUP_BITS)
    eb = group.element_bytes
    m, n = len(alice_items), len(bob_items)
    ctx.send(ALICE, m * eb, "blind")
    ctx.send(BOB, m * eb, "eval")

    # One shared salt stands in for the PRF key: same token function on
    # both item lists, no exponentiations.
    salt = ctx.random_bytes(16)

    def tok(item: Hashable) -> bytes:
        return hashlib.sha256(salt + encode_item(item)).digest()[:TOKEN_BYTES]

    bob_tokens = [tok(y) for y in bob_items]
    order, slot_of = _sorted_slots(bob_tokens)
    ctx.send(BOB, n * TOKEN_BYTES, "tokens")

    slot = np.asarray(
        [slot_of.get(tok(x), -1) for x in alice_items], dtype=np.int64
    )
    return DhOprfMatch(slot, np.asarray(order, dtype=np.int64))
