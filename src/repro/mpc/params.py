"""Security and protocol parameters (Section 4 and 8.2).

The paper's experiments use computational security ``kappa = 128``,
statistical security ``sigma = 40``, and annotation bit-length ``ell = 32``.
The cuckoo-hash expansion factor ``B = 1.27 * M`` comes from footnote 3.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SecurityParams", "DEFAULT_PARAMS"]


@dataclass(frozen=True)
class SecurityParams:
    """Parameters shared by every protocol in a session."""

    #: Computational security parameter (bit-length of wire labels / keys).
    kappa: int = 128
    #: Statistical security parameter (failure / distinguishing bound 2^-sigma).
    sigma: int = 40
    #: Bit-length of semiring annotations.
    ell: int = 32
    #: Cuckoo hash table expansion: number of bins per inserted element.
    cuckoo_expansion: float = 1.27
    #: Number of cuckoo hash functions (the PSI protocol of [27] uses 3).
    cuckoo_hashes: int = 3

    @property
    def modulus(self) -> int:
        return 1 << self.ell

    @property
    def label_bytes(self) -> int:
        return self.kappa // 8


DEFAULT_PARAMS = SecurityParams()
