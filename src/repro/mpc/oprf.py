"""Batched oblivious PRF (KKRT-style) and polynomial OPPRF.

The circuit-based PSI of Pinkas et al. [27] rests on an *oblivious
programmable PRF*: per cuckoo bin, Alice learns one pseudorandom value
``F_b(x_b)`` for her single item while Bob can program the function so
that every one of his items hashed to the bin maps to a chosen target.

* :class:`KkrtOprf` — the OT-extension-based batched OPRF of Kolesnikov
  et al. (KKRT16): an IKNP matrix widened to ``w = 448`` columns whose
  row ``j`` is correlated with the pseudorandom code ``C(x_j)`` of
  Alice's input; Bob, holding the secret column-selection ``s``, can
  evaluate ``F_j(y) = H(j, Q_j xor (C(y) & s))`` on any ``y``.
* :func:`interpolate_oprf_targets` / polynomial OPPRF — Bob interpolates,
  per bin, a degree-``L-1`` polynomial over ``GF(2^61 - 1)`` through
  ``(F_b(y), target_y)`` for his items (random filler points pad every
  bin to the public degree), so the hint's size is input-independent and
  Alice's evaluation reveals nothing about membership.

SIMULATED mode computes ``F_j(y)`` directly from a shared salt and
charges the real message sizes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .context import ALICE, BOB, Context, Mode
from .modp import modp_group
from .ot import _kdf, _prg_bits, _stream_xor

__all__ = [
    "OPRF_WIDTH",
    "OPPRF_PRIME",
    "BatchedOprf",
    "poly_interpolate",
    "poly_eval",
]

#: KKRT code width (bits); 448 gives ~128-bit security for the code.
OPRF_WIDTH = 448

#: Field for OPPRF interpolation: the Mersenne prime 2^61 - 1.
OPPRF_PRIME = (1 << 61) - 1


def _code(fp: int, salt: bytes, width: int = OPRF_WIDTH) -> np.ndarray:
    """Pseudorandom code ``C(fp)``: ``width`` bits derived from the item
    fingerprint."""
    return _prg_bits(
        fp.to_bytes(8, "little") + salt, width, b"kkrt-code"
    )


def _out_hash(row: int, row_bits: np.ndarray, salt: bytes) -> int:
    data = row.to_bytes(8, "little") + np.packbits(row_bits).tobytes()
    digest = hashlib.blake2b(data, digest_size=8, key=salt[:16]).digest()
    return int.from_bytes(digest, "little")


class BatchedOprf:
    """One OPRF instance per row (= cuckoo bin).

    After construction, ``alice_values[j]`` is Alice's output
    ``F_j(x_j)`` and :meth:`bob_eval` lets Bob evaluate ``F_j`` on
    arbitrary fingerprints.
    """

    def __init__(
        self,
        ctx: Context,
        alice_fps: Sequence[int],
        group_bits: int = 2048,
    ) -> None:
        self.ctx = ctx
        self._salt = b"oprf-session"
        m = len(alice_fps)
        self._m = m
        if ctx.mode == Mode.REAL:
            self._setup_real(list(alice_fps), group_bits)
        else:
            self._setup_simulated(list(alice_fps))

    # -- REAL: KKRT over a width-448 IKNP matrix --------------------------

    def _setup_real(self, fps: List[int], group_bits: int) -> None:
        ctx = self.ctx
        rng = ctx.rng
        w = OPRF_WIDTH
        m = self._m
        # Base OTs, roles reversed: Bob (the OPRF sender) receives with
        # secret choice s; Alice offers seed pairs.
        g = modp_group(group_bits)
        s = rng.integers(0, 2, size=w, dtype=np.uint8)
        seeds_alice = [
            (ctx.random_bytes(16), ctx.random_bytes(16)) for _ in range(w)
        ]
        a = int(rng.integers(1, 1 << 62)) % g.q
        big_a = g.pow(g.g, a)
        ctx.send(ALICE, g.element_bytes, "oprf/base/A")
        inv_a = g.inv(big_a)
        seeds_bob: List[bytes] = []
        total_ct = 0
        for i in range(w):
            b = int(rng.integers(1, 1 << 62)) % g.q
            big_b = g.pow(g.g, b)
            if s[i]:
                big_b = (big_b * big_a) % g.p
            bob_key = _kdf(big_b.to_bytes(g.element_bytes, "little"))
            # Alice, knowing a, derives both candidate keys.
            k0 = _kdf(
                g.pow(big_b, a).to_bytes(g.element_bytes, "little")
            )
            k1 = _kdf(
                g.pow((big_b * inv_a) % g.p, a).to_bytes(
                    g.element_bytes, "little"
                )
            )
            m0, m1 = seeds_alice[i]
            c0, c1 = _stream_xor(k0, m0), _stream_xor(k1, m1)
            total_ct += len(c0) + len(c1)
            received = _stream_xor(
                _kdf(
                    g.pow(big_a, b).to_bytes(g.element_bytes, "little")
                ),
                c1 if s[i] else c0,
            )
            seeds_bob.append(received)
        ctx.send(BOB, g.element_bytes * w, "oprf/base/B")
        ctx.send(ALICE, total_ct, "oprf/base/ciphertexts")

        if m == 0:
            self.alice_values = []
            self._bob_rows = np.zeros((0, w), dtype=np.uint8)
            self._s = s
            return

        # Alice: T columns; correction u_i = t0 ^ t1 ^ code-column-i.
        codes = np.stack([_code(fp, self._salt) for fp in fps])  # m x w
        t_cols = np.stack(
            [_prg_bits(seeds_alice[i][0], m, b"col") for i in range(w)]
        )
        u_cols = np.stack(
            [
                t_cols[i]
                ^ _prg_bits(seeds_alice[i][1], m, b"col")
                ^ codes[:, i]
                for i in range(w)
            ]
        )
        ctx.send(ALICE, w * ((m + 7) // 8), "oprf/u")

        # Bob: q columns; Q_j = T_j ^ (C(x_j) & s).
        q_cols = np.stack(
            [
                _prg_bits(seeds_bob[i], m, b"col") ^ (s[i] * u_cols[i])
                for i in range(w)
            ]
        )
        t_rows = t_cols.T  # m x w
        self._bob_rows = q_cols.T
        self._s = s
        self.alice_values = [
            _out_hash(j, t_rows[j], self._salt) for j in range(m)
        ]

    def _bob_eval_real(self, row: int, fp: int) -> int:
        masked = self._bob_rows[row] ^ (_code(fp, self._salt) & self._s)
        return _out_hash(row, masked, self._salt)

    # -- SIMULATED --------------------------------------------------------

    def _setup_simulated(self, fps: List[int]) -> None:
        ctx = self.ctx
        w, m = OPRF_WIDTH, self._m
        elem = 2048 // 8
        ctx.send(ALICE, elem, "oprf/base/A")
        ctx.send(BOB, elem * w, "oprf/base/B")
        ctx.send(ALICE, 32 * w, "oprf/base/ciphertexts")
        if m:
            ctx.send(ALICE, w * ((m + 7) // 8), "oprf/u")
        self.alice_values = [
            self._bob_eval_sim(j, fp) for j, fp in enumerate(fps)
        ]

    def _bob_eval_sim(self, row: int, fp: int) -> int:
        digest = hashlib.blake2b(
            row.to_bytes(8, "little") + fp.to_bytes(8, "little"),
            digest_size=8,
            key=self._salt,
        ).digest()
        return int.from_bytes(digest, "little")

    def bob_eval(self, row: int, fp: int) -> int:
        if self.ctx.mode == Mode.REAL:
            return self._bob_eval_real(row, fp)
        return self._bob_eval_sim(row, fp)


# -- polynomial OPPRF hints over GF(2^61 - 1) ----------------------------


def _mod_inv(x: int, p: int = OPPRF_PRIME) -> int:
    return pow(x, p - 2, p)


def poly_interpolate(
    points: Sequence[Tuple[int, int]], p: int = OPPRF_PRIME
) -> List[int]:
    """Lagrange interpolation: coefficients (low degree first) of the
    unique degree-``len(points)-1`` polynomial through ``points``."""
    n = len(points)
    xs = [x % p for x, _ in points]
    ys = [y % p for _, y in points]
    if len(set(xs)) != n:
        raise ValueError("interpolation points must have distinct x")
    coeffs = [0] * n
    for i in range(n):
        # Basis polynomial prod_{j != i} (X - x_j) / (x_i - x_j).
        basis = [1]
        denom = 1
        for j in range(n):
            if j == i:
                continue
            # basis *= (X - x_j)
            new = [0] * (len(basis) + 1)
            for k, c in enumerate(basis):
                new[k + 1] = (new[k + 1] + c) % p
                new[k] = (new[k] - c * xs[j]) % p
            basis = new
            denom = denom * (xs[i] - xs[j]) % p
        scale = ys[i] * _mod_inv(denom, p) % p
        for k, c in enumerate(basis):
            coeffs[k] = (coeffs[k] + c * scale) % p
    return coeffs


def poly_eval(coeffs: Sequence[int], x: int, p: int = OPPRF_PRIME) -> int:
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % p
    return acc
