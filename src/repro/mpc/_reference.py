"""Scalar reference implementations of the vectorised hot paths.

The batch kernels in :mod:`repro.mpc.batch` and the vectorised
primitives built on them (:meth:`IknpExtension.transfer`,
:func:`repro.mpc.yao.run_garbled_batch`,
:meth:`repro.mpc.engine.Engine._gilboa_cross`) replaced one-value-at-a-
time loops.  Those legacy loops live on here — with the two OT-layer
bugfixes applied (full-width base-OT exponents, ``(ell+7)//8`` ring
widths) so that they compute the *intended* functionality — and the
differential tests in ``tests/test_batch_kernels.py`` pin the vectorised
code against them: identical outputs and byte-identical transcript
fingerprints, in REAL and SIMULATED modes.

Nothing here is exported through the package; it exists only as the
ground truth for tests and for line-by-line auditing of the batched
implementations.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .context import ALICE, BOB, Context
from .circuits.circuit import Circuit
from .circuits.garbling import LABEL_BYTES, evaluate_garbled, garble
from .modp import modp_group
from .ot import OT, ChouOrlandiOT, IknpExtension, Pair, _int_bytes, _kdf
from .sharing import SharedVector

__all__ = [
    "stream_xor",
    "prg_bits",
    "ReferenceChouOrlandiOT",
    "ReferenceIknpExtension",
    "gilboa_cross",
    "run_garbled_batch",
]


def stream_xor(key: bytes, data: bytes) -> bytes:
    """The pre-vectorisation ``_stream_xor``: byte-at-a-time XOR against
    a block-by-block SHA-256 keystream."""
    out = bytearray()
    counter = 0
    while len(out) < len(data):
        out.extend(_kdf(key, counter.to_bytes(8, "little")))
        counter += 1
    return bytes(a ^ b for a, b in zip(data, out[: len(data)]))


def prg_bits(seed: bytes, n_bits: int, salt: bytes) -> np.ndarray:
    """The pre-vectorisation per-seed PRG expansion (one seed at a time,
    Python chunk loop) that ``_prg_bits_all`` batches."""
    n_bytes = (n_bits + 7) // 8
    chunks: List[bytes] = []
    counter = 0
    while sum(len(c) for c in chunks) < n_bytes:
        chunks.append(_kdf(seed, salt, counter.to_bytes(8, "little")))
        counter += 1
    raw = b"".join(chunks)[:n_bytes]
    return np.unpackbits(np.frombuffer(raw, dtype=np.uint8))[:n_bits]


class ReferenceChouOrlandiOT(ChouOrlandiOT):
    """Chou–Orlandi with the legacy scalar ciphertext loop (the group
    arithmetic was always scalar; only the stream cipher changed)."""

    def transfer(
        self, pairs: Sequence[Pair], choices: Sequence[int]
    ) -> List[bytes]:
        if len(pairs) != len(choices):
            raise ValueError("one choice bit per message pair is required")
        g, ctx = self.group, self.ctx

        a = g.random_exponent(ctx.random_bytes)
        big_a = g.pow(g.g, a)
        ctx.send(BOB, g.element_bytes, "ot/base/A")
        inv_a = g.inv(big_a)

        big_bs, alice_keys = [], []
        for c in choices:
            b = g.random_exponent(ctx.random_bytes)
            big_b = g.pow(g.g, b)
            if c:
                big_b = (big_b * big_a) % g.p
            big_bs.append(big_b)
            alice_keys.append(_kdf(_int_bytes(g.pow(big_a, b), g)))
        ctx.send(ALICE, g.element_bytes * len(choices), "ot/base/B")

        out: List[bytes] = []
        total = 0
        ciphertexts: List[Pair] = []
        for (m0, m1), big_b in zip(pairs, big_bs):
            if len(m0) != len(m1):
                raise ValueError("OT messages in a pair must be equal-length")
            k0 = _kdf(_int_bytes(g.pow(big_b, a), g))
            k1 = _kdf(_int_bytes(g.pow((big_b * inv_a) % g.p, a), g))
            ciphertexts.append((stream_xor(k0, m0), stream_xor(k1, m1)))
            total += len(m0) + len(m1)
        ctx.send(BOB, total, "ot/base/ciphertexts")

        for (c0, c1), c, key in zip(ciphertexts, choices, alice_keys):
            out.append(stream_xor(key, c1 if c else c0))
        return out


class ReferenceIknpExtension(IknpExtension):
    """IKNP extension with the legacy per-pair transfer loop (column
    PRG expansion, key derivation, and the stream cipher all scalar).

    Shares the (already scalar) base phase with the production class, so
    only :meth:`transfer` differs.
    """

    def transfer(
        self, pairs: Sequence[Pair], choices: Sequence[int]
    ) -> List[bytes]:
        if len(pairs) != len(choices):
            raise ValueError("one choice bit per message pair is required")
        if not pairs:
            return []
        if not self._base_done:
            self._base_phase()
        ctx = self.ctx
        m = len(pairs)
        salt = self._batch.to_bytes(8, "little")
        self._batch += 1
        r = np.asarray(choices, dtype=np.uint8) & 1

        t_cols = np.stack(
            [
                prg_bits(self._seeds_alice[i][0], m, salt)
                for i in range(self.kappa)
            ]
        )  # kappa x m
        u_cols = np.stack(
            [
                t_cols[i]
                ^ prg_bits(self._seeds_alice[i][1], m, salt)
                ^ r
                for i in range(self.kappa)
            ]
        )
        ctx.send(ALICE, self.kappa * ((m + 7) // 8), "ot/ext/u")

        q_cols = np.stack(
            [
                prg_bits(self._seeds_bob[i], m, salt)
                ^ (self._s[i] * u_cols[i])
                for i in range(self.kappa)
            ]
        )
        q_rows = np.packbits(q_cols.T, axis=1)  # m x kappa/8
        t_rows = np.packbits(t_cols.T, axis=1)
        s_packed = np.packbits(self._s)

        out: List[bytes] = []
        total = 0
        for j, (m0, m1) in enumerate(pairs):
            if len(m0) != len(m1):
                raise ValueError("OT messages in a pair must be equal-length")
            qj = q_rows[j].tobytes()
            qj_s = (q_rows[j] ^ s_packed).tobytes()
            jb = j.to_bytes(8, "little")
            y0 = stream_xor(_kdf(jb, salt, qj), m0)
            y1 = stream_xor(_kdf(jb, salt, qj_s), m1)
            total += len(y0) + len(y1)
            tj = t_rows[j].tobytes()
            key = _kdf(jb, salt, tj)  # equals the k_{r_j} key
            out.append(stream_xor(key, y1 if r[j] else y0))
        ctx.send(BOB, total, "ot/ext/ciphertexts")
        return out


def gilboa_cross(
    ctx: Context, ot: OT, u: np.ndarray, v: np.ndarray
) -> SharedVector:
    """The legacy scalar staging of ``Engine._gilboa_cross`` (REAL mode,
    Alice-holds-bits orientation), with the ``(ell+7)//8`` width fix:
    per bit ``i`` of ``u_j``, one OT of ``(r, r + (v_j << i))``."""
    ell = ctx.params.ell
    n = len(u)
    mask = int(ctx.modulus - 1)
    rb = (ell + 7) // 8
    r = ctx.rng.integers(0, ctx.modulus, size=(n, ell), dtype=np.uint64)
    pairs: List[Pair] = []
    choice_bits: List[int] = []
    for j in range(n):
        vj = int(v[j])
        for i in range(ell):
            r_ji = int(r[j, i])
            m0 = r_ji.to_bytes(rb, "little")
            m1 = ((r_ji + (vj << i)) & mask).to_bytes(rb, "little")
            pairs.append((m0, m1))
            choice_bits.append((int(u[j]) >> i) & 1)
    got = ot.transfer(pairs, choice_bits)
    recv = np.zeros(n, dtype=np.uint64)
    for j in range(n):
        total = 0
        for i in range(ell):
            total += int.from_bytes(got[j * ell + i], "little")
        recv[j] = total & mask
    sender_share = (-r.sum(axis=1, dtype=np.uint64)) & np.uint64(mask)
    return SharedVector(recv, sender_share, ctx.modulus)


def run_garbled_batch(
    ctx: Context,
    ot: OT,
    circuit: Circuit,
    alice_bits_list: Sequence[Sequence[int]],
    bob_bits_list: Sequence[Sequence[int]],
) -> List[List[int]]:
    """The legacy one-instance-at-a-time garbled batch: dict-based
    scalar garbling per instance, per-bit label pair staging, per-wire
    decode — exactly what :func:`repro.mpc.yao.run_garbled_batch` now
    does with matrix kernels."""
    if len(alice_bits_list) != len(bob_bits_list):
        raise ValueError("need matching numbers of Alice/Bob input vectors")
    n = len(alice_bits_list)
    if n == 0:
        return []

    garblings = []
    tables_bytes = 0
    bob_label_bytes = 0
    label_pairs = []
    choice_bits: List[int] = []
    for alice_bits, bob_bits in zip(alice_bits_list, bob_bits_list):
        g = garble(circuit, ctx.random_bytes)
        garblings.append(g)
        tables_bytes += g.tables.n_bytes
        bob_label_bytes += LABEL_BYTES * (
            len(circuit.bob_inputs) + len(circuit.const_wires)
        )
        for w, bit in zip(circuit.alice_inputs, alice_bits):
            pair = (
                g.label(w, 0).to_bytes(LABEL_BYTES, "little"),
                g.label(w, 1).to_bytes(LABEL_BYTES, "little"),
            )
            label_pairs.append(pair)
            choice_bits.append(int(bit) & 1)
    ctx.send(BOB, tables_bytes, "gc/tables")
    ctx.send(BOB, bob_label_bytes, "gc/bob_labels")
    with ctx.section("gc/alice_labels"):
        alice_labels = ot.transfer(label_pairs, choice_bits)

    outputs: List[List[int]] = []
    decode_bytes = 0
    cursor = 0
    for g, bob_bits in zip(garblings, bob_bits_list):
        input_labels = {}
        for w in circuit.alice_inputs:
            input_labels[w] = int.from_bytes(alice_labels[cursor], "little")
            cursor += 1
        for w, bit in zip(circuit.bob_inputs, bob_bits):
            input_labels[w] = g.label(w, int(bit) & 1)
        for w, bit in circuit.const_wires:
            input_labels[w] = g.label(w, bit)
        active = evaluate_garbled(circuit, g.tables, input_labels)
        permute = g.output_permute_bits()
        decode_bytes += (len(circuit.outputs) + 7) // 8
        outputs.append(
            [
                (active[w] & 1) ^ p
                for w, p in zip(circuit.outputs, permute)
            ]
        )
    ctx.send(BOB, decode_bytes, "gc/decode")
    return outputs
