"""Oblivious extended permutation (Section 5.4).

Alice holds a function ``xi : [N] -> [M]`` (an *extended permutation* —
repetitions and drops allowed); the parties hold a shared length-``M``
vector and must obtain fresh shares of ``y_i = x_{xi(i)}`` without Bob
learning ``xi`` or either party learning the values.

Construction (Mohassel & Sadeghian [24]): decompose the EP into

    permutation P1  ->  replication pass  ->  permutation P2

over ``max(M, N)`` wires.  ``P1`` brings one copy of every needed source
to the head of its block of duplicated targets; the replication pass has
each wire either keep its value or copy its left neighbour; ``P2`` routes
the block members to their target positions.  Permutations run on a
Benes switching network; every 2x2 switch and every replication gate is
applied to the shared values with ONE 1-out-of-2 OT in which Bob offers
both refreshed share pairs and Alice selects with her (private) control
bit.  All OTs across the whole network are batched into a single OT-
extension call, so the protocol runs in constant rounds with
``~O((M+N) log(M+N))`` communication.

SIMULATED mode reshares ``x[xi]`` directly and charges identical bytes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .batch import le_bytes_to_words, words_to_le_bytes
from .context import Context, Mode
from .ot import OT
from .sharing import SharedVector
from .waksman import pad_permutation, switch_count
from .yao import charge_ot

__all__ = ["oblivious_permutation", "oblivious_extended_permutation"]


def _ring_bytes(ctx: Context) -> int:
    return (ctx.params.ell + 7) // 8


def oblivious_permutation(
    ctx: Context, ot: OT, perm: Sequence[int], values: SharedVector,
    label: str = "oep/perm",
) -> SharedVector:
    """Permute a shared vector by Alice's private bijection:
    output position ``perm[i]`` receives input ``i``'s value, with fresh
    shares.  ``len(perm) == len(values)``."""
    n = len(values)
    if sorted(perm) != list(range(n)):
        raise ValueError("perm must be a bijection on the vector's indices")
    with ctx.section(label):
        if ctx.mode == Mode.SIMULATED:
            inv = np.empty(n, dtype=np.int64)
            inv[np.asarray(perm, dtype=np.int64)] = np.arange(n)
            out_plain = values.reconstruct()[inv]
            n_switches = switch_count(n)
            # Same section as the REAL path's transfer_segments call, so
            # both modes spell the labels ``<label>/switches/ot/...``.
            with ctx.section("switches"):
                charge_ot(
                    ctx, ot, n_switches,
                    2 * 2 * _ring_bytes(ctx) * n_switches,
                )
            return _fresh_shares(ctx, out_plain)
        layers = ctx.cache.benes_network(pad_permutation(perm))
        padded = values.concat(
            SharedVector.zeros(_padded_size(n) - n, ctx.modulus)
        )
        switched = _apply_switch_network(ctx, ot, [layers], [], padded)
        # Output position perm[i] received input i; read back in order.
        return switched.take(np.arange(n))


def oblivious_extended_permutation(
    ctx: Context, ot: OT, xi: Sequence[int], values: SharedVector, n_out: int,
    label: str = "oep/ext",
) -> SharedVector:
    """``y_i = x_{xi(i)}`` for ``i in [n_out]`` with fresh shares; ``xi``
    is Alice's private map into the input vector's index range."""
    m = len(values)
    # Columnar fast path: validate ndarray maps with array ops instead
    # of a per-element Python loop (the phases pass whole xi columns).
    xi_arr = (
        xi.astype(np.int64, copy=False)
        if isinstance(xi, np.ndarray)
        else np.asarray(list(xi), dtype=np.int64)
    )
    if len(xi_arr) != n_out:
        raise ValueError("xi must give one source per output position")
    if len(xi_arr) and (
        int(xi_arr.min()) < 0 or int(xi_arr.max()) >= m
    ):
        raise IndexError("xi references positions outside the input vector")
    with ctx.section(label):
        if ctx.mode == Mode.SIMULATED:
            out_plain = values.reconstruct()[xi_arr]
            n_work = _padded_size(max(m, n_out, 1))
            n_switches = 2 * switch_count(n_work)
            rb = _ring_bytes(ctx)
            # Same section as the REAL path's transfer_segments call, so
            # both modes spell the labels ``<label>/switches/ot/...``.
            with ctx.section("switches"):
                charge_ot(
                    ctx, ot,
                    n_switches + (n_work - 1),
                    2 * 2 * rb * n_switches + 2 * rb * (n_work - 1),
                )
            return _fresh_shares(ctx, out_plain)
        return _oep_real(ctx, ot, [int(s) for s in xi_arr], values, n_out)


# ----------------------------------------------------------------------
# REAL-mode machinery
# ----------------------------------------------------------------------


def _padded_size(n: int) -> int:
    size = 1
    while size < n:
        size *= 2
    return size


def _fresh_shares(ctx: Context, plain: np.ndarray) -> SharedVector:
    a = ctx.random_ring_vector(len(plain))
    return SharedVector(a, (plain - a) & ctx.mask, ctx.modulus)


def _oep_real(
    ctx: Context, ot: OT, xi: List[int], values: SharedVector, n_out: int
) -> SharedVector:
    m = len(values)
    n_work = _padded_size(max(m, n_out, 1))
    padded = values.concat(SharedVector.zeros(n_work - m, ctx.modulus))

    # Group target positions by source so duplicates are consecutive.
    order = sorted(range(n_out), key=lambda i: (xi[i], i))
    # P1: bring each used source to the head position of its block.
    perm1 = [-1] * n_work
    copy_bits = [False] * n_work
    prev_source = None
    for g, target in enumerate(order):
        s = xi[target]
        if s != prev_source:
            perm1[s] = g
            prev_source = s
        else:
            copy_bits[g] = True
    free_slots = iter(
        g for g in range(n_work) if g not in set(
            p for p in perm1 if p >= 0
        )
    )
    for s in range(n_work):
        if perm1[s] == -1:
            perm1[s] = next(free_slots)
    # P2: route block member g to its target position order[g].
    perm2 = [-1] * n_work
    taken = [False] * n_work
    for g, target in enumerate(order):
        perm2[g] = target
        taken[target] = True
    free_targets = iter(t for t in range(n_work) if not taken[t])
    for g in range(n_work):
        if perm2[g] == -1:
            perm2[g] = next(free_targets)

    # The size-keyed topology is cached across every OEP of the run;
    # only the per-permutation switch settings are recomputed here.
    layers1 = ctx.cache.benes_network(perm1)
    layers2 = ctx.cache.benes_network(perm2)
    routed = _apply_switch_network(
        ctx, ot, [layers1, layers2], copy_bits, padded
    )
    return routed.take(np.arange(n_out))


def _stage_network(
    ctx: Context,
    layers: List[List[Tuple[int, int, bool]]],
    bob: np.ndarray,
    segments: List[Tuple],
) -> None:
    """Stage Bob's OT message pairs and Alice's choices for one network,
    one byte-matrix segment per layer (a layer's switches touch disjoint
    wire pairs, so each layer stages as one vectorised step).  ``bob`` is
    updated in place to the post-network shares (Bob can do this before
    any interaction); Alice's updates are replayed later with the OT
    results."""
    mask = ctx.mask
    rb = _ring_bytes(ctx)
    for layer in layers:
        if not layer:
            continue
        a_idx = np.asarray([a for a, _, _ in layer], dtype=np.int64)
        b_idx = np.asarray([b for _, b, _ in layer], dtype=np.int64)
        swaps = np.asarray([s for _, _, s in layer], dtype=np.uint8)
        ra = ctx.rng.integers(
            0, ctx.modulus, size=len(layer), dtype=np.uint64
        )
        rbv = ctx.rng.integers(
            0, ctx.modulus, size=len(layer), dtype=np.uint64
        )
        ua, ub = bob[a_idx], bob[b_idx]
        m0 = np.concatenate(
            [
                words_to_le_bytes((ua - ra) & mask, rb),
                words_to_le_bytes((ub - rbv) & mask, rb),
            ],
            axis=1,
        )
        m1 = np.concatenate(
            [
                words_to_le_bytes((ub - ra) & mask, rb),
                words_to_le_bytes((ua - rbv) & mask, rb),
            ],
            axis=1,
        )
        bob[a_idx] = ra
        bob[b_idx] = rbv
        segments.append(("switch", a_idx, b_idx, swaps, m0, m1))


def _replay_segments(
    ctx: Context,
    alice: np.ndarray,
    segments: List[Tuple],
    messages: List[np.ndarray],
) -> None:
    """Apply Alice's post-OT updates segment by segment: switch layers
    vectorise (disjoint wire pairs); the replication pass is a sequential
    left-to-right scan by construction."""
    mask = ctx.mask
    rb = _ring_bytes(ctx)
    for seg, msg in zip(segments, messages):
        if seg[0] == "switch":
            _, a_idx, b_idx, swaps, _, _ = seg
            v0 = le_bytes_to_words(msg[:, :rb])
            v1 = le_bytes_to_words(msg[:, rb:])
            xa, xb = alice[a_idx], alice[b_idx]
            sw = swaps.astype(bool)
            alice[a_idx] = (np.where(sw, xb, xa) + v0) & mask
            alice[b_idx] = (np.where(sw, xa, xb) + v1) & mask
        else:
            _, copy_bits, _, _ = seg
            vals = le_bytes_to_words(msg)
            imask = int(mask)
            for i in range(1, len(alice)):
                prev = int(alice[i - 1])
                keep = int(alice[i])
                alice[i] = (
                    (prev if copy_bits[i] else keep) + int(vals[i - 1])
                ) & imask


def _apply_switch_network(
    ctx: Context,
    ot,
    networks: List[List[List[Tuple[int, int, bool]]]],
    replication_after_first: Sequence[bool],
    values: SharedVector,
) -> SharedVector:
    """Run one or two Benes networks with an optional replication pass in
    between, batching every OT into one extension call."""
    alice = values.alice.astype(np.uint64).copy()
    bob = values.bob.astype(np.uint64).copy()
    mask = ctx.mask
    rb = _ring_bytes(ctx)

    segments: List[Tuple] = []
    _stage_network(ctx, networks[0], bob, segments)
    if replication_after_first and len(bob) > 1:
        n = len(bob)
        r = ctx.rng.integers(0, ctx.modulus, size=n - 1, dtype=np.uint64)
        # Position i's "copy" message offers its left neighbour's
        # post-pass share, which is r[i-2] for i >= 2 (already refreshed
        # by the previous gate) and the original share for i = 1.
        prev = np.concatenate([bob[:1], r[:-1]])
        m0 = words_to_le_bytes((bob[1:] - r) & mask, rb)
        m1 = words_to_le_bytes((prev - r) & mask, rb)
        bob[1:] = r
        segments.append(
            ("copy", np.asarray(replication_after_first, dtype=bool), m0, m1)
        )
    if len(networks) > 1:
        _stage_network(ctx, networks[1], bob, segments)

    with ctx.section("switches"):
        messages = ot.transfer_segments(
            [
                (seg[-2], seg[-1], seg[3] if seg[0] == "switch" else seg[1][1:])
                for seg in segments
            ]
        )
    _replay_segments(ctx, alice, segments, messages)
    return SharedVector(alice, bob, ctx.modulus)
