"""High-level vectorised secure operations.

The oblivious relational operators (Section 6) are written against this
engine rather than raw primitives.  Every method is one constant-round
batched protocol:

* REAL mode garbles the circuit templates of :mod:`repro.mpc.gadgets`
  once per vector element, batching all of Alice's input-label OTs.
* SIMULATED mode computes the identical functionality with numpy and
  charges the identical bytes via :func:`charge_garbled_batch`.

Output shares are always *fresh*: Alice's share is the circuit output
(masked with Bob's random ``r``), Bob's share is ``-r`` — the ABY-style
Yao-to-arithmetic conversion described in Section 5.2.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.trace import ExecutionTrace
    from .circuits.circuit import Circuit

import numpy as np

from ..leakage import leaks
from . import gadgets
from .batch import bits_to_words, words_to_bits, words_to_le_bytes
from .batch import le_bytes_to_words
from .context import ALICE, BOB, Context, Mode
from .ot import make_ot
from .sharing import (
    SharedVector,
    as_ring_column,
    reveal_vector,
    share_vector,
)
from .transcript import other_party
from .yao import charge_garbled_batch, charge_ot, run_garbled_batch

__all__ = ["Engine"]


class Engine:
    """Batched secure vector operations over one protocol context."""

    def __init__(
        self,
        ctx: Context,
        ot_group_bits: int = 2048,
        tracer: Optional["ExecutionTrace"] = None,
        exec_policy: str = "program",
    ) -> None:
        self.ctx = ctx
        #: Base-OT group size, kept for cost estimation against this
        #: engine's actual configuration.
        self.ot_group_bits = ot_group_bits
        #: Join back-end override ("yannakakis" | "linear" | "auto").
        #: ``None`` defers to the query's own setting; when set, every
        #: query run on this engine is routed under this policy.  See
        #: :data:`repro.core.semijoin.BACKENDS` and docs/BACKENDS.md.
        self.backend: Optional[str] = None
        self.ot = make_ot(ctx, ot_group_bits)
        # A second extension instance for OTs in the reverse direction
        # (Bob choosing) — used by the Gilboa multiplication's second
        # cross term; runs under swapped protocol roles.
        self._ot_rev = make_ot(ctx, ot_group_bits)
        #: Optional :class:`repro.exec.ExecutionTrace` that the operator
        #: scheduler and composition circuits record per-node costs into.
        self.tracer = tracer
        #: Dispatch policy for plans executed through :mod:`repro.exec`
        #: ("program" preserves legacy message order byte-for-byte,
        #: "stages" batches independent DAG nodes stage by stage).
        self.exec_policy = exec_policy
        #: Cooperative-scheduling hook: when set, the exec scheduler
        #: calls it with each :class:`~repro.exec.ir.Step` before
        #: dispatching it.  The multi-tenant serving layer
        #: (:mod:`repro.serve`) uses this as the yield point at which a
        #: session hands control back to the service coordinator; the
        #: hook must not touch the context or transcript, so enabling
        #: it leaves the run's messages byte-identical.
        self.yield_hook: Optional[Callable[[object], None]] = None

    def _gadget(
        self, builder: Callable[..., "Circuit"], *shape: int
    ) -> "Circuit":
        """Fetch a circuit template through the run-scoped cache."""
        return self.ctx.cache.circuit(builder, *shape)

    # -- sharing ----------------------------------------------------------

    def share(
        self, owner: str, values: Sequence[int] | np.ndarray,
        label: str = "share",
    ) -> SharedVector:
        return share_vector(self.ctx, owner, values, label)

    @leaks("opened:result")
    def reveal(self, sv: SharedVector, to: str = ALICE,
               label: str = "reveal") -> np.ndarray:
        return reveal_vector(self.ctx, sv, to, label)

    def zeros(self, n: int) -> SharedVector:
        return SharedVector.zeros(n, self.ctx.modulus)

    # -- column-level entry points ----------------------------------------
    #
    # The oblivious phases marshal whole relation columns at once: one
    # validated ``(n,)`` uint64 array in, one SharedVector out, one
    # transcript charge per call.  These are thin, shape-checked fronts
    # over the batched primitives — no per-tuple calls anywhere.

    def share_column(
        self, owner: str, column: Sequence[int] | np.ndarray,
        label: str = "share",
    ) -> SharedVector:
        """``owner`` secret-shares one ``(n,)`` ring column (one send)."""
        col = as_ring_column(column, self.ctx.modulus)
        return share_vector(self.ctx, owner, col, label)

    @leaks("opened:result")
    def reconstruct_column(
        self, sv: SharedVector, to: str = ALICE, label: str = "reveal"
    ) -> np.ndarray:
        """Reveal one shared column to ``to`` (one send of the
        complementary share); returns the ``(n,)`` cleartext array."""
        return reveal_vector(self.ctx, sv, to, label)

    def select_alice_plain(
        self,
        mask: Sequence[int] | np.ndarray,
        x: SharedVector,
        y: SharedVector,
        label: str = "select",
    ) -> SharedVector:
        """Columnwise oblivious select: shares of ``x_i`` where Alice's
        plain ``mask_i`` is 1, else ``y_i`` — computed as
        ``y + mask * (x - y)`` with a single Gilboa batch."""
        m = as_ring_column(mask, self.ctx.modulus)
        if not np.isin(m, (0, 1)).all():
            raise ValueError("selection mask must be 0/1-valued")
        return y + self.mul_alice_plain(m, x - y, label=label)

    # -- element-wise products ---------------------------------------------
    #
    # Arithmetic products use Gilboa's OT-based multiplication (the
    # A-mult of the ABY framework underlying the paper's implementation):
    # one OT per bit of the chosen factor, ~50x cheaper than a garbled
    # 32-bit multiplier.  ``via="gc"`` keeps the garbled-circuit path for
    # the ablation benchmark.

    def _gilboa_cross(
        self, bits_owner: str, u: np.ndarray, v: np.ndarray,
        label: str,
    ) -> SharedVector:
        """Fresh shares of ``u_i * v_i`` where ``bits_owner`` holds ``u``
        and the other party holds ``v``: per bit ``i`` of ``u``, one OT
        of ``(r, r + (v << i))`` selected by that bit.

        All ``n * ell`` pairs are staged as one byte matrix and the
        received shares reassembled with vectorised byte packing — the
        scalar original is kept in :mod:`repro.mpc._reference`."""
        ctx = self.ctx
        ell = ctx.params.ell
        n = len(u)
        mask = ctx.mask
        rb = (ell + 7) // 8
        reverse = bits_owner == BOB
        ot = self._ot_rev if reverse else self.ot
        with ctx.section(label):
            if ctx.mode == Mode.SIMULATED:
                if reverse:
                    with ctx.swapped_roles():
                        charge_ot(ctx, ot, n * ell, 2 * rb * n * ell)
                else:
                    charge_ot(ctx, ot, n * ell, 2 * rb * n * ell)
                prod = (
                    u.astype(np.uint64) * v.astype(np.uint64)
                ) & mask
                return self._fresh(prod)
            r = ctx.rng.integers(
                0, ctx.modulus, size=(n, ell), dtype=np.uint64
            )
            shifted = (
                v.astype(np.uint64)[:, None]
                << np.arange(ell, dtype=np.uint64)[None, :]
            )
            m0 = words_to_le_bytes(r.reshape(-1), rb)
            m1 = words_to_le_bytes(((r + shifted) & mask).reshape(-1), rb)
            choices = words_to_bits(u.astype(np.uint64), ell).reshape(-1)
            if reverse:
                with ctx.swapped_roles():
                    got = ot.transfer_matrix(m0, m1, choices)
            else:
                got = ot.transfer_matrix(m0, m1, choices)
            recv = le_bytes_to_words(got).reshape(n, ell).sum(
                axis=1, dtype=np.uint64
            ) & mask
            sender_share = (-r.sum(axis=1, dtype=np.uint64)) & mask
            if reverse:
                return SharedVector(sender_share, recv, ctx.modulus)
            return SharedVector(recv, sender_share, ctx.modulus)

    def mul_shared(self, x: SharedVector, y: SharedVector,
                   label: str = "mul", via: str = "ot") -> SharedVector:
        """``z_i = x_i * y_i`` with both factors secret-shared.

        ``(x1+x2)(y1+y2) = x1*y1 + x2*y2 + x1*y2 + x2*y1``: the first two
        terms are local, the cross terms each take one Gilboa OT batch.
        """
        if len(x) != len(y):
            raise ValueError("vector length mismatch")
        if via == "gc":
            return self._mul_shared_gc(x, y, label)
        ctx = self.ctx
        mask = ctx.mask
        with ctx.section(label):
            cross1 = self._gilboa_cross(ALICE, x.alice, y.bob, "cross_ab")
            cross2 = self._gilboa_cross(BOB, x.bob, y.alice, "cross_ba")
        local = SharedVector(
            (x.alice * y.alice) & mask,
            (x.bob * y.bob) & mask,
            ctx.modulus,
        )
        return local + cross1 + cross2

    def _mul_shared_gc(self, x: SharedVector, y: SharedVector,
                       label: str) -> SharedVector:
        """Garbled-circuit multiplication (ablation reference)."""
        ell = self.ctx.params.ell
        circuit = self._gadget(gadgets.mul_shared_circuit, ell)
        return self._run_masked(
            circuit,
            label,
            n=len(x),
            alice_words=[x.alice, y.alice],
            bob_words=[x.bob, y.bob],
            semantics=lambda: (x.reconstruct() * y.reconstruct()),
        )

    def mul_alice_plain(self, plain: Sequence[int] | np.ndarray, y: SharedVector,
                        label: str = "mul_plain") -> SharedVector:
        """``z_i = a_i * y_i`` where Alice knows ``a`` in the clear:
        ``a*y1`` is local to Alice, ``a*y2`` is one Gilboa batch."""
        a = np.asarray(plain, dtype=np.uint64) & self.ctx.mask
        if len(a) != len(y):
            raise ValueError("vector length mismatch")
        ctx = self.ctx
        with ctx.section(label):
            cross = self._gilboa_cross(ALICE, a, y.bob, "cross")
        local = SharedVector(
            (a * y.alice) & ctx.mask,
            np.zeros(len(y), dtype=np.uint64),
            ctx.modulus,
        )
        return local + cross

    def indicator_nonzero(self, x: SharedVector,
                          label: str = "nonzero") -> SharedVector:
        """``z_i = Ind(x_i != 0)`` as shared ring elements."""
        ell = self.ctx.params.ell
        circuit = self._gadget(gadgets.nonzero_circuit, ell)
        return self._run_masked(
            circuit,
            label,
            n=len(x),
            alice_words=[x.alice],
            bob_words=[x.bob],
            semantics=lambda: (x.reconstruct() != 0).astype(np.uint64),
        )

    # -- the Section 6.1 merge-gate chains ---------------------------------

    def merge_aggregate_sum(
        self,
        same_as_next: Sequence[bool],
        v: SharedVector,
        label: str = "merge_sum",
    ) -> SharedVector:
        """The oblivious aggregation chain: tuples are sorted by group key
        (Alice-local); ``same_as_next[i]`` says tuple ``i`` and ``i+1``
        share the key.  Output position ``i`` holds the group's
        +-aggregate iff ``i`` is the group's last member, else 0."""
        n = len(v)
        if n == 0:
            return self.zeros(0)
        if len(same_as_next) != n - 1:
            raise ValueError("need n-1 boundary indicators")
        ell = self.ctx.params.ell
        ctx = self.ctx
        ind = np.asarray(same_as_next, dtype=bool)
        with ctx.section(label):
            if ctx.mode == Mode.SIMULATED:
                self._charge_chain(gadgets.merge_sum_circuit, n)
                plain = v.reconstruct()
                out = self._segment_last_sums(ind, plain)
                return self._fresh(out)
            circuit = self._gadget(gadgets.merge_sum_circuit, ell, n)
            r = ctx.random_ring_vector(n)
            alice_bits = np.concatenate(
                [ind.astype(np.uint8), words_to_bits(v.alice, ell).reshape(-1)]
            )
            bob_bits = np.concatenate(
                [
                    words_to_bits(v.bob, ell).reshape(-1),
                    words_to_bits(r, ell).reshape(-1),
                ]
            )
            outs = run_garbled_batch(
                ctx, self.ot, circuit, [alice_bits], [bob_bits]
            )[0]
            words = bits_to_words(
                np.asarray(outs, dtype=np.uint8).reshape(n, ell)
            )
            return SharedVector(words, (-r) & ctx.mask, ctx.modulus)

    def merge_aggregate_or(
        self,
        same_as_next: Sequence[bool],
        v: SharedVector,
        label: str = "merge_or",
    ) -> SharedVector:
        """The chain with OR in place of the semiring addition — used by
        ``pi^1``.  ``v`` holds shared 0/1 indicators."""
        n = len(v)
        if n == 0:
            return self.zeros(0)
        if len(same_as_next) != n - 1:
            raise ValueError("need n-1 boundary indicators")
        ell = self.ctx.params.ell
        ctx = self.ctx
        ind = np.asarray(same_as_next, dtype=bool)
        with ctx.section(label):
            if ctx.mode == Mode.SIMULATED:
                self._charge_chain(gadgets.merge_or_circuit, n)
                plain = (v.reconstruct() != 0).astype(np.uint64)
                out = self._segment_last_sums(ind, plain)
                return self._fresh((out != 0).astype(np.uint64))
            circuit = self._gadget(gadgets.merge_or_circuit, ell, n)
            r = ctx.random_ring_vector(n)
            alice_bits = np.concatenate(
                [ind.astype(np.uint8), (v.alice & np.uint64(1)).astype(np.uint8)]
            )
            bob_bits = np.concatenate(
                [
                    (v.bob & np.uint64(1)).astype(np.uint8),
                    words_to_bits(r, ell).reshape(-1),
                ]
            )
            outs = run_garbled_batch(
                ctx, self.ot, circuit, [alice_bits], [bob_bits]
            )[0]
            words = bits_to_words(
                np.asarray(outs, dtype=np.uint8).reshape(n, ell)
            )
            return SharedVector(words, (-r) & ctx.mask, ctx.modulus)

    # -- Section 6.3 helpers -------------------------------------------------

    def product_across(self, factors: Sequence[SharedVector],
                       label: str = "prod") -> SharedVector:
        """``z_i = prod_k factors[k][i]`` — one annotation product per
        join result (Section 6.3, step 3): ``k - 1`` chained Gilboa
        multiplications (the chain length is the query size, so the
        round count stays query-dependent only)."""
        k = len(factors)
        if k == 0:
            raise ValueError("need at least one factor")
        n = len(factors[0])
        if any(len(f) != n for f in factors):
            raise ValueError("vector length mismatch")
        with self.ctx.section(label):
            acc = factors[0]
            for i, f in enumerate(factors[1:], start=1):
                acc = self.mul_shared(acc, f, label=f"mul{i}")
        return acc

    @leaks("support:result")
    def reveal_nonzero_flags(
        self,
        v: SharedVector,
        payload_bits_list: Optional[
            Union[List[List[int]], np.ndarray]
        ] = None,
        label: str = "reveal_nonzero",
    ) -> Tuple[np.ndarray, Optional[Union[List[List[int]], np.ndarray]]]:
        """Section 6.3 step 1: for each shared annotation, reveal to Alice
        whether it is nonzero, and — when ``payload_bits_list`` carries
        Bob's encoded tuples — the tuple payload for nonzero entries.

        ``payload_bits_list`` is either the legacy list-of-bit-lists or a
        ``(n, pbits)`` uint8 matrix (the columnar fast path); the return
        mirrors the input form.  Returns ``(flags, payloads)`` where
        ``payloads`` is ``None`` when no payload was supplied.
        """
        n = len(v)
        ell = self.ctx.params.ell
        ctx = self.ctx
        is_matrix = isinstance(payload_bits_list, np.ndarray)
        mat: Optional[np.ndarray] = None
        if payload_bits_list is not None:
            if is_matrix:
                mat = np.asarray(payload_bits_list, dtype=np.uint8)
                if mat.ndim != 2 or len(mat) != n:
                    raise ValueError(
                        "payload matrix must be (n, pbits)"
                    )
                pbits = mat.shape[1]
            else:
                if len(payload_bits_list) != n:
                    raise ValueError("one payload per annotation required")
                pbits = len(payload_bits_list[0]) if n else 0
                if any(len(p) != pbits for p in payload_bits_list):
                    raise ValueError("payloads must be fixed-width")
        else:
            pbits = 0
        with ctx.section(label):
            if ctx.mode == Mode.SIMULATED:
                template = self._gadget(gadgets.reveal_tuple_circuit, ell, pbits)
                charge_garbled_batch(ctx, self.ot, template, n)
                plain = v.reconstruct()
                flags = (plain != 0).astype(bool)
                if payload_bits_list is None:
                    return flags, None
                if mat is not None:
                    out = mat.copy()
                    out[~flags] = 0
                    return flags, out
                payloads = [
                    payload_bits_list[i] if flags[i] else [0] * pbits
                    for i in range(n)
                ]
                return flags, payloads
            template = self._gadget(gadgets.reveal_tuple_circuit, ell, pbits)
            alice_bits = words_to_bits(v.alice, ell)
            bob_bits = words_to_bits(v.bob, ell)
            if pbits:
                pb = (
                    mat
                    if mat is not None
                    else np.asarray(payload_bits_list, dtype=np.uint8)
                )
                bob_bits = np.concatenate([bob_bits, pb], axis=1)
            outs = run_garbled_batch(
                ctx, self.ot, template, alice_bits, bob_bits
            )
            flags = np.asarray([o[0] for o in outs], dtype=bool)
            if payload_bits_list is None:
                return flags, None
            if mat is not None:
                return flags, np.asarray(
                    [o[1:] for o in outs], dtype=np.uint8
                ).reshape(n, pbits)
            return flags, [o[1:] for o in outs]

    # -- division (query composition, Section 7) ----------------------------

    @leaks("opened:result")
    def divide_reveal(self, x: SharedVector, y: SharedVector,
                      label: str = "div") -> np.ndarray:
        """``x_i // y_i`` revealed to Alice (the final step of an
        avg/ratio composition; the quotient is part of the query result).
        Division by zero yields the all-ones word."""
        if len(x) != len(y):
            raise ValueError("vector length mismatch")
        n = len(x)
        ell = self.ctx.params.ell
        ctx = self.ctx
        circuit = self._gadget(gadgets.div_reveal_circuit, ell)
        with ctx.section(label):
            if ctx.mode == Mode.SIMULATED:
                charge_garbled_batch(ctx, self.ot, circuit, n)
                xs = x.reconstruct().astype(np.uint64)
                ys = y.reconstruct().astype(np.uint64)
                out = np.full(n, self.ctx.modulus - 1, dtype=np.uint64)
                nz = ys != 0
                out[nz] = xs[nz] // ys[nz]
                return out
            alice_bits = np.concatenate(
                [words_to_bits(x.alice, ell), words_to_bits(y.alice, ell)],
                axis=1,
            )
            bob_bits = np.concatenate(
                [words_to_bits(x.bob, ell), words_to_bits(y.bob, ell)],
                axis=1,
            )
            outs = run_garbled_batch(
                ctx, self.ot, circuit, alice_bits, bob_bits
            )
            return bits_to_words(np.asarray(outs, dtype=np.uint8))

    # -- internals -----------------------------------------------------------

    def _charge_chain(
        self, make_circuit: Callable[[int], "Circuit"], n: int
    ) -> None:
        """Charge a length-``n`` merge chain exactly: the chain circuit is
        structurally linear in ``n``, so its gate/input counts extrapolate
        exactly from the n=2 and n=3 template builds."""
        from .circuits.garbling import LABEL_BYTES, ROWS_PER_AND

        ctx, ot = self.ctx, self.ot
        ell = ctx.params.ell
        if n <= 3:
            charge_garbled_batch(ctx, ot, self._gadget(make_circuit, ell, n), 1)
            return
        c2 = self._gadget(make_circuit, ell, 2)
        c3 = self._gadget(make_circuit, ell, 3)

        def extrapolate(f2: int, f3: int) -> int:
            return f2 + (n - 2) * (f3 - f2)

        ands = extrapolate(c2.and_count, c3.and_count)
        bob_in = extrapolate(
            len(c2.bob_inputs) + len(c2.const_wires),
            len(c3.bob_inputs) + len(c3.const_wires),
        )
        alice_in = extrapolate(len(c2.alice_inputs), len(c3.alice_inputs))
        outs = extrapolate(len(c2.outputs), len(c3.outputs))
        ctx.send(BOB, ROWS_PER_AND * LABEL_BYTES * ands, "gc/tables")
        ctx.send(BOB, LABEL_BYTES * bob_in, "gc/bob_labels")
        from .yao import charge_ot

        with ctx.section("gc/alice_labels"):
            charge_ot(ctx, ot, alice_in, 2 * LABEL_BYTES * alice_in)
        ctx.send(BOB, (outs + 7) // 8, "gc/decode")

    def _fresh(self, plain: np.ndarray) -> SharedVector:
        a = self.ctx.random_ring_vector(len(plain))
        return SharedVector(
            a, (plain.astype(np.uint64) - a) & self.ctx.mask,
            self.ctx.modulus,
        )

    @staticmethod
    def _segment_last_sums(ind: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Vectorised merge-chain semantics: position i gets its group's
        (wrap-around) sum iff it is the last of its group, else 0."""
        n = len(values)
        out = np.zeros(n, dtype=np.uint64)
        if n == 0:
            return out
        ends = np.flatnonzero(~ind) if n > 1 else np.asarray([], dtype=int)
        ends = np.concatenate([ends, [n - 1]]).astype(np.int64)
        csum = np.cumsum(values.astype(np.uint64), dtype=np.uint64)
        seg_totals = np.diff(np.concatenate([[np.uint64(0)], csum[ends]]))
        out[ends] = seg_totals
        return out

    def _run_masked(
        self,
        circuit: "Circuit",
        label: str,
        n: int,
        alice_words: Sequence[np.ndarray],
        bob_words: Sequence[np.ndarray],
        semantics: Callable[[], np.ndarray],
    ) -> SharedVector:
        """Run one masked-output circuit per element: Bob's inputs are his
        words plus a fresh mask ``r``; Alice's share is the output."""
        ctx = self.ctx
        ell = ctx.params.ell
        with ctx.section(label):
            if n == 0:
                return self.zeros(0)
            if ctx.mode == Mode.SIMULATED:
                charge_garbled_batch(ctx, self.ot, circuit, n)
                return self._fresh(np.asarray(semantics()) & ctx.mask)
            r = ctx.random_ring_vector(n)
            alice_bits = np.concatenate(
                [words_to_bits(w, ell) for w in alice_words], axis=1
            )
            bob_bits = np.concatenate(
                [words_to_bits(w, ell) for w in bob_words]
                + [words_to_bits(r, ell)],
                axis=1,
            )
            outs = run_garbled_batch(
                ctx, self.ot, circuit, alice_bits, bob_bits
            )
            out_words = bits_to_words(np.asarray(outs, dtype=np.uint8))
            return SharedVector(out_words, (-r) & ctx.mask, ctx.modulus)
