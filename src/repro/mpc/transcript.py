"""Communication transcript: byte- and round-metering for 2PC protocols.

Every message a protocol sends — real ciphertext in REAL mode, or the
*accounted* bytes of a simulated primitive in SIMULATED mode — is recorded
here.  The transcript is what the experiments report as "communication
cost", and its independence from private inputs is what the obliviousness
tests assert.

Rounds are counted as direction changes within a protocol section: a run
of consecutive messages in one direction forms (part of) a round, matching
how round complexity is counted in the 2PC literature.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Message",
    "Transcript",
    "TranscriptState",
    "ALICE",
    "BOB",
    "other_party",
]

#: Party identifiers.  Alice is, per the paper's convention, the designated
#: receiver of the query results.
ALICE = "alice"
BOB = "bob"


def other_party(party: str) -> str:
    if party == ALICE:
        return BOB
    if party == BOB:
        return ALICE
    raise ValueError(f"unknown party {party!r}")


@dataclass
class Message:
    """One metered message: who sent it, how many bytes, and which protocol
    section it belongs to."""

    sender: str
    n_bytes: int
    label: str


@dataclass(frozen=True)
class TranscriptState:
    """A transcript position for checkpoint/rollback (the session
    layer's node-granular retries truncate back to one of these)."""

    n_messages: int
    last_sender: Optional[str]
    rounds: int


class Transcript:
    """Accumulates all messages of a protocol run.

    ``section(label)`` pushes a label onto a stack so costs can be
    attributed to sub-protocols (e.g. ``"semijoin/psi/ot"``).
    """

    def __init__(self) -> None:
        self.messages: List[Message] = []
        self._labels: List[str] = []
        self._last_sender: Optional[str] = None
        self._rounds: int = 0

    # -- recording ------------------------------------------------------

    def send(self, sender: str, n_bytes: int, label: str = "") -> None:
        """Record ``n_bytes`` sent by ``sender``."""
        if sender not in (ALICE, BOB):
            raise ValueError(f"unknown party {sender!r}")
        if n_bytes < 0:
            raise ValueError("cannot send a negative number of bytes")
        full = "/".join(self._labels + ([label] if label else []))
        self.messages.append(Message(sender, int(n_bytes), full))
        if sender != self._last_sender:
            self._rounds += 1
            self._last_sender = sender

    # -- checkpointing --------------------------------------------------

    def state(self) -> TranscriptState:
        """The current position, for a later :meth:`rollback`."""
        return TranscriptState(
            n_messages=len(self.messages),
            last_sender=self._last_sender,
            rounds=self._rounds,
        )

    def rollback(self, state: TranscriptState) -> None:
        """Truncate back to a previously captured position: messages
        recorded since are discarded and the round counter rewound, so
        a retried node re-meters from a clean slate."""
        if state.n_messages > len(self.messages):
            raise ValueError(
                "cannot roll a transcript forward "
                f"({state.n_messages} > {len(self.messages)} messages)"
            )
        del self.messages[state.n_messages:]
        self._last_sender = state.last_sender
        self._rounds = state.rounds

    @contextmanager
    def section(self, label: str) -> Iterator[None]:
        self._labels.append(label)
        try:
            yield
        finally:
            self._labels.pop()

    # -- reporting ------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(m.n_bytes for m in self.messages)

    @property
    def rounds(self) -> int:
        return self._rounds

    def bytes_from(self, sender: str) -> int:
        return sum(m.n_bytes for m in self.messages if m.sender == sender)

    def bytes_by_section(self, depth: int = 1) -> Dict[str, int]:
        """Total bytes keyed by the first ``depth`` components of each
        message's section path."""
        out: Dict[str, int] = {}
        for m in self.messages:
            key = "/".join(m.label.split("/")[:depth]) if m.label else ""
            out[key] = out.get(key, 0) + m.n_bytes
        return out

    def rounds_by_section(self, depth: int = 1) -> Dict[str, int]:
        """Round counts keyed like :meth:`bytes_by_section`: per section,
        the number of direction changes among that section's messages
        (interleaved sections each count their own sub-sequence)."""
        rounds: Dict[str, int] = {}
        last: Dict[str, str] = {}
        for m in self.messages:
            key = "/".join(m.label.split("/")[:depth]) if m.label else ""
            if m.sender != last.get(key):
                rounds[key] = rounds.get(key, 0) + 1
                last[key] = m.sender
        return rounds

    @staticmethod
    def slice_rounds(messages: List[Message]) -> int:
        """Rounds attributable to a contiguous message slice: direction
        changes within the slice, the first message opening a round."""
        rounds = 0
        last: Optional[str] = None
        for m in messages:
            if m.sender != last:
                rounds += 1
                last = m.sender
        return rounds

    def summary(self) -> str:
        lines = [
            f"total: {self.total_bytes:,} bytes in {len(self.messages)} "
            f"messages, {self.rounds} rounds"
        ]
        for key, b in sorted(
            self.bytes_by_section().items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {key or '(unlabelled)'}: {b:,} bytes")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """A serialisable summary (for dashboards / offline analysis)."""
        return {
            "total_bytes": self.total_bytes,
            "rounds": self.rounds,
            "messages": len(self.messages),
            "bytes_from": {
                ALICE: self.bytes_from(ALICE),
                BOB: self.bytes_from(BOB),
            },
            "by_section": self.bytes_by_section(),
            "rounds_by_section": self.rounds_by_section(),
        }

    def fingerprint(self) -> Tuple[Tuple[str, int, str], ...]:
        """A hashable view of (sender, size, label) for every message.

        Obliviousness tests assert that two runs on different private
        inputs of the same public shape produce identical fingerprints —
        i.e. the *observable* traffic pattern is input-independent.
        """
        return tuple((m.sender, m.n_bytes, m.label) for m in self.messages)
