"""Cuckoo hashing for the PSI protocol (Section 5.3).

Alice maps her ``M`` items into ``B = 1.27 * M`` bins with 3 hash
functions so that each bin holds at most one item (failure probability
below ``2^-sigma``; on failure we re-draw hash seeds, which the protocol
permits since seeds are chosen before any data-dependent interaction).
Bob hashes each of his items into *all three* candidate bins ("simple
hashing"), padding every bin to a public maximum load.

Items are serialised with a canonical encoding shared by both parties and
compared inside circuits via short fingerprints; dummy slots draw from
party-reserved fingerprint spaces so they can never collide with real
items or with the other party's dummies.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "encode_item",
    "fingerprint",
    "CuckooTable",
    "simple_hash_bins",
    "max_bin_load",
    "num_bins",
    "FINGERPRINT_BITS",
    "DUMMY_ALICE",
    "DUMMY_BOB",
]

#: Fingerprints are 64-bit; the top two bits partition the space into
#: real items (00/01), Alice dummies (10) and Bob dummies (11).
FINGERPRINT_BITS = 64
_REAL_MASK = (1 << 62) - 1
DUMMY_ALICE = 2 << 62
DUMMY_BOB = 3 << 62


def encode_item(item: Hashable) -> bytes:
    """Canonical byte encoding, identical on both parties."""
    if isinstance(item, bool):
        return b"b" + bytes([item])
    if isinstance(item, int):
        # Variable length with a length prefix: injective for all ints.
        length = max(1, (item.bit_length() + 8) // 8)
        return (
            b"i"
            + length.to_bytes(4, "little")
            + item.to_bytes(length, "little", signed=True)
        )
    if isinstance(item, str):
        return b"s" + item.encode("utf-8")
    if isinstance(item, bytes):
        return b"y" + item
    if isinstance(item, tuple):
        parts = [encode_item(x) for x in item]
        header = b"t" + len(parts).to_bytes(4, "little")
        return header + b"".join(
            len(p).to_bytes(4, "little") + p for p in parts
        )
    raise TypeError(f"cannot encode {type(item).__name__} as a PSI item")


def _hash_to_bin(seed: bytes, item_bytes: bytes, n_bins: int) -> int:
    digest = hashlib.blake2b(item_bytes, digest_size=8, key=seed).digest()
    return int.from_bytes(digest, "little") % n_bins


def fingerprint(item: Hashable, salt: bytes) -> int:
    """62-bit item fingerprint in the "real" subspace.  A collision
    between distinct items is a correctness failure with probability
    ``< M*N / 2^62``, within the protocol's ``2^-sigma`` failure budget."""
    digest = hashlib.blake2b(
        encode_item(item), digest_size=8, key=salt
    ).digest()
    return int.from_bytes(digest, "little") & _REAL_MASK


def num_bins(n_items: int, expansion: float = 1.27) -> int:
    """Cuckoo table size ``B`` (footnote 3: B = 1.27 M suffices)."""
    return max(1, math.ceil(n_items * expansion))


def max_bin_load(
    n_items: int, n_bins: int, n_hashes: int = 3, sigma: int = 40
) -> int:
    """Public bound ``L`` on Bob's simple-hash bin load such that
    ``B * P[Binomial(n_hashes * N, 1/B) > L] < 2^-sigma``.

    Computed with an exact binomial tail (Chernoff would be looser); the
    bound depends only on public sizes, so padding to it leaks nothing.
    """
    if n_items == 0:
        return 1
    from scipy.stats import binom

    n = n_items * n_hashes
    p = 1.0 / n_bins
    target = 2.0 ** (-sigma) / n_bins
    # Smallest L with P[Bin(n,p) > L] < target.  scipy's survival function
    # loses precision below ~1e-15, so scan upward with a log-space
    # Chernoff bound once sf() underflows.
    isf = binom.isf(max(target, 1e-14), n, p)
    load = (int(isf) if math.isfinite(isf) else 0) + 1
    if target < 1e-14:
        mean = n * p
        # Chernoff: P[X > L] <= exp(-mean) * (e*mean/L)^L — valid (and
        # decreasing in L) only for L > mean, so clamp the scan start:
        # from below the mean the bound is vacuous and the first
        # spuriously-small log_tail would end the scan at an L that the
        # binomial tail exceeds by orders of magnitude.
        load = max(load, math.ceil(mean) + 1)
        while load <= n:
            log_tail = -mean + load * (1 + math.log(mean / load))
            if log_tail < math.log(target):
                break
            load += 1
    return min(load, n)


class CuckooTable:
    """Alice's cuckoo hash table: each bin holds at most one item index."""

    def __init__(
        self,
        items: Sequence[Hashable],
        n_bins: Optional[int] = None,
        n_hashes: int = 3,
        seed: int = 0,
        max_relocations: int = 500,
        max_rehashes: int = 32,
    ) -> None:
        unique = list(items)
        if len(set(unique)) != len(unique):
            raise ValueError("cuckoo hashing requires distinct items")
        self.items = unique
        self.n_hashes = n_hashes
        self.n_bins = n_bins if n_bins is not None else num_bins(len(unique))
        if self.n_bins < 1:
            raise ValueError("need at least one bin")
        self._encoded = [encode_item(x) for x in unique]
        rng = np.random.default_rng(seed)
        for attempt in range(max_rehashes):
            self.seeds = [bytes(rng.bytes(16)) for _ in range(n_hashes)]
            if self._try_build(rng, max_relocations):
                return
        raise RuntimeError(
            f"cuckoo hashing failed after {max_rehashes} rehashes "
            f"({len(unique)} items, {self.n_bins} bins)"
        )

    def _try_build(
        self, rng: np.random.Generator, max_relocations: int
    ) -> bool:
        #: bins[i] = item index or -1
        bins = np.full(self.n_bins, -1, dtype=np.int64)
        for idx in range(len(self.items)):
            cur = idx
            for _ in range(max_relocations):
                candidates = self.bins_of_index(cur)
                empty = [b for b in candidates if bins[b] == -1]
                if empty:
                    bins[empty[0]] = cur
                    cur = -1
                    break
                victim_bin = candidates[rng.integers(0, len(candidates))]
                cur, bins[victim_bin] = int(bins[victim_bin]), cur
            if cur != -1:
                return False
        self.bins = bins
        return True

    def bins_of_index(self, idx: int) -> List[int]:
        enc = self._encoded[idx]
        return [
            _hash_to_bin(s, enc, self.n_bins) for s in self.seeds
        ]

    def bins_of_item(self, item: Hashable) -> List[int]:
        enc = encode_item(item)
        return [
            _hash_to_bin(s, enc, self.n_bins) for s in self.seeds
        ]

    def occupancy(self) -> int:
        return int((self.bins >= 0).sum())


def simple_hash_bins(
    items: Sequence[Hashable], seeds: Sequence[bytes], n_bins: int
) -> List[List[int]]:
    """Bob's side: map each item (by index) to its candidate bins.
    Returns ``bins[b] = [item indices hashed to b]`` with duplicates
    within a bin removed (an item whose hash functions collide occupies a
    single slot)."""
    out: List[List[int]] = [[] for _ in range(n_bins)]
    for idx, item in enumerate(items):
        enc = encode_item(item)
        seen = set()
        for s in seeds:
            b = _hash_to_bin(s, enc, n_bins)
            if b not in seen:
                out[b].append(idx)
                seen.add(b)
    return out
