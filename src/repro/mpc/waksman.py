"""Beneš switching networks for oblivious permutation.

The OEP protocol of Mohassel & Sadeghian routes values through a network
of 2x2 switches whose settings only the permutation holder (Alice) knows.
This module builds the network *and* its routing for an arbitrary
permutation: sizes are padded to the next power of two (padded slots are
routed identically), giving ``2*log2(n) - 1`` layers and about
``n*log2(n)`` switches.

The network splits into two independent parts:

* :func:`benes_topology` — the wire-pair structure of every layer.  It
  depends only on the size ``n``, so it is memoised (both here and in
  the per-run :class:`~repro.mpc.runcache.RunCache`): a query that runs
  hundreds of OEPs over same-sized vectors builds each shape once.
* :func:`benes_routing` — the per-permutation switch settings, computed
  by the classic looping/2-colouring argument: the two inputs of every
  input-layer switch must enter different sub-networks, and the two
  inputs targeting the same output-layer switch must arrive from
  different sub-networks; walking these constraints around their even
  cycles yields a consistent assignment.

:func:`benes_network` zips the two into the routed-switch format the OEP
protocol consumes.
"""

from __future__ import annotations

import functools
from typing import List, Sequence, Tuple

__all__ = [
    "benes_network",
    "benes_topology",
    "benes_routing",
    "apply_network",
    "switch_count",
    "pad_permutation",
]

#: A switch: (wire_a, wire_b, swap?).  Switches within a layer are disjoint.
Switch = Tuple[int, int, bool]
Layer = List[Switch]

#: A topology layer: the (wire_a, wire_b) pairs without settings.
TopologyLayer = Tuple[Tuple[int, int], ...]


def pad_permutation(perm: Sequence[int]) -> List[int]:
    """Extend a permutation of [n] to the next power of two with identity
    on the padding slots."""
    n = len(perm)
    size = 1
    while size < n:
        size *= 2
    return list(perm) + list(range(n, size))


def _check_size(n: int) -> None:
    if n & (n - 1):
        raise ValueError("Benes network size must be a power of two")


@functools.lru_cache(maxsize=None)
def benes_topology(n: int) -> Tuple[TopologyLayer, ...]:
    """The layers of (wire_a, wire_b) switch pairs of a size-``n`` Beneš
    network — permutation-independent, hence memoised by size.  ``n``
    must be a power of two."""
    _check_size(n)
    return tuple(_topology(list(range(n))))


def _topology(wires: List[int]) -> List[TopologyLayer]:
    n = len(wires)
    if n == 1:
        return []
    if n == 2:
        return [((wires[0], wires[1]),)]
    in_layer = tuple((wires[2 * p], wires[2 * p + 1]) for p in range(n // 2))
    top = _topology([wires[2 * p] for p in range(n // 2)])
    bot = _topology([wires[2 * p + 1] for p in range(n // 2)])
    middle = [top[d] + bot[d] for d in range(len(top))]
    out_layer = tuple((wires[2 * q], wires[2 * q + 1]) for q in range(n // 2))
    return [in_layer] + middle + [out_layer]


def benes_routing(perm: Sequence[int]) -> List[Tuple[bool, ...]]:
    """Per-layer switch settings realising ``wire[perm[i]] <- wire[i]``,
    aligned switch-for-switch with :func:`benes_topology` of the same
    size.  ``perm`` must be a permutation whose length is a power of two
    (use :func:`pad_permutation` first)."""
    n = len(perm)
    _check_size(n)
    if sorted(perm) != list(range(n)):
        raise ValueError("not a permutation")
    return _route_swaps(list(perm))


def _route_swaps(perm: List[int]) -> List[Tuple[bool, ...]]:
    n = len(perm)
    if n == 1:
        return []
    if n == 2:
        return [(perm[0] == 1,)]

    inv = [0] * n
    for i, t in enumerate(perm):
        inv[t] = i

    # 2-colouring: subnet[i] in {0,1} for each input position.
    subnet = [-1] * n
    for start in range(n):
        if subnet[start] != -1:
            continue
        i, colour = start, 0
        while subnet[i] == -1:
            subnet[i] = colour
            # The input landing in the same *output* pair must differ.
            partner_out = inv[perm[i] ^ 1]
            if subnet[partner_out] == -1:
                subnet[partner_out] = colour ^ 1
            # Its *input*-pair partner must differ from it in turn.
            i = partner_out ^ 1
            colour = subnet[partner_out] ^ 1

    in_swaps: List[bool] = []
    top_perm = [0] * (n // 2)
    bot_perm = [0] * (n // 2)
    for p in range(n // 2):
        a, b = 2 * p, 2 * p + 1
        swap = subnet[a] == 1
        in_swaps.append(swap)
        top_in = b if swap else a
        bot_in = a if swap else b
        top_perm[p] = perm[top_in] // 2
        bot_perm[p] = perm[bot_in] // 2

    out_swaps: List[bool] = []
    for q in range(n // 2):
        # The element reaching output switch q from the top subnet is the
        # input with subnet colour 0 whose target lies in output pair q.
        top_elem = next(
            i for i in (inv[2 * q], inv[2 * q + 1]) if subnet[i] == 0
        )
        out_swaps.append(perm[top_elem] == 2 * q + 1)

    top_layers = _route_swaps(top_perm)
    bot_layers = _route_swaps(bot_perm)
    # Merge the parallel sub-networks layer by layer (top switches first,
    # matching the topology's layer order).
    middle = [
        top_layers[d] + bot_layers[d] for d in range(len(top_layers))
    ]
    return [tuple(in_swaps)] + middle + [tuple(out_swaps)]


def benes_network(perm: Sequence[int]) -> List[Layer]:
    """Layers of switches realising ``wire[perm[i]] <- wire[i]``, i.e.
    the value entering on wire ``i`` leaves on wire ``perm[i]``.

    ``perm`` must be a permutation whose length is a power of two (use
    :func:`pad_permutation` first).
    """
    topology = benes_topology(len(perm))
    swaps = benes_routing(perm)
    return [
        [(a, b, s) for (a, b), s in zip(t_layer, s_layer)]
        for t_layer, s_layer in zip(topology, swaps)
    ]


def apply_network(layers: List[Layer], values: Sequence) -> List:
    """Plaintext application (reference semantics for tests)."""
    vals = list(values)
    for layer in layers:
        for a, b, swap in layer:
            if swap:
                vals[a], vals[b] = vals[b], vals[a]
    return vals


@functools.lru_cache(maxsize=None)
def switch_count(n: int) -> int:
    """Number of switches of a padded Benes network on ``n`` inputs —
    the quantity the SIMULATED cost model charges per permutation."""
    size = 1
    while size < max(1, n):
        size *= 2
    if size == 1:
        return 0

    def count(m: int) -> int:
        if m == 1:
            return 0
        if m == 2:
            return 1
        return m + 2 * count(m // 2)

    return count(size)
