"""Cryptographic substrate: secret sharing, garbled circuits, OT, PSI,
OEP, and the two-party protocol runtime (Sections 4 and 5)."""

from .context import ALICE, BOB, Context, Mode
from .engine import Engine
from .oep import oblivious_extended_permutation, oblivious_permutation
from .params import DEFAULT_PARAMS, SecurityParams
from .psi import PsiResult, psi_with_payloads
from .runcache import RunCache
from .sharing import SharedVector, reveal_vector, share_vector
from .transcript import Transcript, other_party

__all__ = [
    "ALICE",
    "BOB",
    "Context",
    "DEFAULT_PARAMS",
    "Engine",
    "Mode",
    "PsiResult",
    "RunCache",
    "SecurityParams",
    "SharedVector",
    "Transcript",
    "oblivious_extended_permutation",
    "oblivious_permutation",
    "other_party",
    "psi_with_payloads",
    "reveal_vector",
    "share_vector",
]
