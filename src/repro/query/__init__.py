"""Query frontend: the join-aggregate query API and the ownership-aware
planner."""

from .builder import BACKEND_POLICIES, JoinAggregateQuery
from .decompose import decompose_by_attribute, run_decomposed
from .planner import choose_plan, plan_cost, route_backends
from .sql import SqlError, compile_sql, parse_sql

__all__ = [
    "BACKEND_POLICIES",
    "JoinAggregateQuery",
    "SqlError",
    "choose_plan",
    "compile_sql",
    "decompose_by_attribute",
    "parse_sql",
    "plan_cost",
    "route_backends",
    "run_decomposed",
]
