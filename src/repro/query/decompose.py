"""Decomposition of non-free-connex queries (Section 8.1, generalised).

An acyclic query can fail the free-connex condition when its output
attributes straddle the join tree (the Q9 situation: grouping by
``s_nationkey`` *and* ``o_year``).  The paper's workaround — which this
module generalises — fixes one offending attribute to each value of a
small public domain: every sub-query drops that attribute from the
``GROUP BY`` and adds a selection for one value, restoring the
free-connex property, and the final result is the union of the
per-value results tagged with the value.

``decompose_by_attribute`` picks the rewrite apart mechanically:

* choose the output attribute to fix (caller-supplied, with a public
  value domain — e.g. a nation key, a category, a year);
* per value, build the sub-query with the PRIVATE selection policy
  (failing tuples become dummies, so every sub-query costs the same and
  the transcript stays value-independent);
* verify each sub-query is free-connex.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.selection import SelectionPolicy, apply_selection
from ..mpc.engine import Engine
from ..relalg.relation import AnnotatedRelation
from ..relalg.semiring import IntegerRing
from .builder import JoinAggregateQuery

__all__ = ["decompose_by_attribute", "run_decomposed"]


def decompose_by_attribute(
    query: JoinAggregateQuery,
    attribute: str,
    domain: Iterable,
) -> List[Tuple[object, JoinAggregateQuery]]:
    """Split ``query`` into one free-connex sub-query per domain value.

    ``attribute`` must be an output attribute of ``query``; ``domain``
    is its public value domain.  Returns ``(value, sub_query)`` pairs;
    raises ``ValueError`` if a sub-query is still not free-connex (fix
    a different attribute, or several).
    """
    if attribute not in query.output:
        raise ValueError(
            f"{attribute!r} is not an output attribute of the query"
        )
    holders = [
        name
        for name, rel in query.relations.items()
        if attribute in rel.attributes
    ]
    if not holders:
        raise ValueError(f"no relation carries {attribute!r}")
    remaining_output = [a for a in query.output if a != attribute]

    out: List[Tuple[object, JoinAggregateQuery]] = []
    for value in domain:
        sub = JoinAggregateQuery(output=list(remaining_output))
        for name, rel in query.relations.items():
            if attribute in rel.attributes:
                rel = apply_selection(
                    rel,
                    lambda row, v=value: row[attribute] == v,
                    SelectionPolicy.PRIVATE,
                )
                rel = _project_out(rel, attribute)
            sub.add_relation(name, rel, query.owners[name])
        if not sub.is_free_connex():
            raise ValueError(
                f"fixing {attribute!r} does not make the query "
                "free-connex; decompose on a different attribute"
            )
        out.append((value, sub))
    return out


def _project_out(
    rel: AnnotatedRelation, attribute: str
) -> AnnotatedRelation:
    keep = [a for a in rel.attributes if a != attribute]
    idx = rel.index_of(keep)
    return AnnotatedRelation(
        tuple(keep),
        [tuple(t[i] for i in idx) for t in rel.tuples],
        rel.annotations,
        rel.semiring,
    )


def run_decomposed(
    engine: Engine,
    query: JoinAggregateQuery,
    attribute: str,
    domain: Iterable,
) -> AnnotatedRelation:
    """Decompose, run every sub-query securely, and reassemble the full
    group-by result with the fixed attribute back in front."""
    parts = decompose_by_attribute(query, attribute, domain)
    ring = IntegerRing(engine.ctx.params.ell)
    rows: List[Tuple] = []
    vals: List[int] = []
    for value, sub in parts:
        result, _ = sub.run_secure(engine)
        for t, v in result:
            rows.append((value,) + t)
            vals.append(v)
    attrs = (attribute,) + tuple(
        a for a in query.output if a != attribute
    )
    return AnnotatedRelation(attrs, rows, vals, ring)
