"""The public query API.

A :class:`JoinAggregateQuery` bundles the relations (each with its
owner), the output attributes, and the annotation semantics, and can be
evaluated three ways:

* ``run_plain``  — plaintext Yannakakis (the non-private baseline);
* ``run_naive``  — plaintext join-then-aggregate (oracle);
* ``run_secure`` — the secure Yannakakis protocol over a 2PC engine.

Example
-------
>>> q = (JoinAggregateQuery(output=["cls"])
...      .add_relation("R1", r1, owner=ALICE)
...      .add_relation("R2", r2, owner=BOB))
>>> result, stats = q.run_secure(engine)
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Dict, Optional, Sequence, Tuple

from ..core.join import ObliviousJoinResult
from ..core.protocol import (
    ProtocolStats,
    secure_yannakakis,
    secure_yannakakis_shared,
)
from ..core.relation import SecureRelation
from ..mpc.context import ALICE
from ..mpc.engine import Engine
from ..relalg.hypergraph import Hypergraph
from ..relalg.join_tree import is_free_connex
from ..relalg.relation import AnnotatedRelation
from ..yannakakis.plain import execute_plan
from ..yannakakis.naive import naive_join_aggregate
from ..yannakakis.plan import YannakakisPlan
from .planner import choose_plan, route_backends

__all__ = ["BACKEND_POLICIES", "JoinAggregateQuery"]

#: Join back-end policies a query (or engine) may select:
#: the two concrete protocols plus cost-based per-node routing.
BACKEND_POLICIES = ("yannakakis", "linear", "auto")


class JoinAggregateQuery:
    """A free-connex join-aggregate query over party-owned relations."""

    def __init__(self, output: Sequence[str]) -> None:
        self.output: Tuple[str, ...] = tuple(output)
        self.relations: Dict[str, AnnotatedRelation] = {}
        self.owners: Dict[str, str] = {}
        #: Join back-end policy for secure runs (``"yannakakis"`` |
        #: ``"linear"`` | ``"auto"``); an engine-level override
        #: (``engine.backend``) takes precedence.  See docs/BACKENDS.md.
        self.backend: str = "yannakakis"
        self._plan: Optional[YannakakisPlan] = None

    def add_relation(
        self,
        name: str,
        relation: AnnotatedRelation,
        owner: str = ALICE,
    ) -> "JoinAggregateQuery":
        if name in self.relations:
            raise ValueError(f"relation {name!r} added twice")
        self.relations[name] = relation
        self.owners[name] = owner
        self._plan = None
        return self

    def swap_owners(self) -> "JoinAggregateQuery":
        """The mirrored query: every ALICE-owned relation becomes
        BOB-owned and vice versa.  The plan cost model is symmetric
        under a global owner flip, so the mirrored query picks the same
        plan; the protocol must then produce the identical result with
        the reduce/semijoin communication mirrored between the parties
        (see ``tests/test_owner_symmetry.py``)."""
        from ..mpc.transcript import other_party

        mirrored = JoinAggregateQuery(self.output)
        for name, rel in self.relations.items():
            mirrored.add_relation(
                name, rel, owner=other_party(self.owners[name])
            )
        mirrored.backend = self.backend
        return mirrored

    def set_backend(self, backend: str) -> "JoinAggregateQuery":
        """Select the join back-end policy for secure runs."""
        if backend not in BACKEND_POLICIES:
            raise ValueError(
                f"unknown back-end policy {backend!r}; "
                f"choose from {BACKEND_POLICIES}"
            )
        self.backend = backend
        return self

    # -- structure --------------------------------------------------------

    def hypergraph(self) -> Hypergraph:
        return Hypergraph(
            {n: r.attributes for n, r in self.relations.items()}
        )

    def is_free_connex(self) -> bool:
        return is_free_connex(self.hypergraph(), set(self.output))

    def plan(self) -> YannakakisPlan:
        """The ownership-aware plan (cached until relations change)."""
        if self._plan is None:
            sizes = {n: len(r) for n, r in self.relations.items()}
            self._plan = choose_plan(
                self.hypergraph(), self.output, self.owners, sizes
            )
        return self._plan

    @property
    def input_size(self) -> int:
        """IN: the total number of input tuples."""
        return sum(len(r) for r in self.relations.values())

    def backend_assignments(
        self, backend: Optional[str] = None
    ) -> Dict[str, str]:
        """The per-node back-end map a secure run of this query would
        execute (label-keyed, as the compiler and estimator expect).
        ``backend`` overrides the query's own policy (an engine-level
        override is resolved the same way by ``run_secure``)."""
        return route_backends(
            self.plan(),
            {n: len(r) for n, r in self.relations.items()},
            self.owners,
            backend=backend if backend is not None else self.backend,
        )

    # -- evaluation ---------------------------------------------------------

    def run_plain(
        self, operators: Optional[ModuleType] = None
    ) -> AnnotatedRelation:
        """``operators`` selects the relational-operator module (the
        columnar default or :mod:`repro.relalg._reference`)."""
        return execute_plan(self.plan(), self.relations, operators)

    def run_naive(self) -> AnnotatedRelation:
        return naive_join_aggregate(self.relations, list(self.output))

    def secure_inputs(self) -> Dict[str, SecureRelation]:
        """The relations wrapped as owner-tagged
        :class:`~repro.core.relation.SecureRelation` inputs, in
        insertion order (the order the compiler's ``input_order``
        must match)."""
        return {
            name: SecureRelation.from_annotated(self.owners[name], rel)
            for name, rel in self.relations.items()
        }

    # Backwards-compatible alias (pre-serving-layer name).
    _secure_inputs = secure_inputs

    def _effective_backends(self, engine: Engine) -> Dict[str, str]:
        """Resolve the back-end policy for a run on ``engine``: the
        engine-level override wins, else the query's own setting."""
        override = getattr(engine, "backend", None)
        return self.backend_assignments(override)

    def run_secure(
        self, engine: Engine
    ) -> Tuple[AnnotatedRelation, ProtocolStats]:
        return secure_yannakakis(
            engine, self._secure_inputs(), self.plan(),
            backends=self._effective_backends(engine),
        )

    def run_secure_shared(
        self, engine: Engine, pad_out_to: int = 0
    ) -> ObliviousJoinResult:
        """Query-composition building block: results stay shared.
        ``pad_out_to`` hides the true output size behind a declared
        bound (Section 4)."""
        return secure_yannakakis_shared(
            engine, self._secure_inputs(), self.plan(), pad_out_to,
            backends=self._effective_backends(engine),
        )
