"""A SQL frontend for free-connex join-aggregate queries.

Compiles the fragment the paper's queries live in::

    SELECT g1, g2, SUM(expr)
    FROM   t1, t2 AS u, ...
    WHERE  t1.a = u.b AND u.c < 10 AND t1.d IN ('x', 'y')
    GROUP BY g1, g2

into a :class:`~repro.query.JoinAggregateQuery`:

* equality conditions between columns become natural-join attributes
  (a union-find merges transitively-equated columns under one name);
* conditions against literals become selections, applied with a
  per-relation :class:`~repro.core.selection.SelectionPolicy`
  (default: PRIVATE — failing tuples become zero-annotated dummies);
* the ``SUM`` expression's columns must come from a single table (as in
  every query of the paper); that table carries the annotation, all
  others are annotated 1.  ``COUNT(*)`` annotates everything with 1;
* the ``GROUP BY`` columns are the output attributes.

The grammar is deliberately small and explicit: identifiers, qualified
names, integer/string literals, ``+ - *`` with parentheses in the
aggregate, ``= != < <= > >=``, ``IN``, ``AND``.  FROM items take an
optional alias (``t AS a`` or ``t a``); aliases are the effective
relation names everywhere downstream — in qualified columns, in the
compiled query's relation set, and in ``owners`` — which is what makes
self-joins expressible (``FROM orders o1, orders o2``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.selection import SelectionPolicy, apply_selection
from ..mpc.context import ALICE
from ..relalg.operators import map_annotations
from ..relalg.relation import AnnotatedRelation
from .builder import JoinAggregateQuery

__all__ = ["SqlError", "compile_sql", "parse_sql", "ParsedQuery"]


class SqlError(ValueError):
    """A parse or compilation failure, with a human-oriented message."""


# ----------------------------------------------------------------------
# tokenizer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>\d+)
      | (?P<string>'(?:[^'])*')
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|!=|<>|[=<>(),.*+\-])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "and", "in",
    "sum", "count", "as",
}


def _tokenize(sql: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(sql):
        m = _TOKEN_RE.match(sql, pos)
        if not m or m.end() == pos:
            rest = sql[pos:].strip()
            if not rest:
                break
            raise SqlError(f"cannot tokenize near {rest[:20]!r}")
        pos = m.end()
        if m.lastgroup == "number":
            tokens.append(("number", m.group("number")))
        elif m.lastgroup == "string":
            tokens.append(("string", m.group("string")[1:-1]))
        elif m.lastgroup == "name":
            name = m.group("name")
            kind = "kw" if name.lower() in _KEYWORDS else "name"
            tokens.append((kind, name.lower() if kind == "kw" else name))
        else:
            tokens.append(("op", m.group("op")))
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    table: Optional[str]
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Condition:
    """``left <op> right`` where each side is a ColumnRef or a literal;
    ``op`` may also be ``in`` with a literal list on the right."""

    left: object
    op: str
    right: object


#: Aggregate expression node: ("col", ColumnRef) | ("lit", int)
#: | (op, lhs, rhs) for op in "+-*".
Expr = Tuple


@dataclass
class ParsedQuery:
    group_by: List[ColumnRef]
    aggregate: Optional[Expr]  # None for COUNT(*)
    tables: List[str]  #: effective names (the alias when one is given)
    conditions: List[Condition]
    #: effective name -> base table it reads (identity when unaliased)
    sources: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for t in self.tables:
            self.sources.setdefault(t, t)


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ("eof", "")

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        self.pos += 1
        return tok

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        k, v = self.next()
        if k != kind or (value is not None and v != value):
            raise SqlError(
                f"expected {value or kind}, got {v!r} "
                f"(token #{self.pos})"
            )
        return v

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        k, v = self.peek()
        if k == kind and (value is None or v == value):
            self.pos += 1
            return True
        return False

    # -- grammar ----------------------------------------------------------

    def parse(self) -> ParsedQuery:
        self.expect("kw", "select")
        group_by_select: List[ColumnRef] = []
        aggregate: Optional[Expr] = None
        saw_agg = False
        while True:
            if self.accept("kw", "sum"):
                self.expect("op", "(")
                aggregate = self.parse_expr()
                self.expect("op", ")")
                saw_agg = True
            elif self.accept("kw", "count"):
                self.expect("op", "(")
                self.expect("op", "*")
                self.expect("op", ")")
                aggregate = None
                saw_agg = True
            else:
                group_by_select.append(self.parse_column())
            if not self.accept("op", ","):
                break
        if not saw_agg:
            raise SqlError(
                "the select list needs a SUM(...) or COUNT(*) aggregate"
            )

        self.expect("kw", "from")
        tables: List[str] = []
        sources: Dict[str, str] = {}
        while True:
            base = self.expect("name")
            alias = base
            if self.accept("kw", "as"):
                alias = self.expect("name")
            elif self.peek()[0] == "name":
                alias = self.next()[1]
            if alias in sources:
                raise SqlError(
                    f"name {alias!r} appears more than once in FROM; "
                    "self-joins need distinct aliases "
                    "(FROM t a, t b)"
                )
            sources[alias] = base
            tables.append(alias)
            if not self.accept("op", ","):
                break

        conditions: List[Condition] = []
        if self.accept("kw", "where"):
            conditions.append(self.parse_condition())
            while self.accept("kw", "and"):
                conditions.append(self.parse_condition())

        group_by: List[ColumnRef] = []
        if self.accept("kw", "group"):
            self.expect("kw", "by")
            group_by.append(self.parse_column())
            while self.accept("op", ","):
                group_by.append(self.parse_column())

        if self.peek()[0] != "eof":
            raise SqlError(f"trailing tokens from {self.peek()[1]!r}")
        if {str(c) for c in group_by_select} != {str(c) for c in group_by}:
            raise SqlError(
                "non-aggregate select columns must equal the GROUP BY "
                f"columns ({group_by_select} vs {group_by})"
            )
        return ParsedQuery(
            group_by, aggregate, tables, conditions, sources
        )

    def parse_column(self) -> ColumnRef:
        first = self.expect("name")
        if self.accept("op", "."):
            return ColumnRef(first, self.expect("name"))
        return ColumnRef(None, first)

    def parse_condition(self) -> Condition:
        left = self.parse_operand()
        if self.accept("kw", "in"):
            self.expect("op", "(")
            values = [self.parse_literal()]
            while self.accept("op", ","):
                values.append(self.parse_literal())
            self.expect("op", ")")
            return Condition(left, "in", tuple(values))
        k, op = self.next()
        if k != "op" or op not in ("=", "!=", "<>", "<", "<=", ">", ">="):
            raise SqlError(f"expected a comparison operator, got {op!r}")
        if op == "<>":
            op = "!="
        right = self.parse_operand()
        return Condition(left, op, right)

    def parse_operand(self) -> Union[ColumnRef, int, str]:
        k, v = self.peek()
        if k == "name":
            return self.parse_column()
        return self.parse_literal()

    def parse_literal(self) -> Union[int, str]:
        k, v = self.next()
        if k == "op" and v == "-":
            k, v = self.next()
            if k != "number":
                raise SqlError(f"expected a number after '-', got {v!r}")
            return -int(v)
        if k == "number":
            return int(v)
        if k == "string":
            return v
        raise SqlError(f"expected a literal, got {v!r}")

    # arithmetic for the aggregate expression: + - over * over atoms
    def parse_expr(self) -> Expr:
        node = self.parse_term()
        while True:
            if self.accept("op", "+"):
                node = ("+", node, self.parse_term())
            elif self.accept("op", "-"):
                node = ("-", node, self.parse_term())
            else:
                return node

    def parse_term(self) -> Expr:
        node = self.parse_atom()
        while self.accept("op", "*"):
            node = ("*", node, self.parse_atom())
        return node

    def parse_atom(self) -> Expr:
        if self.accept("op", "("):
            node = self.parse_expr()
            self.expect("op", ")")
            return node
        k, v = self.peek()
        if k == "number":
            self.next()
            return ("lit", int(v))
        return ("col", self.parse_column())


def parse_sql(sql: str) -> ParsedQuery:
    """Parse without compiling (exposed for tooling and tests)."""
    return _Parser(_tokenize(sql)).parse()


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------


def _expr_columns(expr: Optional[Expr]) -> List[ColumnRef]:
    if expr is None:
        return []
    tag = expr[0]
    if tag == "col":
        return [expr[1]]
    if tag == "lit":
        return []
    return _expr_columns(expr[1]) + _expr_columns(expr[2])


def _eval_expr(expr: Expr, row: dict) -> int:
    tag = expr[0]
    if tag == "lit":
        return expr[1]
    if tag == "col":
        return int(row[expr[1].column])
    a, b = _eval_expr(expr[1], row), _eval_expr(expr[2], row)
    if tag == "+":
        return a + b
    if tag == "-":
        return a - b
    return a * b


_COMPARATORS: Dict[str, Callable] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
}


class _Resolver:
    """Maps column references to their owning tables."""

    def __init__(self, tables: Dict[str, AnnotatedRelation]) -> None:
        self.tables = tables
        self.owner_of: Dict[str, List[str]] = {}
        for tname, rel in tables.items():
            for attr in rel.attributes:
                self.owner_of.setdefault(attr, []).append(tname)

    def resolve(self, ref: ColumnRef) -> Tuple[str, str]:
        if ref.table is not None:
            if ref.table not in self.tables:
                raise SqlError(f"unknown table {ref.table!r}")
            if ref.column not in self.tables[ref.table].attributes:
                raise SqlError(
                    f"table {ref.table!r} has no column {ref.column!r}"
                )
            return ref.table, ref.column
        owners = self.owner_of.get(ref.column, [])
        if not owners:
            raise SqlError(f"unknown column {ref.column!r}")
        if len(owners) > 1:
            raise SqlError(
                f"column {ref.column!r} is ambiguous "
                f"(in {sorted(owners)}); qualify it"
            )
        return owners[0], ref.column


def compile_sql(
    sql: str,
    tables: Dict[str, AnnotatedRelation],
    owners: Optional[Dict[str, str]] = None,
    selection_policy: SelectionPolicy = SelectionPolicy.PRIVATE,
    selection_bounds: Optional[Dict[str, int]] = None,
) -> JoinAggregateQuery:
    """Compile a SQL string over the given base tables.

    ``owners`` maps effective table name -> party (default: everything
    Alice's); for an aliased FROM item the key is the alias.
    Literal selections are applied per ``selection_policy`` before the
    protocol; ``selection_bounds`` supplies per-table bounds for the
    BOUNDED policy.
    """
    parsed = parse_sql(sql)
    missing = sorted(
        {
            parsed.sources[t]
            for t in parsed.tables
            if parsed.sources[t] not in tables
        }
    )
    if missing:
        raise SqlError(f"tables not provided: {missing}")
    # Aliased FROM items instantiate their base table under the alias:
    # the compiled query joins the *effective* relations, so a
    # self-join is just two instances of one base table.
    scope = {t: tables[parsed.sources[t]] for t in parsed.tables}
    resolver = _Resolver(scope)
    owners = owners or {}

    # 1. union-find over equated columns -> canonical join names.
    parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(x: Tuple[str, str]) -> Tuple[str, str]:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: Tuple[str, str], b: Tuple[str, str]) -> None:
        parent[find(a)] = find(b)

    join_conds: List[Tuple[Tuple[str, str], Tuple[str, str]]] = []
    selections: Dict[str, List[Condition]] = {}
    for cond in parsed.conditions:
        left_is_col = isinstance(cond.left, ColumnRef)
        right_is_col = isinstance(cond.right, ColumnRef)
        if left_is_col and right_is_col:
            if cond.op != "=":
                raise SqlError(
                    "only equality joins are supported between columns"
                )
            a = resolver.resolve(cond.left)
            b = resolver.resolve(cond.right)
            union(a, b)
            join_conds.append((a, b))
        elif left_is_col:
            t, c = resolver.resolve(cond.left)
            selections.setdefault(t, []).append(
                Condition(c, cond.op, cond.right)
            )
        else:
            raise SqlError(
                "conditions must have a column on the left-hand side"
            )

    # Canonical name per equivalence class.
    def canonical(tc: Tuple[str, str]) -> str:
        root = find(tc)
        return f"{root[1]}"

    # Detect canonical-name collisions between distinct classes.
    class_of_name: Dict[str, Tuple[str, str]] = {}
    rename: Dict[str, Dict[str, str]] = {t: {} for t in scope}
    for t, rel in scope.items():
        for attr in rel.attributes:
            root = find((t, attr))
            name = canonical((t, attr))
            if (
                name in class_of_name
                and class_of_name[name] != root
            ):
                # qualify with the root table to disambiguate
                name = f"{root[0]}_{root[1]}"
            class_of_name[name] = root
            rename[t][attr] = name

    # 2. aggregate expression -> one table's annotations.
    agg_cols = [_c for _c in _expr_columns(parsed.aggregate)]
    agg_tables = {resolver.resolve(c)[0] for c in agg_cols}
    if len(agg_tables) > 1:
        raise SqlError(
            "the aggregate expression must use columns of a single "
            f"table (got {sorted(agg_tables)}); decompose the query "
            "(Section 7) if you need cross-table arithmetic"
        )
    agg_table = next(iter(agg_tables), None)

    # 3. output attributes.
    output: List[str] = []
    group_cols: Dict[str, List[str]] = {}
    for ref in parsed.group_by:
        t, c = resolver.resolve(ref)
        group_cols.setdefault(t, []).append(c)
        output.append(rename[t][c])

    # 4. per-table preparation: select -> annotate -> project -> rename.
    query = JoinAggregateQuery(output=output)
    bounds = selection_bounds or {}
    # NOTE: use the final (collision-qualified) names, not the raw
    # canonical ones — two distinct classes may share a column name.
    join_attr_names = {
        rename[t][c] for pair in join_conds for (t, c) in pair
    }
    for t in parsed.tables:
        rel = scope[t]
        # The SQL aggregate fully defines the annotations: every table
        # is neutralised to 1, then the aggregate expression is
        # installed on its carrier table.  (Annotate before selecting:
        # the expression must see real values, and the selection may
        # replace rows with dummies.)
        if t == agg_table and parsed.aggregate is not None:
            rel = map_annotations(
                rel,
                lambda row, old, e=parsed.aggregate: _eval_expr(e, row),
            )
        else:
            rel = rel.replace(
                annotations=[rel.semiring.one] * len(rel)
            )
        conds = selections.get(t, [])
        if conds:

            def predicate(
                row: Any, conds: List[Condition] = conds
            ) -> bool:
                return all(
                    _COMPARATORS[c.op](row[c.left], c.right)
                    for c in conds
                )

            rel = apply_selection(
                rel, predicate, selection_policy, bounds.get(t)
            )
        keep = [
            a
            for a in rel.attributes
            if rename[t][a] in join_attr_names
            or a in group_cols.get(t, [])
        ]
        projected = _project_keep_annotations(rel, keep)
        renamed = projected.replace(
            attributes=tuple(rename[t][a] for a in keep)
        )
        query.add_relation(t, renamed, owners.get(t, ALICE))
    return query


def _project_keep_annotations(
    rel: AnnotatedRelation, attrs: Sequence[str]
) -> AnnotatedRelation:
    """Project tuples to ``attrs`` keeping one annotation per original
    row (a multiset projection, *not* an aggregation — the protocol's
    aggregation operators handle the merging)."""
    idx = rel.index_of(attrs)
    return AnnotatedRelation(
        tuple(attrs),
        [tuple(t[i] for i in idx) for t in rel.tuples],
        rel.annotations,
        rel.semiring,
    )
