"""Ownership-aware plan selection.

All rooted join trees that witness the free-connex property compute the
same result at the same asymptotic cost, but their *constant factors*
differ in the secure setting: a reduce-fold between two relations of
the same party runs locally (or with the cheaper same-party semijoin),
whereas a cross-party fold pays for PSI (Section 6.5, "when a party
holds a subtree containing the root").  The planner enumerates the
candidate rooted trees and picks one minimising the size-weighted
number of cross-party operator invocations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpc.params import SecurityParams

from ..relalg.hypergraph import Hypergraph
from ..relalg.join_tree import JoinTree
from ..yannakakis.plan import (
    ReduceFold,
    YannakakisPlan,
    build_plan,
)

__all__ = ["choose_plan", "plan_cost", "route_backends"]


def plan_cost(
    plan: YannakakisPlan,
    owners: Dict[str, str],
    sizes: Optional[Dict[str, int]] = None,
) -> int:
    """Size-weighted count of cross-party operator invocations."""
    sizes = sizes or {n: 1 for n in plan.tree.nodes}
    cost = 0
    for step in plan.reduce_steps:
        if isinstance(step, ReduceFold):
            if owners[step.child] != owners[step.parent]:
                cost += sizes[step.child] + sizes[step.parent]
    for step in plan.semijoin_steps:
        if owners[step.target] != owners[step.filter]:
            cost += sizes[step.target] + sizes[step.filter]
    return cost


def choose_plan(
    hypergraph: Hypergraph,
    output: Iterable[str],
    owners: Dict[str, str],
    sizes: Optional[Dict[str, int]] = None,
) -> YannakakisPlan:
    """The cheapest compilable rooted join tree, or ``ValueError`` if the
    query is not free-connex."""
    output = tuple(dict.fromkeys(output))  # dedupe, keep caller's order
    best: Optional[Tuple[int, YannakakisPlan]] = None
    for edges in hypergraph.all_join_trees():
        for root in hypergraph.edges:
            tree = JoinTree(hypergraph, edges, root)
            try:
                plan = build_plan(tree, output)
            except ValueError:
                continue
            cost = plan_cost(plan, owners, sizes)
            if best is None or cost < best[0]:
                best = (cost, plan)
    if best is None:
        raise ValueError(
            "query is not free-connex; no rooted join tree compiles"
        )
    return best[1]


def route_backends(
    plan: YannakakisPlan,
    sizes: Dict[str, int],
    owners: Dict[str, str],
    backend: str = "auto",
    params: Optional["SecurityParams"] = None,
    group_bits: int = 2048,
) -> Dict[str, str]:
    """Assign a join back-end to every fold/semijoin node of ``plan``.

    ``backend`` is a policy, not a protocol: ``"yannakakis"`` and
    ``"linear"`` force every node onto that back-end, while ``"auto"``
    prices each node under both via
    :func:`repro.bench.estimator.estimate_node_costs` and picks the
    cheaper one in bytes (ties break to ``"yannakakis"``, the paper's
    protocol — in particular every same-owner node, where the back-ends
    are identical, routes there).  Returns a label-keyed map suitable
    for :func:`repro.exec.compiler.compile_plan` and
    :func:`repro.bench.estimator.estimate_plan_cost`.
    """
    from ..bench.estimator import BACKENDS, DEFAULT_PARAMS, estimate_node_costs

    if backend in BACKENDS:
        routes = {}
        for step in plan.reduce_steps:
            if isinstance(step, ReduceFold):
                routes[f"fold/{step.child}->{step.parent}"] = backend
        for step in plan.semijoin_steps:
            routes[f"semi/{step.target}<-{step.filter}"] = backend
        return routes
    if backend != "auto":
        raise ValueError(
            f"unknown back-end policy {backend!r}; "
            f"choose from {BACKENDS + ('auto',)}"
        )
    node_costs = estimate_node_costs(
        plan, sizes, owners,
        params=params or DEFAULT_PARAMS,
        group_bits=group_bits,
    )
    return {
        label: min(
            costs, key=lambda b: (costs[b], 0 if b == "yannakakis" else 1)
        )
        for label, costs in node_costs.items()
    }
