"""Static extraction of declared-leakage contracts.

A function declares its leakage either with the runtime decorator
``@repro.leakage.leaks("atom", ...)`` or — where a decorator cannot be
placed (a branch of a dispatcher, a closure) — with a
``# oblint: leaks=atom[,atom]`` comment marker inside the function body
(:mod:`repro.lint.suppress`).  Both forms are read *syntactically* from
the AST/comments, so fixtures and partial trees lint without importing
the code under analysis.

``declared_atoms`` distinguishes "no contract" (``None``) from an
explicit empty contract (``@leaks()`` → ``frozenset()``): the former
means the function has made no statement about its leakage, the latter
asserts it is leak-free.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Optional, Tuple

from .project import SourceFile, call_name

__all__ = ["declared_atoms", "decorator_atoms", "marker_atoms"]


def decorator_atoms(fn: ast.AST) -> Optional[FrozenSet[str]]:
    """Atoms of a ``@leaks(...)`` decorator on ``fn`` (None if absent).

    Only string-literal arguments are honoured — a computed contract is
    invisible to static checking and therefore treated as undeclared.
    """
    for dec in getattr(fn, "decorator_list", []):
        if isinstance(dec, ast.Call) and call_name(dec) == "leaks":
            return frozenset(
                a.value
                for a in dec.args
                if isinstance(a, ast.Constant) and isinstance(a.value, str)
            )
        if isinstance(dec, ast.Name) and dec.id == "leaks":
            return frozenset()  # bare @leaks: explicit empty contract
    return None


def _nested_def_ranges(fn: ast.AST) -> Tuple[Tuple[int, int], ...]:
    out = []
    for child in ast.walk(fn):
        if child is fn:
            continue
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            out.append((child.lineno, child.end_lineno or child.lineno))
    return tuple(out)


def marker_atoms(
    fn: ast.AST, src: SourceFile
) -> Optional[FrozenSet[str]]:
    """Atoms of ``# oblint: leaks=`` markers inside ``fn``'s own body
    (markers inside nested definitions belong to the nested def)."""
    lo = fn.lineno
    hi = fn.end_lineno or lo
    nested = _nested_def_ranges(fn)
    found = None
    for line, atoms in src.directives.leaks.items():
        if not (lo <= line <= hi):
            continue
        if any(nlo <= line <= nhi for nlo, nhi in nested):
            continue
        found = (found or frozenset()) | frozenset(atoms)
    return found


def declared_atoms(
    fn: ast.AST, src: SourceFile
) -> Optional[FrozenSet[str]]:
    """The full declared contract of ``fn`` — decorator atoms unioned
    with comment-marker atoms; ``None`` when neither form is present."""
    dec = decorator_atoms(fn)
    mark = marker_atoms(fn, src)
    if dec is None and mark is None:
        return None
    return (dec or frozenset()) | (mark or frozenset())
