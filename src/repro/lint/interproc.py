"""Project-wide (interprocedural) secret-taint.

The PR-4 taint engine (:mod:`repro.lint.taint`) is per-function: a
secret escaping through a ``return`` or flowing into a callee's
parameter is invisible to it.  This module layers a call-graph fixpoint
on top, reusing :class:`~repro.lint.taint.FunctionTaint` unchanged:

1. **Secret-returning functions.**  A function whose ``return``
   expression is tainted joins the *secret-returning* name set; every
   bare call to such a name then seeds taint at its call sites (the
   name set is merged into ``TaintConfig.source_calls``, so the
   intraprocedural engine picks it up for free).  Declassifier names
   always win — ``reveal_vector`` returns designated-public plaintext
   no matter what its body touches.
2. **Secret parameters.**  When a call site passes a tainted argument,
   the matching parameter of every same-named definition is seeded
   (positional mapping skips ``self``/``cls``; keywords match by
   name) — the interprocedural twin of ``# oblint: secret-params``.

Both facts feed each other, so the whole project iterates to a joint
fixpoint (bounded rounds; the lattice only grows, so early exit on a
quiet round is sound).  Name resolution is bare-name, exactly like the
OBL005 label index — conservative over-approximation under duck-typed
dispatch.

The result is consumed by OBL006 only: enriching OBL001/OBL002 with
these seeds would change findings on the existing tree, and the
intraprocedural rules are deliberately kept stable.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from .project import Project, SourceFile, call_name
from .taint import SECRET_CONFIG, FunctionTaint

__all__ = ["InterprocTaint", "interproc_taint"]

#: Global fixpoint rounds.  Taint only ever grows, so this bounds the
#: propagation *depth* across function boundaries, not correctness of
#: what is found within it.
_MAX_ROUNDS = 4


def _param_names(fn: ast.AST) -> List[str]:
    a = fn.args
    names = [p.arg for p in a.posonlyargs] + [p.arg for p in a.args]
    return names


def _skip_self(names: List[str]) -> Tuple[List[str], int]:
    """Drop a leading ``self``/``cls``; returns (names, offset)."""
    if names and names[0] in ("self", "cls"):
        return names[1:], 1
    return names, 0


class InterprocTaint:
    """The joint secret-returning / secret-parameter fixpoint."""

    def __init__(self, project: Project):
        self.project = project
        self._defs: List[Tuple[ast.AST, SourceFile]] = [
            (info.node, info.file)
            for infos in project.functions_by_name.values()
            for info in infos
        ]
        #: bare names whose calls produce secrets
        self.secret_returning: Set[str] = set()
        #: id(fn node) -> parameter names seeded secret from call sites
        self.param_seeds: Dict[int, Set[str]] = {}
        self._taints: Dict[int, FunctionTaint] = {}
        self._fixpoint()

    # -- public view ----------------------------------------------------

    def function_taint(self, fn: ast.AST) -> Optional[FunctionTaint]:
        """The converged taint facts for one definition (None when the
        node is not part of this project — e.g. a lambda)."""
        return self._taints.get(id(fn))

    # -- fixpoint -------------------------------------------------------

    def _config(self):
        extra = self.secret_returning - SECRET_CONFIG.declassifier_calls
        if not extra:
            return SECRET_CONFIG
        return replace(
            SECRET_CONFIG,
            source_calls=SECRET_CONFIG.source_calls | frozenset(extra),
        )

    def _fixpoint(self) -> None:
        for _ in range(_MAX_ROUNDS):
            cfg = self._config()
            self._taints = {
                id(fn): FunctionTaint(
                    fn, src, cfg,
                    tainted=set(self.param_seeds.get(id(fn), ())),
                )
                for fn, src in self._defs
            }
            grew = self._grow_secret_returning()
            grew |= self._grow_param_seeds()
            if not grew:
                break

    def _grow_secret_returning(self) -> bool:
        grew = False
        for fn, _src in self._defs:
            if fn.name in self.secret_returning:
                continue
            taint = self._taints[id(fn)]
            for node in _shallow(fn):
                if (
                    isinstance(node, ast.Return)
                    and node.value is not None
                    and taint.is_tainted(node.value)
                ):
                    self.secret_returning.add(fn.name)
                    grew = True
                    break
        return grew

    def _grow_param_seeds(self) -> bool:
        grew = False
        by_name = self.project.functions_by_name
        for fn, _src in self._defs:
            taint = self._taints[id(fn)]
            for node in _shallow(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                callees = by_name.get(name or "", [])
                if not callees:
                    continue
                tainted_pos = [
                    i
                    for i, a in enumerate(node.args)
                    if not isinstance(a, ast.Starred)
                    and taint.is_tainted(a)
                ]
                tainted_kw = {
                    k.arg
                    for k in node.keywords
                    if k.arg is not None and taint.is_tainted(k.value)
                }
                if not tainted_pos and not tainted_kw:
                    continue
                # ``x.f(...)`` never passes the receiver positionally,
                # so a method def's ``self`` slot is skipped either way.
                for callee in callees:
                    params, _off = _skip_self(_param_names(callee.node))
                    seeds = self.param_seeds.setdefault(
                        id(callee.node), set()
                    )
                    before = len(seeds)
                    for i in tainted_pos:
                        if i < len(params):
                            seeds.add(params[i])
                    seeds |= tainted_kw & set(_param_names(callee.node))
                    if len(seeds) != before:
                        grew = True
        return grew


def _shallow(fn: ast.AST):
    """Walk ``fn`` without descending into nested defs/classes."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def interproc_taint(project: Project) -> InterprocTaint:
    """The per-project singleton (the fixpoint is cached on the
    project object so every rule shares one computation)."""
    cached = getattr(project, "_interproc_taint", None)
    if cached is None:
        cached = InterprocTaint(project)
        project._interproc_taint = cached  # type: ignore[attr-defined]
    return cached
