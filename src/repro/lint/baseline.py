"""Committed-baseline support.

The baseline file records fingerprints of *known, grandfathered*
violations so ``repro lint`` can gate on "no NEW violations" while the
backlog is worked off.  Entries are counted: if the tree grows a second
occurrence of a baselined finding, the new one still fails the run.

The file is plain JSON, sorted, and meant to be committed; regenerate
with ``repro lint --write-baseline`` (and justify the entries in the
accompanying PR — see docs/LINTING.md for the policy).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .violations import Violation

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Counter:
    """Fingerprint -> allowed occurrence count.  Missing file = empty."""
    if not path.exists():
        return Counter()
    blob = json.loads(path.read_text())
    counts: Counter = Counter()
    for entry in blob.get("entries", []):
        counts[entry["fingerprint"]] += int(entry.get("count", 1))
    return counts


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    """Serialise the given violations as the new baseline."""
    grouped: Dict[str, dict] = {}
    for v in violations:
        fp = v.fingerprint()
        if fp in grouped:
            grouped[fp]["count"] += 1
        else:
            grouped[fp] = {
                "fingerprint": fp,
                "rule": v.rule,
                "path": v.path,
                "snippet": v.snippet,
                "count": 1,
            }
    blob = {
        "version": BASELINE_VERSION,
        "entries": sorted(
            grouped.values(),
            key=lambda e: (e["path"], e["rule"], e["fingerprint"]),
        ),
    }
    path.write_text(json.dumps(blob, indent=2) + "\n")


def stale_entries(
    path: Path, violations: Sequence[Violation]
) -> List[dict]:
    """Baseline entries no current finding matches (stale counts).

    ``violations`` must be the *pre-baseline* findings.  Each returned
    dict carries the entry's recorded ``rule``/``path``/``snippet``
    plus a ``stale`` count — the excess of the baselined count over
    the number of live occurrences.
    """
    if not path.exists():
        return []
    blob = json.loads(path.read_text())
    live: Counter = Counter(v.fingerprint() for v in violations)
    out: List[dict] = []
    for entry in blob.get("entries", []):
        allowed = int(entry.get("count", 1))
        excess = allowed - live.get(entry["fingerprint"], 0)
        if excess > 0:
            out.append({**entry, "stale": excess})
    return out


def prune_baseline(
    path: Path, violations: Sequence[Violation]
) -> Tuple[int, int]:
    """Rewrite the baseline keeping only still-live occurrences.

    Returns ``(kept, dropped)`` occurrence counts.  Entries keep their
    recorded metadata; counts shrink to the number of matching current
    findings (entries with zero matches disappear).
    """
    if not path.exists():
        return 0, 0
    blob = json.loads(path.read_text())
    live: Counter = Counter(v.fingerprint() for v in violations)
    kept_entries: List[dict] = []
    kept = dropped = 0
    for entry in blob.get("entries", []):
        allowed = int(entry.get("count", 1))
        keep = min(allowed, live.get(entry["fingerprint"], 0))
        kept += keep
        dropped += allowed - keep
        if keep > 0:
            kept_entries.append({**entry, "count": keep})
    blob["version"] = BASELINE_VERSION
    blob["entries"] = kept_entries
    path.write_text(json.dumps(blob, indent=2) + "\n")
    return kept, dropped


def apply_baseline(
    violations: Sequence[Violation], counts: Counter
) -> Tuple[List[Violation], int]:
    """Split findings into (new, n_baselined).

    Occurrences are consumed in file order: the first ``count`` matches
    of a fingerprint are baselined, any excess is new.
    """
    remaining = Counter(counts)
    fresh: List[Violation] = []
    matched = 0
    for v in violations:
        fp = v.fingerprint()
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            matched += 1
        else:
            fresh.append(v)
    return fresh, matched
