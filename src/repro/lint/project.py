"""The analysed file set and the project-wide call/label index.

Rules get two views:

* :class:`SourceFile` — one parsed module: AST, raw lines, directives,
  and whether it lies in the *protocol directories* whose obliviousness
  invariants the OBL rules enforce.
* :class:`Project` — all files of the run plus a lazily-built index of
  every function/method, used by OBL005 to resolve transcript-label
  literals through the call graph (``engine -> charge_garbled_batch ->
  charge_ot`` and the REAL-side twin).

Label resolution is *two-valued*: a label is **definite** for a callee
name when every same-named definition in the project emits it, and
**possible** when at least one does.  Mode-parity comparisons only
require definite labels of one side to be at least possible on the
other, which keeps duck-typed dispatch (``ot.transfer`` resolving to
three back-ends) from producing false mismatches while still catching a
label string that one back-end spells differently.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .suppress import Directives, parse_directives

#: Directories (as posix path fragments) whose modules carry the
#: protocol's obliviousness obligations.
PROTOCOL_DIRS = (
    "repro/mpc",
    "repro/core",
    "repro/exec",
    "repro/relalg",
    "repro/runtime",
)

#: Argument positions of transcript-label parameters, per callee name.
#: ``send(sender, n_bytes, label)`` / ``section(label)``.
LABEL_ARG = {"send": (2, "label"), "section": (0, "label")}


def call_name(node: ast.Call) -> Optional[str]:
    """The bare name a call dispatches on (``f(...)`` or ``x.f(...)``)."""
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


def label_arg_of(node: ast.Call) -> Optional[ast.expr]:
    """The transcript-label argument of a send/section call, if any."""
    name = call_name(node)
    spec = LABEL_ARG.get(name or "")
    if spec is None:
        return None
    pos, kw = spec
    for k in node.keywords:
        if k.arg == kw:
            return k.value
    if len(node.args) > pos:
        return node.args[pos]
    return None


@dataclass
class SourceFile:
    """One parsed module under analysis."""

    path: str  #: repo-relative posix path
    text: str
    tree: ast.Module
    directives: Directives
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.text.splitlines()

    @property
    def in_protocol_dirs(self) -> bool:
        return any(d in self.path for d in PROTOCOL_DIRS)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def functions(self) -> Iterator[ast.AST]:
        for node in ast.walk(self.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                yield node


def parse_source(path: str, text: str) -> SourceFile:
    return SourceFile(
        path=path,
        text=text,
        tree=ast.parse(text, filename=path),
        directives=parse_directives(text),
    )


# ----------------------------------------------------------------------
# project-wide label index (OBL005)
# ----------------------------------------------------------------------

LabelSets = Tuple[frozenset, frozenset]  # (definite, possible)
_EMPTY: LabelSets = (frozenset(), frozenset())
_MAX_DEPTH = 10


@dataclass
class FuncInfo:
    """Call/label facts of one function definition."""

    node: ast.AST
    file: SourceFile
    cls: Optional[str]  #: enclosing class name, if a method
    direct_labels: frozenset
    callees: frozenset


class Project:
    """All files of one lint run plus the function index."""

    def __init__(self, files: List[SourceFile]):
        self.files = files
        self._by_name: Optional[Dict[str, List[FuncInfo]]] = None
        self._by_class: Optional[Dict[str, Dict[str, FuncInfo]]] = None
        self._memo: Dict[int, LabelSets] = {}

    # -- index construction --------------------------------------------

    def _build_index(self) -> None:
        by_name: Dict[str, List[FuncInfo]] = {}
        by_class: Dict[str, Dict[str, FuncInfo]] = {}
        for f in self.files:
            for cls_name, fn in self._iter_defs(f.tree):
                info = FuncInfo(
                    node=fn,
                    file=f,
                    cls=cls_name,
                    direct_labels=frozenset(direct_labels(fn)),
                    callees=frozenset(callee_names(fn)),
                )
                by_name.setdefault(fn.name, []).append(info)
                if cls_name is not None:
                    by_class.setdefault(cls_name, {})[fn.name] = info
        self._by_name = by_name
        self._by_class = by_class

    @staticmethod
    def _iter_defs(
        tree: ast.Module,
    ) -> Iterator[Tuple[Optional[str], ast.FunctionDef]]:
        """Yield (enclosing class name or None, function def)."""

        def walk(node: ast.AST, cls: Optional[str]) -> Iterator:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, child.name)
                elif isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield cls, child
                    yield from walk(child, None)
                else:
                    yield from walk(child, cls)

        yield from walk(tree, None)

    @property
    def functions_by_name(self) -> Dict[str, List[FuncInfo]]:
        if self._by_name is None:
            self._build_index()
        return self._by_name  # type: ignore[return-value]

    @property
    def classes(self) -> Dict[str, Dict[str, FuncInfo]]:
        if self._by_class is None:
            self._build_index()
        return self._by_class  # type: ignore[return-value]

    # -- transitive label resolution -----------------------------------

    def labels_of_info(
        self, info: FuncInfo, _depth: int = 0
    ) -> LabelSets:
        """(definite, possible) transcript labels ``info`` can emit,
        following callees through the bare-name index."""
        key = id(info.node)
        if key in self._memo:
            return self._memo[key]
        if _depth > _MAX_DEPTH:
            return _EMPTY
        # In-progress marker breaks recursion cycles.
        self._memo[key] = _EMPTY
        definite = set(info.direct_labels)
        possible = set(info.direct_labels)
        class_ns = self.classes.get(info.cls or "", {})
        for name in info.callees:
            d, p = self._labels_of_name(name, class_ns, _depth + 1)
            definite |= d
            possible |= p
        result = (frozenset(definite), frozenset(possible))
        self._memo[key] = result
        return result

    def _labels_of_name(
        self,
        name: str,
        class_ns: Dict[str, FuncInfo],
        depth: int,
    ) -> LabelSets:
        # A same-class method is an unambiguous resolution for
        # ``self.name(...)`` — prefer it over the global index.
        if name in class_ns:
            return self.labels_of_info(class_ns[name], depth)
        infos = self.functions_by_name.get(name, [])
        if not infos:
            # ``BatchedOprf(...)`` — a constructor call runs __init__.
            init = self.classes.get(name, {}).get("__init__")
            if init is not None:
                return self.labels_of_info(init, depth)
            return _EMPTY
        sets = [self.labels_of_info(i, depth) for i in infos]
        definite = frozenset.intersection(*(s[0] for s in sets))
        possible = frozenset.union(*(s[1] for s in sets))
        return (definite, possible)

    def labels_of_statements(
        self,
        stmts: List[ast.stmt],
        class_ns: Dict[str, FuncInfo],
    ) -> LabelSets:
        """Labels emitted by a statement list, callees resolved."""
        definite: Set[str] = set()
        possible: Set[str] = set()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                lit = _label_literal(node)
                if lit is not None:
                    definite.add(lit)
                    possible.add(lit)
                    continue
                name = call_name(node)
                if name is None or name in ("send", "section"):
                    continue
                d, p = self._labels_of_name(name, class_ns, 1)
                definite |= d
                possible |= p
        return (frozenset(definite), frozenset(possible))


def _label_literal(node: ast.Call) -> Optional[str]:
    arg = label_arg_of(node)
    if (
        arg is not None
        and isinstance(arg, ast.Constant)
        and isinstance(arg.value, str)
        and arg.value
    ):
        return arg.value
    return None


def direct_labels(fn: ast.AST) -> Set[str]:
    """String-literal labels of send/section calls directly in ``fn``
    (nested defs excluded so class methods stay separable)."""
    out: Set[str] = set()
    for node in _walk_shallow(fn):
        if isinstance(node, ast.Call):
            lit = _label_literal(node)
            if lit is not None:
                out.add(lit)
    return out


def callee_names(fn: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for node in _walk_shallow(fn):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is not None and name not in ("send", "section"):
                out.add(name)
    return out


def _walk_shallow(fn: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class
    definitions (the top node itself is walked)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
