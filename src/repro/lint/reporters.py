"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import List

from .registry import Rule
from .violations import LintResult


def text_report(result: LintResult, rules: List[Rule]) -> str:
    lines = [v.format() for v in result.violations]
    by_rule: dict = {}
    for v in result.violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    summary = (
        f"{len(result.violations)} violation"
        f"{'s' if len(result.violations) != 1 else ''} "
        f"({result.files_checked} files, "
        f"{result.suppressed} suppressed, "
        f"{result.baselined} baselined)"
    )
    if by_rule:
        summary += "  [" + ", ".join(
            f"{code}: {n}" for code, n in sorted(by_rule.items())
        ) + "]"
    lines.append(summary)
    return "\n".join(lines)


def json_report(result: LintResult, rules: List[Rule]) -> str:
    return json.dumps(
        {
            "ok": result.ok,
            "files_checked": result.files_checked,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "violations": [v.to_json() for v in result.violations],
            "rules": {
                r.code: {"name": r.name, "description": r.description}
                for r in rules
            },
        },
        indent=2,
    )
