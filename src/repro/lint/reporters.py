"""Text, JSON, and SARIF reporters for lint results."""

from __future__ import annotations

import json
from typing import List

from .registry import Rule
from .violations import LintResult


def text_report(result: LintResult, rules: List[Rule]) -> str:
    lines = [v.format() for v in result.violations]
    by_rule: dict = {}
    for v in result.violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    summary = (
        f"{len(result.violations)} violation"
        f"{'s' if len(result.violations) != 1 else ''} "
        f"({result.files_checked} files, "
        f"{result.suppressed} suppressed, "
        f"{result.baselined} baselined)"
    )
    if by_rule:
        summary += "  [" + ", ".join(
            f"{code}: {n}" for code, n in sorted(by_rule.items())
        ) + "]"
    lines.append(summary)
    return "\n".join(lines)


#: SARIF 2.1.0 — the schema GitHub code scanning ingests via
#: ``github/codeql-action/upload-sarif``.
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sarif_report(result: LintResult, rules: List[Rule]) -> str:
    """Serialise findings as a single-run SARIF 2.1.0 log.

    The baseline fingerprint doubles as the SARIF partial fingerprint,
    so code-scanning alert identity tracks the same line-number-free
    key the committed baseline uses.
    """
    run = {
        "tool": {
            "driver": {
                "name": "oblint",
                "informationUri": "docs/LINTING.md",
                "rules": [
                    {
                        "id": r.code,
                        "name": r.name,
                        "shortDescription": {"text": r.description},
                    }
                    for r in rules
                ],
            }
        },
        "results": [
            {
                "ruleId": v.rule,
                "level": "error",
                "message": {"text": v.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": v.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": v.line,
                                "startColumn": v.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "oblint/v1": v.fingerprint()
                },
            }
            for v in result.violations
        ],
    }
    return json.dumps(
        {
            "$schema": _SARIF_SCHEMA,
            "version": "2.1.0",
            "runs": [run],
        },
        indent=2,
    )


def json_report(result: LintResult, rules: List[Rule]) -> str:
    return json.dumps(
        {
            "ok": result.ok,
            "files_checked": result.files_checked,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "violations": [v.to_json() for v in result.violations],
            "rules": {
                r.code: {"name": r.name, "description": r.description}
                for r in rules
            },
        },
        indent=2,
    )
