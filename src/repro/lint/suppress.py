"""``# oblint:`` comment directives.

Five directive forms, all parsed from end-of-line (or own-line) comments:

* ``# oblint: disable=OBL001 — reason``      suppress rule(s) on this line
  (a reason after an em-dash/hyphen is MANDATORY; a bare disable is
  itself reported as OBL000)
* ``# oblint: secret``                        taint the assigned names
* ``# oblint: public``                        declassify the assigned names
* ``# oblint: secret-params=x,y``             taint listed parameters of
  the enclosing function (place inside the function, typically on the
  docstring line or first statement)
* ``# oblint: leaks=atom[,atom]``             declare a leakage contract
  for the enclosing function — the comment-marker twin of the
  ``@repro.leakage.leaks(...)`` decorator, for call sites that cannot
  carry a decorator (branches of a dispatcher, closures)

An own-line directive applies to the *next* code line, so long
statements can carry a readable suppression above them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

_DIRECTIVE = re.compile(
    r"#\s*oblint:\s*"
    r"(?P<kind>disable|secret-params|secret|public|leaks)"
    r"(?:\s*=\s*(?P<args>[\w*:,\s]+?))?"
    r"\s*(?:(?:—|–|--|-)\s*(?P<reason>.+))?$"
)


@dataclass
class Directives:
    """All oblint directives of one source file, keyed by line number."""

    #: line -> (rule codes or {"*"}, justification or None)
    disables: Dict[int, Tuple[Set[str], Optional[str]]] = field(
        default_factory=dict
    )
    secret_lines: Set[int] = field(default_factory=set)
    public_lines: Set[int] = field(default_factory=set)
    #: line -> parameter names declared secret
    secret_params: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: line -> leakage atoms declared for the enclosing function
    leaks: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    def suppresses(self, line: int, rule: str) -> bool:
        entry = self.disables.get(line)
        if entry is None:
            return False
        rules, _ = entry
        return rule in rules or "*" in rules

    def reason_for(self, line: int) -> Optional[str]:
        entry = self.disables.get(line)
        return entry[1] if entry else None


def parse_directives(text: str) -> Directives:
    """Scan every line of ``text`` for oblint directives."""
    out = Directives()
    lines = text.splitlines()
    for i, raw in enumerate(lines, start=1):
        m = _DIRECTIVE.search(raw)
        if m is None:
            continue
        # Own-line directives annotate the next code line.
        target = i
        if raw.lstrip().startswith("#"):
            target = i + 1
        kind = m.group("kind")
        args = m.group("args")
        reason = m.group("reason")
        if kind == "disable":
            rules = {
                r.strip() for r in (args or "*").split(",") if r.strip()
            }
            out.disables[target] = (rules or {"*"}, reason)
        elif kind == "secret":
            out.secret_lines.add(target)
        elif kind == "public":
            out.public_lines.add(target)
        elif kind == "secret-params":
            names = tuple(
                n.strip() for n in (args or "").split(",") if n.strip()
            )
            if names:
                out.secret_params[target] = names
        elif kind == "leaks":
            atoms = tuple(
                a.strip() for a in (args or "").split(",") if a.strip()
            )
            if atoms:
                out.leaks[target] = atoms
    return out
