"""``repro lint`` — obliviousness & channel-discipline static analysis.

An AST-based framework with repo-specific rules enforcing, at author
time, the structural invariants the transcript auditor (PR 2) checks
dynamically:

* **OBL001 secret-taint** — no secret-dependent control flow, indexing,
  or early returns in protocol modules.
* **OBL002 channel-discipline** — every cross-party byte flow goes
  through labelled ``Context.send``/``Transcript.send``, with an
  untainted byte count (no length leakage).
* **OBL003 randomness-discipline** — protocol randomness comes from the
  context RNG, never global ``random``/``np.random``/OS entropy.
* **OBL004 label-determinism** — no wall-clock, set-order, or ``id()``
  values in transcript labels or trace fingerprints.
* **OBL005 mode-parity** — REAL and SIMULATED back-ends emit the same
  transcript label literals.
* **OBL006 undeclared-leakage** — every reveal of tainted data (via
  the interprocedural taint closure) is covered by a declared
  ``@repro.leakage.leaks`` contract.
* **OBL007 contract-rot** — every declared atom is witnessed by the
  function's call closure.
* **OBL008 backend-contract-parity** — back-ends at an IR dispatch
  point match the ``BACKEND_CONTRACTS`` registry.

See docs/LINTING.md for the rule catalogue, the suppression policy
(``# oblint: disable=RULE — reason``), the contract vocabulary, and
the baseline workflow.
"""

from .contracts import declared_atoms
from .interproc import InterprocTaint, interproc_taint
from .registry import Rule, all_rules, register
from .runner import discover_files, lint_sources, run_lint
from .suppress import parse_directives
from .taint import NONDET_CONFIG, SECRET_CONFIG, FunctionTaint
from .violations import LintResult, Violation

__all__ = [
    "Rule",
    "register",
    "all_rules",
    "run_lint",
    "lint_sources",
    "discover_files",
    "parse_directives",
    "declared_atoms",
    "FunctionTaint",
    "InterprocTaint",
    "interproc_taint",
    "SECRET_CONFIG",
    "NONDET_CONFIG",
    "Violation",
    "LintResult",
]
