"""``repro lint`` — obliviousness & channel-discipline static analysis.

An AST-based framework with repo-specific rules enforcing, at author
time, the structural invariants the transcript auditor (PR 2) checks
dynamically:

* **OBL001 secret-taint** — no secret-dependent control flow, indexing,
  or early returns in protocol modules.
* **OBL002 channel-discipline** — every cross-party byte flow goes
  through labelled ``Context.send``/``Transcript.send``, with an
  untainted byte count (no length leakage).
* **OBL003 randomness-discipline** — protocol randomness comes from the
  context RNG, never global ``random``/``np.random``/OS entropy.
* **OBL004 label-determinism** — no wall-clock, set-order, or ``id()``
  values in transcript labels or trace fingerprints.
* **OBL005 mode-parity** — REAL and SIMULATED back-ends emit the same
  transcript label literals.

See docs/LINTING.md for the rule catalogue, the suppression policy
(``# oblint: disable=RULE — reason``), and the baseline workflow.
"""

from .registry import Rule, all_rules, register
from .runner import discover_files, lint_sources, run_lint
from .suppress import parse_directives
from .taint import NONDET_CONFIG, SECRET_CONFIG, FunctionTaint
from .violations import LintResult, Violation

__all__ = [
    "Rule",
    "register",
    "all_rules",
    "run_lint",
    "lint_sources",
    "discover_files",
    "parse_directives",
    "FunctionTaint",
    "SECRET_CONFIG",
    "NONDET_CONFIG",
    "Violation",
    "LintResult",
]
