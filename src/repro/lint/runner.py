"""Lint orchestration: file discovery, rule dispatch, suppressions,
baseline, and the ``repro lint`` CLI entry point.

The run pipeline is::

    discover .py files -> parse (AST + directives) -> run every rule
    -> drop violations with a justified inline suppression
       (an UNjustified suppression becomes an OBL000 finding)
    -> subtract the committed baseline
    -> report; exit 1 on any remaining finding
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .baseline import apply_baseline, load_baseline, write_baseline
from .project import Project, SourceFile, parse_source
from .registry import all_rules
from .reporters import json_report, text_report
from .violations import LintResult, Violation

DEFAULT_BASELINE = "lint-baseline.json"

#: Directory names never descended into.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".mypy_cache",
    ".pytest_cache",
    "build",
    "dist",
}


def discover_files(paths: Sequence[str]) -> List[Path]:
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if not _SKIP_DIRS & set(part for part in f.parts)
            )
        elif p.suffix == ".py":
            out.append(p)
    return out


def load_sources(
    files: Iterable[Path], root: Optional[Path] = None
) -> Tuple[List[SourceFile], List[Violation]]:
    """Parse every file; unparseable files become OBL000 findings."""
    root = root or Path.cwd()
    sources: List[SourceFile] = []
    errors: List[Violation] = []
    for f in files:
        try:
            rel = f.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = f.as_posix()
        try:
            text = f.read_text(encoding="utf-8")
            sources.append(parse_source(rel, text))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            errors.append(
                Violation(
                    rule="OBL000",
                    path=rel,
                    line=getattr(exc, "lineno", None) or 1,
                    col=0,
                    message=f"cannot analyse file: {exc}",
                    snippet="",
                )
            )
    return sources, errors


def lint_sources(
    sources: List[SourceFile],
    extra_violations: Sequence[Violation] = (),
    select: Optional[Sequence[str]] = None,
) -> Tuple[List[Violation], int]:
    """Run every (selected) rule; returns (violations, n_suppressed).

    Inline ``# oblint: disable`` directives are honoured here; a
    suppression without a justification is converted into an OBL000
    finding so silencing a rule always costs an explicit reason.
    """
    project = Project(sources)
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.code in wanted]
    raw: List[Violation] = list(extra_violations)
    for src in sources:
        for rule in rules:
            raw.extend(rule.check_file(src, project))

    kept: List[Violation] = []
    suppressed = 0
    flagged_missing_reason = set()
    by_path = {s.path: s for s in sources}
    for v in sorted(raw, key=lambda v: (v.path, v.line, v.rule)):
        src = by_path.get(v.path)
        if src is not None and src.directives.suppresses(v.line, v.rule):
            if src.directives.reason_for(v.line):
                suppressed += 1
                continue
            key = (v.path, v.line)
            if key not in flagged_missing_reason:
                flagged_missing_reason.add(key)
                kept.append(
                    Violation(
                        rule="OBL000",
                        path=v.path,
                        line=v.line,
                        col=v.col,
                        message=(
                            "suppression without a justification "
                            "(write '# oblint: disable=RULE — why')"
                        ),
                        snippet=src.snippet(v.line),
                    )
                )
            continue
        kept.append(v)
    return kept, suppressed


def run_lint(
    paths: Sequence[str],
    baseline_path: Optional[Path] = None,
    update_baseline: bool = False,
    select: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """The full pipeline over ``paths``; see module docstring."""
    files = discover_files(paths)
    sources, parse_errors = load_sources(files, root=root)
    violations, suppressed = lint_sources(
        sources, extra_violations=parse_errors, select=select
    )
    result = LintResult(
        suppressed=suppressed, files_checked=len(sources)
    )
    if update_baseline and baseline_path is not None:
        write_baseline(baseline_path, violations)
        result.baselined = len(violations)
        return result
    if baseline_path is not None:
        fresh, matched = apply_baseline(
            violations, load_baseline(baseline_path)
        )
        result.violations = fresh
        result.baselined = matched
    else:
        result.violations = violations
    return result


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def add_lint_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--format", choices=["text", "json"], default="text",
    )
    p.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help="committed baseline of grandfathered findings",
    )
    p.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline (report every finding)",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings",
    )
    p.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def cmd_lint(args) -> int:
    rules = all_rules()
    if args.list_rules:
        for r in rules:
            print(f"{r.code} [{r.name}] {r.description}")
        return 0
    baseline = None if args.no_baseline else Path(args.baseline)
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    result = run_lint(
        args.paths,
        baseline_path=baseline,
        update_baseline=args.write_baseline,
        select=select,
    )
    if args.write_baseline:
        print(
            f"baseline written to {args.baseline} "
            f"({result.baselined} entries)"
        )
        return 0
    if args.format == "json":
        print(json_report(result, rules))
    else:
        print(text_report(result, rules))
    return 0 if result.ok else 1


def main(argv=None) -> int:  # pragma: no cover - thin wrapper
    parser = argparse.ArgumentParser(
        prog="repro lint", description=__doc__
    )
    add_lint_arguments(parser)
    return cmd_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
