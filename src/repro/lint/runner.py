"""Lint orchestration: file discovery, rule dispatch, suppressions,
baseline, and the ``repro lint`` CLI entry point.

The run pipeline is::

    discover .py files -> parse (AST + directives) -> run every rule
    -> drop violations with a justified inline suppression
       (an UNjustified suppression becomes an OBL000 finding)
    -> subtract the committed baseline
    -> report; exit 1 on any remaining finding
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import (
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .baseline import (
    apply_baseline,
    load_baseline,
    prune_baseline,
    stale_entries,
    write_baseline,
)
from .project import Project, SourceFile, parse_source
from .registry import all_rules
from .reporters import json_report, sarif_report, text_report
from .violations import LintResult, Violation

DEFAULT_BASELINE = "lint-baseline.json"

#: Directory names never descended into.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".mypy_cache",
    ".pytest_cache",
    "build",
    "dist",
}


def discover_files(paths: Sequence[str]) -> List[Path]:
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if not _SKIP_DIRS & set(part for part in f.parts)
            )
        elif p.suffix == ".py":
            out.append(p)
    return out


def git_changed_files(
    root: Optional[Path] = None,
    runner: Optional[Callable[[Sequence[str]], str]] = None,
) -> List[Path]:
    """``.py`` files changed vs HEAD (staged + unstaged + untracked).

    The pre-commit fast path: lint only what this commit touches
    (``cmd_lint`` still feeds the full tree in as cross-file
    *context*, so OBL005/OBL008 and the interprocedural taint resolve
    correctly); CI remains the authoritative full-tree run.

    ``runner`` is injectable for tests; it receives an argv list and
    returns the command's stdout.
    """
    root = root or Path.cwd()

    if runner is None:
        def runner(argv: Sequence[str]) -> str:
            return subprocess.run(
                list(argv), cwd=root, check=True,
                capture_output=True, text=True,
            ).stdout

    out: List[Path] = []
    seen = set()
    for argv in (
        ["git", "diff", "--name-only", "--diff-filter=d", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        for line in runner(argv).splitlines():
            name = line.strip()
            if not name.endswith(".py") or name in seen:
                continue
            seen.add(name)
            p = root / name
            if p.is_file():
                out.append(p)
    return sorted(out)


def load_sources(
    files: Iterable[Path], root: Optional[Path] = None
) -> Tuple[List[SourceFile], List[Violation]]:
    """Parse every file; unparseable files become OBL000 findings."""
    root = root or Path.cwd()
    sources: List[SourceFile] = []
    errors: List[Violation] = []
    for f in files:
        try:
            rel = f.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = f.as_posix()
        try:
            text = f.read_text(encoding="utf-8")
            sources.append(parse_source(rel, text))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            errors.append(
                Violation(
                    rule="OBL000",
                    path=rel,
                    line=getattr(exc, "lineno", None) or 1,
                    col=0,
                    message=f"cannot analyse file: {exc}",
                    snippet="",
                )
            )
    return sources, errors


def lint_sources(
    sources: List[SourceFile],
    extra_violations: Sequence[Violation] = (),
    select: Optional[Sequence[str]] = None,
    context: Optional[Sequence[SourceFile]] = None,
) -> Tuple[List[Violation], int]:
    """Run every (selected) rule; returns (violations, n_suppressed).

    Inline ``# oblint: disable`` directives are honoured here; a
    suppression without a justification is converted into an OBL000
    finding so silencing a rule always costs an explicit reason.

    ``context`` adds files to the cross-file project index (call
    graph, label parity, contract registry) *without* linting them —
    the ``--changed`` fast path lints only a commit's files but still
    resolves against the whole tree.
    """
    project_sources = list(sources)
    if context:
        have = {s.path for s in project_sources}
        project_sources += [s for s in context if s.path not in have]
    project = Project(project_sources)
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.code in wanted]
    raw: List[Violation] = list(extra_violations)
    for src in sources:
        for rule in rules:
            raw.extend(rule.check_file(src, project))

    kept: List[Violation] = []
    suppressed = 0
    flagged_missing_reason = set()
    by_path = {s.path: s for s in sources}
    for v in sorted(raw, key=lambda v: (v.path, v.line, v.rule)):
        src = by_path.get(v.path)
        if src is not None and src.directives.suppresses(v.line, v.rule):
            if src.directives.reason_for(v.line):
                suppressed += 1
                continue
            key = (v.path, v.line)
            if key not in flagged_missing_reason:
                flagged_missing_reason.add(key)
                kept.append(
                    Violation(
                        rule="OBL000",
                        path=v.path,
                        line=v.line,
                        col=v.col,
                        message=(
                            "suppression without a justification "
                            "(write '# oblint: disable=RULE — why')"
                        ),
                        snippet=src.snippet(v.line),
                    )
                )
            continue
        kept.append(v)
    return kept, suppressed


def run_lint(
    paths: Sequence[str],
    baseline_path: Optional[Path] = None,
    update_baseline: bool = False,
    select: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
    check_baseline: bool = False,
    context_paths: Optional[Sequence[str]] = None,
) -> LintResult:
    """The full pipeline over ``paths``; see module docstring.

    With ``check_baseline``, stale baseline entries (grandfathered
    findings that no longer occur) become OBL000 failures — the
    baseline must shrink as the backlog is fixed.  ``context_paths``
    feed the cross-file index without being linted (see
    :func:`lint_sources`).
    """
    files = discover_files(paths)
    sources, parse_errors = load_sources(files, root=root)
    context: Optional[List[SourceFile]] = None
    if context_paths:
        context, _ = load_sources(
            discover_files(context_paths), root=root
        )
    violations, suppressed = lint_sources(
        sources, extra_violations=parse_errors, select=select,
        context=context,
    )
    result = LintResult(
        suppressed=suppressed, files_checked=len(sources)
    )
    if update_baseline and baseline_path is not None:
        write_baseline(baseline_path, violations)
        result.baselined = len(violations)
        return result
    if baseline_path is not None:
        fresh, matched = apply_baseline(
            violations, load_baseline(baseline_path)
        )
        result.violations = fresh
        result.baselined = matched
        if check_baseline:
            for entry in stale_entries(baseline_path, violations):
                result.violations.append(
                    Violation(
                        rule="OBL000",
                        path=entry.get("path", str(baseline_path)),
                        line=1,
                        col=0,
                        message=(
                            f"stale baseline entry for {entry['rule']} "
                            f"(x{entry['stale']}): the finding no "
                            "longer occurs — run "
                            "'repro lint --prune-baseline'"
                        ),
                        snippet=entry.get("snippet", ""),
                    )
                )
    else:
        result.violations = violations
    return result


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def add_lint_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
    )
    p.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help="committed baseline of grandfathered findings",
    )
    p.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline (report every finding)",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings",
    )
    p.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    p.add_argument(
        "--prune-baseline", action="store_true",
        help="drop baseline entries no current finding matches",
    )
    p.add_argument(
        "--check-baseline", action="store_true",
        help="fail on stale baseline entries (CI gate)",
    )
    p.add_argument(
        "--changed", action="store_true",
        help="lint only .py files changed vs HEAD (pre-commit mode)",
    )
    p.add_argument(
        "--plan", default=None, metavar="FILE",
        help="audit a serialised ExecPlan's composed leakage instead "
        "of linting source files",
    )
    p.add_argument(
        "--allow", action="append", default=None, metavar="ATOM",
        help="leakage atom the --plan audit may accept (repeatable)",
    )


def cmd_audit_plan(args) -> int:
    """``repro lint --plan FILE [--allow ATOM]...`` — plan audit."""
    # Imported here: the audit pulls in the (numpy-backed) exec layer,
    # which plain source linting never needs.
    from ..exec.audit import audit_plan
    from ..exec.ir import ExecPlan

    plan = ExecPlan.loads(Path(args.plan).read_text())
    allow = frozenset(args.allow or ())
    report = audit_plan(plan)
    if args.format == "json":
        print(json.dumps(report.to_json(allow), indent=2))
    else:
        name = report.plan_name or args.plan
        print(f"plan {name}: leakage summary "
              f"{sorted(report.summary) or '{}'}")
        for line in report.violations(allow):
            print(f"  FAIL {line}")
    return 0 if report.ok(allow) else 1


def cmd_lint(args) -> int:
    rules = all_rules()
    if args.list_rules:
        for r in rules:
            print(f"{r.code} [{r.name}] {r.description}")
        return 0
    if args.plan:
        return cmd_audit_plan(args)
    baseline = None if args.no_baseline else Path(args.baseline)
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    paths = args.paths
    context_paths: Optional[List[str]] = None
    if args.changed:
        changed = git_changed_files()
        if not changed:
            print("0 violations (no changed .py files)")
            return 0
        # Lint only the commit's files, but resolve cross-file rules
        # (label parity, call graph, contract registry) against the
        # full tree they will be merged into.
        context_paths = list(args.paths)
        paths = [str(p) for p in changed]
    if args.prune_baseline:
        if baseline is None:
            print("--prune-baseline requires a baseline file")
            return 2
        files = discover_files(paths)
        sources, parse_errors = load_sources(files)
        violations, _ = lint_sources(
            sources, extra_violations=parse_errors, select=select
        )
        kept, dropped = prune_baseline(baseline, violations)
        print(
            f"baseline pruned: {kept} kept, {dropped} stale "
            f"dropped ({args.baseline})"
        )
        return 0
    result = run_lint(
        paths,
        baseline_path=baseline,
        update_baseline=args.write_baseline,
        select=select,
        check_baseline=args.check_baseline,
        context_paths=context_paths,
    )
    if args.write_baseline:
        print(
            f"baseline written to {args.baseline} "
            f"({result.baselined} entries)"
        )
        return 0
    if args.format == "json":
        print(json_report(result, rules))
    elif args.format == "sarif":
        print(sarif_report(result, rules))
    else:
        print(text_report(result, rules))
    return 0 if result.ok else 1


def main(argv=None) -> int:  # pragma: no cover - thin wrapper
    parser = argparse.ArgumentParser(
        prog="repro lint", description=__doc__
    )
    add_lint_arguments(parser)
    return cmd_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
