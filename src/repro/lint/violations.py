"""Violation records and stable fingerprints.

A :class:`Violation` pins one finding to a file/line; its
:meth:`~Violation.fingerprint` deliberately excludes the line *number*
(hashing the rule, path, and source snippet instead) so a committed
baseline survives unrelated edits that shift code up or down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Violation:
    """One static-analysis finding."""

    rule: str  #: rule code, e.g. ``"OBL001"``
    path: str  #: repo-relative posix path
    line: int  #: 1-based line number
    col: int  #: 0-based column
    message: str
    #: The stripped source line, used for baseline fingerprinting.
    snippet: str = ""

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline."""
        raw = f"{self.rule}|{self.path}|{self.snippet}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class LintResult:
    """Outcome of one lint run, after suppressions and baseline."""

    violations: list = field(default_factory=list)  #: new findings
    suppressed: int = 0  #: silenced by justified inline directives
    baselined: int = 0  #: matched a committed baseline entry
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations
