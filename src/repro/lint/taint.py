"""Intra-procedural taint propagation over the AST.

One engine serves two rule families with different seeds:

* OBL001/OBL002 seed from *secret* sources (share arrays, OT outputs,
  ``# oblint: secret`` markers) and ask "does a secret reach a branch,
  an index, or a metered byte count?".
* OBL004 seeds from *nondeterminism* sources (wall clock, ``id()``,
  set-iteration order) and asks "does nondeterminism reach a transcript
  label?".

The analysis is a flow-insensitive fixpoint over local variable names —
deliberately conservative and simple (a name tainted anywhere in the
function stays tainted) with three escape hatches that keep the false-
positive rate workable: shape-reading attributes (``.shape``,
``.nbytes``) are clean, declassifier calls (``reveal*``, designated
reveals) are clean, and ``# oblint: public`` clears the assigned names.

Code dominated by an ``if ctx.mode == Mode.SIMULATED:`` test is exempt
from *control-flow* sinks: the simulated back-end legitimately computes
the functionality on cleartext while the transcript is charged from
public shapes only (see DESIGN.md, "Execution modes").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from .project import SourceFile, call_name

__all__ = [
    "TaintConfig",
    "FunctionTaint",
    "SECRET_CONFIG",
    "NONDET_CONFIG",
    "dotted_name",
    "mode_branch_kind",
    "simulated_exempt_ranges",
]


def dotted_name(expr: ast.expr) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class TaintConfig:
    """What seeds, propagates, and clears taint."""

    #: bare call names producing tainted values
    source_calls: FrozenSet[str] = frozenset()
    #: dotted call names (``time.time``) producing tainted values
    source_dotted: FrozenSet[str] = frozenset()
    #: attribute loads that ARE the secret (``x.alice`` share arrays)
    source_attrs: FrozenSet[str] = frozenset()
    #: calls whose result is clean even on tainted input
    declassifier_calls: FrozenSet[str] = frozenset()
    #: attribute reads that expose only public shape
    shape_attrs: FrozenSet[str] = frozenset(
        {"shape", "size", "nbytes", "ndim", "dtype"}
    )
    #: honour ``# oblint: secret`` / ``public`` / ``secret-params``
    use_markers: bool = False
    #: iterating a set literal / ``set()`` taints the loop target
    set_iteration_is_source: bool = False


#: Seeds for the obliviousness rules: secret-shared payloads, OT
#: outputs, and explicit annotations.  ``reconstruct`` is a source (the
#: cleartext of shared data); the ``reveal*`` family and the decoded
#: outputs of a garbled batch are *designated reveals* — public by
#: protocol design — hence declassifiers.
SECRET_CONFIG = TaintConfig(
    source_calls=frozenset(
        {
            "to_shared",
            "reconstruct",
            "transfer",
            "transfer_matrix",
            "transfer_segments",
        }
    ),
    source_attrs=frozenset({"alice", "bob"}),
    declassifier_calls=frozenset(
        {
            "len",
            "reveal",
            "reveal_vector",
            "reveal_nonzero_flags",
            "divide_reveal",
            "run_garbled_batch",
        }
    ),
    use_markers=True,
)

#: Seeds for the determinism rule: wall-clock, object identity, OS
#: entropy, and hash/set-iteration order.  ``sorted`` restores a
#: deterministic order, so it declassifies.
NONDET_CONFIG = TaintConfig(
    source_calls=frozenset({"id", "hash", "urandom", "getpid"}),
    source_dotted=frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "os.urandom",
            "os.getpid",
            "uuid.uuid1",
            "uuid.uuid4",
        }
    ),
    declassifier_calls=frozenset({"sorted", "len", "min", "max", "sum"}),
    set_iteration_is_source=True,
)


def mode_branch_kind(test: ast.expr) -> Optional[str]:
    """``"simulated"`` / ``"real"`` when ``test`` compares an execution
    mode against ``Mode.SIMULATED`` / ``Mode.REAL`` with ``==``."""
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Eq)
    ):
        return None
    for side in (test.left, test.comparators[0]):
        name = dotted_name(side)
        if name is not None and name.startswith("Mode."):
            kind = name.split(".", 1)[1].lower()
            if kind in ("simulated", "real"):
                return kind
    return None


def simulated_exempt_ranges(fn: ast.AST) -> List[Tuple[int, int]]:
    """Line ranges dominated by a SIMULATED-mode test (functionality
    simulation on cleartext — exempt from control-flow sinks)."""
    ranges: List[Tuple[int, int]] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        kind = mode_branch_kind(node.test)
        stmts: List[ast.stmt] = []
        if kind == "simulated":
            stmts = node.body
        elif kind == "real":
            stmts = node.orelse
        if stmts:
            ranges.append(
                (stmts[0].lineno, max(s.end_lineno or s.lineno for s in stmts))
            )
    return ranges


def _is_set_expr(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Set) or isinstance(expr, ast.SetComp):
        return True
    if isinstance(expr, ast.Call):
        return call_name(expr) in ("set", "frozenset")
    return False


@dataclass
class FunctionTaint:
    """Taint facts for one function definition."""

    fn: ast.AST
    src: SourceFile
    config: TaintConfig
    tainted: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        self._seed_params()
        self._fixpoint()

    # -- seeding --------------------------------------------------------

    def _seed_params(self) -> None:
        if not self.config.use_markers:
            return
        lo = self.fn.lineno
        hi = self.fn.end_lineno or lo
        for line, names in self.src.directives.secret_params.items():
            if lo <= line <= hi:
                self.tainted.update(names)

    # -- propagation ----------------------------------------------------

    def _fixpoint(self) -> None:
        for _ in range(10):
            before = len(self.tainted)
            for stmt in self._statements():
                self._transfer(stmt)
            if len(self.tainted) == before:
                break

    def _statements(self):
        stack: List[ast.AST] = list(
            ast.iter_child_nodes(self.fn)
        )
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(node, ast.stmt):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _transfer(self, stmt: ast.stmt) -> None:
        cfg = self.config
        markers = cfg.use_markers
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            names = set()
            for t in targets:
                names |= _target_names(t)
            if markers and stmt.lineno in self.src.directives.public_lines:
                self.tainted -= names
                return
            value = getattr(stmt, "value", None)
            seeded = (
                markers
                and stmt.lineno in self.src.directives.secret_lines
            )
            if seeded or (value is not None and self.is_tainted(value)):
                self.tainted |= names
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if self.is_tainted(stmt.iter) or (
                cfg.set_iteration_is_source and _is_set_expr(stmt.iter)
            ):
                self.tainted |= _target_names(stmt.target)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None and self.is_tainted(
                    item.context_expr
                ):
                    self.tainted |= _target_names(item.optional_vars)

    # -- expression taint ----------------------------------------------

    def is_tainted(self, expr: ast.expr) -> bool:
        cfg = self.config
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted
        if isinstance(expr, ast.Attribute):
            if expr.attr in cfg.shape_attrs:
                return False
            if expr.attr in cfg.source_attrs:
                return True
            return self.is_tainted(expr.value)
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            dotted = dotted_name(expr.func)
            if name in cfg.declassifier_calls:
                return False
            if name in cfg.source_calls or (
                dotted is not None and dotted in cfg.source_dotted
            ):
                return True
            if any(self.is_tainted(a) for a in expr.args):
                return True
            if any(
                self.is_tainted(k.value) for k in expr.keywords
            ):
                return True
            if isinstance(expr.func, ast.Attribute):
                return self.is_tainted(expr.func.value)
            return False
        if isinstance(expr, ast.Subscript):
            return self.is_tainted(expr.value) or self.is_tainted(
                expr.slice
            )
        if isinstance(expr, ast.BinOp):
            return self.is_tainted(expr.left) or self.is_tainted(
                expr.right
            )
        if isinstance(expr, ast.BoolOp):
            return any(self.is_tainted(v) for v in expr.values)
        if isinstance(expr, ast.UnaryOp):
            return self.is_tainted(expr.operand)
        if isinstance(expr, ast.Compare):
            return self.is_tainted(expr.left) or any(
                self.is_tainted(c) for c in expr.comparators
            )
        if isinstance(expr, ast.IfExp):
            return (
                self.is_tainted(expr.test)
                or self.is_tainted(expr.body)
                or self.is_tainted(expr.orelse)
            )
        if isinstance(expr, ast.JoinedStr):
            return any(self.is_tainted(v) for v in expr.values)
        if isinstance(expr, ast.FormattedValue):
            return self.is_tainted(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self.is_tainted(e) for e in expr.elts)
        if isinstance(expr, ast.Dict):
            return any(
                self.is_tainted(v)
                for v in list(expr.values)
                + [k for k in expr.keys if k is not None]
            )
        if isinstance(expr, ast.Starred):
            return self.is_tainted(expr.value)
        if isinstance(expr, ast.NamedExpr):
            return self.is_tainted(expr.value)
        if isinstance(expr, ast.Slice):
            return any(
                p is not None and self.is_tainted(p)
                for p in (expr.lower, expr.upper, expr.step)
            )
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            return self._comprehension_tainted(
                [expr.elt], expr.generators
            )
        if isinstance(expr, ast.DictComp):
            return self._comprehension_tainted(
                [expr.key, expr.value], expr.generators
            )
        return False

    def _comprehension_tainted(self, elts, generators) -> bool:
        added: Set[str] = set()
        try:
            for gen in generators:
                if self.is_tainted(gen.iter) or (
                    self.config.set_iteration_is_source
                    and _is_set_expr(gen.iter)
                ):
                    fresh = _target_names(gen.target) - self.tainted
                    self.tainted |= fresh
                    added |= fresh
                if any(self.is_tainted(i) for i in gen.ifs):
                    return True
            return any(self.is_tainted(e) for e in elts)
        finally:
            self.tainted -= added


def _target_names(target: ast.expr) -> Set[str]:
    """Names bound (or mutated through) by an assignment target.

    Only the *container* is tainted, never the coordinates used to
    address into it: ``recv[j] = secret`` taints ``recv``, not ``j``.
    """
    out: Set[str] = set()
    if isinstance(target, ast.Name):
        out.add(target.id)
    elif isinstance(target, (ast.Attribute, ast.Subscript)):
        # ``x.attr = tainted`` / ``x[i] = tainted`` taints ``x``.
        base = target.value
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if isinstance(base, ast.Name):
            out.add(base.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            out |= _target_names(elt)
    elif isinstance(target, ast.Starred):
        out |= _target_names(target.value)
    return out
