"""Rule registry.

A rule is a class with ``code``/``name``/``description`` and a
``check_file(src, project)`` generator of :class:`Violation`.  Register
with the :func:`register` decorator; the runner instantiates every
registered rule once per run.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from .project import Project, SourceFile
from .violations import Violation


class Rule:
    """Base class for lint rules."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check_file(
        self, src: SourceFile, project: Project
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def make(
        self, src: SourceFile, line: int, col: int, message: str
    ) -> Violation:
        return Violation(
            rule=self.code,
            path=src.path,
            line=line,
            col=col,
            message=message,
            snippet=src.snippet(line),
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    from . import rules  # noqa: F401  — importing registers the rules

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]
