"""OBL004: determinism of transcript labels and trace fingerprints.

The obliviousness audit compares transcripts across runs and across
twin databases byte-for-byte, and the execution tracer fingerprints
operator streams.  A wall-clock timestamp, an ``id()``-derived token,
``os.getpid()``, or the iteration order of a set flowing into a
*label* (or a fingerprint input) makes two identical runs look
different and poisons every downstream parity check.

The rule taints from nondeterminism sources
(:data:`~repro.lint.taint.NONDET_CONFIG`) and flags label arguments of
``send``/``section`` calls — and arguments of ``fingerprint`` calls —
that carry taint.  ``sorted(...)`` launders set order back to
deterministic.  Timing *measurements* are fine (they feed reported
seconds, never labels).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..project import Project, SourceFile, call_name, label_arg_of
from ..registry import Rule, register
from ..taint import NONDET_CONFIG, FunctionTaint
from ..violations import Violation


@register
class DeterminismRule(Rule):
    code = "OBL004"
    name = "label-determinism"
    description = (
        "No wall-clock, set-order, or id()-derived values in "
        "transcript labels or trace fingerprints."
    )

    def check_file(
        self, src: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not src.in_protocol_dirs:
            return
        for fn in src.functions():
            taint = FunctionTaint(fn, src, NONDET_CONFIG)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                label = label_arg_of(node)
                if label is not None and taint.is_tainted(label):
                    yield self.make(
                        src, node.lineno, node.col_offset,
                        "nondeterministic value flows into a "
                        "transcript label (breaks run-to-run and "
                        "twin-to-twin transcript parity)",
                    )
                elif name == "fingerprint" and any(
                    taint.is_tainted(a) for a in node.args
                ):
                    yield self.make(
                        src, node.lineno, node.col_offset,
                        "nondeterministic value flows into a trace "
                        "fingerprint",
                    )
