"""Rule implementations — importing this package registers them all."""

from . import determinism, parity, randomness, taint_rules  # noqa: F401
