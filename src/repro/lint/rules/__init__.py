"""Rule implementations — importing this package registers them all."""

from . import (  # noqa: F401
    determinism,
    leakage_rules,
    parity,
    randomness,
    taint_rules,
)
