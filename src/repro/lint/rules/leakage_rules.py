"""OBL006–OBL008: declared-leakage contract verification.

The contract system (:mod:`repro.leakage`, :mod:`repro.lint.contracts`)
states what each protocol entry point may reveal; these rules check the
declarations against the code:

* **OBL006 undeclared-leakage** — every call to a plaintext-
  materialising sink (:data:`repro.leakage.SINK_ATOMS`) on *tainted*
  data must sit inside a function whose contract declares the sink's
  atom.  Taint is the interprocedural closure
  (:mod:`repro.lint.interproc`), so a secret produced in one module and
  revealed in another is still caught.  Sinks in
  :data:`~repro.leakage.UNCONDITIONAL_SINKS` leak by construction and
  fire regardless of argument taint.
* **OBL007 contract-rot** — every atom a contract declares must be
  *witnessed* by the function: it names a sink primitive itself, calls
  one, or (transitively) calls a function that does.  An atom nothing
  in the call closure can produce means the contract has rotted — the
  leak was removed but the declaration stayed, silently over-budgeting
  every plan audit above it.  Unknown atoms (outside the closed
  vocabulary) are reported here too.
* **OBL008 backend-contract-parity** — the back-ends registered at an
  IR dispatch point (the ``BACKENDS`` tuple in
  :mod:`repro.core.semijoin`) must each have an entry in the statically
  parseable ``BACKEND_CONTRACTS`` registry, and the implementation a
  dispatch branch calls must not declare leakage beyond its back-end's
  registered contract — so adding a back-end cannot silently widen
  what a routed plan leaks.  Both literals are read from the analysed
  file set, which keeps single-file fixtures hermetic; the rule skips
  when no registry is present (partial-tree runs).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ...leakage import ATOMS, SINK_ATOMS, UNCONDITIONAL_SINKS
from ..contracts import declared_atoms
from ..interproc import interproc_taint
from ..project import FuncInfo, Project, SourceFile, call_name
from ..registry import Rule, register
from ..taint import FunctionTaint
from ..violations import Violation

_MAX_DEPTH = 10


def _shallow(fn: ast.AST):
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _sink_args_tainted(
    taint: Optional[FunctionTaint], node: ast.Call
) -> bool:
    if taint is None:
        return False
    return any(taint.is_tainted(a) for a in node.args) or any(
        taint.is_tainted(k.value) for k in node.keywords
    )


@register
class UndeclaredLeakageRule(Rule):
    code = "OBL006"
    name = "undeclared-leakage"
    description = (
        "Every reveal / plaintext materialisation of tainted data must "
        "be covered by a declared leakage contract (@leaks or "
        "'# oblint: leaks=')."
    )

    def check_file(
        self, src: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not src.in_protocol_dirs:
            return
        engine = interproc_taint(project)
        for fn in src.functions():
            covered = declared_atoms(fn, src) or frozenset()
            taint = engine.function_taint(fn)
            for node in _shallow(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                atom = SINK_ATOMS.get(name or "")
                if atom is None or atom in covered:
                    continue
                if name in UNCONDITIONAL_SINKS or _sink_args_tainted(
                    taint, node
                ):
                    yield self.make(
                        src, node.lineno, node.col_offset,
                        f"call to {name}() leaks '{atom}' but the "
                        f"enclosing function {fn.name}() declares no "
                        "such contract (add @leaks(...) or "
                        f"'# oblint: leaks={atom}')",
                    )


@register
class ContractRotRule(Rule):
    code = "OBL007"
    name = "contract-rot"
    description = (
        "Every declared leakage atom must be witnessed by the "
        "function's call closure; an unwitnessed contract over-budgets "
        "the plan audit."
    )

    def check_file(
        self, src: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not src.in_protocol_dirs:
            return
        for fn in src.functions():
            declared = declared_atoms(fn, src)
            if declared is None:
                continue
            unknown = declared - set(ATOMS)
            for atom in sorted(unknown):
                yield self.make(
                    src, fn.lineno, fn.col_offset,
                    f"unknown leakage atom '{atom}' in {fn.name}()'s "
                    f"contract; the vocabulary is {sorted(ATOMS)} "
                    "(repro.leakage.ATOMS)",
                )
            witnessed = _witness_closure(project, fn, src)
            for atom in sorted((declared - unknown) - witnessed):
                yield self.make(
                    src, fn.lineno, fn.col_offset,
                    f"contract rot: {fn.name}() declares '{atom}' but "
                    "nothing in its call closure can produce it — "
                    "remove the atom or restore the leak's "
                    "implementation",
                )


def _witness_memo(project: Project) -> Dict[int, FrozenSet[str]]:
    cached = getattr(project, "_witness_memo", None)
    if cached is None:
        cached = {}
        project._witness_memo = cached  # type: ignore[attr-defined]
    return cached


def _witness_closure(
    project: Project,
    fn: ast.AST,
    src: SourceFile,
    cls: Optional[str] = None,
    _depth: int = 0,
) -> FrozenSet[str]:
    """Atoms ``fn`` can produce: its own name as a sink primitive,
    direct sink calls, and the witnessed-or-declared atoms of resolved
    callees.  Taint-independent by design — a legitimately annotated
    wrapper must not flag just because the taint engine lost a flow."""
    memo = _witness_memo(project)
    key = id(fn)
    if key in memo:
        return memo[key]
    if _depth > _MAX_DEPTH:
        return frozenset()
    memo[key] = frozenset()  # in-progress marker breaks cycles
    atoms: Set[str] = set()
    name = getattr(fn, "name", None)
    if name in SINK_ATOMS:
        atoms.add(SINK_ATOMS[name])
    callees: Set[str] = set()
    for node in _shallow(fn):
        if isinstance(node, ast.Call):
            cname = call_name(node)
            if cname in SINK_ATOMS:
                atoms.add(SINK_ATOMS[cname])
            if cname is not None:
                callees.add(cname)
    class_ns = project.classes.get(cls or "", {})
    for cname in callees:
        for info in _resolve(project, cname, class_ns):
            atoms |= _witness_closure(
                project, info.node, info.file, info.cls, _depth + 1
            )
            atoms |= declared_atoms(info.node, info.file) or frozenset()
    result = frozenset(atoms)
    memo[key] = result
    return result


def _resolve(
    project: Project, name: str, class_ns: Dict[str, FuncInfo]
) -> List[FuncInfo]:
    if name in class_ns:
        return [class_ns[name]]
    infos = project.functions_by_name.get(name, [])
    if infos:
        return infos
    init = project.classes.get(name, {}).get("__init__")
    return [init] if init is not None else []


# ----------------------------------------------------------------------
# OBL008 — back-end contract parity at the IR dispatch point
# ----------------------------------------------------------------------


def _parse_registry(project: Project):
    """(backends, contracts) literals from the analysed file set.

    ``backends``: list of (src, lineno, tuple-of-names) for every
    module-level ``BACKENDS = ("...", ...)``.  ``contracts``: the
    merged ``BACKEND_CONTRACTS`` dict (name -> frozenset of atoms), or
    None when no registry is in the file set.
    """
    cached = getattr(project, "_backend_registry", None)
    if cached is not None:
        return cached
    backends = []
    contracts: Optional[Dict[str, FrozenSet[str]]] = None
    for f in project.files:
        for stmt in f.tree.body:
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                continue
            target = stmt.targets[0].id
            if target == "BACKENDS":
                names = _str_elements(stmt.value)
                if names is not None:
                    backends.append((f, stmt.lineno, tuple(names)))
            elif target == "BACKEND_CONTRACTS":
                parsed = _parse_contracts_dict(stmt.value)
                if parsed is not None:
                    contracts = dict(contracts or {})
                    contracts.update(parsed)
    cached = (backends, contracts)
    project._backend_registry = cached  # type: ignore[attr-defined]
    return cached


def _str_elements(expr: ast.expr) -> Optional[List[str]]:
    if not isinstance(expr, (ast.Tuple, ast.List)):
        return None
    out = []
    for e in expr.elts:
        if not (isinstance(e, ast.Constant) and isinstance(e.value, str)):
            return None
        out.append(e.value)
    return out


def _parse_contracts_dict(
    expr: ast.expr,
) -> Optional[Dict[str, FrozenSet[str]]]:
    if not isinstance(expr, ast.Dict):
        return None
    out: Dict[str, FrozenSet[str]] = {}
    for k, v in zip(expr.keys, expr.values):
        if not (isinstance(k, ast.Constant) and isinstance(k.value, str)):
            return None
        atoms = _frozenset_literal(v)
        if atoms is None:
            return None
        out[k.value] = atoms
    return out


def _frozenset_literal(expr: ast.expr) -> Optional[FrozenSet[str]]:
    """``frozenset()`` / ``frozenset({...})`` of string constants."""
    if not (
        isinstance(expr, ast.Call) and call_name(expr) == "frozenset"
    ):
        return None
    if not expr.args:
        return frozenset()
    inner = expr.args[0]
    elems = None
    if isinstance(inner, (ast.Set, ast.Tuple, ast.List)):
        elems = inner.elts
    if elems is None:
        return None
    out = set()
    for e in elems:
        if not (isinstance(e, ast.Constant) and isinstance(e.value, str)):
            return None
        out.add(e.value)
    return frozenset(out)


@register
class BackendContractParityRule(Rule):
    code = "OBL008"
    name = "backend-contract-parity"
    description = (
        "Back-ends registered at an IR dispatch point (BACKENDS) must "
        "have matching BACKEND_CONTRACTS entries, and no dispatch "
        "branch may call an implementation whose contract exceeds its "
        "back-end's registered leakage."
    )

    def check_file(
        self, src: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not src.in_protocol_dirs:
            return
        backends, contracts = _parse_registry(project)
        if contracts is None:
            return  # partial tree: no registry to check against
        all_names: Set[str] = set()
        for bsrc, lineno, names in backends:
            all_names |= set(names)
            if bsrc is not src:
                continue
            missing = sorted(set(names) - set(contracts))
            if missing:
                yield self.make(
                    src, lineno, 0,
                    f"back-end(s) {missing} registered in BACKENDS "
                    "have no BACKEND_CONTRACTS entry (every back-end "
                    "must declare its leakage model)",
                )
            extra = sorted(set(contracts) - set(names))
            if extra:
                yield self.make(
                    src, lineno, 0,
                    f"BACKEND_CONTRACTS declares back-end(s) {extra} "
                    "not registered in BACKENDS (stale registry "
                    "entry)",
                )
        if not all_names:
            return
        for fn in src.functions():
            yield from self._check_dispatch(
                src, project, fn, all_names, contracts
            )

    def _check_dispatch(
        self,
        src: SourceFile,
        project: Project,
        fn: ast.AST,
        backend_names: Set[str],
        contracts: Dict[str, FrozenSet[str]],
    ) -> Iterator[Violation]:
        for node in _shallow(fn):
            if not isinstance(node, ast.If):
                continue
            backend = _backend_test(node.test, backend_names)
            if backend is None:
                continue
            allowed = contracts.get(backend, frozenset())
            yield from self._check_branch(
                src, project, node.body, backend, allowed
            )
            # The else branch serves the remaining back-ends; a
            # further backend-test If inside it is handled by its own
            # iteration, so only plain else bodies are attributed here.
            rest = backend_names - {backend}
            if rest and node.orelse and not (
                len(node.orelse) == 1
                and isinstance(node.orelse[0], ast.If)
                and _backend_test(node.orelse[0].test, backend_names)
            ):
                rest_allowed = frozenset.intersection(
                    *(contracts.get(b, frozenset()) for b in rest)
                )
                label = "/".join(sorted(rest))
                yield from self._check_branch(
                    src, project, node.orelse, label, rest_allowed
                )

    def _check_branch(
        self,
        src: SourceFile,
        project: Project,
        stmts: List[ast.stmt],
        backend: str,
        allowed: FrozenSet[str],
    ) -> Iterator[Violation]:
        for stmt in stmts:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                cname = call_name(node)
                if cname is None:
                    continue
                for info in _resolve(
                    project, cname, {}
                ):
                    declared = declared_atoms(info.node, info.file)
                    if declared is None:
                        continue
                    excess = sorted(declared - allowed)
                    if excess:
                        yield self.make(
                            src, node.lineno, node.col_offset,
                            f"back-end '{backend}' dispatch calls "
                            f"{cname}() whose contract adds {excess} "
                            "beyond the registered contract "
                            f"{sorted(allowed)} — update "
                            "BACKEND_CONTRACTS or fix the "
                            "implementation",
                        )


def _backend_test(
    test: ast.expr, backend_names: Set[str]
) -> Optional[str]:
    """``<expr> == "linear"`` (either side) for a registered name."""
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Eq)
    ):
        return None
    for side in (test.left, test.comparators[0]):
        if isinstance(side, ast.Constant) and side.value in backend_names:
            return side.value
    return None
