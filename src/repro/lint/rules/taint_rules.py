"""OBL001 secret-taint and OBL002 channel discipline.

Both rules run the shared taint engine (:mod:`repro.lint.taint`) seeded
with :data:`~repro.lint.taint.SECRET_CONFIG` over every function of the
protocol directories.

* **OBL001** flags secret-dependent *control flow*: an ``if``/``while``/
  ternary/comprehension condition, an ``assert``, a ``match`` subject,
  or a subscript index computed from secret data.  Any of these makes
  the statement stream — and therefore timing, communication order, or
  an exception — depend on private values.  Blocks dominated by
  ``mode == Mode.SIMULATED`` are exempt (the simulation computes the
  functionality on cleartext; its transcript is charged from public
  shapes only).
* **OBL002** flags channel-discipline breaks: a metered ``send`` whose
  byte count is tainted (length leakage), a send without a non-empty
  label, any message-construction that bypasses the metered
  ``Context.send``/``Transcript.send`` path, and — outside the
  sanctioned channel implementations — any direct
  ``*.transcript.send(...)`` call, which would skip the session
  framing layer (:mod:`repro.runtime.session`) that supplies sequence
  numbers, checksums and fault handling.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..project import Project, SourceFile, call_name, label_arg_of
from ..registry import Rule, register
from ..taint import (
    SECRET_CONFIG,
    FunctionTaint,
    simulated_exempt_ranges,
)
from ..violations import Violation


def _protocol_functions(src: SourceFile):
    for fn in src.functions():
        yield fn, FunctionTaint(fn, src, SECRET_CONFIG)


def _in_ranges(line: int, ranges: List[Tuple[int, int]]) -> bool:
    return any(lo <= line <= hi for lo, hi in ranges)


@register
class SecretTaintRule(Rule):
    code = "OBL001"
    name = "secret-taint"
    description = (
        "No secret-dependent control flow, indexing, or early "
        "returns in protocol modules."
    )

    def check_file(
        self, src: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not src.in_protocol_dirs:
            return
        for fn, taint in _protocol_functions(src):
            if not taint.tainted and not self._has_inline_sources(fn):
                # Fast path: nothing seeded, nothing to flag.
                continue
            exempt = simulated_exempt_ranges(fn)
            yield from self._check_fn(src, fn, taint, exempt)

    @staticmethod
    def _has_inline_sources(fn: ast.AST) -> bool:
        """Could an expression be tainted without any tainted name?
        (source calls / source attrs used inline)"""
        cfg = SECRET_CONFIG
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and (
                node.attr in cfg.source_attrs
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and call_name(node) in cfg.source_calls
            ):
                return True
        return False

    def _check_fn(self, src, fn, taint, exempt):
        for node in ast.walk(fn):
            line = getattr(node, "lineno", 0)
            if line and _in_ranges(line, exempt):
                continue
            if isinstance(node, (ast.If, ast.While)):
                if taint.is_tainted(node.test):
                    yield self.make(
                        src, node.lineno, node.col_offset,
                        "secret-dependent branch condition "
                        "(control flow must be data-oblivious)",
                    )
            elif isinstance(node, ast.IfExp):
                if taint.is_tainted(node.test):
                    yield self.make(
                        src, node.lineno, node.col_offset,
                        "secret-dependent conditional expression",
                    )
            elif isinstance(node, ast.Assert):
                if taint.is_tainted(node.test):
                    yield self.make(
                        src, node.lineno, node.col_offset,
                        "assertion on secret data (raises "
                        "data-dependently)",
                    )
            elif isinstance(node, ast.Subscript):
                if taint.is_tainted(node.slice):
                    yield self.make(
                        src, node.lineno, node.col_offset,
                        "secret-dependent index (memory access "
                        "pattern leaks; route through OEP)",
                    )
            elif isinstance(node, ast.Match):
                if taint.is_tainted(node.subject):
                    yield self.make(
                        src, node.lineno, node.col_offset,
                        "secret-dependent match subject",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    if any(taint.is_tainted(i) for i in gen.ifs):
                        yield self.make(
                            src, node.lineno, node.col_offset,
                            "secret-dependent comprehension filter "
                            "(result length leaks)",
                        )
                        break


#: Modules allowed to touch the raw channel: the metered transcript
#: itself, the context router (which hands off to the session when one
#: is enabled), and the session framing layer — the single sanctioned
#: wrapper around ``Transcript.send``.  Everything else must call
#: ``ctx.send`` so framed delivery cannot be bypassed.
SANCTIONED_CHANNEL_IMPLS = (
    "mpc/transcript.py",
    "mpc/context.py",
    "runtime/session.py",
)


@register
class ChannelDisciplineRule(Rule):
    code = "OBL002"
    name = "channel-discipline"
    description = (
        "All cross-party bytes go through labelled Context.send / "
        "Transcript.send with an untainted byte count; only the "
        "sanctioned channel implementations touch the raw transcript."
    )

    def check_file(
        self, src: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not src.in_protocol_dirs:
            return
        sanctioned = src.path.endswith(SANCTIONED_CHANNEL_IMPLS)
        for fn, taint in _protocol_functions(src):
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name == "send":
                    yield from self._check_send(src, node, taint)
                    if not sanctioned and self._is_raw_transcript_send(
                        node
                    ):
                        yield self.make(
                            src, node.lineno, node.col_offset,
                            "direct Transcript.send bypasses the "
                            "session framing layer (sequence numbers, "
                            "checksums, fault handling); call "
                            "ctx.send instead",
                        )
                elif not sanctioned and self._bypasses_channel(node):
                    yield self.make(
                        src, node.lineno, node.col_offset,
                        "message constructed outside the metered "
                        "Context.send/Transcript.send channel",
                    )

    @staticmethod
    def _is_raw_transcript_send(node: ast.Call) -> bool:
        """``transcript.send(...)`` or ``<expr>.transcript.send(...)``."""
        if not isinstance(node.func, ast.Attribute):
            return False
        recv = node.func.value
        if isinstance(recv, ast.Name):
            return recv.id == "transcript"
        return isinstance(recv, ast.Attribute) and (
            recv.attr == "transcript"
        )

    def _check_send(self, src, node: ast.Call, taint):
        label = label_arg_of(node)
        if label is None:
            yield self.make(
                src, node.lineno, node.col_offset,
                "send without a label (every message must be "
                "attributable to a protocol section)",
            )
        elif isinstance(label, ast.Constant) and label.value == "":
            yield self.make(
                src, node.lineno, node.col_offset,
                "send with an empty label",
            )
        n_bytes = self._n_bytes_arg(node)
        if n_bytes is not None and taint.is_tainted(n_bytes):
            yield self.make(
                src, node.lineno, node.col_offset,
                "byte count of a metered send is secret-tainted "
                "(message length would leak private data)",
            )

    @staticmethod
    def _n_bytes_arg(node: ast.Call) -> Optional[ast.expr]:
        for k in node.keywords:
            if k.arg == "n_bytes":
                return k.value
        if len(node.args) >= 2:
            return node.args[1]
        return None

    @staticmethod
    def _bypasses_channel(node: ast.Call) -> bool:
        name = call_name(node)
        if name == "Message":
            return True
        if name == "append" and isinstance(node.func, ast.Attribute):
            inner = node.func.value
            return (
                isinstance(inner, ast.Attribute)
                and inner.attr == "messages"
            )
        return False
