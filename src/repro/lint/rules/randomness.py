"""OBL003: randomness discipline.

Protocol randomness must come from the context's deterministic,
metered source (``ctx.rng`` / ``ctx.random_bytes`` /
``ctx.random_ring_vector``): the obliviousness audit replays runs from
a seed, and any draw from global, unseeded randomness makes transcripts
unreproducible and smuggles an unmetered entropy channel into the
protocol.

Flagged inside ``mpc/``, ``core/``, ``exec/``:

* ``import random`` / ``from random import ...`` (suppressing the
  import line allowlists the whole module binding — that is the
  explicit-allowlist mechanism the deterministic Miller–Rabin check in
  ``mpc/modp.py`` uses);
* any ``np.random.*`` use except ``default_rng(seed)`` with an explicit
  seed argument (a seeded generator is deterministic and replayable);
* ``os.urandom`` / ``secrets.*`` (OS entropy bypasses the context RNG).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..project import Project, SourceFile
from ..registry import Rule, register
from ..taint import dotted_name
from ..violations import Violation


@register
class RandomnessRule(Rule):
    code = "OBL003"
    name = "randomness-discipline"
    description = (
        "Protocol randomness comes from the context RNG, not global "
        "random/np.random/os entropy."
    )

    def check_file(
        self, src: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not src.in_protocol_dirs:
            return
        # Pass 1: imports.  The violation is always emitted — the
        # runner's suppression layer decides whether it is silenced,
        # so allowlisting an import costs a justified inline directive
        # and shows up in the "suppressed" count.
        allowed_aliases: Set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in ("random", "secrets"):
                        if src.directives.suppresses(
                            node.lineno, self.code
                        ):
                            allowed_aliases.add(
                                alias.asname or alias.name.split(".")[0]
                            )
                        yield self.make(
                            src, node.lineno, node.col_offset,
                            f"import of {alias.name!r}: draw "
                            "protocol randomness from ctx.rng / "
                            "ctx.random_bytes instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] in (
                    "random",
                    "secrets",
                ):
                    yield self.make(
                        src, node.lineno, node.col_offset,
                        f"import from {node.module!r}: draw protocol "
                        "randomness from the context RNG instead",
                    )
        # Pass 2: uses.
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(src, node, allowed_aliases)

    def _check_call(
        self, src: SourceFile, node: ast.Call, allowed: Set[str]
    ):
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        root = parts[0]
        if root in ("random", "secrets") and root not in allowed:
            # Usage through an un-allowlisted module binding; the
            # import itself was already flagged, so stay quiet unless
            # the import is out of sight (e.g. function-local).
            return
        if root in ("np", "numpy") and len(parts) >= 3 and (
            parts[1] == "random"
        ):
            fn = parts[2]
            if fn == "default_rng" and node.args:
                return  # explicitly seeded: deterministic, replayable
            if fn == "Generator":
                return  # type reference, not a draw
            yield self.make(
                src, node.lineno, node.col_offset,
                f"global numpy randomness ({dotted}): use ctx.rng "
                "(or a seeded default_rng for public layout "
                "simulations)",
            )
        elif dotted == "os.urandom":
            yield self.make(
                src, node.lineno, node.col_offset,
                "os.urandom bypasses the context RNG (unmetered, "
                "unreplayable entropy)",
            )
