"""OBL005: REAL/SIMULATED mode parity of transcript labels.

The SIMULATED back-end must charge the transcript under exactly the
label strings the REAL back-end sends under — PR 3's transcript-parity
tests check this dynamically for the paths a test happens to execute;
this rule checks it structurally for every paired implementation.

Two pairing signals:

* **Branch pairing** — a function containing
  ``if ctx.mode == Mode.SIMULATED: ...`` has its SIMULATED side and its
  REAL side (the ``else`` or, when the branch returns, the rest of the
  block) resolved through the project call graph; the label-literal
  sets must agree.
* **Class pairing** — a mode dispatch whose branches return different
  constructors (``make_ot`` returning ``IknpExtension`` vs
  ``SimulatedOT``) pairs those classes: every method they share must
  emit the same labels.

Resolution through duck-typed call sites is two-valued (definite vs
possible, see :mod:`repro.lint.project`): a mismatch is reported only
when a label one side *definitely* emits is not even *possibly* emitted
by the other.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..project import FuncInfo, Project, SourceFile
from ..registry import Rule, register
from ..taint import mode_branch_kind
from ..violations import Violation


def _terminates(stmts: List[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _constructor_name(stmts: List[ast.stmt]) -> Optional[str]:
    """Class name when the statement list is ``return ClassName(...)``."""
    for stmt in stmts:
        if (
            isinstance(stmt, ast.Return)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
        ):
            name = stmt.value.func.id
            if name[:1].isupper():
                return name
    return None


@register
class ModeParityRule(Rule):
    code = "OBL005"
    name = "mode-parity"
    description = (
        "REAL and SIMULATED implementations of a paired primitive "
        "emit identical transcript label literals."
    )

    def check_file(
        self, src: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not src.in_protocol_dirs:
            return
        for fn in src.functions():
            info = self._info_for(project, fn)
            class_ns = project.classes.get(
                info.cls if info else "", {}
            )
            for sim, real, node in self._mode_sides(fn):
                pair = self._class_pair(sim, real)
                if pair is not None:
                    yield from self._check_class_pair(
                        src, project, node, *pair
                    )
                    continue
                if not sim or not real:
                    continue
                sd, sp = project.labels_of_statements(sim, class_ns)
                rd, rp = project.labels_of_statements(real, class_ns)
                sim_only = sd - rp
                real_only = rd - sp
                if sim_only or real_only:
                    detail = []
                    if sim_only:
                        detail.append(
                            "SIMULATED-only: " + ", ".join(sorted(sim_only))
                        )
                    if real_only:
                        detail.append(
                            "REAL-only: " + ", ".join(sorted(real_only))
                        )
                    yield self.make(
                        src, node.lineno, node.col_offset,
                        "mode branches emit different transcript "
                        "labels (" + "; ".join(detail) + ")",
                    )

    @staticmethod
    def _info_for(
        project: Project, fn: ast.AST
    ) -> Optional[FuncInfo]:
        for info in project.functions_by_name.get(fn.name, []):
            if info.node is fn:
                return info
        return None

    # -- side extraction ------------------------------------------------

    def _mode_sides(
        self, fn: ast.AST
    ) -> Iterator[Tuple[List[ast.stmt], List[ast.stmt], ast.If]]:
        """Yield (simulated_stmts, real_stmts, if_node) per mode test."""
        for block in self._statement_lists(fn):
            for i, stmt in enumerate(block):
                if not isinstance(stmt, ast.If):
                    continue
                kind = mode_branch_kind(stmt.test)
                if kind is None:
                    continue
                branch = stmt.body
                other = list(stmt.orelse)
                if not other and _terminates(branch):
                    other = block[i + 1 :]
                if kind == "simulated":
                    yield branch, other, stmt
                else:
                    yield other, branch, stmt

    @staticmethod
    def _statement_lists(fn: ast.AST) -> Iterator[List[ast.stmt]]:
        stack: List[ast.AST] = [fn]
        while stack:
            node = stack.pop()
            for name in ("body", "orelse", "finalbody"):
                block = getattr(node, name, None)
                if isinstance(block, list) and block:
                    yield block
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                stack.append(child)

    # -- class pairing --------------------------------------------------

    @staticmethod
    def _class_pair(sim, real) -> Optional[Tuple[str, str]]:
        s, r = _constructor_name(sim), _constructor_name(real)
        if s is not None and r is not None and s != r:
            return s, r
        return None

    def _check_class_pair(
        self,
        src: SourceFile,
        project: Project,
        node: ast.If,
        sim_cls: str,
        real_cls: str,
    ) -> Iterator[Violation]:
        sim_methods = project.classes.get(sim_cls, {})
        real_methods = project.classes.get(real_cls, {})
        for name in sorted(set(sim_methods) & set(real_methods)):
            if name.startswith("__"):
                continue
            sd, sp = project.labels_of_info(sim_methods[name])
            rd, rp = project.labels_of_info(real_methods[name])
            sim_only = sd - rp
            real_only = rd - sp
            if sim_only or real_only:
                detail = []
                if sim_only:
                    detail.append(
                        f"{sim_cls}-only: " + ", ".join(sorted(sim_only))
                    )
                if real_only:
                    detail.append(
                        f"{real_cls}-only: " + ", ".join(sorted(real_only))
                    )
                yield self.make(
                    src, node.lineno, node.col_offset,
                    f"paired back-ends {sim_cls}/{real_cls} disagree "
                    f"on labels of .{name}() ("
                    + "; ".join(detail) + ")",
                )
