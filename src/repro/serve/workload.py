"""Scripted multi-tenant workloads over the TPC-H benchmark queries.

Helpers for the ``repro serve`` CLI and the isolation test battery:
build per-tenant :class:`~repro.serve.session.QueryRequest`\\ s over
prepared TPC-H queries, run them concurrently through a
:class:`~repro.serve.service.QueryService`, and compare every
session's :class:`~repro.runtime.chaos.RunProfile` against its **solo**
run — the same request executed alone.  The serving layer's hard
guarantee is that the two are byte-identical: interleaving, plan-cache
sharing, and other tenants' faults must not shift a single transcript
byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..mpc.context import Mode
from ..runtime.chaos import RunProfile
from .plancache import PlanCache
from .service import QueryService, ServiceReport
from .session import DONE, QueryRequest, QuerySession

__all__ = [
    "TPCH_QUERIES",
    "tpch_request",
    "run_solo",
    "WorkloadResult",
    "run_workload",
]

TPCH_QUERIES = ("Q3", "Q10", "Q18", "Q8", "Q9")


def tpch_request(
    query: str,
    tenant: str,
    scale_mb: float = 0.1,
    real: bool = False,
    policy: str = "program",
    seed: int = 7,
    group_bits: int = 1536,
    name: Optional[str] = None,
    faults: Optional[Any] = None,
    backend: str = "yannakakis",
) -> QueryRequest:
    """A :class:`QueryRequest` over one prepared TPC-H query.  The
    dataset and query are prepared eagerly (deterministic given
    ``scale_mb``); the relations are rebuilt per run, so requests are
    independent.  ``backend`` is the join back-end policy the session's
    engine runs under (see docs/BACKENDS.md)."""
    from ..tpch import PREPARED, generate

    dataset = generate(scale_mb)
    prepared = PREPARED[query.upper()](dataset)

    def run(engine: Any) -> Any:
        engine.backend = backend
        result, _stats = prepared.run_secure(engine)
        return result

    return QueryRequest(
        tenant=tenant,
        name=name if name is not None else query.upper(),
        run=run,
        ell=prepared.ell,
        mode=Mode.REAL if real else Mode.SIMULATED,
        policy=policy,
        group_bits=group_bits,
        seed=seed,
        faults=faults,
    )


def run_solo(
    request: QueryRequest,
    plan_cache: Optional[PlanCache] = None,
) -> QuerySession:
    """Run one request alone, through the *same* session machinery the
    service uses (baton thread, yield points, runtime session), so its
    profile is directly comparable to a concurrent run's."""
    session = QuerySession(request, plan_cache=plan_cache)
    session.start()
    while session.step():
        pass
    return session


@dataclass
class WorkloadResult:
    """A concurrent workload run plus its per-session solo deltas."""

    report: ServiceReport
    sessions: List[QuerySession] = field(default_factory=list)
    #: request name -> "" (byte-identical to solo) or the first
    #: material difference (:meth:`RunProfile.diff`); only populated
    #: when the workload ran with ``check_solo=True``.
    solo_deltas: Dict[str, str] = field(default_factory=dict)

    @property
    def isolated(self) -> bool:
        return all(d == "" for d in self.solo_deltas.values())

    def to_json(self) -> Dict[str, Any]:
        blob = self.report.to_json()
        if self.solo_deltas:
            blob["solo_deltas"] = dict(self.solo_deltas)
            blob["isolated"] = self.isolated
        return blob


def run_workload(
    requests: Sequence[QueryRequest],
    interleave: str = "round_robin",
    budgets: Optional[Dict[str, Tuple[int, int]]] = None,
    check_solo: bool = False,
) -> WorkloadResult:
    """Submit every request to one service, run to completion, and
    (optionally) re-run each completed request solo to verify its
    transcript is byte-identical.

    ``budgets`` maps tenant -> (byte_capacity, round_capacity); absent
    tenants run unmetered.
    """
    service = QueryService(interleave=interleave)
    if budgets:
        for tenant, (byte_cap, round_cap) in budgets.items():
            service.register_tenant(tenant, byte_cap, round_cap)
    for request in requests:
        service.submit(request)
    report = service.run()
    result = WorkloadResult(report=report, sessions=list(service.sessions))
    if check_solo:
        for session in service.sessions:
            if session.state != DONE or session.profile is None:
                continue
            solo = run_solo(session.request)
            assert solo.profile is not None
            result.solo_deltas[session.request.name] = _diff(
                session.profile, solo.profile
            )
    return result


def _diff(concurrent: RunProfile, solo: RunProfile) -> str:
    return concurrent.diff(solo)
