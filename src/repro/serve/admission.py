"""Admission control: per-tenant byte/round budgets.

Every priced request is charged *before* any protocol bytes move: the
service prices the query with the cost estimator
(:func:`repro.bench.estimator.estimate_query_cost` — exact on bytes,
upper-estimate on rounds), and the :class:`AdmissionController` decides

* **ADMIT** — the estimate fits the tenant's currently-available
  budget; the estimate is *reserved* so concurrent requests cannot
  double-spend, and :meth:`~AdmissionController.settle` later swaps
  the reservation for the actually-metered transcript cost.
* **QUEUE** — the estimate fits the tenant's total capacity but not
  what is available right now; the request parks in a FIFO queue and
  is re-examined after every settle/replenish
  (:meth:`~AdmissionController.drain`).
* **REJECT** — the estimate exceeds the tenant's total capacity; no
  amount of waiting makes it fit.  Rejection happens before a
  :class:`~repro.mpc.context.Context` even exists, so a rejected
  query moves **zero** protocol bytes (pinned by
  ``tests/test_serve.py``).

Budgets are per accounting window: :meth:`~AdmissionController.replenish`
zeroes the spent counters (a new window) and drains the queue.
Unpriced requests (cost ``None`` — e.g. composed TPC-H pipelines the
single-plan estimator cannot price) admit by default and settle their
actual metered cost; set ``require_priced`` on the tenant's budget to
reject them instead.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bench.estimator import CostEstimate

__all__ = ["ADMIT", "QUEUE", "REJECT", "TenantBudget", "AdmissionController"]

ADMIT = "admit"
QUEUE = "queue"
REJECT = "reject"


@dataclass
class TenantBudget:
    """One tenant's budget for the current accounting window.

    ``byte_capacity``/``round_capacity`` are the window totals;
    ``*_spent`` is settled usage, ``*_reserved`` is held by admitted
    but not-yet-settled requests."""

    tenant: str
    byte_capacity: int
    round_capacity: int
    bytes_spent: int = 0
    rounds_spent: int = 0
    bytes_reserved: int = 0
    rounds_reserved: int = 0
    require_priced: bool = False
    #: Static leakage budget: the set of leakage atoms this tenant's
    #: plans may carry (``None`` = unpinned, any route admits;
    #: ``frozenset()`` = fully-oblivious routes only).  Checked by
    #: :meth:`AdmissionController.decide` against the plan's composed
    #: :func:`~repro.exec.audit.audit_routes` summary — *before* any
    #: protocol byte moves, so an over-leaky plan is rejected
    #: statically, not caught mid-run.
    allowed_leakage: Optional[FrozenSet[str]] = None
    admitted: int = 0
    queued: int = 0
    rejected: int = 0
    leakage_rejected: int = 0

    @property
    def bytes_available(self) -> int:
        return self.byte_capacity - self.bytes_spent - self.bytes_reserved

    @property
    def rounds_available(self) -> int:
        return self.round_capacity - self.rounds_spent - self.rounds_reserved

    def snapshot(self) -> Dict[str, int]:
        return {
            "byte_capacity": self.byte_capacity,
            "round_capacity": self.round_capacity,
            "bytes_spent": self.bytes_spent,
            "rounds_spent": self.rounds_spent,
            "bytes_reserved": self.bytes_reserved,
            "rounds_reserved": self.rounds_reserved,
            "admitted": self.admitted,
            "queued": self.queued,
            "rejected": self.rejected,
            "leakage_rejected": self.leakage_rejected,
        }


@dataclass
class _QueuedRequest:
    tenant: str
    cost: Optional["CostEstimate"]
    payload: Any = None


@dataclass
class AdmissionController:
    """Prices requests against per-tenant budgets; owns the wait queue."""

    budgets: Dict[str, TenantBudget] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.lock = threading.RLock()
        self.waiting: Deque[_QueuedRequest] = deque()

    def register(
        self,
        tenant: str,
        byte_capacity: int,
        round_capacity: int = 1 << 30,
        require_priced: bool = False,
        allowed_leakage: Optional[FrozenSet[str]] = None,
    ) -> TenantBudget:
        budget = TenantBudget(
            tenant=tenant,
            byte_capacity=int(byte_capacity),
            round_capacity=int(round_capacity),
            require_priced=require_priced,
            allowed_leakage=(
                None
                if allowed_leakage is None
                else frozenset(allowed_leakage)
            ),
        )
        with self.lock:
            self.budgets[tenant] = budget
        return budget

    # -- the decision ------------------------------------------------------

    def decide(
        self,
        tenant: str,
        cost: Optional["CostEstimate"],
        payload: Any = None,
        leakage: Optional[FrozenSet[str]] = None,
    ) -> str:
        """ADMIT / QUEUE / REJECT ``payload`` for ``tenant`` at the
        estimated ``cost``.  On ADMIT the cost is reserved; on QUEUE
        the request is parked for :meth:`drain`.

        ``leakage`` is the request's statically-audited plan leakage
        summary (``None`` for opaque ``run=`` requests, which cannot
        be audited).  A tenant pinned to an ``allowed_leakage`` budget
        rejects any plan whose summary exceeds it — like the capacity
        check, no amount of waiting makes an over-leaky route fit, so
        this is REJECT, never QUEUE."""
        with self.lock:
            budget = self.budgets.get(tenant)
            if budget is None:
                # Unmetered tenant: no budget, everything admits.
                return ADMIT
            if (
                budget.allowed_leakage is not None
                and leakage is not None
                and leakage - budget.allowed_leakage
            ):
                budget.rejected += 1
                budget.leakage_rejected += 1
                return REJECT
            if cost is None:
                if budget.require_priced:
                    budget.rejected += 1
                    return REJECT
                budget.admitted += 1
                return ADMIT
            if (
                cost.total > budget.byte_capacity
                or cost.rounds > budget.round_capacity
            ):
                budget.rejected += 1
                return REJECT
            if (
                cost.total > budget.bytes_available
                or cost.rounds > budget.rounds_available
            ):
                budget.queued += 1
                self.waiting.append(_QueuedRequest(tenant, cost, payload))
                return QUEUE
            self._reserve(budget, cost)
            budget.admitted += 1
            return ADMIT

    def _reserve(self, budget: TenantBudget, cost: "CostEstimate") -> None:
        budget.bytes_reserved += cost.total
        budget.rounds_reserved += cost.rounds

    # -- settlement --------------------------------------------------------

    def settle(
        self,
        tenant: str,
        cost: Optional["CostEstimate"],
        actual_bytes: int,
        actual_rounds: int,
    ) -> None:
        """Swap the reservation for the actually-metered cost once the
        request finishes (or release it, ``actual=0``, if the request
        never ran)."""
        with self.lock:
            budget = self.budgets.get(tenant)
            if budget is None:
                return
            if cost is not None:
                budget.bytes_reserved -= cost.total
                budget.rounds_reserved -= cost.rounds
            budget.bytes_spent += int(actual_bytes)
            budget.rounds_spent += int(actual_rounds)

    def drain(self) -> List[Any]:
        """Re-examine the wait queue FIFO; reserve-and-return the
        payloads that now fit.  Requests that still do not fit keep
        their queue position (per-tenant FIFO order is preserved; a
        stuck tenant does not block others)."""
        with self.lock:
            admitted: List[Any] = []
            blocked_tenants: set = set()
            still_waiting: Deque[_QueuedRequest] = deque()
            while self.waiting:
                req = self.waiting.popleft()
                budget = self.budgets.get(req.tenant)
                fits = (
                    budget is None
                    or req.cost is None
                    or (
                        req.tenant not in blocked_tenants
                        and req.cost.total <= budget.bytes_available
                        and req.cost.rounds <= budget.rounds_available
                    )
                )
                if fits:
                    if budget is not None and req.cost is not None:
                        self._reserve(budget, req.cost)
                        budget.admitted += 1
                    admitted.append(req.payload)
                else:
                    blocked_tenants.add(req.tenant)
                    still_waiting.append(req)
            self.waiting = still_waiting
            return admitted

    def replenish(self, tenant: Optional[str] = None) -> List[Any]:
        """Start a new accounting window (for one tenant, or all) and
        drain the queue.  Returns the newly-admitted payloads."""
        with self.lock:
            targets = (
                [self.budgets[tenant]]
                if tenant is not None
                else list(self.budgets.values())
            )
            for budget in targets:
                budget.bytes_spent = 0
                budget.rounds_spent = 0
            return self.drain()

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        with self.lock:
            return {t: b.snapshot() for t, b in self.budgets.items()}
