"""Multi-tenant query serving: sessions, shared plan cache, admission.

The serving layer turns the single-query engine into a service:

* :mod:`repro.serve.fingerprint` / :mod:`repro.serve.plancache` —
  canonical plan fingerprints and the cross-tenant cache of compiled
  :class:`~repro.exec.ir.ExecPlan`\\ s plus shared gadget setup
  material (:class:`~repro.mpc.runcache.SetupStore`);
* :mod:`repro.serve.admission` — per-tenant byte/round budgets priced
  by the cost estimator, enforced before any protocol bytes move;
* :mod:`repro.serve.session` / :mod:`repro.serve.service` —
  baton-threaded query sessions interleaved deterministically by the
  coordinator, with crash containment per session;
* :mod:`repro.serve.workload` / :mod:`repro.serve.chaos` — scripted
  TPC-H multi-tenant workloads with solo-run byte-comparison, and the
  tenant-isolation chaos sweep.

The invariant every piece preserves (and the test battery pins): a
tenant's transcript is **byte-identical** to its solo run — across
interleaving policies, plan-cache hits, budget pressure, and faults or
crashes in other tenants' sessions.
"""

from .admission import ADMIT, QUEUE, REJECT, AdmissionController, TenantBudget
from .chaos import IsolationOutcome, IsolationReport, isolation_sweep
from .fingerprint import fingerprint_document, plan_fingerprint
from .plancache import PlanCache, PlanEntry
from .service import INTERLEAVE_POLICIES, QueryService, ServiceReport
from .session import (
    ADMITTED,
    DONE,
    FAILED,
    QUEUED,
    REJECTED,
    RUNNING,
    QueryRequest,
    QuerySession,
)
from .workload import (
    TPCH_QUERIES,
    WorkloadResult,
    run_solo,
    run_workload,
    tpch_request,
)

__all__ = [
    "ADMIT",
    "QUEUE",
    "REJECT",
    "ADMITTED",
    "DONE",
    "FAILED",
    "QUEUED",
    "REJECTED",
    "RUNNING",
    "AdmissionController",
    "TenantBudget",
    "IsolationOutcome",
    "IsolationReport",
    "isolation_sweep",
    "fingerprint_document",
    "plan_fingerprint",
    "PlanCache",
    "PlanEntry",
    "INTERLEAVE_POLICIES",
    "QueryService",
    "ServiceReport",
    "QueryRequest",
    "QuerySession",
    "TPCH_QUERIES",
    "WorkloadResult",
    "run_solo",
    "run_workload",
    "tpch_request",
]
