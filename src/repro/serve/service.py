"""The multi-tenant query service coordinator.

``submit`` prices a request with the cost estimator and routes it
through admission control — **before** any
:class:`~repro.mpc.context.Context` exists, so rejected and queued
requests move zero protocol bytes.  Admitted requests become
:class:`~repro.serve.session.QuerySession`\\ s sharing one
:class:`~repro.serve.plancache.PlanCache`; ``run`` then interleaves
every active session on the baton protocol, one exec-plan step at a
time, under one of two policies:

* ``"round_robin"`` — cycle through active sessions in submission
  order;
* ``"clock"`` — always step the session whose virtual clock is
  furthest behind (ties broken by submission order), the fair-share
  analogue of the scheduler's stages policy.

Both are deterministic: the interleaving is a pure function of the
submission sequence, so a service run is exactly reproducible.  When a
session finishes — completed, aborted, or crashed — its actually
metered cost is settled against its tenant's budget and the admission
queue is drained, which may start new sessions mid-run.  A failed
session is contained: its worker parks permanently, its error is
recorded on the session, and every other session's transcript is
unaffected (pinned by ``tests/test_serve_isolation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, List, Optional

from .admission import ADMIT, REJECT, AdmissionController
from .plancache import PlanCache
from .session import ADMITTED, REJECTED, QueryRequest, QuerySession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bench.estimator import CostEstimate

__all__ = ["INTERLEAVE_POLICIES", "ServiceReport", "QueryService"]

INTERLEAVE_POLICIES = ("round_robin", "clock")


@dataclass
class ServiceReport:
    """Everything one service run produced."""

    sessions: List[Dict[str, Any]] = field(default_factory=list)
    admission: Dict[str, Dict[str, int]] = field(default_factory=dict)
    plan_cache: Dict[str, int] = field(default_factory=dict)
    interleave: str = "round_robin"
    n_steps: int = 0

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.sessions:
            out[s["state"]] = out.get(s["state"], 0) + 1
        return out

    def to_json(self) -> Dict[str, Any]:
        return {
            "interleave": self.interleave,
            "n_steps": self.n_steps,
            "counts": self.counts,
            "sessions": list(self.sessions),
            "admission": dict(self.admission),
            "plan_cache": dict(self.plan_cache),
        }

    def summary(self) -> str:
        c = self.counts
        parts = ", ".join(f"{n} {state}" for state, n in sorted(c.items()))
        return (
            f"{len(self.sessions)} sessions ({parts}); "
            f"{self.n_steps} interleaved steps; "
            f"plan cache {self.plan_cache.get('plan_hits', 0)} hits / "
            f"{self.plan_cache.get('plan_misses', 0)} misses"
        )


class QueryService:
    """Accepts tenant query requests, admits them against budgets, and
    interleaves the admitted sessions deterministically."""

    def __init__(
        self,
        interleave: str = "round_robin",
        plan_cache: Optional[PlanCache] = None,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        if interleave not in INTERLEAVE_POLICIES:
            raise ValueError(
                f"unknown interleave {interleave!r}; "
                f"expected one of {INTERLEAVE_POLICIES}"
            )
        self.interleave = interleave
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.sessions: List[QuerySession] = []
        self.rejected: List[QueryRequest] = []
        self._rr_next = 0
        self._n_steps = 0

    # -- admission ---------------------------------------------------------

    def register_tenant(
        self,
        tenant: str,
        byte_capacity: int,
        round_capacity: int = 1 << 30,
        require_priced: bool = False,
        allowed_leakage: Optional[FrozenSet[str]] = None,
    ) -> None:
        """``allowed_leakage`` pins the tenant to a static leakage
        budget: every plan-bearing request is audited at submit time
        (:func:`~repro.exec.audit.audit_routes`) and rejected before
        any protocol byte moves if its composed summary exceeds the
        budget.  ``frozenset()`` admits only fully-oblivious routes;
        ``None`` (default) leaves the tenant unpinned."""
        self.admission.register(
            tenant,
            byte_capacity,
            round_capacity,
            require_priced,
            allowed_leakage=allowed_leakage,
        )

    def price(self, request: QueryRequest) -> Optional["CostEstimate"]:
        """The request's cost: declared if present, estimated for plan
        queries, ``None`` (unpriced) for opaque ``run=`` requests."""
        if request.cost is not None:
            return request.cost
        if request.query is None:
            return None
        from ..bench.estimator import estimate_query_cost

        return estimate_query_cost(
            request.query,
            out_size=request.out_size_bound,
            group_bits=request.group_bits,
        )

    def plan_leakage(self, request: QueryRequest) -> Optional[FrozenSet[str]]:
        """The statically-audited leakage summary of the plan a secure
        run of ``request`` would execute (``None`` for opaque ``run=``
        requests, which carry no auditable plan)."""
        if request.query is None:
            return None
        from ..exec.audit import audit_routes

        query = request.query
        return audit_routes(
            query.plan(),
            query.backend_assignments(),
            dict(query.owners),
        ).summary

    def submit(self, request: QueryRequest) -> str:
        """Price, audit, decide, and (on ADMIT) build the session.
        Returns the admission decision."""
        cost = self.price(request)
        decision = self.admission.decide(
            request.tenant,
            cost,
            payload=(request, cost),
            leakage=self.plan_leakage(request),
        )
        if decision == ADMIT:
            self._build_session(request, cost)
        elif decision == REJECT:
            self.rejected.append(request)
        return decision

    def _build_session(
        self, request: QueryRequest, cost: Optional["CostEstimate"]
    ) -> QuerySession:
        session = QuerySession(request, plan_cache=self.plan_cache)
        session.cost = cost
        self.sessions.append(session)
        return session

    def replenish(self, tenant: Optional[str] = None) -> int:
        """New budget window; admits what the queue now allows.
        Returns how many queued requests were admitted."""
        admitted = self.admission.replenish(tenant)
        for request, cost in admitted:
            self._build_session(request, cost)
        return len(admitted)

    # -- the interleaved run ----------------------------------------------

    def run(self) -> ServiceReport:
        """Drive every admitted session to completion, one step at a
        time under the interleave policy."""
        for session in self.sessions:
            if session.state == ADMITTED:
                session.start()
        active = [s for s in self.sessions if not s.done]
        while active:
            session = self._pick(active)
            session.step()
            self._n_steps += 1
            if session.done:
                self._settle(session)
                active = [s for s in self.sessions if not s.done]
        return self.report()

    def _pick(self, active: List[QuerySession]) -> QuerySession:
        if self.interleave == "clock":
            # Least-advanced virtual clock first; submission order
            # breaks ties, so the pick sequence is deterministic.
            return min(
                active,
                key=lambda s: (
                    s.runtime_session.clock.now,
                    self.sessions.index(s),
                ),
            )
        # round_robin over the full submission list, skipping done.
        n = len(self.sessions)
        for offset in range(n):
            candidate = self.sessions[(self._rr_next + offset) % n]
            if candidate in active:
                self._rr_next = (
                    self.sessions.index(candidate) + 1
                ) % n
                return candidate
        return active[0]  # pragma: no cover - active is non-empty

    def _settle(self, session: QuerySession) -> None:
        """Charge the tenant what the session actually metered (even a
        failed run's partial transcript), release its reservation, and
        drain the admission queue — a finished session may free budget
        for a queued one, which starts immediately."""
        transcript = session.ctx.transcript
        self.admission.settle(
            session.request.tenant,
            session.cost,
            actual_bytes=sum(m.n_bytes for m in transcript.messages),
            actual_rounds=transcript.rounds,
        )
        for request, cost in self.admission.drain():
            self._build_session(request, cost).start()

    # -- reporting ---------------------------------------------------------

    def report(self) -> ServiceReport:
        return ServiceReport(
            sessions=[s.summary() for s in self.sessions]
            + [
                {
                    "tenant": r.tenant,
                    "request": r.name,
                    "state": REJECTED,
                    "n_messages": 0,
                    "total_bytes": 0,
                }
                for r in self.rejected
            ],
            admission=self.admission.snapshot(),
            plan_cache=self.plan_cache.stats(),
            interleave=self.interleave,
            n_steps=self._n_steps,
        )
