"""Tenant-isolation chaos sweeps.

The serving layer's hard guarantee: **a crashed or faulted session
leaves every other tenant's transcript byte-identical to its solo
run.**  This module proves it the same way the single-session chaos
harness (:mod:`repro.runtime.chaos`) proves fault-tolerance — by
sweeping every fault point:

1. run the *victim* request (session A) solo and unfaulted to learn
   its fault surface (message count, plan nodes);
2. run the *observer* request (session B) solo to capture the
   baseline :class:`~repro.runtime.chaos.RunProfile` it must always
   reproduce;
3. for every fault point in A — every message-fault kind at every
   (strided) wire index, plus a party crash at every plan node — run
   A and B concurrently through one
   :class:`~repro.serve.service.QueryService` with the fault injected
   into A only, and compare B's profile byte-for-byte against its
   solo baseline.

Any drift in B is a VIOLATION regardless of what happened to A.  A
itself is additionally classified like a single-session chaos run
(completed-correct / clean-abort / VIOLATION), so the sweep doubles as
a regression check that serving did not weaken single-session
fault-tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..runtime.aborts import ProtocolAbort
from ..runtime.chaos import RunProfile, build_specs
from ..runtime.faults import MESSAGE_FAULT_KINDS, FaultPlan, FaultSpec
from ..runtime.session import DEFAULT_NODE_BUDGET
from .service import QueryService
from .session import DONE, FAILED, QueryRequest, QuerySession
from .workload import run_solo

__all__ = [
    "IsolationOutcome",
    "IsolationReport",
    "isolation_sweep",
]

#: Builds a fresh request; the sweep passes the victim's fault plan
#: (``None`` for the unfaulted baseline and for the observer).
RequestFactory = Callable[[Optional[FaultPlan]], QueryRequest]


@dataclass
class IsolationOutcome:
    """One fault point: what happened to the victim, and whether the
    observer stayed byte-identical to its solo baseline."""

    fault: FaultSpec
    victim_classification: str
    observer_delta: str = ""
    detail: str = ""

    @property
    def isolated(self) -> bool:
        return self.observer_delta == ""

    @property
    def ok(self) -> bool:
        return self.isolated and self.victim_classification != "VIOLATION"

    def to_json(self) -> Dict[str, Any]:
        return {
            "fault": self.fault.to_json(),
            "victim": self.victim_classification,
            "observer_delta": self.observer_delta,
            "detail": self.detail,
            "ok": self.ok,
        }

    def __str__(self) -> str:
        obs = "observer ok" if self.isolated else (
            f"OBSERVER DRIFT: {self.observer_delta}"
        )
        return f"{self.fault} -> victim {self.victim_classification}, {obs}"


@dataclass
class IsolationReport:
    """One sweep's outcomes."""

    outcomes: List[IsolationOutcome] = field(default_factory=list)
    baseline_messages: int = 0
    baseline_nodes: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def drifts(self) -> List[IsolationOutcome]:
        return [o for o in self.outcomes if not o.isolated]

    @property
    def violations(self) -> List[IsolationOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = (
            "OK"
            if self.ok
            else f"{len(self.drifts)} observer drifts / "
            f"{len(self.violations)} violations"
        )
        return (
            f"{status}: {len(self.outcomes)} fault points over "
            f"{self.baseline_messages} victim messages / "
            f"{self.baseline_nodes} nodes — observer byte-identical "
            f"at {sum(1 for o in self.outcomes if o.isolated)}"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "meta": dict(self.meta),
            "baseline_messages": self.baseline_messages,
            "baseline_nodes": self.baseline_nodes,
            "ok": self.ok,
            "n_drifts": len(self.drifts),
            "outcomes": [o.to_json() for o in self.outcomes],
        }


def _classify_victim(
    session: QuerySession, baseline: RunProfile, fault: FaultSpec
) -> IsolationOutcome:
    """Single-session chaos semantics applied to the victim."""
    if session.state == DONE and session.profile is not None:
        drift = session.profile.diff(baseline)
        if drift:
            return IsolationOutcome(fault, "VIOLATION", detail=drift)
        return IsolationOutcome(fault, "completed-correct")
    if session.state == FAILED and isinstance(
        session.error, ProtocolAbort
    ):
        if session.error.is_sanitized():
            return IsolationOutcome(
                fault, "clean-abort", detail=str(session.error)
            )
        return IsolationOutcome(
            fault,
            "VIOLATION",
            detail=f"unsanitized abort {type(session.error).__name__}",
        )
    return IsolationOutcome(
        fault,
        "VIOLATION",
        detail=(
            f"uncaught {type(session.error).__name__}"
            if session.error is not None
            else f"unexpected state {session.state}"
        ),
    )


def isolation_sweep(
    make_victim: RequestFactory,
    make_observer: RequestFactory,
    interleave: str = "round_robin",
    kinds: Sequence[str] = MESSAGE_FAULT_KINDS + ("crash",),
    stride: int = 1,
    hang_ticks: int = DEFAULT_NODE_BUDGET + 1,
    on_progress: Optional[
        Callable[[int, int, IsolationOutcome], None]
    ] = None,
) -> IsolationReport:
    """Sweep every fault point in the victim; require the observer's
    profile byte-identical to its solo baseline at each."""
    victim_solo = run_solo(make_victim(None))
    observer_solo = run_solo(make_observer(None))
    if victim_solo.profile is None or observer_solo.profile is None:
        raise RuntimeError(
            "unfaulted baseline run failed: "
            f"victim={victim_solo.state} ({victim_solo.error!r}), "
            f"observer={observer_solo.state} ({observer_solo.error!r})"
        )
    victim_baseline = victim_solo.profile
    observer_baseline = observer_solo.profile
    specs = build_specs(
        victim_baseline, kinds=kinds, stride=stride, hang_ticks=hang_ticks
    )
    report = IsolationReport(
        baseline_messages=victim_baseline.n_messages,
        baseline_nodes=len(victim_baseline.nodes_seen),
        meta={"interleave": interleave, "stride": stride},
    )
    for i, spec in enumerate(specs):
        service = QueryService(interleave=interleave)
        service.submit(make_victim(FaultPlan([spec])))
        service.submit(make_observer(None))
        service.run()
        victim, observer = service.sessions
        outcome = _classify_victim(victim, victim_baseline, spec)
        if observer.state != DONE or observer.profile is None:
            outcome.observer_delta = (
                f"observer {observer.state}: {observer.error!r}"
            )
        else:
            outcome.observer_delta = observer.profile.diff(
                observer_baseline
            )
        report.outcomes.append(outcome)
        if on_progress is not None:
            on_progress(i + 1, len(specs), outcome)
    return report
