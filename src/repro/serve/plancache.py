"""Shared plan cache for the multi-tenant serving layer.

Compiling a :class:`~repro.yannakakis.plan.YannakakisPlan` into an
:class:`~repro.exec.ir.ExecPlan` is pure public work — the step DAG
depends only on schemas, owners, and plan shape, never on relation
contents.  The :class:`PlanCache` memoises that work across tenants,
keyed on the canonical :func:`~repro.serve.fingerprint.plan_fingerprint`
so that only queries whose *every* transcript-shaping public input
matches share an entry.

The cache also owns a :class:`~repro.mpc.runcache.SetupStore`: gadget
circuit templates, garble plans, and Beneš topologies are equally
public and shape-keyed, so every session the service starts gets a
``RunCache`` *view* over the shared store
(:meth:`PlanCache.run_cache`).  A tenant's transcript is byte-identical
whether it compiles cold or hits a pre-warmed cache — pinned by the
property tests in ``tests/test_serve.py``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from ..mpc.runcache import RunCache, SetupStore
from .fingerprint import plan_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.ir import ExecPlan
    from ..query.builder import JoinAggregateQuery
    from ..yannakakis.plan import YannakakisPlan

__all__ = ["PlanEntry", "PlanCache"]


@dataclass
class PlanEntry:
    """One cached compilation: the logical plan, its compiled DAG, and
    bookkeeping.  Entries are immutable once built; ``hits`` counts
    reuses across all tenants."""

    fingerprint: str
    plan: "YannakakisPlan"
    exec_plan: "ExecPlan"
    hits: int = 0
    tenants: Dict[str, int] = field(default_factory=dict)


class PlanCache:
    """Fingerprint-keyed cache of compiled execution plans plus the
    shared :class:`~repro.mpc.runcache.SetupStore` for gadget setup
    material."""

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.entries: Dict[str, PlanEntry] = {}
        self.store = SetupStore()
        self.hits = 0
        self.misses = 0

    def get(
        self,
        query: "JoinAggregateQuery",
        reveal_result: bool = True,
        pad_out_to: int = 0,
        tenant: str = "",
    ) -> PlanEntry:
        """The cached entry for ``query``, compiling on first sight.

        ``tenant`` is bookkeeping only — it never enters the key, so
        identical logical queries from different tenants share one
        compiled plan.
        """
        from ..exec import compile_plan

        fp = plan_fingerprint(query, reveal_result, pad_out_to)
        with self.lock:
            entry = self.entries.get(fp)
            if entry is not None:
                self.hits += 1
                entry.hits += 1
                if tenant:
                    entry.tenants[tenant] = entry.tenants.get(tenant, 0) + 1
                return entry
            self.misses += 1
            plan = query.plan()
            exec_plan = compile_plan(
                plan,
                owners=dict(query.owners),
                input_order=list(query.relations),
                pad_out_to=pad_out_to,
                reveal_result=reveal_result,
                backends=query.backend_assignments(),
            )
            entry = PlanEntry(fingerprint=fp, plan=plan, exec_plan=exec_plan)
            if tenant:
                entry.tenants[tenant] = 1
            self.entries[fp] = entry
            return entry

    def run_cache(self) -> RunCache:
        """A fresh per-session counting view over the shared setup
        store — hand one to each :class:`~repro.mpc.context.Context`
        the service creates."""
        return RunCache(store=self.store)

    def stats(self) -> Dict[str, int]:
        with self.lock:
            out = {
                "plan_entries": len(self.entries),
                "plan_hits": self.hits,
                "plan_misses": self.misses,
            }
            out.update(
                {f"store_{k}": v for k, v in self.store.sizes().items()}
            )
            return out

    def __repr__(self) -> str:  # pragma: no cover
        s = self.stats()
        return (
            f"PlanCache(entries={s['plan_entries']} "
            f"hit/miss={s['plan_hits']}/{s['plan_misses']})"
        )
