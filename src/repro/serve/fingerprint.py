"""Canonical plan fingerprints for the multi-tenant plan cache.

Two queries may share a compiled :class:`~repro.exec.ir.ExecPlan` iff
every *public* input to compilation matches — the transcript of a run
is a pure function of these plus the (private) relation contents, and
plan sharing must leave each tenant's transcript byte-identical to a
solo compile-and-run.  The fingerprint therefore covers:

* per-relation schema (attribute tuples) and **owner** — the owner
  decides message directions;
* the semiring width ``ell`` — decides every share/ciphertext size;
* the output attributes;
* the **input order** — the compiler emits ``ShareStep``s in this
  order, so two queries with identical sorted schemas but different
  insertion order must *miss*;
* the compiled plan's shape: reduce folds/aggregates, semijoin order,
  join order, root, and phase order (``semijoin_first``);
* the compile flags ``reveal_result`` and ``pad_out_to``.

Relation *contents* and sizes are deliberately absent: they are private
(sizes are public in the protocol model but do not change the step DAG,
only per-step message sizes — and those are re-derived from the actual
inputs at run time, not baked into the plan).

The digest is a SHA-256 over a canonical JSON encoding (sorted keys,
no whitespace), so it is stable across processes and suitable as a
persistent cache key.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..query.builder import JoinAggregateQuery
    from ..yannakakis.plan import YannakakisPlan

__all__ = ["plan_fingerprint", "fingerprint_document"]


def _plan_shape(plan: "YannakakisPlan") -> Dict[str, Any]:
    from ..yannakakis.plan import ReduceAggregate, ReduceFold

    reduce_steps: List[List[Any]] = []
    for step in plan.reduce_steps:
        if isinstance(step, ReduceFold):
            reduce_steps.append(
                ["fold", step.child, step.parent, list(step.agg_attrs)]
            )
        elif isinstance(step, ReduceAggregate):
            reduce_steps.append(["agg", step.node, list(step.attrs)])
        else:  # pragma: no cover
            raise TypeError(f"unknown reduce step {step!r}")
    return {
        "root": plan.root,
        "semijoin_first": bool(plan.semijoin_first),
        "reduce": reduce_steps,
        "semijoin": [[s.target, s.filter] for s in plan.semijoin_steps],
        "join": [[s.child, s.parent] for s in plan.join_steps],
    }


def fingerprint_document(
    query: "JoinAggregateQuery",
    reveal_result: bool = True,
    pad_out_to: int = 0,
) -> Dict[str, Any]:
    """The canonical (pre-hash) fingerprint document — exposed so tests
    can assert *which* field caused a cache miss."""
    ells = {rel.semiring.ell for rel in query.relations.values()}
    if len(ells) != 1:
        raise ValueError(
            f"query mixes semiring widths {sorted(ells)}; cannot fingerprint"
        )
    return {
        "schema": {
            name: list(rel.attributes)
            for name, rel in query.relations.items()
        },
        "owners": dict(query.owners),
        "ell": ells.pop(),
        "output": list(query.output),
        "input_order": list(query.relations),
        "reveal_result": bool(reveal_result),
        "pad_out_to": int(pad_out_to),
        "plan": _plan_shape(query.plan()),
        # The resolved per-node back-end map, not the policy name: under
        # "auto" the routing depends on relation sizes, and two queries
        # whose nodes route differently compile different step DAGs
        # (and different transcripts), so they must not share an entry.
        "backends": query.backend_assignments(),
    }


def plan_fingerprint(
    query: "JoinAggregateQuery",
    reveal_result: bool = True,
    pad_out_to: int = 0,
) -> str:
    """SHA-256 hex digest of the canonical fingerprint document."""
    doc = fingerprint_document(query, reveal_result, pad_out_to)
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
