"""One tenant query session, cooperatively scheduled.

The service interleaves many sessions on one coordinator thread using a
*baton* protocol: each session runs its protocol code on a private
worker thread, but only ever between an explicit hand-off
(:meth:`QuerySession.step`) and the next yield point — the
:attr:`~repro.mpc.engine.Engine.yield_hook` the exec scheduler fires
before every plan step.  Exactly one worker runs at a time, so the
global interleaving is a deterministic function of the coordinator's
pick sequence, and the sessions share no mutable protocol state: each
has its own :class:`~repro.mpc.context.Context` (transcript, RNG),
its own runtime :class:`~repro.runtime.session.Session` (framing,
virtual clock, fault plan), and its own
:class:`~repro.exec.trace.ExecutionTrace` namespaced by tenant.  The
only cross-session objects are the shared
:class:`~repro.serve.plancache.PlanCache` entries and
:class:`~repro.mpc.runcache.SetupStore` — public setup material.

Crash containment: whatever the worker raises —
:class:`~repro.runtime.aborts.ProtocolAbort` or an arbitrary crash —
is caught at the worker's top level, recorded on the session, and the
baton is returned.  The coordinator and every other session keep
running; the isolation battery (``tests/test_serve_isolation.py``)
pins that a crashed neighbour leaves a session's transcript
byte-identical to its solo run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, Optional

from ..mpc.context import Context, Mode
from ..mpc.engine import Engine
from ..mpc.params import SecurityParams
from ..runtime.aborts import ProtocolAbort
from ..runtime.chaos import RunProfile, profile_run
from ..runtime.faults import FaultPlan
from ..runtime.session import DEFAULT_NODE_BUDGET, enable_session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bench.estimator import CostEstimate
    from ..query.builder import JoinAggregateQuery
    from .plancache import PlanCache

__all__ = [
    "QUEUED",
    "ADMITTED",
    "RUNNING",
    "DONE",
    "FAILED",
    "REJECTED",
    "QueryRequest",
    "QuerySession",
]

QUEUED = "queued"
ADMITTED = "admitted"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
REJECTED = "rejected"

#: Wall-clock seconds the coordinator waits for a worker to reach its
#: next yield point before declaring the service wedged.  Time inside
#: the protocol is *virtual* (ticks), so only a genuine deadlock bug
#: can trip this.
STEP_TIMEOUT = 600.0


@dataclass
class QueryRequest:
    """One tenant's query submission.

    Exactly one of ``query`` (a
    :class:`~repro.query.builder.JoinAggregateQuery` — priced by the
    cost estimator and served through the plan cache) or ``run`` (an
    arbitrary ``Engine -> result-rows`` callable, e.g. a prepared
    TPC-H query — unpriced unless ``cost`` is declared) must be set.
    """

    tenant: str
    name: str
    query: Optional["JoinAggregateQuery"] = None
    run: Optional[Callable[[Engine], Iterable[Any]]] = None
    ell: Optional[int] = None
    mode: Mode = Mode.SIMULATED
    policy: str = "program"
    group_bits: int = 1536
    seed: int = 11
    faults: Optional[FaultPlan] = None
    node_budget: int = DEFAULT_NODE_BUDGET
    #: Declared cost (overrides estimation); ``None`` + ``query`` set
    #: means the service estimates; ``None`` + ``run`` means unpriced.
    cost: Optional["CostEstimate"] = None
    #: Output-size bound fed to the estimator (``None``: the product
    #: of input sizes — the worst case the protocol itself assumes).
    out_size_bound: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.query is None) == (self.run is None):
            raise ValueError(
                "exactly one of query= or run= must be provided"
            )

    def effective_ell(self) -> int:
        if self.query is not None:
            ells = {
                r.semiring.ell for r in self.query.relations.values()
            }
            if len(ells) != 1:
                raise ValueError(
                    f"query mixes semiring widths {sorted(ells)}"
                )
            return ells.pop()
        if self.ell is None:
            raise ValueError("run= requests must declare ell=")
        return self.ell


class QuerySession:
    """A query request bound to its private execution state and worker
    thread.  Built by the service *after* admission — a rejected
    request never reaches this class, so it moves zero protocol
    bytes."""

    def __init__(
        self,
        request: QueryRequest,
        plan_cache: Optional["PlanCache"] = None,
    ) -> None:
        self.request = request
        self.plan_cache = plan_cache
        self.state = ADMITTED
        self.error: Optional[BaseException] = None
        self.result: Optional[Iterable[Any]] = None
        self.profile: Optional[RunProfile] = None
        self.cost: Optional["CostEstimate"] = request.cost

        params = SecurityParams(ell=request.effective_ell())
        self.ctx = Context(request.mode, params, seed=request.seed)
        if plan_cache is not None:
            # Per-session counting view over the shared setup store.
            self.ctx.cache = plan_cache.run_cache()
        from ..exec.trace import ExecutionTrace

        self.trace = ExecutionTrace()
        self.trace.meta["tenant"] = request.tenant
        self.trace.meta["request"] = request.name
        self.engine = Engine(
            self.ctx,
            request.group_bits,
            tracer=self.trace,
            exec_policy=request.policy,
        )
        self.runtime_session = enable_session(
            self.ctx,
            request.faults,
            node_budget=request.node_budget,
            seed=request.seed,
        )
        self.engine.yield_hook = self._yield_point

        self._go = threading.Event()
        self._parked = threading.Event()
        self._finished = False
        self._thread = threading.Thread(
            target=self._work,
            name=f"serve:{request.tenant}:{request.name}",
            daemon=True,
        )

    # -- baton protocol ---------------------------------------------------

    def start(self) -> None:
        """Spawn the worker and run it up to its first yield point."""
        self.state = RUNNING
        self._thread.start()
        self._await_parked()

    def step(self) -> bool:
        """Hand the baton to the worker for one step; returns ``True``
        while the session still has work left."""
        if self._finished:
            return False
        self._parked.clear()
        self._go.set()
        self._await_parked()
        return not self._finished

    @property
    def done(self) -> bool:
        return self._finished

    def _await_parked(self) -> None:
        if not self._parked.wait(STEP_TIMEOUT):  # pragma: no cover
            raise RuntimeError(
                f"session {self.request.tenant}:{self.request.name} "
                f"did not reach a yield point within {STEP_TIMEOUT}s"
            )

    def _yield_point(self, step: object) -> None:
        """Called by the exec scheduler before each plan step, on the
        worker thread: park, hand the baton back, wait for it."""
        self._parked.set()
        self._go.wait()
        self._go.clear()

    # -- the worker -------------------------------------------------------

    def _work(self) -> None:
        try:
            # Park before the first protocol byte so the coordinator
            # controls the interleaving from message zero.
            self._yield_point(None)
            self.result = self._execute()
            self.runtime_session.finish()
            self.profile = profile_run(
                self.ctx, self.runtime_session, self.result
            )
            self.state = DONE
        except ProtocolAbort as abort:
            self.error = abort
            self.state = FAILED
        except BaseException as exc:  # noqa: BLE001 - crash containment
            self.error = exc
            self.state = FAILED
        finally:
            self._finished = True
            self._parked.set()

    def _execute(self) -> Iterable[Any]:
        request = self.request
        if request.run is not None:
            return request.run(self.engine)
        assert request.query is not None
        from ..core.protocol import secure_yannakakis_with_plan

        query = request.query
        if self.plan_cache is not None:
            entry = self.plan_cache.get(query, tenant=request.tenant)
            plan, exec_plan = entry.plan, entry.exec_plan
        else:
            from ..exec import compile_plan

            plan = query.plan()
            exec_plan = compile_plan(
                plan,
                owners=dict(query.owners),
                input_order=list(query.relations),
                reveal_result=True,
                backends=query.backend_assignments(),
            )
        result, _stats = secure_yannakakis_with_plan(
            self.engine, query.secure_inputs(), plan, exec_plan
        )
        return result

    # -- reporting --------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "tenant": self.request.tenant,
            "request": self.request.name,
            "state": self.state,
            "clock": self.runtime_session.clock.now,
            "n_messages": len(self.ctx.transcript.messages),
            "total_bytes": sum(
                m.n_bytes for m in self.ctx.transcript.messages
            ),
            "rounds": self.ctx.transcript.rounds,
        }
        if self.error is not None:
            out["error"] = type(self.error).__name__
        return out
