"""The SMCQL-style monolithic garbled-circuit baseline (Section 8.2).

The paper compares against a garbled circuit that materialises the full
Cartesian product of the joined relations and applies the join
conditions — the data-oblivious strategy a generic circuit compiler is
forced into, with ``O(prod |R_i|)`` cost.  As in the paper, the baseline
is *run* only at tiny scale and *extrapolated* elsewhere: "this is
actually very accurate, since the cost is proportional to the size of
the circuit, which we know exactly".

``cartesian_gc_cost`` computes the exact circuit size; ``gc_gate_rate``
measures this machine's garble+evaluate throughput once;
``run_cartesian_gc`` actually executes the baseline on small inputs
(used to validate the model and for the smallest benchmark scale).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..mpc.circuits import CircuitBuilder
from ..mpc.circuits.garbling import LABEL_BYTES, ROWS_PER_AND
from ..mpc.context import ALICE, Context, Mode
from ..mpc.engine import Engine
from ..mpc.gadgets import bits_of, int_of
from ..mpc.yao import charge_garbled_batch, run_garbled_batch
from ..relalg.relation import AnnotatedRelation

__all__ = [
    "GcBaselineCost",
    "cartesian_gc_cost",
    "gc_gate_rate",
    "run_cartesian_gc",
]

#: Join keys are compared at this width in the baseline circuit.
KEY_BITS = 32


@dataclass(frozen=True)
class GcBaselineCost:
    """Exact circuit size and its cost projection."""

    combos: int
    and_gates: int
    input_bits: int
    comm_bytes: int
    est_seconds: float


def per_combo_and_gates(n_conditions: int, key_bits: int = KEY_BITS) -> int:
    """AND gates to test one Cartesian combination: one equality per
    join condition plus the conjunction tree."""
    eq_gates = key_bits - 1  # AND-tree over key_bits XNOR bits
    return n_conditions * eq_gates + max(0, n_conditions - 1)


def cartesian_gc_cost(
    sizes: Sequence[int],
    n_conditions: int,
    gate_rate: float,
    key_bits: int = KEY_BITS,
    runs: int = 1,
) -> GcBaselineCost:
    """Exact size/cost of the baseline circuit for relations of the
    given sizes (``runs`` > 1 models decomposed queries that pay the
    baseline several times, e.g. Q9's 50 sub-queries)."""
    combos = 1
    for s in sizes:
        combos *= int(s)
    and_gates = runs * combos * per_combo_and_gates(n_conditions, key_bits)
    input_bits = runs * sum(int(s) * key_bits for s in sizes)
    comm = (
        ROWS_PER_AND * LABEL_BYTES * and_gates
        + 3 * LABEL_BYTES * input_bits  # labels + OT-extension traffic
    )
    return GcBaselineCost(
        combos=runs * combos,
        and_gates=and_gates,
        input_bits=input_bits,
        comm_bytes=comm,
        est_seconds=and_gates / gate_rate,
    )


@functools.lru_cache(maxsize=1)
def gc_gate_rate() -> float:
    """AND gates per second for garble+evaluate on this machine,
    measured once on a ~20k-gate circuit (the paper's extrapolation
    methodology, applied to our substrate)."""
    b = CircuitBuilder()
    ell = 32
    xs = b.alice_input_bits(ell)
    ys = b.bob_input_bits(ell)
    out = b.mul(xs, ys)
    for _ in range(18):
        out = b.mul(out, ys)
    circuit = b.build(out)
    ctx = Context(Mode.REAL, seed=0)
    eng = Engine(ctx)
    start = time.perf_counter()
    run_garbled_batch(
        ctx, eng.ot, circuit, [[0] * ell], [[1] * ell]
    )
    elapsed = time.perf_counter() - start
    return circuit.and_count / elapsed


def _relation_key_columns(
    rel: AnnotatedRelation, join_attrs: Sequence[str]
) -> List[List[int]]:
    idx = rel.index_of(join_attrs)
    cols = []
    for t in rel.tuples:
        cols.append([int(t[i]) for i in idx])
    return cols


def run_cartesian_gc(
    engine: Engine,
    relations: Dict[str, Tuple[AnnotatedRelation, str]],
    key_bits: int = KEY_BITS,
) -> int:
    """Actually evaluate the baseline: one monolithic circuit over the
    full Cartesian product computing the join-*count* (annotations are
    ignored, like the paper's baseline, which drops every operator but
    the join conditions).  Returns the count, revealed to Alice.

    Only feasible for tiny inputs — that is the point.
    """
    names = list(relations)
    rels = [relations[n][0] for n in names]
    owners = [relations[n][1] for n in names]
    for rel in rels:
        for t in rel.tuples:
            for v in t:
                if not isinstance(v, (int, np.integer)):
                    raise TypeError(
                        "the baseline circuit joins integer keys only"
                    )

    # Join conditions: every attribute shared by two relations.
    conditions: List[Tuple[int, str, int, str]] = []
    for i in range(len(rels)):
        for j in range(i + 1, len(rels)):
            for attr in rels[i].attributes:
                if attr in rels[j].attributes:
                    conditions.append((i, attr, j, attr))

    b = CircuitBuilder()
    wires: List[List[List[int]]] = []  # per relation, per tuple, per attr
    for rel, owner in zip(rels, owners):
        rel_wires = []
        for _t in rel.tuples:
            attr_words = []
            for _a in rel.attributes:
                bits = (
                    b.alice_input_bits(key_bits)
                    if owner == ALICE
                    else b.bob_input_bits(key_bits)
                )
                attr_words.append(bits)
            rel_wires.append(attr_words)
        wires.append(rel_wires)

    # Count matching combinations with a ripple-carry accumulator.
    count_bits = 32
    acc = b.constant_word(0, count_bits)
    indices = [0] * len(rels)

    def combos():
        while True:
            yield tuple(indices)
            for pos in range(len(rels) - 1, -1, -1):
                indices[pos] += 1
                if indices[pos] < len(rels[pos]):
                    break
                indices[pos] = 0
            else:
                return

    if all(len(r) > 0 for r in rels):
        for combo in combos():
            match = None
            for (i, attr_i, j, attr_j) in conditions:
                wi = wires[i][combo[i]][rels[i].attributes.index(attr_i)]
                wj = wires[j][combo[j]][rels[j].attributes.index(attr_j)]
                eq = b.eq(wi, wj)
                match = eq if match is None else b.and_(match, eq)
            one_bit = match if match is not None else b.constant(1)
            acc = b.add(
                acc, [one_bit] + [b.constant(0)] * (count_bits - 1)
            )
    circuit = b.build(acc)

    alice_bits: List[int] = []
    bob_bits: List[int] = []
    for rel, owner in zip(rels, owners):
        sink = alice_bits if owner == ALICE else bob_bits
        for t in rel.tuples:
            for v in t:
                sink.extend(bits_of(int(v) % (1 << key_bits), key_bits))

    ctx = engine.ctx
    with ctx.section("gc_baseline"):
        if ctx.mode == Mode.REAL:
            out = run_garbled_batch(
                ctx, engine.ot, circuit, [alice_bits], [bob_bits]
            )[0]
        else:
            charge_garbled_batch(ctx, engine.ot, circuit, 1)
            out = circuit.evaluate(alice_bits, bob_bits)
    return int_of(out)
