"""The non-private baseline (MySQL's role in the paper's figures).

Runs the query in plaintext with the Yannakakis plan and reports the
paper's convention for its communication cost: the effective input size
(one party has to see the other's columns, nothing more).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..relalg.relation import AnnotatedRelation
from ..tpch.queries import PreparedQuery

__all__ = ["NonPrivateResult", "run_nonprivate"]


@dataclass
class NonPrivateResult:
    result: AnnotatedRelation
    seconds: float
    comm_bytes: int


def run_nonprivate(query: PreparedQuery) -> NonPrivateResult:
    result, seconds = query.run_plain()
    return NonPrivateResult(
        result=result,
        seconds=seconds,
        comm_bytes=query.effective_bytes,
    )
