"""Baselines: the SMCQL-style monolithic garbled circuit and the
non-private plaintext evaluation."""

from .garbled_baseline import (
    GcBaselineCost,
    cartesian_gc_cost,
    gc_gate_rate,
    run_cartesian_gc,
)
from .nonprivate import NonPrivateResult, run_nonprivate
from .sql_baseline import (
    SqlBaselineResult,
    run_sql_baseline,
    sql_backend_name,
)

__all__ = [
    "GcBaselineCost",
    "NonPrivateResult",
    "SqlBaselineResult",
    "cartesian_gc_cost",
    "gc_gate_rate",
    "run_cartesian_gc",
    "run_nonprivate",
    "run_sql_baseline",
    "sql_backend_name",
]
