"""An honest SQL engine as the plaintext baseline.

The paper's "non-private" comparison point is a real database (MySQL in
the experiments), not our own Yannakakis implementation — comparing
``plain_seconds`` against the very code being benchmarked would let a
shared slowdown hide.  This module evaluates the same K-relation
join-aggregate on an embedded SQL engine:

* **DuckDB** when the package is importable (columnar, vectorised — the
  closest stand-in for a production OLAP engine);
* **sqlite3** from the standard library otherwise (always available; no
  third-party dependency is ever required).

Each annotated relation becomes a table with its attributes plus an
``__annot`` column; the query is the natural join of all tables with
``SUM`` of the annotation product, grouped by the output attributes —
the textbook SQL spelling of the paper's Section 3 semantics.  Results
are reduced into the query's ring and zero groups dropped, so the
output is directly comparable (``semantically_equal``) with both the
columnar and the reference Yannakakis executions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..relalg.relation import AnnotatedRelation
from ..relalg.semiring import IntegerRing
from ..relalg.columns import is_dummy_tuple

try:  # pragma: no cover - exercised only where duckdb is installed
    import duckdb  # type: ignore[import-not-found]

    _HAVE_DUCKDB = True
except Exception:  # pragma: no cover
    duckdb = None
    _HAVE_DUCKDB = False

import sqlite3

__all__ = ["SqlBaselineResult", "sql_backend_name", "run_sql_baseline"]


@dataclass
class SqlBaselineResult:
    result: AnnotatedRelation
    seconds: float
    backend: str


def sql_backend_name() -> str:
    return "duckdb" if _HAVE_DUCKDB else "sqlite3"


def _quoted(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _real_rows(
    rel: AnnotatedRelation,
) -> Tuple[List[Tuple[Any, ...]], List[int]]:
    """The relation's non-dummy rows with their annotations (dummies are
    a protocol artefact; an honest engine never sees them)."""
    rows: List[Tuple[Any, ...]] = []
    annots: List[int] = []
    for t, v in zip(rel.tuples, rel.annotations):
        if is_dummy_tuple(t):
            continue
        rows.append(t)
        annots.append(int(v))
    return rows, annots


def _build_query(
    relations: Dict[str, AnnotatedRelation], output: Sequence[str]
) -> str:
    names = list(relations)
    alias = {name: f"t{i}" for i, name in enumerate(names)}
    home: Dict[str, str] = {}
    conditions: List[str] = []
    for name in names:
        a = alias[name]
        for attr in relations[name].attributes:
            if attr in home:
                conditions.append(
                    f"{home[attr]}.{_quoted(attr)} = {a}.{_quoted(attr)}"
                )
            else:
                home[attr] = a
    missing = [a for a in output if a not in home]
    if missing:
        raise KeyError(f"output attributes {missing} appear in no relation")
    group_cols = ", ".join(f"{home[a]}.{_quoted(a)}" for a in output)
    annot_product = " * ".join(
        f'{alias[n]}."__annot"' for n in names
    )
    select_cols = (
        f"{group_cols}, SUM({annot_product})"
        if output
        else f"SUM({annot_product})"
    )
    sql = (
        f"SELECT {select_cols} FROM "
        + ", ".join(f"{_quoted(n)} {alias[n]}" for n in names)
    )
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    if output:
        sql += f" GROUP BY {group_cols}"
    return sql


def run_sql_baseline(
    relations: Dict[str, AnnotatedRelation],
    output: Sequence[str],
    ell: int = 32,
) -> SqlBaselineResult:
    """Evaluate the join-aggregate on the embedded SQL engine.

    Timing covers query execution only (not table loading), matching
    how ``plain_seconds`` is measured for the in-process executions.
    """
    output = list(output)
    ring = IntegerRing(ell)
    if _HAVE_DUCKDB:
        conn = duckdb.connect(":memory:")
    else:
        conn = sqlite3.connect(":memory:")
    try:
        for name, rel in relations.items():
            cols = ", ".join(
                [_quoted(a) for a in rel.attributes] + ['"__annot"']
            )
            conn.execute(f"CREATE TABLE {_quoted(name)} ({cols})")
            rows, annots = _real_rows(rel)
            placeholders = ", ".join(["?"] * (len(rel.attributes) + 1))
            if _HAVE_DUCKDB:
                for t, v in zip(rows, annots):
                    conn.execute(
                        f"INSERT INTO {_quoted(name)} VALUES ({placeholders})",
                        list(t) + [v],
                    )
            else:
                conn.executemany(
                    f"INSERT INTO {_quoted(name)} VALUES ({placeholders})",
                    [tuple(t) + (v,) for t, v in zip(rows, annots)],
                )
        sql = _build_query(relations, output)
        t0 = time.perf_counter()
        fetched = conn.execute(sql).fetchall()
        seconds = time.perf_counter() - t0
    finally:
        conn.close()
    tuples = [tuple(row[: len(output)]) for row in fetched]
    annots_out = [
        ring.normalize(int(row[len(output)] or 0)) for row in fetched
    ]
    result = AnnotatedRelation(
        tuple(output), tuples, annots_out, ring
    ).nonzero()
    return SqlBaselineResult(
        result=result, seconds=seconds, backend=sql_backend_name()
    )
