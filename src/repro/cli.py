"""Command-line interface.

::

    python -m repro figures --queries Q3 Q10 --scales 1 3
    python -m repro tpch Q3 --scale 1 [--real] [--backend auto]
    python -m repro trace Q3 --scale 1 [--policy stages] [-o trace.json]
    python -m repro estimate Q3 --scale 10
    python -m repro fuzz --seed 0 --iterations 50 [--backend both]
    python -m repro chaos --query q3 --scale tiny --sweep all
    python -m repro chaos --level process --query q3 --stride 8
    python -m repro net --role alice --listen 127.0.0.1:9501 --query Q3
    python -m repro net --role bob --connect 127.0.0.1:9501 --query Q3
    python -m repro net --role bob --connect ... --resume --journal bob.syj
    python -m repro serve --queries Q3 Q10 --tenants 2 --check-solo
    python -m repro serve --isolation-sweep --stride 1
    python -m repro lint src/
    python -m repro demo

``figures`` regenerates the paper's evaluation series; ``tpch`` runs a
single benchmark query end to end and prints results + costs;
``trace`` runs one query through the execution scheduler and dumps the
per-operator ExecutionTrace as JSON; ``estimate`` prints the analytic
cost prediction without running the protocol; ``fuzz`` runs the
differential query fuzzer and obliviousness transcript audit (see
docs/TESTING.md); ``chaos`` sweeps a deterministic fault point across
every wire message and plan node of a query execution and requires
every run to end completed-correct or clean-abort (see
docs/ROBUSTNESS.md) — ``--level process`` runs the sweep over real OS
processes and TCP sockets, SIGKILLing and resuming parties; ``net``
runs one party of a two-process query over a real socket, with
disk-durable checkpoints and ``--resume`` crash recovery; ``lint``
runs the obliviousness &
channel-discipline static analyzer (see docs/LINTING.md); ``serve``
drives a scripted multi-tenant workload through the query service —
interleaved sessions, shared plan cache, per-tenant budgets — and can
byte-compare every session against its solo run or sweep fault points
in one tenant while watching another for transcript drift (see
docs/SERVING.md); ``demo`` runs the Example 1.1 quickstart with REAL
cryptography.
"""

from __future__ import annotations

import argparse
import sys

from .bench import check_figure_shape, format_figure, run_figure
from .mpc import Context, Engine, Mode

__all__ = ["main"]


def _cmd_figures(args) -> int:
    failures = 0
    for name in args.queries:
        kwargs = {}
        if name == "Q9":
            kwargs["q9_nations"] = list(range(args.q9_nations))
        rows = run_figure(name, scales=args.scales, **kwargs)
        print(format_figure(rows))
        problems = check_figure_shape(rows)
        for p in problems:
            print(f"  SHAPE VIOLATION: {p}")
        failures += bool(problems)
        print()
    return 1 if failures else 0


def _cmd_tpch(args) -> int:
    from .tpch import PREPARED, generate

    dataset = generate(args.scale)
    if args.query == "Q9":
        query = PREPARED[args.query](
            dataset, nations=list(range(args.q9_nations))
        )
    else:
        query = PREPARED[args.query](dataset)
    mode = Mode.REAL if args.real else Mode.SIMULATED
    engine = Engine(query.make_context(mode, seed=args.seed))
    engine.backend = args.backend
    result, stats = query.run_secure(engine)
    plain, plain_seconds = query.run_plain()
    ok = result.semantically_equal(plain)
    print(f"{query.name}: {query.description}")
    print(f"  result rows: {len(result)} (matches plaintext: {ok})")
    for row, value in sorted(result, key=str)[: args.show]:
        print(f"    {row} -> {value / query.result_scale:,.2f}")
    print(
        f"  secure ({mode.value}): {stats.seconds:.2f}s, "
        f"{stats.total_bytes / 1e6:,.1f} MB, {stats.rounds} rounds"
    )
    print(f"  plaintext: {plain_seconds:.2f}s")
    return 0 if ok else 1


def _cmd_trace(args) -> int:
    import json

    from .exec import ExecutionTrace
    from .tpch import PREPARED, generate

    dataset = generate(args.scale)
    if args.query == "Q9":
        query = PREPARED[args.query](
            dataset, nations=list(range(args.q9_nations))
        )
    else:
        query = PREPARED[args.query](dataset)
    mode = Mode.REAL if args.real else Mode.SIMULATED
    tracer = ExecutionTrace()
    engine = Engine(
        query.make_context(mode, seed=args.seed),
        tracer=tracer,
        exec_policy=args.policy,
    )
    engine.backend = args.backend
    query.run_secure(engine)
    tracer.meta["query"] = query.name
    tracer.meta["scale_mb"] = args.scale
    tracer.meta["mode"] = mode.value
    tracer.meta["backend"] = args.backend
    payload = json.dumps(tracer.to_json(), indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload + "\n")
        print(
            f"{query.name}: {len(tracer.nodes)} trace nodes, "
            f"{tracer.total_bytes / 1e6:,.1f} MB -> {args.output}"
        )
    else:
        print(payload)
    return 0


def _cmd_estimate(args) -> int:
    from .bench.estimator import estimate_plan_cost
    from .tpch import PREPARED, generate

    dataset = generate(args.scale)
    query = PREPARED[args.query](dataset)
    print(
        f"{query.name} at {args.scale} MB: "
        f"{query.input_tuples:,} input tuples, "
        f"effective input {query.effective_bytes / 1e6:.2f} MB"
    )
    print(
        "  (per-plan analytic estimation is exposed as "
        "repro.bench.estimator.estimate_plan_cost; the TPC-H drivers "
        "compose several plans, so run `tpch` for the measured total)"
    )
    return 0


def _make_fault_plan(kind, at, ticks):
    """One-spec FaultPlan from the fuzz CLI's fault options."""
    from .runtime import (
        DEFAULT_NODE_BUDGET,
        FaultPlan,
        FaultSpec,
        MESSAGE_FAULT_KINDS,
    )
    from .mpc.transcript import BOB

    if kind == "perturb_share":
        spec = FaultSpec("perturb_share")
    elif kind == "crash":
        spec = FaultSpec("crash", node=at, party=BOB)
    elif kind in MESSAGE_FAULT_KINDS:
        spec = FaultSpec(
            kind,
            message_index=at,
            ticks=ticks if ticks else DEFAULT_NODE_BUDGET + 1,
        )
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(f"unknown fault kind {kind!r}")
    return FaultPlan([spec])


def _cmd_fuzz(args) -> int:
    from .fuzz import (
        fuzz,
        iter_corpus,
        replay_file,
    )

    if args.replay:
        failures = replay_file(args.replay, audit=not args.no_audit)
        for f in failures:
            print(f)
        print(
            f"replay {args.replay}: "
            + ("FAILED" if failures else "ok")
        )
        return 1 if failures else 0

    if args.corpus is not None:
        from .fuzz import check_instance

        n, bad = 0, 0
        for path, instance in iter_corpus(args.corpus or None):
            failures = check_instance(
                instance, audit=not args.no_audit,
                backend=args.backend,
            )
            n += 1
            for f in failures:
                bad += 1
                print(f"{path.name}: {f}")
        print(f"corpus: {n} instances, {bad} failures")
        return 1 if bad else 0

    fault = (
        _make_fault_plan(
            args.inject_fault, args.fault_at, args.fault_ticks
        )
        if args.inject_fault
        else None
    )

    def progress(i, report):
        if (i + 1 - args.start) % 10 == 0:
            print(
                f"  ... {i + 1 - args.start}/{args.iterations} "
                f"instances, {len(report.failures)} failures"
            )

    report = fuzz(
        args.seed,
        args.iterations,
        start=args.start,
        real_every=args.real_every,
        audit=not args.no_audit,
        fault=fault,
        max_failures=args.max_failures,
        on_progress=progress,
        save_failures_to=args.save_failures,
        backend=args.backend,
    )
    for f in report.failures:
        print(f)
    print(f"fuzz --seed {args.seed}: {report.summary()}")
    if args.inject_fault:
        # Self-test mode: the injected fault MUST be detected.
        caught = bool(report.failures)
        print(
            "injected fault was "
            + ("caught and reported" if caught else "NOT caught")
        )
        return 0 if caught else 1
    return 0 if report.ok else 1


def _cmd_net(args) -> int:
    import json

    from .runtime import (
        NetConfig,
        ProcessFaults,
        ReconnectPolicy,
        ProtocolAbort,
        parse_endpoint,
        run_party,
    )

    faults = None
    if any(
        v is not None
        for v in (
            args.kill_at_node, args.kill_at_wire, args.drop_at_wire,
            args.stall_at_wire, args.partition_at_wire,
        )
    ):
        faults = ProcessFaults(
            kill_at_node=args.kill_at_node,
            kill_at_wire=args.kill_at_wire,
            drop_at_wire=args.drop_at_wire,
            stall_at_wire=args.stall_at_wire,
            stall_ms=args.stall_ms,
            partition_at_wire=args.partition_at_wire,
            partition_ms=args.partition_ms,
        )

    config = NetConfig(
        role=args.role,
        query=args.query,
        scale_mb=0.1 if args.scale == "tiny" else float(args.scale),
        seed=args.seed,
        backend=args.backend,
        policy=args.policy,
        listen=parse_endpoint(args.listen) if args.listen else None,
        connect=parse_endpoint(args.connect) if args.connect else None,
        journal=args.journal,
        resume=args.resume,
        reconnect=ReconnectPolicy(
            max_attempts=args.reconnect_attempts,
        ),
        heartbeat_s=args.heartbeat,
        idle_timeout_s=args.idle_timeout,
        exchange_deadline_s=args.exchange_deadline,
        faults=faults,
    )

    def emit(payload) -> None:
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(json.dumps(payload, indent=2) + "\n")

    try:
        outcome = run_party(config)
    except ProtocolAbort as abort:
        # Sanitized failure: the typed abort is the whole public story.
        emit(
            {
                "status": "abort",
                "role": config.role,
                "query": config.query,
                "abort": abort.to_json(),
            }
        )
        print(f"net {config.role} {config.query}: ABORT {abort}")
        return 2
    emit(outcome)
    profile = outcome["profile"]
    print(
        f"net {config.role} {config.query}: done, "
        f"{profile['n_messages']} msgs"
        + (
            f", resumed from node {outcome['resumed_from']}"
            if outcome.get("resumed_from") is not None
            else ""
        )
    )
    return 0


def _cmd_chaos_process(args) -> int:
    import json
    import tempfile

    from .runtime import (
        PROCESS_FAULT_KINDS,
        NetConfig,
        sweep_processes,
    )

    scale = 0.1 if args.scale == "tiny" else float(args.scale)
    kinds = (
        tuple(k for k in args.kinds if k in PROCESS_FAULT_KINDS)
        if args.kinds
        else PROCESS_FAULT_KINDS
    )
    config = NetConfig(
        role="alice",  # per-scenario roles are set by the harness
        query=args.query,
        scale_mb=scale,
        seed=args.seed,
        backend=args.backend,
        policy=args.policy if args.policy != "both" else "program",
    )

    def progress(i, n, outcome):
        if args.verbose or outcome.classification == "VIOLATION":
            print(f"  [{i}/{n}] {outcome}")

    stride = 1 if args.sweep == "all" else args.stride
    with tempfile.TemporaryDirectory(prefix="repro-netchaos-") as wd:
        report = sweep_processes(
            config, kinds=kinds, stride=stride, workdir=wd,
            timeout_s=args.timeout, on_progress=progress,
        )
    report.meta.update(
        query=args.query, scale_mb=scale, backend=args.backend,
        level="process", stride=stride, kinds=list(kinds),
    )
    print(
        f"chaos {args.query} scale={scale} [process level, "
        f"backend={args.backend}]: {report.summary()}"
    )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(json.dumps(report.to_json(), indent=2) + "\n")
        print(f"report -> {args.output}")
    return 0 if report.ok else 1


def _cmd_chaos(args) -> int:
    import json

    from .runtime import (
        MESSAGE_FAULT_KINDS,
        FaultPlan,
        build_specs,
        classify_fault,
        make_tpch_runner,
        sweep,
    )

    if args.level == "process":
        return _cmd_chaos_process(args)

    scale = 0.1 if args.scale == "tiny" else float(args.scale)
    message_kinds = MESSAGE_FAULT_KINDS + ("crash",)
    kinds = (
        tuple(k for k in args.kinds if k in message_kinds)
        if args.kinds
        else message_kinds
    )
    stride = 1 if args.sweep == "all" else args.stride
    policies = (
        ["program", "stages"] if args.policy == "both"
        else [args.policy]
    )

    def progress(i, n, outcome):
        if args.verbose or outcome.classification == "VIOLATION":
            print(f"  [{i}/{n}] {outcome}")

    ok = True
    payload = {
        "query": args.query, "scale_mb": scale,
        "backend": args.backend, "policies": {},
    }
    for policy in policies:
        run = make_tpch_runner(
            args.query, scale_mb=scale, policy=policy, seed=args.seed,
            backend=args.backend,
        )
        report = sweep(run, kinds=kinds, stride=stride,
                       on_progress=progress)
        report.meta.update(
            query=args.query, scale_mb=scale, policy=policy,
            mode="simulated", stride=stride, backend=args.backend,
        )
        print(
            f"chaos {args.query} scale={scale} policy={policy} "
            f"backend={args.backend} [simulated]: {report.summary()}"
        )
        payload["policies"][policy] = report.to_json()
        ok = ok and report.ok

    if args.real_sample:
        # REAL-mode spot check: the identical session/fault machinery
        # over genuine cryptography, at a handful of evenly spaced
        # fault points (REAL runs cost ~20s each at tiny scale).
        run = make_tpch_runner(
            args.query, scale_mb=scale, real=True,
            policy=policies[0], seed=args.seed, backend=args.backend,
        )
        baseline = run(FaultPlan())
        specs = build_specs(baseline, kinds=kinds)
        step = max(1, len(specs) // args.real_sample)
        sample = specs[::step][: args.real_sample]
        outcomes = [
            classify_fault(run, baseline, spec) for spec in sample
        ]
        bad = [o for o in outcomes if o.classification == "VIOLATION"]
        for o in outcomes:
            print(f"  real: {o}")
        print(
            f"chaos {args.query} [real]: {len(outcomes)} sampled "
            f"fault points, {len(bad)} violations"
        )
        payload["real_sample"] = [o.to_json() for o in outcomes]
        ok = ok and not bad

    if args.output:
        with open(args.output, "w") as fh:
            fh.write(json.dumps(payload, indent=2) + "\n")
        print(f"report -> {args.output}")
    return 0 if ok else 1


def _cmd_serve(args) -> int:
    import json

    from .runtime import MESSAGE_FAULT_KINDS
    from .serve import isolation_sweep, run_workload, tpch_request

    scale = 0.1 if args.scale == "tiny" else float(args.scale)
    kinds = (
        tuple(args.kinds)
        if args.kinds
        else MESSAGE_FAULT_KINDS + ("crash",)
    )

    if args.isolation_sweep:
        # Two-tenant sweep: fault every point of the victim's run,
        # require the observer byte-identical to its solo baseline.
        victim_q = args.queries[0]
        observer_q = (
            args.queries[1] if len(args.queries) > 1 else args.queries[0]
        )

        def victim(faults):
            return tpch_request(
                victim_q, tenant="victim", scale_mb=scale,
                real=args.real, policy=args.policy, seed=args.seed,
                name=f"{victim_q}/victim", faults=faults,
                backend=args.backend,
            )

        def observer(faults):
            return tpch_request(
                observer_q, tenant="observer", scale_mb=scale,
                real=args.real, policy=args.policy, seed=args.seed + 1,
                name=f"{observer_q}/observer", faults=faults,
                backend=args.backend,
            )

        def progress(i, n, outcome):
            if args.verbose or not outcome.ok:
                print(f"  [{i}/{n}] {outcome}")

        report = isolation_sweep(
            victim, observer, interleave=args.interleave,
            kinds=kinds, stride=args.stride, on_progress=progress,
        )
        report.meta.update(
            victim=victim_q, observer=observer_q, scale_mb=scale,
            policy=args.policy, kinds=list(kinds),
        )
        print(
            f"serve isolation {victim_q}->{observer_q} scale={scale} "
            f"interleave={args.interleave}: {report.summary()}"
        )
        payload = report.to_json()
        ok = report.ok
    else:
        requests = [
            tpch_request(
                q, tenant=f"tenant{i % args.tenants}", scale_mb=scale,
                real=args.real, policy=args.policy, seed=args.seed,
                name=f"{q}#{i}", backend=args.backend,
            )
            for i, q in enumerate(args.queries)
        ]
        budgets = None
        if args.budget_mb:
            budgets = {
                f"tenant{t}": (int(args.budget_mb * 1e6), 1 << 30)
                for t in range(args.tenants)
            }
        result = run_workload(
            requests, interleave=args.interleave, budgets=budgets,
            check_solo=args.check_solo,
        )
        print(
            f"serve {args.tenants} tenants, interleave="
            f"{args.interleave}: {result.report.summary()}"
        )
        for s in result.report.sessions:
            line = (
                f"  {s['tenant']}/{s['request']}: {s['state']}, "
                f"{s.get('n_messages', 0)} msgs, "
                f"{s.get('total_bytes', 0) / 1e6:,.2f} MB"
            )
            if args.check_solo and s["request"] in result.solo_deltas:
                delta = result.solo_deltas[s["request"]]
                line += (
                    "  [== solo]" if delta == "" else f"  [DRIFT: {delta}]"
                )
            print(line)
        ok = all(
            s["state"] in ("done", "rejected")
            for s in result.report.sessions
        )
        if args.check_solo:
            ok = ok and result.isolated
        payload = result.to_json()

    if args.output:
        with open(args.output, "w") as fh:
            fh.write(json.dumps(payload, indent=2) + "\n")
        print(f"report -> {args.output}")
    return 0 if ok else 1


def _cmd_demo(args) -> int:
    import runpy
    from pathlib import Path

    script = (
        Path(__file__).resolve().parent.parent.parent
        / "examples"
        / "quickstart.py"
    )
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    print("examples/quickstart.py not found", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.add_argument(
        "--queries", nargs="+",
        default=["Q3", "Q10", "Q18", "Q8", "Q9"],
    )
    p.add_argument("--scales", nargs="+", type=float, default=[1, 3, 10])
    p.add_argument("--q9-nations", type=int, default=25)
    p.set_defaults(fn=_cmd_figures)

    p = sub.add_parser("tpch", help="run one TPC-H benchmark query")
    p.add_argument("query", choices=["Q3", "Q10", "Q18", "Q8", "Q9"])
    p.add_argument("--scale", type=float, default=1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--show", type=int, default=5)
    p.add_argument("--q9-nations", type=int, default=25)
    p.add_argument(
        "--real", action="store_true",
        help="REAL-mode cryptography (slow; use tiny scales)",
    )
    p.add_argument(
        "--backend", choices=["yannakakis", "linear", "auto"],
        default="yannakakis",
        help="join back-end: the paper's PSI protocol, the "
        "linear-complexity DH-OPRF protocol, or per-node cost routing "
        "(see docs/BACKENDS.md)",
    )
    p.set_defaults(fn=_cmd_tpch)

    p = sub.add_parser(
        "trace", help="per-operator execution trace as JSON"
    )
    p.add_argument("query", choices=["Q3", "Q10", "Q18", "Q8", "Q9"])
    p.add_argument("--scale", type=float, default=1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--q9-nations", type=int, default=25)
    p.add_argument(
        "--policy", choices=["program", "stages"], default="program",
        help="scheduler dispatch policy",
    )
    p.add_argument(
        "-o", "--output", default=None,
        help="write the JSON here instead of stdout",
    )
    p.add_argument(
        "--real", action="store_true",
        help="REAL-mode cryptography (slow; use tiny scales)",
    )
    p.add_argument(
        "--backend", choices=["yannakakis", "linear", "auto"],
        default="yannakakis",
        help="join back-end; fold/semijoin trace nodes report their "
        "routed back-end and estimated bytes",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("estimate", help="analytic cost prediction")
    p.add_argument("query", choices=["Q3", "Q10", "Q18", "Q8", "Q9"])
    p.add_argument("--scale", type=float, default=1)
    p.set_defaults(fn=_cmd_estimate)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzer + obliviousness transcript audit",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="master seed of the instance stream")
    p.add_argument("--iterations", type=int, default=50)
    p.add_argument(
        "--start", type=int, default=0,
        help="first instance index (for replaying a failing seed)",
    )
    p.add_argument(
        "--real-every", type=int, default=10,
        help="every Nth instance also runs a tiny REAL-mode "
        "differential (0 disables)",
    )
    p.add_argument(
        "--no-audit", action="store_true",
        help="skip the obliviousness transcript audit",
    )
    p.add_argument(
        "--inject-fault", nargs="?", const="perturb_share",
        default=None, metavar="KIND",
        choices=[
            "perturb_share", "corrupt", "truncate", "drop",
            "duplicate", "reorder", "hang", "crash",
        ],
        help="self-test: inject one deterministic fault (default "
        "kind: perturb_share; channel kinds are injected by the "
        "session layer) and require the fuzzer to catch it — as an "
        "oracle mismatch or a typed protocol abort (exit 0 iff "
        "caught)",
    )
    p.add_argument(
        "--fault-at", type=int, default=3, metavar="N",
        help="wire-message index (message faults) or plan-node id "
        "(crash) the injected fault targets",
    )
    p.add_argument(
        "--fault-ticks", type=int, default=0, metavar="T",
        help="hang duration in virtual ticks (0 = just past the "
        "node deadline budget)",
    )
    p.add_argument("--max-failures", type=int, default=10)
    p.add_argument(
        "--save-failures", default=None, metavar="DIR",
        help="write failing instances as replayable JSON here",
    )
    p.add_argument(
        "--replay", default=None, metavar="FILE",
        help="re-check one saved instance/failure file",
    )
    p.add_argument(
        "--corpus", default=None, metavar="DIR", nargs="?", const="",
        help="replay every corpus file (default: tests/corpus)",
    )
    p.add_argument(
        "--backend",
        choices=["yannakakis", "linear", "auto", "both"],
        default="yannakakis",
        help='join back-end; "both" runs every instance under both '
        "protocols — the cross-protocol differential oracle plus a "
        "per-back-end obliviousness audit",
    )
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser(
        "chaos",
        help="fault-injection sweep: every message is a fault point",
    )
    p.add_argument(
        "--query", type=lambda s: s.upper(), default="Q3",
        choices=["Q3", "Q10", "Q18", "Q8", "Q9"],
        help="TPC-H query to sweep (case-insensitive)",
    )
    p.add_argument(
        "--scale", default="tiny",
        help='dataset scale in MB, or "tiny" (= 0.1)',
    )
    p.add_argument(
        "--sweep", choices=["all", "quick"], default="all",
        help='"all" faults every wire-message index; "quick" '
        "strides (see --stride)",
    )
    p.add_argument(
        "--stride", type=int, default=5,
        help="message-index stride for --sweep quick",
    )
    p.add_argument(
        "--policy", choices=["program", "stages", "both"],
        default="program", help="scheduler dispatch policy to sweep",
    )
    p.add_argument(
        "--kinds", nargs="+", default=None,
        choices=[
            "corrupt", "truncate", "drop", "duplicate", "reorder",
            "hang", "crash",
            "kill-node", "kill-wire", "stall", "partition",
        ],
        help="fault kinds to sweep (default: all for the selected "
        "level; kill-node/kill-wire/stall/partition are process-level)",
    )
    p.add_argument(
        "--level", choices=["message", "process"], default="message",
        help='"message" perturbs frames inside one process (PR-5); '
        '"process" runs both parties as real OS processes over TCP '
        "and kills/drops/partitions them (see docs/ROBUSTNESS.md)",
    )
    p.add_argument(
        "--backend", choices=["yannakakis", "linear", "auto"],
        default="yannakakis",
        help="join back-end the swept runs execute under",
    )
    p.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-scenario wall-clock budget for --level process",
    )
    p.add_argument(
        "--real-sample", type=int, default=0, metavar="N",
        help="additionally spot-check N fault points in REAL mode "
        "(slow: ~20s per run at tiny scale)",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--verbose", action="store_true",
        help="print every fault point's classification",
    )
    p.add_argument(
        "-o", "--output", default=None,
        help="write the JSON report here",
    )
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "net",
        help="run one party of a two-process query over a real socket",
    )
    p.add_argument(
        "--role", required=True, choices=["alice", "bob"],
        help="which party this process plays",
    )
    p.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="accept the peer's connection here (conventionally alice)",
    )
    p.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="dial the peer there (conventionally bob)",
    )
    p.add_argument(
        "--query", type=lambda s: s.upper(), default="Q3",
        choices=["Q3", "Q10", "Q18"],
        help="single-plan TPC-H query to run (case-insensitive)",
    )
    p.add_argument(
        "--scale", default="tiny",
        help='dataset scale in MB, or "tiny" (= 0.1)',
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--backend", choices=["yannakakis", "linear", "auto"],
        default="yannakakis", help="join back-end",
    )
    p.add_argument(
        "--policy", choices=["program", "stages"], default="program",
        help="scheduler dispatch policy",
    )
    p.add_argument(
        "--journal", default=None, metavar="FILE",
        help="disk journal for durable checkpoints (enables --resume "
        "after a crash)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume from the newest committed checkpoint in --journal "
        "instead of starting fresh",
    )
    p.add_argument(
        "-o", "--out", default=None, metavar="FILE",
        help="write the outcome payload (profile, transport stats, "
        "abort) as JSON here",
    )
    p.add_argument(
        "--heartbeat", type=float, default=0.25, metavar="S",
        help="heartbeat interval in seconds",
    )
    p.add_argument(
        "--idle-timeout", type=float, default=10.0, metavar="S",
        help="silent-connection window before a reconnect is attempted",
    )
    p.add_argument(
        "--exchange-deadline", type=float, default=120.0, metavar="S",
        help="hard wall-clock bound on one frame exchange",
    )
    p.add_argument(
        "--reconnect-attempts", type=int, default=10,
        help="reconnect attempts per episode before a terminal "
        "connection-lost abort",
    )
    g = p.add_argument_group(
        "fault injection (chaos-harness self-test hooks)"
    )
    g.add_argument("--kill-at-node", type=int, default=None,
                   metavar="NODE", help="SIGKILL self at this plan node")
    g.add_argument("--kill-at-wire", type=int, default=None,
                   metavar="N", help="SIGKILL self at wire exchange N")
    g.add_argument("--drop-at-wire", type=int, default=None,
                   metavar="N", help="force-close the TCP connection "
                   "once, at wire exchange N")
    g.add_argument("--stall-at-wire", type=int, default=None,
                   metavar="N", help="freeze at wire exchange N")
    g.add_argument("--stall-ms", type=int, default=400)
    g.add_argument("--partition-at-wire", type=int, default=None,
                   metavar="N", help="drop the connection AND freeze "
                   "at wire exchange N")
    g.add_argument("--partition-ms", type=int, default=400)
    p.set_defaults(fn=_cmd_net)

    p = sub.add_parser(
        "serve",
        help="multi-tenant query service: interleaved sessions, "
        "shared plan cache, per-tenant budgets",
    )
    p.add_argument(
        "--queries", nargs="+", type=lambda s: s.upper(),
        default=["Q3", "Q10", "Q18", "Q8", "Q9"],
        choices=["Q3", "Q10", "Q18", "Q8", "Q9"],
        help="TPC-H queries to serve (assigned to tenants round-robin; "
        "with --isolation-sweep, the first is the faulted victim and "
        "the second the observer)",
    )
    p.add_argument(
        "--tenants", type=int, default=2,
        help="number of tenants the queries are spread over",
    )
    p.add_argument(
        "--scale", default="tiny",
        help='dataset scale in MB, or "tiny" (= 0.1)',
    )
    p.add_argument(
        "--policy", choices=["program", "stages"], default="program",
        help="exec scheduler dispatch policy inside each session",
    )
    p.add_argument(
        "--interleave", choices=["round_robin", "clock"],
        default="round_robin",
        help="cross-session interleaving policy",
    )
    p.add_argument(
        "--budget-mb", type=float, default=0, metavar="MB",
        help="per-tenant byte budget in MB (0 = unmetered)",
    )
    p.add_argument(
        "--check-solo", action="store_true",
        help="re-run each completed session solo and require its "
        "transcript byte-identical",
    )
    p.add_argument(
        "--isolation-sweep", action="store_true",
        help="two-tenant chaos mode: sweep fault points in the victim "
        "session, require the observer byte-identical to solo at every "
        "point",
    )
    p.add_argument(
        "--stride", type=int, default=1,
        help="message-index stride for --isolation-sweep",
    )
    p.add_argument(
        "--kinds", nargs="+", default=None,
        choices=[
            "corrupt", "truncate", "drop", "duplicate", "reorder",
            "hang", "crash",
        ],
        help="fault kinds for --isolation-sweep (default: all)",
    )
    p.add_argument(
        "--real", action="store_true",
        help="REAL-mode cryptography (slow; use tiny scales)",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--backend", choices=["yannakakis", "linear", "auto"],
        default="yannakakis",
        help="join back-end every served session runs under",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="print every fault point's classification",
    )
    p.add_argument(
        "-o", "--output", default=None,
        help="write the JSON report here",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "lint",
        help="obliviousness & channel-discipline static analysis",
    )
    from .lint.runner import add_lint_arguments, cmd_lint

    add_lint_arguments(p)
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("demo", help="run the quickstart example")
    p.set_defaults(fn=_cmd_demo)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
