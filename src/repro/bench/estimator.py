"""Analytic cost estimation for a compiled plan.

Predicts the protocol's communication *without running it*, from the
plan structure, the relation sizes and the ownership map — the same
closed forms the SIMULATED mode charges, summed symbolically.  Useful
for planning ("what would this query cost?") and asserted against the
metered execution by the test suite.

The estimate is exact for the deterministic parts (circuit templates,
OEP networks, OT batches) and uses the deterministic bin/load formulas
for PSI, so it matches the metered run to the byte for a given plan and
ownership — the only approximation is that it assumes every operator
takes its general path (no same-party shortcuts beyond what ownership
dictates, payload-shared PSI whenever the child annotations are not
input-plain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..query.builder import JoinAggregateQuery

from ..mpc import gadgets
from ..mpc.circuits.garbling import LABEL_BYTES, ROWS_PER_AND
from ..mpc.cuckoo import max_bin_load, num_bins
from ..mpc.dhoprf import GROUP_BITS as DH_GROUP_BITS
from ..mpc.dhoprf import TOKEN_BYTES
from ..mpc.oprf import OPRF_WIDTH
from ..mpc.params import DEFAULT_PARAMS, SecurityParams
from ..mpc.psi import _token_bits
from ..mpc.waksman import switch_count
from ..yannakakis.plan import ReduceAggregate, ReduceFold, YannakakisPlan

__all__ = [
    "CostEstimate",
    "estimate_node_costs",
    "estimate_plan_cost",
    "estimate_query_cost",
    "session_framing_overhead",
]

#: The selectable join back-ends, in tie-break preference order (the
#: paper's protocol first).  Mirrors repro.core.semijoin.BACKENDS
#: without importing the operator layer into the estimator.
BACKENDS = ("yannakakis", "linear")


def session_framing_overhead(n_messages: int) -> int:
    """Extra bytes the fault-tolerant session layer meters on top of a
    plain run: one fixed-size frame header (magic, sequence number,
    length, checksum) per wire message.  The session is accounting-
    neutral otherwise — a session run's total is exactly the plain
    run's total plus this overhead — so callers with a message count
    (from a metered run or an :class:`~repro.exec.trace.ExecutionTrace`)
    can reconcile estimates against session-enabled executions."""
    from ..runtime.framing import FRAME_HEADER_BYTES

    return int(n_messages) * FRAME_HEADER_BYTES


@dataclass
class CostEstimate:
    """Predicted bytes, broken down by mechanism.

    ``rounds`` is a coarse upper-estimate of the communication rounds
    (direction changes): the byte prediction is exact, but round counts
    depend on message interleaving across operators, so the estimator
    charges a documented constant per primitive invocation instead
    (2 per OT batch, 2 per garbled-circuit exchange, 3 per PSI setup,
    1 per reveal).  Admission control budgets against it; nothing
    asserts it equals the metered round count."""

    total: int = 0
    by_part: Dict[str, int] = field(default_factory=dict)
    rounds: int = 0

    def add(self, part: str, n_bytes: int) -> None:
        n_bytes = int(n_bytes)
        self.total += n_bytes
        self.by_part[part] = self.by_part.get(part, 0) + n_bytes

    def add_rounds(self, n: int) -> None:
        self.rounds += int(n)

    def with_session(self, n_messages: int) -> "CostEstimate":
        """A copy of this estimate with the session layer's framing
        overhead added as its own ``session_framing`` part."""
        out = CostEstimate(
            total=self.total,
            by_part=dict(self.by_part),
            rounds=self.rounds,
        )
        out.add("session_framing", session_framing_overhead(n_messages))
        return out


class _Estimator:
    def __init__(self, params: SecurityParams, group_bits: int = 2048):
        self.p = params
        self.group_bits = group_bits
        self.est = CostEstimate()
        self._ot_base_charged: Dict[bool, bool] = {
            False: False, True: False,
        }

    # -- primitive formulas (mirroring the SIMULATED charges) -----------

    def ot(self, n: int, pair_bytes: int, reverse: bool = False) -> None:
        if n == 0:
            return
        kappa = self.p.kappa
        if not self._ot_base_charged[reverse]:
            self.est.add(
                "ot_base",
                self.group_bits // 8 * (1 + kappa) + 32 * kappa,
            )
            self.est.add_rounds(2)
            self._ot_base_charged[reverse] = True
        self.est.add("ot_u", kappa * ((n + 7) // 8))
        self.est.add("ot_ct", pair_bytes)
        self.est.add_rounds(2)

    def garbled(self, circuit, n: int) -> None:
        if n == 0:
            return
        self.est.add(
            "gc_tables",
            ROWS_PER_AND * LABEL_BYTES * circuit.and_count * n,
        )
        self.est.add(
            "gc_labels",
            LABEL_BYTES
            * (len(circuit.bob_inputs) + len(circuit.const_wires))
            * n,
        )
        bits = len(circuit.alice_inputs) * n
        self.ot(bits, 2 * LABEL_BYTES * bits)
        self.est.add("gc_decode", ((len(circuit.outputs) + 7) // 8) * n)
        self.est.add_rounds(2)

    def merge_chain(self, make_circuit, n: int) -> None:
        ell = self.p.ell
        if n <= 0:
            return
        if n <= 3:
            self.garbled(make_circuit(ell, n), 1)
            return
        c2, c3 = make_circuit(ell, 2), make_circuit(ell, 3)

        def ex(f2, f3):
            return f2 + (n - 2) * (f3 - f2)

        self.est.add(
            "gc_tables",
            ROWS_PER_AND
            * LABEL_BYTES
            * ex(c2.and_count, c3.and_count),
        )
        self.est.add(
            "gc_labels",
            LABEL_BYTES
            * ex(
                len(c2.bob_inputs) + len(c2.const_wires),
                len(c3.bob_inputs) + len(c3.const_wires),
            ),
        )
        bits = ex(len(c2.alice_inputs), len(c3.alice_inputs))
        self.ot(bits, 2 * LABEL_BYTES * bits)
        self.est.add(
            "gc_decode",
            (ex(len(c2.outputs), len(c3.outputs)) + 7) // 8,
        )
        self.est.add_rounds(2)

    def oep(self, m: int, n_out: int) -> None:
        n_work = 1
        while n_work < max(m, n_out, 1):
            n_work *= 2
        rb = (self.p.ell + 7) // 8
        switches = 2 * switch_count(n_work)
        self.ot(
            switches + (n_work - 1),
            2 * 2 * rb * switches + 2 * rb * (n_work - 1),
        )

    def permute(self, n: int) -> None:
        rb = (self.p.ell + 7) // 8
        s = switch_count(n)
        self.ot(s, 2 * 2 * rb * s)

    def gilboa(self, n: int, n_cross_terms: int = 2) -> None:
        ell = self.p.ell
        rb = (ell + 7) // 8
        for i in range(n_cross_terms):
            self.ot(n * ell, 2 * rb * n * ell, reverse=bool(i % 2))

    def share(self, n: int) -> None:
        self.est.add("shares", n * ((self.p.ell + 7) // 8))
        self.est.add_rounds(1)

    def dh_oprf(self, m: int, n: int) -> None:
        """The linear back-end's DH-OPRF matching: blind + eval (one
        group element per parent key, both directions) and ``n`` sorted
        tokens (:mod:`repro.mpc.dhoprf`)."""
        eb = (DH_GROUP_BITS + 7) // 8
        self.est.add("dhoprf", 2 * m * eb + n * TOKEN_BYTES)
        self.est.add_rounds(2)

    def psi(self, m: int, n: int, shared_payload: bool) -> None:
        b = num_bins(m, self.p.cuckoo_expansion)
        load = max_bin_load(n, b, self.p.cuckoo_hashes, self.p.sigma)
        ell = self.p.ell
        self.est.add("psi_seeds", 16 * self.p.cuckoo_hashes)
        self.est.add_rounds(3)
        self.est.add(
            "oprf",
            2048 // 8 * (1 + OPRF_WIDTH)
            + 32 * OPRF_WIDTH
            + OPRF_WIDTH * ((b + 7) // 8),
        )
        self.est.add("opprf_hints", 8 * 2 * load * b)
        reveal = shared_payload
        circuit = gadgets.psi_bin_circuit(
            ell, _token_bits(b, self.p.sigma), reveal
        )
        self.garbled(circuit, b)
        if shared_payload:
            # Section 5.5: two extra OEPs around the PSI.
            self.oep(n + b, n + b)
            self.oep(n + b, b)

    # -- operators --------------------------------------------------------

    def aggregate(self, n: int, annotations_plain: bool) -> None:
        if annotations_plain or n == 0:
            return  # local fast path
        self.oep(n, n)
        self.merge_chain(gadgets.merge_sum_circuit, n)

    def support_projection(self, n: int, annotations_plain: bool) -> None:
        if annotations_plain or n == 0:
            return
        self.oep(n, n)
        self.garbled(gadgets.nonzero_circuit(self.p.ell), n)
        self.merge_chain(gadgets.merge_or_circuit, n)

    def reduce_join(
        self,
        parent_n: int,
        child_n: int,
        same_owner: bool,
        child_plain: bool,
        parent_plain: bool,
        backend: str = "yannakakis",
    ) -> None:
        if parent_n == 0:
            return
        if same_owner:
            # Back-end-independent: same-owner folds never cross the
            # PSI/DH-OPRF dispatch, so both back-ends price (and run)
            # identically here.
            if child_plain and parent_plain:
                return  # fully local
            if child_plain:
                self.share(child_n)
            self.oep(child_n + 1, parent_n)
        elif backend == "linear":
            self.dh_oprf(parent_n, child_n)
            if child_n > 0:
                if child_plain:
                    self.share(child_n)
                else:
                    self.permute(child_n)
            self.oep(child_n + 1, parent_n)
        else:
            if child_plain:
                self.psi(parent_n, child_n, shared_payload=False)
            else:
                self.psi(parent_n, child_n, shared_payload=True)
            b = num_bins(parent_n, self.p.cuckoo_expansion)
            self.oep(b, parent_n)
        if parent_plain:
            self.gilboa(parent_n, n_cross_terms=1)
        else:
            self.gilboa(parent_n, n_cross_terms=2)


def estimate_plan_cost(
    plan: YannakakisPlan,
    sizes: Dict[str, int],
    owners: Dict[str, str],
    out_size: int,
    params: SecurityParams = DEFAULT_PARAMS,
    group_bits: int = 2048,
    backends: Optional[Dict[str, str]] = None,
) -> CostEstimate:
    """Predict the protocol's communication for ``plan`` over relations
    of the given sizes/owners, with ``out_size`` final join rows.
    ``group_bits`` is the base-OT group size the engine was built with
    (the OPRF's group is fixed at 2048 by :mod:`repro.mpc.oprf`).

    Tracks which intermediate annotations are still owner-plain so the
    Section 6.5 fast paths are credited exactly as the executor takes
    them.  ``backends`` maps fold/semijoin labels to a join back-end
    (see :func:`repro.query.planner.route_backends`); unlisted nodes
    price as ``"yannakakis"``.
    """
    e = _Estimator(params, group_bits)
    n = dict(sizes)
    plain = {name: True for name in sizes}
    owner = dict(owners)
    routes = dict(backends or {})

    for step in plan.reduce_steps:
        if isinstance(step, ReduceFold):
            child, parent = step.child, step.parent
            e.aggregate(n[child], plain[child])
            same = owner[child] == owner[parent]
            e.reduce_join(
                n[parent], n[child], same, plain[child], plain[parent],
                backend=routes.get(
                    f"fold/{child}->{parent}", "yannakakis"
                ),
            )
            plain[parent] = (
                plain[parent] and plain[child] and same
            )
        elif isinstance(step, ReduceAggregate):
            e.aggregate(n[step.node], plain[step.node])
            # size unchanged (padded); plainness preserved

    for step in plan.semijoin_steps:
        t, f = step.target, step.filter
        e.support_projection(n[f], plain[f])
        same = owner[t] == owner[f]
        support_plain = plain[f]  # support of plain stays plain
        e.reduce_join(
            n[t], n[f], same, support_plain, plain[t],
            backend=routes.get(f"semi/{t}<-{f}", "yannakakis"),
        )
        plain[t] = plain[t] and support_plain and same

    # Full join: reveal + OUT + per-relation OEP + products + result.
    reduced = list(plan.reduced_attrs)
    ell_bytes = (params.ell + 7) // 8
    for name in reduced:
        if plain[name]:
            e.share(n[name])
        # reveal circuits: indicator only for Alice-owned; indicator +
        # payload mux for Bob-owned.  Payload width is data-dependent;
        # callers wanting exactness supply integer-only relations, for
        # which the estimator assumes 4-byte slots per attribute.
        arity = len(plan.reduced_attrs[name])
        from ..mpc.context import ALICE

        pbits = 0 if owner[name] == ALICE else 32 * max(arity, 0)
        e.garbled(
            gadgets.reveal_tuple_circuit(params.ell, pbits), n[name]
        )
    e.est.add("out_size", 8)
    e.est.add_rounds(1)
    if out_size > 0:
        for name in reduced:
            e.oep(n[name] + 1, out_size)
        e.gilboa(out_size, n_cross_terms=2 * (len(reduced) - 1))
    e.est.add("result_reveal", out_size * ell_bytes)
    e.est.add_rounds(1)
    return e.est


def estimate_node_costs(
    plan: YannakakisPlan,
    sizes: Dict[str, int],
    owners: Dict[str, str],
    params: SecurityParams = DEFAULT_PARAMS,
    group_bits: int = 2048,
) -> Dict[str, Dict[str, int]]:
    """Marginal byte cost of every fold/semijoin node under each join
    back-end: ``{node_label: {backend: bytes}}``.

    "Marginal" excludes the run-wide one-time base-OT setup (it is
    charged once per engine, not per node) and includes the node's
    whole transcript window — the child aggregation / support
    projection plus the reduce-join — matching what the scheduler's
    trace meters per node.  The planner's routing pass and the
    scheduler's per-node ``est_bytes`` both read these numbers.
    """
    n = dict(sizes)
    plain = {name: True for name in sizes}
    owner = dict(owners)
    out: Dict[str, Dict[str, int]] = {}

    def marginal(price: "Callable[[_Estimator, str], None]") -> Dict[str, int]:
        costs = {}
        for b in BACKENDS:
            e = _Estimator(params, group_bits)
            e._ot_base_charged = {False: True, True: True}
            price(e, b)
            costs[b] = e.est.total
        return costs

    for step in plan.reduce_steps:
        if isinstance(step, ReduceFold):
            child, parent = step.child, step.parent
            same = owner[child] == owner[parent]
            c_n, p_n = n[child], n[parent]
            c_plain, p_plain = plain[child], plain[parent]

            def price_fold(e: _Estimator, b: str) -> None:
                e.aggregate(c_n, c_plain)
                e.reduce_join(p_n, c_n, same, c_plain, p_plain, backend=b)

            out[f"fold/{child}->{parent}"] = marginal(price_fold)
            plain[parent] = plain[parent] and plain[child] and same

    for step in plan.semijoin_steps:
        t, f = step.target, step.filter
        same = owner[t] == owner[f]
        t_n, f_n = n[t], n[f]
        f_plain, t_plain = plain[f], plain[t]

        def price_semi(e: _Estimator, b: str) -> None:
            e.support_projection(f_n, f_plain)
            e.reduce_join(t_n, f_n, same, f_plain, t_plain, backend=b)

        out[f"semi/{t}<-{f}"] = marginal(price_semi)
        plain[t] = plain[t] and plain[f] and same
    return out


def estimate_query_cost(
    query: "JoinAggregateQuery",
    out_size: Optional[int] = None,
    params: Optional[SecurityParams] = None,
    group_bits: int = 2048,
    backends: Optional[Dict[str, str]] = None,
) -> CostEstimate:
    """Price a whole :class:`~repro.query.builder.JoinAggregateQuery`
    *without running it* — the admission controller's entry point.

    Sizes, owners and the ring width are read off the query; the plan
    is the one the query itself would execute.  ``out_size`` bounds the
    full-join output: when omitted, the worst case (the product of the
    relation sizes) is assumed, making the price an upper bound — a
    query admitted under it can never exceed its reservation on the
    final join.  ``backends`` overrides the per-node join back-end map;
    when omitted the query's own routing
    (:meth:`~repro.query.builder.JoinAggregateQuery.backend_assignments`)
    is priced, so the admission price follows the back-end the query
    will actually run.
    """
    sizes = {n: len(r) for n, r in query.relations.items()}
    if out_size is None:
        out_size = 1
        for n_rel in sizes.values():
            out_size *= n_rel
    if params is None:
        ells = {r.semiring.ell for r in query.relations.values()}
        if len(ells) != 1:
            raise ValueError(
                f"relations disagree on the ring width: {sorted(ells)}"
            )
        params = SecurityParams(ell=ells.pop())
    if backends is None:
        backends = query.backend_assignments()
    return estimate_plan_cost(
        query.plan(),
        sizes,
        dict(query.owners),
        out_size,
        params=params,
        group_bits=group_bits,
        backends=backends,
    )
