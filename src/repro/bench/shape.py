"""Shape checks for the reproduced figures.

The reproduction does not chase the paper's absolute numbers (different
substrate), but its *shapes* must hold.  These helpers are asserted by
the benchmark harness and tests:

* secure Yannakakis cost grows (near-)linearly in effective input size;
* the garbled-circuit baseline grows polynomially (degree = number of
  joined relations) and loses by orders of magnitude at every scale;
* the non-private baseline stays orders of magnitude below secure
  Yannakakis.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .runner import FigureRow

__all__ = ["growth_exponent", "check_figure_shape"]


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x) — 1.0 means linear
    growth, k means degree-k polynomial."""
    pts = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    if len(pts) < 2:
        raise ValueError("need at least two positive points")
    n = len(pts)
    sx = sum(p[0] for p in pts)
    sy = sum(p[1] for p in pts)
    sxx = sum(p[0] * p[0] for p in pts)
    sxy = sum(p[0] * p[1] for p in pts)
    return (n * sxy - sx * sy) / (n * sxx - sx * sx)


def check_figure_shape(rows: List[FigureRow]) -> List[str]:
    """Return a list of shape violations (empty = the figure reproduces
    the paper's qualitative claims)."""
    problems: List[str] = []
    if any(not r.matches_plaintext for r in rows):
        problems.append("secure result does not match plaintext")
    for r in rows:
        if r.gc_mb <= r.secure_mb:
            problems.append(
                f"at {r.scale_mb}MB the GC baseline communicates less "
                "than secure Yannakakis"
            )
        if r.gc_seconds <= r.secure_seconds:
            problems.append(
                f"at {r.scale_mb}MB the GC baseline is faster than "
                "secure Yannakakis"
            )
        if r.plain_mb >= r.secure_mb:
            problems.append(
                f"at {r.scale_mb}MB plaintext communicates more than "
                "the secure protocol"
            )
    if len(rows) >= 3:
        xs = [r.effective_mb for r in rows]
        slope_comm = growth_exponent(xs, [r.secure_mb for r in rows])
        if not 0.5 <= slope_comm <= 1.5:
            problems.append(
                f"secure communication grows with exponent "
                f"{slope_comm:.2f}, expected ~1 (linear)"
            )
        slope_gc = growth_exponent(xs, [r.gc_mb for r in rows])
        k = 3  # at least a 3-way join in every benchmark query
        if slope_gc < 2.0:
            problems.append(
                f"GC communication grows with exponent {slope_gc:.2f}, "
                f"expected ~{k} (polynomial)"
            )
    return problems
