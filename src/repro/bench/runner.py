"""The experiment grid of Section 8: one figure per query, each a pair
of (running time, communication) series over dataset scales, comparing

* **secure Yannakakis** — measured (SIMULATED-mode primitives with
  exact communication accounting);
* **garbled circuit** — the SMCQL-style Cartesian-product baseline,
  exact circuit size, time extrapolated from this machine's measured
  garbling rate (the paper's own methodology; it runs the circuit for
  real only at the smallest scale);
* **non-private** — plaintext Yannakakis; communication = effective
  input size (the paper's convention for MySQL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from typing import TYPE_CHECKING

from ..baselines.garbled_baseline import cartesian_gc_cost, gc_gate_rate
from ..mpc.context import Mode
from ..mpc.engine import Engine
from ..tpch.datagen import SCALES_MB, generate
from ..tpch.queries import PREPARED, PreparedQuery

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.trace import ExecutionTrace

__all__ = ["FigureRow", "run_figure", "format_figure", "FIGURES"]

#: Figure number per query, as in the paper.
FIGURES = {"Q3": 2, "Q10": 3, "Q18": 4, "Q8": 5, "Q9": 6}


@dataclass
class FigureRow:
    """One x-position of one figure."""

    query: str
    scale_mb: float
    effective_mb: float
    secure_seconds: float
    secure_mb: float
    plain_seconds: float
    plain_mb: float
    gc_seconds: float
    gc_mb: float
    matches_plaintext: bool


def run_figure(
    query_name: str,
    scales: Sequence[float] = SCALES_MB,
    seed: int = 7,
    q9_nations: Optional[List[int]] = None,
    verify: bool = True,
    tracer: Optional["ExecutionTrace"] = None,
) -> List[FigureRow]:
    """Regenerate one figure's series.

    ``tracer``: an :class:`~repro.exec.trace.ExecutionTrace` to attach
    to every secure run's engine; the scheduler appends one node per
    executed operator (all scales accumulate into the one trace)."""
    if query_name not in PREPARED:
        raise KeyError(
            f"unknown query {query_name!r}; choose from {sorted(PREPARED)}"
        )
    rate = gc_gate_rate()
    rows: List[FigureRow] = []
    for scale in scales:
        dataset = generate(scale)
        if query_name == "Q9" and q9_nations is not None:
            query = PREPARED[query_name](dataset, nations=q9_nations)
        else:
            query = PREPARED[query_name](dataset)
        plain, plain_seconds = query.run_plain()

        ctx = query.make_context(Mode.SIMULATED, seed=seed)
        engine = Engine(ctx, tracer=tracer)
        secure, stats = query.run_secure(engine)
        matches = (
            secure.semantically_equal(plain) if verify else True
        )

        gc = cartesian_gc_cost(
            query.gc_sizes,
            query.gc_conditions,
            gate_rate=rate,
            runs=query.gc_runs,
        )
        rows.append(
            FigureRow(
                query=query.name,
                scale_mb=scale,
                effective_mb=query.effective_bytes / 1e6,
                secure_seconds=stats.seconds,
                secure_mb=stats.total_bytes / 1e6,
                plain_seconds=plain_seconds,
                plain_mb=query.effective_bytes / 1e6,
                gc_seconds=gc.est_seconds,
                gc_mb=gc.comm_bytes / 1e6,
                matches_plaintext=matches,
            )
        )
    return rows


def _human_time(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.2f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}min"
    if seconds < 86400 * 3:
        return f"{seconds / 3600:.1f}h"
    if seconds < 86400 * 365 * 2:
        return f"{seconds / 86400:.1f}d"
    return f"{seconds / (86400 * 365.25):.1f}y"


def _human_mb(mb: float) -> str:
    if mb < 1:
        return f"{mb * 1000:.0f}KB"
    if mb < 1000:
        return f"{mb:.1f}MB"
    if mb < 1e6:
        return f"{mb / 1000:.1f}GB"
    if mb < 1e9:
        return f"{mb / 1e6:.1f}TB"
    if mb < 1e12:
        return f"{mb / 1e9:.1f}PB"
    return f"{mb / 1e12:.1f}EB"


def format_figure(rows: List[FigureRow]) -> str:
    """Render one figure's series as the paper's two panels."""
    if not rows:
        return "(no rows)"
    name = rows[0].query
    head = (
        f"Figure {FIGURES.get(name, '?')} — {name}: "
        "time and communication vs effective input size"
    )
    lines = [head, "-" * len(head)]
    lines.append(
        f"{'scale':>7} {'eff.input':>10} | {'SecYan time':>12} "
        f"{'GC time':>10} {'plain time':>11} | {'SecYan comm':>12} "
        f"{'GC comm':>10} {'plain comm':>11} | ok"
    )
    for r in rows:
        lines.append(
            f"{r.scale_mb:>6}M {_human_mb(r.effective_mb):>10} | "
            f"{_human_time(r.secure_seconds):>12} "
            f"{_human_time(r.gc_seconds):>10} "
            f"{_human_time(r.plain_seconds):>11} | "
            f"{_human_mb(r.secure_mb):>12} "
            f"{_human_mb(r.gc_mb):>10} "
            f"{_human_mb(r.plain_mb):>11} | "
            f"{'yes' if r.matches_plaintext else 'NO'}"
        )
    return "\n".join(lines)
