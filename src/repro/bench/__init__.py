"""Benchmark harness for the paper's evaluation (Figures 2-6)."""

from .estimator import CostEstimate, estimate_plan_cost
from .runner import FIGURES, FigureRow, format_figure, run_figure
from .shape import check_figure_shape, growth_exponent

__all__ = [
    "CostEstimate",
    "FIGURES",
    "FigureRow",
    "check_figure_shape",
    "estimate_plan_cost",
    "format_figure",
    "growth_exponent",
    "run_figure",
]
