"""The leakage-atom registry and declared-leakage contracts.

The paper's security argument is compositional: every oblivious phase
leaks nothing beyond declared public sizes, so the pipeline as a whole
leaks nothing.  Since the DH-OPRF linear join landed (docs/BACKENDS.md)
that statement is *conditional on routing* — the linear back-end
deliberately reveals a PRF-pseudonymised join pattern to the parent
owner.  This module is the single machine-readable source of truth for
what each primitive and back-end is *allowed* to leak:

* :data:`ATOMS` — the closed vocabulary of leakage atoms.  A contract
  may only ever name atoms from this dict; :func:`leaks` raises at
  import time otherwise, and the lint rules (OBL006–OBL008) reject
  unknown atoms statically.
* :func:`leaks` — the contract decorator protocol entry points carry
  (``@leaks("join_pattern:parent")``).  Functions that cannot take a
  decorator (closures, branches) use a ``# oblint: leaks=`` comment
  marker instead (:mod:`repro.lint.suppress`).
* :data:`SINK_ATOMS` — which callee names *materialise* plaintext, and
  which atom each one witnesses.  The lint taint engine treats a call
  to one of these on tainted data as a leakage event that must be
  covered by the enclosing function's contract (OBL006).
* :data:`BACKEND_CONTRACTS` — the per-back-end leakage summary the
  plan-level audit composes (:mod:`repro.exec.audit`) and OBL008
  checks against the dispatch point in :mod:`repro.core.semijoin`.
  The dict literal below is deliberately *statically parseable*
  (string keys, ``frozenset()``/``frozenset({...})`` values): the lint
  rules read it from source, so they work without importing this
  package.

``docs/BACKENDS.md`` embeds :func:`leakage_table` between
``<!-- leakage-table:begin -->`` markers; ``tests/test_lint.py`` pins
doc ↔ registry agreement.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, TypeVar

__all__ = [
    "ATOMS",
    "BASELINE_ATOMS",
    "BACKEND_CONTRACTS",
    "SINK_ATOMS",
    "UNCONDITIONAL_SINKS",
    "leaks",
    "declared_leakage",
    "leakage_table",
]

#: The closed vocabulary.  Key format is ``what:to-whom``.
ATOMS: Dict[str, str] = {
    "join_pattern:parent": (
        "PRF-pseudonymised join pattern revealed to the parent owner: "
        "which of its keys found a partner, and in which sorted token "
        "slot (LINQ/Bifrost relaxation; DH-OPRF linear join only)."
    ),
    "opened:result": (
        "Designated reveal of final or intermediate *result* values to "
        "a party, sanctioned by the query semantics (Section 4: the "
        "output itself is not protected)."
    ),
    "support:result": (
        "Which result slots are non-zero (the support of the output "
        "relation), revealed to drop dangling tuples before the "
        "result is opened."
    ),
}

#: Atoms every query run is allowed by definition — revealing the
#: query *result* (and its support) to the querying party is the
#: functionality, not a leak.  Plan audits subtract these.
BASELINE_ATOMS: FrozenSet[str] = frozenset(
    {"opened:result", "support:result"}
)

#: Per-back-end leakage summary over and above the baseline atoms.
#: OBL008 parses this literal from source and checks it against the
#: contracts declared at the dispatch point in repro/core/semijoin.py;
#: keep keys in sync with ``repro.core.semijoin.BACKENDS``.
BACKEND_CONTRACTS: Dict[str, FrozenSet[str]] = {
    "yannakakis": frozenset(),
    "linear": frozenset({"join_pattern:parent"}),
}

#: Callee names that materialise plaintext from protocol state, and
#: the atom each call witnesses.  The lint rules flag a call to one of
#: these with *tainted* arguments unless the enclosing function's
#: contract declares the atom (OBL006).
SINK_ATOMS: Dict[str, str] = {
    "reveal": "opened:result",
    "reveal_vector": "opened:result",
    "reconstruct_column": "opened:result",
    "divide_reveal": "opened:result",
    "reveal_nonzero_flags": "support:result",
    "dh_oprf_match": "join_pattern:parent",
}

#: Sinks that leak *by construction*, independent of argument taint:
#: ``dh_oprf_match`` reveals the match pattern to the parent owner even
#: though its inputs are each owner's own plaintext keys.
UNCONDITIONAL_SINKS: FrozenSet[str] = frozenset({"dh_oprf_match"})

_F = TypeVar("_F", bound=Callable[..., object])


def leaks(*atoms: str) -> Callable[[_F], _F]:
    """Declare a function's leakage contract.

    ``@leaks("join_pattern:parent")`` records that calling the function
    may reveal that atom (and nothing else beyond the contracts of its
    callees).  Unknown atoms fail fast at import time; the lint rules
    additionally verify the contract against the function body
    (OBL006/OBL007).
    """
    unknown = [a for a in atoms if a not in ATOMS]
    if unknown:
        raise ValueError(
            f"unknown leakage atom(s) {unknown}; the vocabulary is "
            f"{sorted(ATOMS)} (repro.leakage.ATOMS)"
        )

    def mark(fn: _F) -> _F:
        fn.__leakage__ = frozenset(atoms)  # type: ignore[attr-defined]
        return fn

    return mark


def declared_leakage(fn: object) -> FrozenSet[str]:
    """The contract attached by :func:`leaks` (empty if undeclared)."""
    return getattr(fn, "__leakage__", frozenset())


def leakage_table() -> str:
    """The markdown table docs/BACKENDS.md embeds (machine-generated;
    ``tests/test_lint.py`` pins the doc against this function)."""
    lines = [
        "| back-end | extra leakage (beyond public sizes) |",
        "|---|---|",
    ]
    for backend in sorted(BACKEND_CONTRACTS):
        atoms = sorted(BACKEND_CONTRACTS[backend])
        if atoms:
            cell = "; ".join(
                f"`{a}` — {ATOMS[a].split('(')[0].strip().rstrip('.')}"
                for a in atoms
            )
        else:
            cell = "none (fully oblivious)"
        lines.append(f"| `{backend}` | {cell} |")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    # Regenerate the docs/BACKENDS.md embed:
    #   python -m repro.leakage
    print(leakage_table())
