"""Secure Yannakakis: free-connex join-aggregate queries over private
data in the two-party computation model.

Reproduction of Wang & Yi, SIGMOD 2021.  Public API highlights:

* :class:`repro.query.JoinAggregateQuery` — build and run queries
  (plaintext or secure);
* :class:`repro.mpc.Context` / :class:`repro.mpc.Engine` — the 2PC
  runtime (``Mode.REAL`` cryptography or cost-metered ``Mode.SIMULATED``);
* :mod:`repro.tpch` — the TPC-H substrate and the paper's five
  benchmark queries;
* :mod:`repro.core` — the oblivious operators and the protocol itself.
"""

from .mpc import ALICE, BOB, Context, Engine, Mode
from .query import JoinAggregateQuery
from .relalg import AnnotatedRelation, BooleanSemiring, IntegerRing

__version__ = "1.0.0"

__all__ = [
    "ALICE",
    "AnnotatedRelation",
    "BOB",
    "BooleanSemiring",
    "Context",
    "Engine",
    "IntegerRing",
    "JoinAggregateQuery",
    "Mode",
    "__version__",
]
