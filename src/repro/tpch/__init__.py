"""TPC-H substrate: deterministic data generator and the paper's five
benchmark queries (Section 8)."""

from .datagen import SCALES_MB, TpchDataset, generate
from .queries import (
    PREPARED,
    PreparedQuery,
    prepare_q10,
    prepare_q18,
    prepare_q3,
    prepare_q8,
    prepare_q9,
    to_signed,
)
from .schema import Table, date_ordinal, year_of_ordinals

__all__ = [
    "PREPARED",
    "PreparedQuery",
    "SCALES_MB",
    "Table",
    "TpchDataset",
    "date_ordinal",
    "generate",
    "prepare_q10",
    "prepare_q18",
    "prepare_q3",
    "prepare_q8",
    "prepare_q9",
    "to_signed",
    "year_of_ordinals",
]
