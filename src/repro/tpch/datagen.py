"""Deterministic synthetic TPC-H data generator.

Scales in **megabytes** like the paper's datasets (1, 3, 10, 33, 100 MB)
with the standard TPC-H row-count ratios (1 GB = scale factor 1):

=========  ======================  =================
table      rows at scale factor s  at 1 MB (s=0.001)
=========  ======================  =================
customer   150,000 s               150
orders     1,500,000 s             1,500
lineitem   ~4 per order            ~6,000
part       200,000 s               200
supplier   10,000 s                10
partsupp   4 per part              800
nation     25 (public)             25
region     5 (public)              5
=========  ======================  =================

Values follow the TPC-H shapes the five benchmark queries rely on:
market segments, order-date range 1992-01-01..1998-08-02, ship-date =
order-date + 1..121 days, part types from the official type triples,
part names as five colour words, integer cents for money, integer
percent for discounts.  Obliviousness makes the *values* irrelevant to
protocol cost (the paper notes this), so matching distributions and
cardinalities reproduces the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .schema import Table, date_ordinal, year_of_ordinals

__all__ = ["TpchDataset", "generate", "SCALES_MB"]

#: The paper's dataset scales (Section 8.2).
SCALES_MB = (1, 3, 10, 33, 100)

_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_RETURN_FLAGS = ["R", "A", "N"]
_COLOURS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque",
    "black", "blanched", "blue", "blush", "brown", "burlywood",
    "burnished", "chartreuse", "chiffon", "chocolate", "coral",
    "cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim",
    "dodger", "drab", "firebrick", "floral", "forest", "frosted",
    "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
    "lemon", "light", "lime", "linen", "magenta", "maroon", "medium",
]
_TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

_DATE_LO = date_ordinal("1992-01-01")
_DATE_HI = date_ordinal("1998-08-02")


@dataclass
class TpchDataset:
    """All eight tables for one scale."""

    scale_mb: float
    tables: Dict[str, Table]

    def __getitem__(self, name: str) -> Table:
        return self.tables[name]

    @property
    def total_rows(self) -> int:
        return sum(t.n_rows for t in self.tables.values())


def _rows(base: int, sf: float) -> int:
    return max(1, round(base * sf))


def generate(scale_mb: float, seed: int = 20210618) -> TpchDataset:
    """Generate a dataset of roughly ``scale_mb`` megabytes."""
    sf = scale_mb / 1000.0
    rng = np.random.default_rng(seed)

    n_cust = _rows(150_000, sf)
    n_orders = _rows(1_500_000, sf)
    n_part = _rows(200_000, sf)
    n_supp = _rows(10_000, sf)

    customer = Table(
        "customer",
        {
            "c_custkey": np.arange(1, n_cust + 1, dtype=np.int64),
            "c_name": [f"Customer#{k:09d}" for k in range(1, n_cust + 1)],
            "c_mktsegment": [
                _SEGMENTS[i]
                for i in rng.integers(0, len(_SEGMENTS), n_cust)
            ],
            "c_nationkey": rng.integers(0, 25, n_cust).astype(np.int64),
        },
    )

    o_orderdate = rng.integers(_DATE_LO, _DATE_HI + 1, n_orders).astype(
        np.int64
    )
    orders = Table(
        "orders",
        {
            "o_orderkey": np.arange(1, n_orders + 1, dtype=np.int64),
            "o_custkey": rng.integers(1, n_cust + 1, n_orders).astype(
                np.int64
            ),
            "o_orderdate": o_orderdate,
            "o_year": year_of_ordinals(o_orderdate),
            "o_shippriority": np.zeros(n_orders, dtype=np.int64),
            "o_totalprice": rng.integers(
                100_00, 45_000_00, n_orders
            ).astype(np.int64),
        },
    )

    lines_per_order = rng.integers(1, 8, n_orders)
    l_orderkey = np.repeat(
        np.arange(1, n_orders + 1, dtype=np.int64), lines_per_order
    )
    n_line = len(l_orderkey)
    l_linenumber = np.concatenate(
        [np.arange(1, k + 1) for k in lines_per_order]
    ).astype(np.int64)
    l_quantity = rng.integers(1, 51, n_line).astype(np.int64)
    l_partkey = rng.integers(1, n_part + 1, n_line).astype(np.int64)
    # TPC-H: the (partkey, suppkey) of a lineitem is one of the part's
    # four partsupp suppliers.
    supp_slot = rng.integers(0, 4, n_line)
    l_suppkey = _partsupp_supplier(l_partkey, supp_slot, n_supp, n_part)
    base_price = (90_000 + (l_partkey % 20_001) * 10).astype(np.int64)
    l_extendedprice = l_quantity * base_price // 100  # cents
    lineitem = Table(
        "lineitem",
        {
            "l_orderkey": l_orderkey,
            "l_linenumber": l_linenumber,
            "l_partkey": l_partkey,
            "l_suppkey": l_suppkey,
            "l_quantity": l_quantity,
            "l_extendedprice": l_extendedprice,
            "l_discount": rng.integers(0, 11, n_line).astype(np.int64),
            "l_shipdate": (
                o_orderkey_dates(o_orderdate, l_orderkey)
                + rng.integers(1, 122, n_line)
            ).astype(np.int64),
            "l_returnflag": [
                _RETURN_FLAGS[i]
                for i in rng.integers(0, len(_RETURN_FLAGS), n_line)
            ],
        },
    )

    name_words = rng.integers(0, len(_COLOURS), (n_part, 5))
    part = Table(
        "part",
        {
            "p_partkey": np.arange(1, n_part + 1, dtype=np.int64),
            "p_name": [
                " ".join(_COLOURS[w] for w in row) for row in name_words
            ],
            "p_type": [
                f"{_TYPE_SYLL1[a]} {_TYPE_SYLL2[b]} {_TYPE_SYLL3[c]}"
                for a, b, c in zip(
                    rng.integers(0, len(_TYPE_SYLL1), n_part),
                    rng.integers(0, len(_TYPE_SYLL2), n_part),
                    rng.integers(0, len(_TYPE_SYLL3), n_part),
                )
            ],
        },
    )

    supplier = Table(
        "supplier",
        {
            "s_suppkey": np.arange(1, n_supp + 1, dtype=np.int64),
            "s_nationkey": rng.integers(0, 25, n_supp).astype(np.int64),
        },
    )

    ps_partkey = np.repeat(
        np.arange(1, n_part + 1, dtype=np.int64), 4
    )
    ps_slot = np.tile(np.arange(4), n_part)
    partsupp = Table(
        "partsupp",
        {
            "ps_partkey": ps_partkey,
            "ps_suppkey": _partsupp_supplier(
                ps_partkey, ps_slot, n_supp, n_part
            ),
            "ps_supplycost": rng.integers(
                1_00, 1_000_00, 4 * n_part
            ).astype(np.int64),
        },
    )

    nation = Table(
        "nation",
        {
            "n_nationkey": np.arange(25, dtype=np.int64),
            "n_name": [n for n, _ in _NATIONS],
            "n_regionkey": np.asarray(
                [r for _, r in _NATIONS], dtype=np.int64
            ),
        },
    )
    region = Table(
        "region",
        {
            "r_regionkey": np.arange(5, dtype=np.int64),
            "r_name": list(_REGIONS),
        },
    )

    return TpchDataset(
        scale_mb,
        {
            "customer": customer,
            "orders": orders,
            "lineitem": lineitem,
            "part": part,
            "supplier": supplier,
            "partsupp": partsupp,
            "nation": nation,
            "region": region,
        },
    )


def _partsupp_supplier(
    partkey: np.ndarray, slot: np.ndarray, n_supp: int, n_part: int
) -> np.ndarray:
    """The TPC-H partsupp supplier formula (deterministic given part and
    slot), guaranteeing lineitem/partsupp join consistency."""
    return (
        (partkey + slot * (n_supp // 4 + (partkey - 1) // n_supp)) % n_supp
    ).astype(np.int64) + 1


def o_orderkey_dates(
    o_orderdate: np.ndarray, l_orderkey: np.ndarray
) -> np.ndarray:
    """Order date of each lineitem's order (orderkey is 1-based dense)."""
    return o_orderdate[l_orderkey - 1]
