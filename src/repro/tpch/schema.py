"""Columnar TPC-H tables.

Tables are stored column-wise (numpy arrays for numerics, lists for
strings) and converted to :class:`AnnotatedRelation` views per query:
the paper's "effective input size" is exactly the size of the columns a
query touches, so queries project early.

Dates are stored as proleptic-Gregorian ordinals (``datetime.date
.toordinal()``), making every date predicate an integer comparison.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..relalg.columns import Column, TupleStore, fresh_nonces
from ..relalg.relation import AnnotatedRelation
from ..relalg.semiring import IntegerRing, Semiring

__all__ = ["Table", "date_ordinal", "year_of_ordinals"]


def date_ordinal(iso: str) -> int:
    """``'1995-03-13' -> ordinal day`` (int comparisons thereafter)."""
    return datetime.date.fromisoformat(iso).toordinal()


def year_of_ordinals(ordinals: np.ndarray) -> np.ndarray:
    """Vectorised year extraction for ordinal-encoded dates."""
    out = np.empty(len(ordinals), dtype=np.int64)
    cache: Dict[int, int] = {}
    for i, o in enumerate(ordinals):
        o = int(o)
        if o not in cache:
            cache[o] = datetime.date.fromordinal(o).year
        out[i] = cache[o]
    return out


@dataclass
class Table:
    """One TPC-H table, column-wise."""

    name: str
    columns: Dict[str, object]  # str -> np.ndarray | list

    def __post_init__(self):
        lengths = {len(c) for c in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns in table {self.name}")

    @property
    def n_rows(self) -> int:
        return len(next(iter(self.columns.values()))) if self.columns else 0

    def column(self, name: str):
        return self.columns[name]

    def column_bytes(self, attrs: Sequence[str]) -> int:
        """Size of the named columns — 4 bytes per numeric value, actual
        string lengths for text (the paper's effective-input measure)."""
        total = 0
        for a in attrs:
            col = self.columns[a]
            if isinstance(col, np.ndarray):
                total += 4 * len(col)
            else:
                total += sum(len(str(v)) for v in col)
        return total

    def to_relation(
        self,
        attrs: Sequence[str],
        annotation=None,
        mask: Optional[np.ndarray] = None,
        semiring: Semiring = IntegerRing(32),
    ) -> AnnotatedRelation:
        """An annotated projection of this table.

        ``annotation``: None (all ones) or a callable over the column
        dict returning a per-row integer array.  ``mask``: rows failing
        it become zero-annotated dummy tuples (the Section 7 private-
        selectivity policy) — the relation keeps its full size.
        """
        n = self.n_rows
        if annotation is None:
            annots = np.ones(n, dtype=np.int64)
        else:
            annots = np.asarray(
                annotation(self.columns), dtype=np.int64
            )
            if annots.shape != (n,):
                raise ValueError("annotation must be one value per row")
        out_annots = annots.copy()
        nonce = np.zeros(n, dtype=np.int64)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            out_annots[~mask] = 0
            # Masked rows become dummies in place (full-size relation,
            # Section 7 private selectivity), one fresh nonce per row.
            masked = np.flatnonzero(~mask)
            nonce[masked] = fresh_nonces(len(masked))
        store = TupleStore.from_columns(
            attrs,
            [Column.from_array(self.columns[a]) for a in attrs],
            nonce,
        )
        return AnnotatedRelation(attrs, store, out_annots, semiring)
