"""The paper's five TPC-H benchmark queries (Section 8.1).

Each ``prepare_qN(dataset)`` applies the paper's rewrite — private
selections become zero-annotated dummy tuples, ``nation``/``region``
are treated as public, Q18's subquery is evaluated locally by
lineitem's owner, Q8/Q9 are decomposed per Section 7 — and returns a
:class:`PreparedQuery` that can run securely (any engine) or in
plaintext (the non-private baseline).

Relations are partitioned between the parties in the worst possible
way, alternating owners along the join tree, exactly as the paper's
experiments do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.composition import divide_compose, subtract_compose
from ..core.protocol import ProtocolStats
from ..mpc.context import ALICE, BOB, Context, Mode
from ..mpc.engine import Engine
from ..mpc.params import SecurityParams
from ..query.builder import JoinAggregateQuery
from ..relalg.relation import AnnotatedRelation
from ..relalg.semiring import IntegerRing
from .datagen import TpchDataset
from .schema import Table, date_ordinal

__all__ = [
    "PreparedQuery",
    "prepare_q3",
    "prepare_q10",
    "prepare_q18",
    "prepare_q8",
    "prepare_q9",
    "PREPARED",
    "to_signed",
]


def to_signed(value: int, ell: int) -> int:
    """Interpret a ring element as a signed integer (for aggregates that
    can be negative, e.g. Q9's ``amount``)."""
    value = int(value) % (1 << ell)
    return value - (1 << ell) if value >= 1 << (ell - 1) else value


@dataclass
class PreparedQuery:
    """A benchmark query ready to run."""

    name: str
    description: str
    ell: int
    effective_bytes: int
    input_tuples: int
    #: result scale: reported value = annotation / result_scale
    result_scale: int
    _secure: Callable[[Engine], AnnotatedRelation]
    _plain: Callable[[], AnnotatedRelation]
    #: builder for the underlying single-plan query (None for the
    #: decomposed Q8/Q9) — benchmarks use it to reach the input
    #: relations for ingestion/marshalling measurements.
    _build: Optional[Callable[[], "JoinAggregateQuery"]] = None
    #: SMCQL-style baseline model: relation sizes of one Cartesian
    #: product, the number of join conditions, and how many times the
    #: (decomposed) query pays for it.
    gc_sizes: List[int] = field(default_factory=list)
    gc_conditions: int = 0
    gc_runs: int = 1

    def make_context(self, mode: Mode, seed: Optional[int] = None) -> Context:
        return Context(mode, SecurityParams(ell=self.ell), seed=seed)

    def run_secure(
        self, engine: Engine
    ) -> Tuple[AnnotatedRelation, ProtocolStats]:
        ctx = engine.ctx
        if ctx.params.ell != self.ell:
            raise ValueError(
                f"{self.name} needs ell={self.ell}; "
                f"the context has ell={ctx.params.ell}"
            )
        before = len(ctx.transcript.messages)
        t0 = time.perf_counter()
        result = self._secure(engine)
        seconds = time.perf_counter() - t0
        msgs = ctx.transcript.messages[before:]
        stats = ProtocolStats(
            seconds=seconds,
            total_bytes=sum(m.n_bytes for m in msgs),
            rounds=ctx.transcript.rounds,
        )
        return result, stats

    def run_plain(
        self, operators=None
    ) -> Tuple[AnnotatedRelation, float]:
        """``operators=repro.relalg._reference`` runs the retained
        tuple-path operators instead of the columnar default."""
        t0 = time.perf_counter()
        result = (
            self._plain(operators)
            if operators is not None
            else self._plain()
        )
        return result, time.perf_counter() - t0


def _maybe_flip(
    query: JoinAggregateQuery, flip_owners: bool
) -> JoinAggregateQuery:
    return query.swap_owners() if flip_owners else query


def _rename(rel: AnnotatedRelation, mapping: Dict[str, str]) -> AnnotatedRelation:
    return rel.replace(
        attributes=tuple(mapping.get(a, a) for a in rel.attributes)
    )


def _rel(
    table: Table,
    attrs: List[str],
    rename: Dict[str, str],
    ell: int,
    annotation=None,
    mask=None,
) -> AnnotatedRelation:
    rel = table.to_relation(
        attrs, annotation=annotation, mask=mask, semiring=IntegerRing(ell)
    )
    return _rename(rel, rename)


# ----------------------------------------------------------------------
# Query 3 (Figure 2)
# ----------------------------------------------------------------------


def prepare_q3(
    dataset: TpchDataset, flip_owners: bool = False
) -> PreparedQuery:
    """TPC-H Q3: revenue of AUTOMOBILE orders not yet shipped — already
    free-connex in its vanilla form; all selection selectivities are
    treated as private (dummy tuples)."""
    ell = 32
    cutoff = date_ordinal("1995-03-13")
    customer, orders, lineitem = (
        dataset["customer"], dataset["orders"], dataset["lineitem"],
    )

    def build() -> JoinAggregateQuery:
        c = _rel(
            customer, ["c_custkey"], {"c_custkey": "custkey"}, ell,
            mask=np.asarray(
                [s == "AUTOMOBILE" for s in customer.column("c_mktsegment")]
            ),
        )
        o = _rel(
            orders,
            ["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
            {"o_custkey": "custkey", "o_orderkey": "orderkey"},
            ell,
            mask=np.asarray(orders.column("o_orderdate")) < cutoff,
        )
        l = _rel(
            lineitem, ["l_orderkey"], {"l_orderkey": "orderkey"}, ell,
            annotation=lambda cols: np.asarray(cols["l_extendedprice"])
            * (100 - np.asarray(cols["l_discount"])),
            mask=np.asarray(lineitem.column("l_shipdate")) > cutoff,
        )
        q = (
            JoinAggregateQuery(
                output=["orderkey", "o_orderdate", "o_shippriority"]
            )
            .add_relation("customer", c, owner=ALICE)
            .add_relation("orders", o, owner=BOB)
            .add_relation("lineitem", l, owner=ALICE)
        )
        return _maybe_flip(q, flip_owners)

    eff = (
        customer.column_bytes(["c_custkey", "c_mktsegment"])
        + orders.column_bytes(
            ["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"]
        )
        + lineitem.column_bytes(
            ["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"]
        )
    )
    return PreparedQuery(
        name="Q3",
        description="revenue by undelivered AUTOMOBILE order",
        ell=ell,
        effective_bytes=eff,
        input_tuples=customer.n_rows + orders.n_rows + lineitem.n_rows,
        result_scale=100 * 100,  # cents x percent
        _secure=lambda engine: build().run_secure(engine)[0],
        _plain=lambda operators=None: build().run_plain(operators),
        _build=build,
        gc_sizes=[customer.n_rows, orders.n_rows, lineitem.n_rows],
        gc_conditions=2,
    )


# ----------------------------------------------------------------------
# Query 10 (Figure 3)
# ----------------------------------------------------------------------


def prepare_q10(
    dataset: TpchDataset, flip_owners: bool = False
) -> PreparedQuery:
    """TPC-H Q10 with the paper's rewrite: ``nation`` is public, so the
    query groups by ``c_nationkey`` and the receiver looks names up."""
    ell = 32
    lo, hi = date_ordinal("1993-08-01"), date_ordinal("1993-11-01")
    customer, orders, lineitem = (
        dataset["customer"], dataset["orders"], dataset["lineitem"],
    )

    def build() -> JoinAggregateQuery:
        c = _rel(
            customer,
            ["c_custkey", "c_name", "c_nationkey"],
            {"c_custkey": "custkey"},
            ell,
        )
        odate = np.asarray(orders.column("o_orderdate"))
        o = _rel(
            orders, ["o_orderkey", "o_custkey"],
            {"o_custkey": "custkey", "o_orderkey": "orderkey"}, ell,
            mask=(odate >= lo) & (odate < hi),
        )
        l = _rel(
            lineitem, ["l_orderkey"], {"l_orderkey": "orderkey"}, ell,
            annotation=lambda cols: np.asarray(cols["l_extendedprice"])
            * (100 - np.asarray(cols["l_discount"])),
            mask=np.asarray(
                [f == "R" for f in lineitem.column("l_returnflag")]
            ),
        )
        q = (
            JoinAggregateQuery(output=["custkey", "c_name", "c_nationkey"])
            .add_relation("customer", c, owner=ALICE)
            .add_relation("orders", o, owner=BOB)
            .add_relation("lineitem", l, owner=ALICE)
        )
        return _maybe_flip(q, flip_owners)

    eff = (
        customer.column_bytes(["c_custkey", "c_name", "c_nationkey"])
        + orders.column_bytes(["o_orderkey", "o_custkey", "o_orderdate"])
        + lineitem.column_bytes(
            ["l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"]
        )
    )
    return PreparedQuery(
        name="Q10",
        description="returned-item revenue by customer",
        ell=ell,
        effective_bytes=eff,
        input_tuples=customer.n_rows + orders.n_rows + lineitem.n_rows,
        result_scale=100 * 100,
        _secure=lambda engine: build().run_secure(engine)[0],
        _plain=lambda operators=None: build().run_plain(operators),
        _build=build,
        gc_sizes=[customer.n_rows, orders.n_rows, lineitem.n_rows],
        gc_conditions=2,
    )


# ----------------------------------------------------------------------
# Query 18 (Figure 4)
# ----------------------------------------------------------------------


def prepare_q18(
    dataset: TpchDataset, flip_owners: bool = False
) -> PreparedQuery:
    """TPC-H Q18: the ``having sum(l_quantity) > 300`` subquery is
    evaluated locally by lineitem's owner and padded with dummies to
    ``|lineitem|`` so its result size stays hidden."""
    ell = 32
    customer, orders, lineitem = (
        dataset["customer"], dataset["orders"], dataset["lineitem"],
    )

    def build() -> JoinAggregateQuery:
        c = _rel(
            customer, ["c_custkey", "c_name"], {"c_custkey": "custkey"}, ell
        )
        o = _rel(
            orders,
            ["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"],
            {"o_custkey": "custkey", "o_orderkey": "orderkey"},
            ell,
        )
        l = _rel(
            lineitem, ["l_orderkey"], {"l_orderkey": "orderkey"}, ell,
            annotation=lambda cols: np.asarray(cols["l_quantity"]),
        )
        # Local subquery at lineitem's owner: qualifying orderkeys,
        # padded to |lineitem| (Section 8.1).
        keys = np.asarray(lineitem.column("l_orderkey"))
        qty = np.asarray(lineitem.column("l_quantity"))
        totals: Dict[int, int] = {}
        for k, q in zip(keys, qty):
            totals[int(k)] = totals.get(int(k), 0) + int(q)
        qualifying = [k for k, v in totals.items() if v > 300]
        big = AnnotatedRelation(
            ("orderkey",),
            [(k,) for k in qualifying],
            None,
            IntegerRing(ell),
        )
        from ..core.relation import dummy_tuple

        pad = lineitem.n_rows - len(big)
        big = AnnotatedRelation(
            ("orderkey",),
            list(big.tuples) + [dummy_tuple(1) for _ in range(pad)],
            list(big.annotations) + [0] * pad,
            IntegerRing(ell),
        )
        q = (
            JoinAggregateQuery(
                output=[
                    "c_name", "custkey", "orderkey",
                    "o_orderdate", "o_totalprice",
                ]
            )
            .add_relation("customer", c, owner=ALICE)
            .add_relation("orders", o, owner=BOB)
            .add_relation("lineitem", l, owner=ALICE)
            .add_relation("bigorders", big, owner=ALICE)
        )
        return _maybe_flip(q, flip_owners)

    eff = (
        customer.column_bytes(["c_custkey", "c_name"])
        + orders.column_bytes(
            ["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"]
        )
        + 2 * lineitem.column_bytes(["l_orderkey", "l_quantity"])
    )
    return PreparedQuery(
        name="Q18",
        description="large-volume customers",
        ell=ell,
        effective_bytes=eff,
        input_tuples=(
            customer.n_rows + orders.n_rows + 2 * lineitem.n_rows
        ),
        result_scale=1,
        _secure=lambda engine: build().run_secure(engine)[0],
        _plain=lambda operators=None: build().run_plain(operators),
        _build=build,
        gc_sizes=[
            customer.n_rows, orders.n_rows,
            lineitem.n_rows, lineitem.n_rows,
        ],
        gc_conditions=3,
    )


# ----------------------------------------------------------------------
# Query 8 (Figure 5)
# ----------------------------------------------------------------------


def _q8_queries(
    dataset: TpchDataset, ell: int, flip_owners: bool = False
):
    lo, hi = date_ordinal("1995-01-01"), date_ordinal("1996-12-31")
    part, supplier, lineitem, orders, customer = (
        dataset["part"], dataset["supplier"], dataset["lineitem"],
        dataset["orders"], dataset["customer"],
    )

    def build(nation_indicator: bool) -> JoinAggregateQuery:
        p = _rel(
            part, ["p_partkey"], {"p_partkey": "partkey"}, ell,
            mask=np.asarray(
                [t == "SMALL PLATED COPPER" for t in part.column("p_type")]
            ),
        )
        if nation_indicator:
            s_annot = lambda cols: (
                np.asarray(cols["s_nationkey"]) == 8
            ).astype(np.int64)
        else:
            s_annot = None
        s = _rel(
            supplier, ["s_suppkey"], {"s_suppkey": "suppkey"}, ell,
            annotation=s_annot,
        )
        l = _rel(
            lineitem,
            ["l_partkey", "l_suppkey", "l_orderkey"],
            {
                "l_partkey": "partkey",
                "l_suppkey": "suppkey",
                "l_orderkey": "orderkey",
            },
            ell,
            annotation=lambda cols: (
                np.asarray(cols["l_extendedprice"])
                * (100 - np.asarray(cols["l_discount"]))
                // 100
            ),
        )
        odate = np.asarray(orders.column("o_orderdate"))
        o = _rel(
            orders, ["o_orderkey", "o_custkey", "o_year"],
            {"o_orderkey": "orderkey", "o_custkey": "custkey"}, ell,
            mask=(odate >= lo) & (odate <= hi),
        )
        c = _rel(
            customer, ["c_custkey"], {"c_custkey": "custkey"}, ell,
            mask=np.isin(
                np.asarray(customer.column("c_nationkey")),
                [8, 9, 12, 18, 21],
            ),
        )
        q = (
            JoinAggregateQuery(output=["o_year"])
            .add_relation("part", p, owner=ALICE)
            .add_relation("supplier", s, owner=BOB)
            .add_relation("lineitem", l, owner=ALICE)
            .add_relation("orders", o, owner=BOB)
            .add_relation("customer", c, owner=ALICE)
        )
        return _maybe_flip(q, flip_owners)

    return build


def prepare_q8(
    dataset: TpchDataset, flip_owners: bool = False
) -> PreparedQuery:
    """TPC-H Q8 (national market share): a ratio of two sums, decomposed
    into two join-aggregate queries plus a division circuit (Section 7).
    Reported ``mkt_share`` is in 1/10000ths."""
    ell = 48
    scale = 10_000
    build = _q8_queries(dataset, ell, flip_owners)

    def secure(engine: Engine) -> AnnotatedRelation:
        num = build(True).run_secure_shared(engine)
        den = build(False).run_secure_shared(engine)
        return divide_compose(engine, num, den, scale=scale)

    def plain(operators=None) -> AnnotatedRelation:
        num = build(True).run_plain(operators)
        den = build(False).run_plain(operators)
        num_map = num.to_dict()
        rows, vals = [], []
        for t, d in den.to_dict().items():
            rows.append(t)
            vals.append(num_map.get(t, 0) * scale // d)
        return AnnotatedRelation(
            den.attributes, rows, vals, IntegerRing(ell)
        )

    tables = ["part", "supplier", "lineitem", "orders", "customer"]
    eff = 2 * sum(
        dataset[t].column_bytes(list(dataset[t].columns))
        for t in tables
    )
    return PreparedQuery(
        name="Q8",
        description="national market share (ratio of sums)",
        ell=ell,
        effective_bytes=eff,
        input_tuples=2 * sum(dataset[t].n_rows for t in tables),
        result_scale=scale,
        _secure=secure,
        _plain=plain,
        gc_sizes=[
            dataset[t].n_rows
            for t in ("part", "supplier", "lineitem", "orders", "customer")
        ],
        gc_conditions=4,
        gc_runs=2,
    )


# ----------------------------------------------------------------------
# Query 9 (Figure 6)
# ----------------------------------------------------------------------


def _q9_queries(
    dataset: TpchDataset, ell: int, flip_owners: bool = False
):
    part, supplier, lineitem, partsupp, orders = (
        dataset["part"], dataset["supplier"], dataset["lineitem"],
        dataset["partsupp"], dataset["orders"],
    )
    green = np.asarray(
        ["green" in n for n in part.column("p_name")]
    )

    # Only the supplier mask depends on the nation, and only lineitem/
    # partsupp annotations depend on which aggregate is computed — build
    # each invariant relation once (the operators never mutate inputs).
    cache: Dict[str, AnnotatedRelation] = {}

    def cached(key: str, make) -> AnnotatedRelation:
        if key not in cache:
            cache[key] = make()
        return cache[key]

    def build(nationkey: int, which: str) -> JoinAggregateQuery:
        p = cached(
            "part",
            lambda: _rel(
                part, ["p_partkey"], {"p_partkey": "partkey"}, ell,
                mask=green,
            ),
        )
        s = _rel(
            supplier, ["s_suppkey"], {"s_suppkey": "suppkey"}, ell,
            mask=np.asarray(supplier.column("s_nationkey")) == nationkey,
        )
        if which == "revenue":
            l_annot = lambda cols: (
                np.asarray(cols["l_extendedprice"])
                * (100 - np.asarray(cols["l_discount"]))
                // 100
            )
            ps_annot = None
        else:  # supply cost
            l_annot = lambda cols: np.asarray(cols["l_quantity"])
            ps_annot = lambda cols: np.asarray(cols["ps_supplycost"])
        l = cached(
            f"lineitem/{which}",
            lambda: _rel(
                lineitem,
                ["l_partkey", "l_suppkey", "l_orderkey"],
                {
                    "l_partkey": "partkey",
                    "l_suppkey": "suppkey",
                    "l_orderkey": "orderkey",
                },
                ell,
                annotation=l_annot,
            ),
        )
        ps = cached(
            f"partsupp/{which}",
            lambda: _rel(
                partsupp, ["ps_partkey", "ps_suppkey"],
                {"ps_partkey": "partkey", "ps_suppkey": "suppkey"}, ell,
                annotation=ps_annot,
            ),
        )
        o = cached(
            "orders",
            lambda: _rel(
                orders, ["o_orderkey", "o_year"],
                {"o_orderkey": "orderkey"}, ell,
            ),
        )
        q = (
            JoinAggregateQuery(output=["o_year"])
            .add_relation("part", p, owner=ALICE)
            .add_relation("supplier", s, owner=BOB)
            .add_relation("lineitem", l, owner=ALICE)
            .add_relation("partsupp", ps, owner=BOB)
            .add_relation("orders", o, owner=BOB)
        )
        return _maybe_flip(q, flip_owners)

    return build


def prepare_q9(
    dataset: TpchDataset,
    nations: Optional[List[int]] = None,
    flip_owners: bool = False,
) -> PreparedQuery:
    """TPC-H Q9 (product-type profit): acyclic but *not* free-connex —
    decomposed into one query per nation (``s_nationkey`` has a public
    domain of 25) and two aggregates per query whose shared results are
    subtracted locally (Section 8.1).

    ``nations`` restricts the per-nation loop (default: all 25, as in
    the paper).
    """
    ell = 48
    nations = list(range(25)) if nations is None else list(nations)
    build = _q9_queries(dataset, ell, flip_owners)
    ring = IntegerRing(ell)

    def secure(engine: Engine) -> AnnotatedRelation:
        rows, vals = [], []
        for nk in nations:
            revenue = build(nk, "revenue").run_secure_shared(engine)
            cost = build(nk, "cost").run_secure_shared(engine)
            diff = subtract_compose(engine, revenue, cost)
            for t, v in diff:
                rows.append((nk,) + t)
                vals.append(v)
        return AnnotatedRelation(
            ("s_nationkey", "o_year"), rows, vals, ring
        )

    def plain(operators=None) -> AnnotatedRelation:
        rows, vals = [], []
        for nk in nations:
            rev = build(nk, "revenue").run_plain(operators).to_dict()
            cost = build(nk, "cost").run_plain(operators).to_dict()
            for t in sorted(set(rev) | set(cost)):
                diff = (rev.get(t, 0) - cost.get(t, 0)) % ring.modulus
                if diff:
                    rows.append((nk,) + t)
                    vals.append(diff)
        return AnnotatedRelation(
            ("s_nationkey", "o_year"), rows, vals, ring
        )

    tables = ["part", "supplier", "lineitem", "partsupp", "orders"]
    per_nation = sum(
        dataset[t].column_bytes(list(dataset[t].columns)) for t in tables
    )
    return PreparedQuery(
        name="Q9",
        description="product-type profit (per-nation decomposition)",
        ell=ell,
        effective_bytes=2 * len(nations) * per_nation,
        input_tuples=2
        * len(nations)
        * sum(dataset[t].n_rows for t in tables),
        result_scale=100,  # cents
        _secure=secure,
        _plain=plain,
        gc_sizes=[
            dataset[t].n_rows
            for t in ("part", "supplier", "lineitem", "partsupp", "orders")
        ],
        gc_conditions=5,
        gc_runs=2 * len(nations),
    )


#: name -> prepare function, in figure order.
PREPARED: Dict[str, Callable[[TpchDataset], PreparedQuery]] = {
    "Q3": prepare_q3,
    "Q10": prepare_q10,
    "Q18": prepare_q18,
    "Q8": prepare_q8,
    "Q9": prepare_q9,
}
