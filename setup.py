"""Legacy setup shim: enables `pip install -e .` in environments without
the `wheel` package (PEP 517 editable installs require bdist_wheel)."""
from setuptools import setup

setup()
