"""Per-kernel ns/op microbenchmarks for the vectorised 2PC hot paths.

Each kernel is timed twice in the same process: the production
implementation and the scalar legacy loop retained in
``repro.mpc._reference``.  The committed baseline (``BENCH_PR3.json``)
stores the *speedup ratio* new-vs-reference, which is machine
independent — CI re-measures both sides on its own hardware (rounds
interleaved so load drift cancels) and fails if any kernel's ratio has
regressed by more than 30%.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py              # print
    PYTHONPATH=src python benchmarks/bench_kernels.py --out F.json # write
    PYTHONPATH=src python benchmarks/bench_kernels.py --check      # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.mpc import Context, Engine, Mode
from repro.mpc import _reference as ref
from repro.mpc import gadgets
from repro.mpc.ot import IknpExtension
from repro.mpc.yao import run_garbled_batch

GROUP_BITS = 1536
BASELINE = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"
REGRESSION_TOLERANCE = 0.30


def _time(fn, min_rounds=3, min_seconds=0.5) -> float:
    """Best-of wall-clock seconds per call."""
    return _time_pair(fn, None, min_rounds, min_seconds)[0]


def _time_pair(fn, legacy, min_rounds=3, min_seconds=0.5):
    """Best-of seconds per call for ``fn`` and (optionally) ``legacy``,
    with rounds interleaved so machine-load drift hits both sides
    equally — the speedup ratio is what CI gates on, so it must not
    depend on which side happened to run during a noisy window."""
    fn()  # warm caches (plans, topologies, hash state)
    if legacy is not None:
        legacy()
    best_new, best_old = float("inf"), float("inf")
    rounds, start_all = 0, time.perf_counter()
    while rounds < min_rounds or time.perf_counter() - start_all < min_seconds:
        start = time.perf_counter()
        fn()
        best_new = min(best_new, time.perf_counter() - start)
        if legacy is not None:
            start = time.perf_counter()
            legacy()
            best_old = min(best_old, time.perf_counter() - start)
        rounds += 1
    return best_new, (best_old if legacy is not None else None)


def _warm_engine(mode: Mode) -> Engine:
    engine = Engine(Context(mode, seed=2), ot_group_bits=GROUP_BITS)
    rng = np.random.default_rng(1)
    x = engine.share("alice", rng.integers(0, 1000, 4))
    y = engine.share("bob", rng.integers(0, 1000, 4))
    engine.mul_shared(x, y)  # both OT directions' base phases
    return engine


def bench_gilboa(mode: Mode, n: int = 256):
    engine = _warm_engine(mode)
    rng = np.random.default_rng(0)
    u = rng.integers(0, 1000, n).astype(np.uint64)
    v = rng.integers(0, 1000, n).astype(np.uint64)
    if mode != Mode.REAL:
        # SIMULATED charges closed forms; no scalar twin to compare.
        return _time(
            lambda: engine._gilboa_cross("alice", u, v, "bench")
        ), None
    return _time_pair(
        lambda: engine._gilboa_cross("alice", u, v, "bench"),
        lambda: ref.gilboa_cross(engine.ctx, engine.ot, u, v),
    )


def bench_garbled(mode: Mode, n: int = 256):
    engine = _warm_engine(mode)
    circuit = gadgets.nonzero_circuit(32)
    rng = np.random.default_rng(0)
    na, nb = len(circuit.alice_inputs), len(circuit.bob_inputs)
    alice = rng.integers(0, 2, (n, na)).tolist()
    bob = rng.integers(0, 2, (n, nb)).tolist()
    if mode == Mode.SIMULATED:
        from repro.mpc.yao import charge_garbled_batch

        new = _time(
            lambda: charge_garbled_batch(engine.ctx, engine.ot, circuit, n)
        )
        return new, None
    return _time_pair(
        lambda: run_garbled_batch(
            engine.ctx, engine.ot, circuit, alice, bob
        ),
        lambda: ref.run_garbled_batch(
            engine.ctx, engine.ot, circuit, alice, bob
        ),
    )


def bench_iknp(n: int = 512, width: int = 16):
    ctx = Context(Mode.REAL, seed=3)
    rng = np.random.default_rng(0)
    pairs = [(rng.bytes(width), rng.bytes(width)) for _ in range(n)]
    choices = [int(c) for c in rng.integers(0, 2, n)]
    ot_new = IknpExtension(ctx, GROUP_BITS)
    ot_old = ref.ReferenceIknpExtension(ctx, GROUP_BITS)
    ot_new.transfer(pairs[:2], choices[:2])  # base phase
    ot_old.transfer(pairs[:2], choices[:2])
    return _time_pair(
        lambda: ot_new.transfer(pairs, choices),
        lambda: ot_old.transfer(pairs, choices),
    )


def bench_stream_xor(n_rows: int = 512, width: int = 64):
    from repro.mpc.batch import stream_xor_rows

    rng = np.random.default_rng(0)
    keys = np.frombuffer(rng.bytes(n_rows * 32), dtype=np.uint8).reshape(
        n_rows, 32
    )
    data = np.frombuffer(
        rng.bytes(n_rows * width), dtype=np.uint8
    ).reshape(n_rows, width)
    rows = [(bytes(k), bytes(d)) for k, d in zip(keys, data)]
    return _time_pair(
        lambda: stream_xor_rows(keys, data),
        lambda: [ref.stream_xor(k, d) for k, d in rows],
    )


def run_all() -> dict:
    kernels = {
        "gilboa_mul_real_n256": lambda: bench_gilboa(Mode.REAL),
        "gilboa_mul_sim_n256": lambda: bench_gilboa(Mode.SIMULATED),
        "garbled_batch_real_n256": lambda: bench_garbled(Mode.REAL),
        "garbled_batch_sim_n256": lambda: bench_garbled(Mode.SIMULATED),
        "iknp_transfer_real_512x16": bench_iknp,
        "stream_xor_512x64": bench_stream_xor,
    }
    out = {}
    for name, fn in kernels.items():
        new_s, legacy_s = fn()
        entry = {"ns_op": int(new_s * 1e9)}
        if legacy_s is not None:
            entry["ref_ns_op"] = int(legacy_s * 1e9)
            entry["speedup_vs_reference"] = round(legacy_s / new_s, 3)
        out[name] = entry
        print(f"  {name}: {entry}", file=sys.stderr)
    return out


def check(results: dict, baseline: dict) -> int:
    failures = []
    for name, base in baseline.get("kernels", {}).items():
        want = base.get("speedup_vs_reference")
        if want is None:
            continue
        got = results.get(name, {}).get("speedup_vs_reference")
        if got is None:
            failures.append(f"{name}: kernel missing from this run")
        elif got < want * (1 - REGRESSION_TOLERANCE):
            failures.append(
                f"{name}: speedup vs reference fell to {got}x "
                f"(baseline {want}x, tolerance -{REGRESSION_TOLERANCE:.0%})"
            )
    for line in failures:
        print(f"REGRESSION: {line}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", type=Path, help="write results JSON here")
    ap.add_argument(
        "--check",
        action="store_true",
        help=f"compare speedup ratios against {BASELINE.name}",
    )
    args = ap.parse_args()

    results = run_all()
    doc = {"group_bits": GROUP_BITS, "kernels": results}
    payload = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.out:
        args.out.write_text(payload)
    else:
        print(payload)
    if args.check:
        if not BASELINE.exists():
            print(f"no baseline at {BASELINE}; skipping check", file=sys.stderr)
            return 0
        return check(results, json.loads(BASELINE.read_text()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
