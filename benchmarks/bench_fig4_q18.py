"""Figure 4: TPC-H Q18 (local subquery padded to |lineitem|)."""

from repro.baselines import cartesian_gc_cost, gc_gate_rate
from repro.mpc import Engine, Mode
from repro.tpch import prepare_q18


def test_fig4_q18_secure(benchmark, dataset):
    query = prepare_q18(dataset)
    plain, _ = query.run_plain()

    def run():
        ctx = query.make_context(Mode.SIMULATED, seed=7)
        return query.run_secure(Engine(ctx))

    result, stats = benchmark(run)
    assert result.semantically_equal(plain)
    gc = cartesian_gc_cost(
        query.gc_sizes, query.gc_conditions, gate_rate=gc_gate_rate()
    )
    benchmark.extra_info.update(
        secure_mb=round(stats.total_bytes / 1e6, 2),
        gc_baseline_mb=round(gc.comm_bytes / 1e6, 1),
    )
    # Q18's 4-way product makes the baseline collapse hardest.
    assert gc.comm_bytes > 1000 * stats.total_bytes


def test_fig4_q18_nonprivate(benchmark, dataset):
    query = prepare_q18(dataset)
    result, _ = benchmark(query.run_plain)
    assert len(result.attributes) == 5
