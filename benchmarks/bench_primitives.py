"""Micro-benchmarks of the cryptographic building blocks: PSI, OEP,
the merge-aggregation chain, OT-multiplication, and garbling itself —
the per-operator breakdown behind the figures."""

import secrets

import numpy as np
import pytest

from repro.mpc import Context, Engine, Mode
from repro.mpc.circuits import CircuitBuilder, garble
from repro.mpc.oep import oblivious_extended_permutation
from repro.mpc.psi import psi_with_payloads

N = 512


@pytest.fixture
def engine():
    return Engine(Context(Mode.SIMULATED, seed=1))


def test_psi_with_payloads(benchmark, engine):
    alice = [("k", i) for i in range(N)]
    bob = [("k", i) for i in range(N // 2, N + N // 2)]
    payloads = list(range(N))

    def run():
        return psi_with_payloads(
            engine.ctx, engine.ot, alice, bob, payloads
        )

    res = benchmark(run)
    assert res.n_bins >= N


def test_oblivious_extended_permutation(benchmark, engine):
    rng = np.random.default_rng(0)
    values = engine.share("alice", rng.integers(0, 1000, N))
    xi = list(rng.integers(0, N, N))

    def run():
        return oblivious_extended_permutation(
            engine.ctx, engine.ot, xi, values, N
        )

    out = benchmark(run)
    assert len(out) == N


def test_merge_aggregation_chain(benchmark, engine):
    rng = np.random.default_rng(0)
    v = engine.share("bob", rng.integers(0, 1000, N))
    same = list(rng.integers(0, 2, N - 1).astype(bool))
    out = benchmark(lambda: engine.merge_aggregate_sum(same, v))
    assert len(out) == N


def test_ot_multiplication(benchmark, engine):
    rng = np.random.default_rng(0)
    x = engine.share("alice", rng.integers(0, 1000, N))
    y = engine.share("bob", rng.integers(0, 1000, N))
    out = benchmark(lambda: engine.mul_shared(x, y))
    assert (
        out.reconstruct() == (x.reconstruct() * y.reconstruct()) & engine.ctx.mask
    ).all()


def test_oep_real_topology_cache(benchmark):
    """REAL-mode OEP with the run-wide Beneš topology cache warm — the
    per-call cost drops to routing + OTs once the size-keyed wire
    layout is built."""
    n = 64
    ctx = Context(Mode.REAL, seed=3)
    engine = Engine(ctx, ot_group_bits=1536)
    rng = np.random.default_rng(0)
    values = engine.share("alice", rng.integers(0, 1000, n))
    xi = list(rng.integers(0, n, n))
    # Warm the size-keyed topology cache (first call builds it).
    oblivious_extended_permutation(engine.ctx, engine.ot, xi, values, n)

    def run():
        return oblivious_extended_permutation(
            engine.ctx, engine.ot, xi, values, n
        )

    out = benchmark(run)
    assert len(out) == n
    stats = ctx.cache.stats()
    assert stats["topology_hits"] > 0


def test_gadget_template_cache(benchmark):
    """Same-shaped garbled-gadget templates are built once per run and
    fetched from the context cache afterwards."""
    from repro.mpc import gadgets

    ctx = Context(Mode.SIMULATED, seed=1)
    engine = Engine(ctx)
    engine._gadget(gadgets.merge_sum_circuit, 32, 8)  # build once

    def run():
        return engine._gadget(gadgets.merge_sum_circuit, 32, 8)

    template = benchmark(run)
    assert template is engine._gadget(gadgets.merge_sum_circuit, 32, 8)
    assert ctx.cache.stats()["circuit_hits"] > 0


@pytest.fixture
def real_engine():
    """REAL-mode engine with both OT directions' base phases warm, so
    the benchmarks below time the extension hot path, not the one-off
    modular exponentiations."""
    engine = Engine(Context(Mode.REAL, seed=2), ot_group_bits=1536)
    rng = np.random.default_rng(1)
    x = engine.share("alice", rng.integers(0, 1000, 4))
    y = engine.share("bob", rng.integers(0, 1000, 4))
    engine.mul_shared(x, y)  # triggers forward + reverse base OTs
    return engine


def test_real_gilboa_mul_n256(benchmark, real_engine):
    """The PR 3 tentpole target: vectorised Gilboa cross-multiplication
    through the real IKNP extension at n=256."""
    engine = real_engine
    rng = np.random.default_rng(0)
    x = engine.share("alice", rng.integers(0, 1000, 256))
    y = engine.share("bob", rng.integers(0, 1000, 256))
    out = benchmark(lambda: engine.mul_shared(x, y))
    assert (
        out.reconstruct()
        == (x.reconstruct() * y.reconstruct()) & engine.ctx.mask
    ).all()


def test_real_garbled_batch_n256(benchmark, real_engine):
    """Instance-parallel garbling + evaluation + label OTs for 256
    instances of the 32-bit nonzero gadget, plan cache warm."""
    from repro.mpc import gadgets
    from repro.mpc.yao import run_garbled_batch

    engine = real_engine
    circuit = gadgets.nonzero_circuit(32)
    rng = np.random.default_rng(0)
    na, nb = len(circuit.alice_inputs), len(circuit.bob_inputs)
    alice = rng.integers(0, 2, (256, na)).tolist()
    bob = rng.integers(0, 2, (256, nb)).tolist()

    outs = benchmark(
        lambda: run_garbled_batch(
            engine.ctx, engine.ot, circuit, alice, bob
        )
    )
    assert len(outs) == 256


def test_garbling_throughput(benchmark):
    b = CircuitBuilder()
    xs, ys = b.alice_input_bits(32), b.bob_input_bits(32)
    b.mul(xs, ys)
    circuit = b.build([])

    garbled = benchmark(lambda: garble(circuit, secrets.token_bytes))
    assert garbled.tables.n_bytes == circuit.and_count * 32
