"""Dual join back-end benchmark: PSI vs DH-OPRF, estimate vs metered.

Measures both join back-ends (docs/BACKENDS.md) on the estimator's
boundary shapes — one where the linear back-end wins, one where the
paper's PSI back-end wins — plus a three-relation chain whose ``auto``
routing is genuinely mixed, and TPC-H Q3 end-to-end.  For every run it
records metered bytes/rounds alongside the estimator's prediction
(SIMULATED accounting is deterministic and machine-independent, and
the estimate must be byte-exact), the ``auto`` routing decision, and
wall-clock seconds (informational only).

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py              # print
    PYTHONPATH=src python benchmarks/bench_backends.py --out F.json # write
    PYTHONPATH=src python benchmarks/bench_backends.py --check      # CI gate

``--check`` compares byte/round numbers and routing decisions against
the committed ``BENCH_PR8.json`` exactly; timings are never gated.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.estimator import estimate_query_cost
from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.query import JoinAggregateQuery
from repro.relalg import AnnotatedRelation, IntegerRing

GROUP_BITS = 1536
SEED = 3
RING = IntegerRing(32)
BACKENDS = ("yannakakis", "linear", "auto")
BASELINE = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

#: name -> (n1, n2, key_range): cross-owner r1(a,b) |><| r2(b,c), SUM
#: over r2, grouped on b.  Chosen at the estimator's boundary: balanced
#: shapes favour the linear back-end, a tiny parent with a large plain
#: child favours the PSI's parent-bounded bin count.
SHAPES = {
    "square_24": (24, 24, 8),
    "square_64": (64, 64, 8),
    "tiny_parent_512": (4, 512, 4),
}


def two_relation_query(n1, n2, key_range, seed=0):
    rng = np.random.default_rng(seed)
    r1 = AnnotatedRelation(
        ("a", "b"),
        [(int(x), int(y)) for x, y in rng.integers(0, key_range, (n1, 2))],
        rng.integers(1, 9, n1),
        RING,
    )
    r2 = AnnotatedRelation(
        ("b", "c"),
        [(int(x), int(y)) for x, y in rng.integers(0, key_range, (n2, 2))],
        rng.integers(1, 9, n2),
        RING,
    )
    q = JoinAggregateQuery(output=("b",))
    q.add_relation("r1", r1, ALICE)
    q.add_relation("r2", r2, BOB)
    return q


def mixed_chain_query():
    """r1(24) -- r2(4) -- r3(512): one node per winner, so ``auto``
    routes a mixed plan (see tests/test_backends.py)."""
    rng = np.random.default_rng(SEED)
    specs = [
        ("r1", ("a", "b"), 24, 6, ALICE),
        ("r2", ("b", "c"), 4, 6, BOB),
        ("r3", ("c", "d"), 512, 6, ALICE),
    ]
    q = JoinAggregateQuery(output=("b",))
    for name, attrs, n, kr, owner in specs:
        rel = AnnotatedRelation(
            attrs,
            [(int(x), int(y)) for x, y in rng.integers(0, kr, (n, 2))],
            rng.integers(1, 9, n),
            RING,
        )
        q.add_relation(name, rel, owner)
    return q


def run_backend(query, backend):
    """One SIMULATED run; returns the measured/estimated record."""
    query.set_backend(backend)
    engine = Engine(Context(Mode.SIMULATED, seed=SEED), GROUP_BITS)
    t0 = time.perf_counter()
    result, stats = query.run_secure(engine)
    seconds = time.perf_counter() - t0
    est = estimate_query_cost(
        query, out_size=len(result), group_bits=GROUP_BITS
    )
    record = {
        "bytes": stats.total_bytes,
        "rounds": stats.rounds,
        "est_bytes": est.total,
        "seconds": round(seconds, 4),
    }
    if backend == "auto":
        record["routes"] = query.backend_assignments("auto")
    return record


def run_tpch_q3(scale_mb=0.1):
    from repro.tpch import PREPARED, generate

    dataset = generate(scale_mb)
    out = {}
    for backend in BACKENDS:
        prepared = PREPARED["Q3"](dataset)
        engine = Engine(
            prepared.make_context(Mode.SIMULATED, seed=7), GROUP_BITS
        )
        engine.backend = backend
        t0 = time.perf_counter()
        _result, stats = prepared.run_secure(engine)
        out[backend] = {
            "bytes": stats.total_bytes,
            "rounds": stats.rounds,
            "seconds": round(time.perf_counter() - t0, 4),
        }
    return out


def measure():
    blob = {
        "group_bits": GROUP_BITS,
        "seed": SEED,
        "shapes": {},
    }
    for name, (n1, n2, kr) in SHAPES.items():
        per_backend = {
            b: run_backend(two_relation_query(n1, n2, kr), b)
            for b in BACKENDS
        }
        winner = min(
            ("yannakakis", "linear"),
            key=lambda b: (per_backend[b]["bytes"], b != "yannakakis"),
        )
        blob["shapes"][name] = {
            "sizes": [n1, n2],
            "backends": per_backend,
            "winner": winner,
        }
        assert per_backend["auto"]["bytes"] == per_backend[winner]["bytes"], (
            f"{name}: auto did not match the measured winner"
        )
    chain = mixed_chain_query()
    blob["mixed_chain"] = {
        "sizes": {n: len(r) for n, r in chain.relations.items()},
        "backends": {
            b: run_backend(mixed_chain_query(), b) for b in BACKENDS
        },
    }
    routes = blob["mixed_chain"]["backends"]["auto"]["routes"]
    assert set(routes.values()) == {"yannakakis", "linear"}, (
        f"chain routing is not mixed: {routes}"
    )
    blob["tpch_q3_scale_0.1"] = run_tpch_q3()
    return blob


def strip_timings(blob):
    """The deterministic subset ``--check`` gates on."""

    def walk(node):
        if isinstance(node, dict):
            return {
                k: walk(v) for k, v in node.items() if k != "seconds"
            }
        return node

    return walk(blob)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=None, metavar="FILE")
    ap.add_argument("--check", action="store_true")
    args = ap.parse_args(argv)

    blob = measure()
    text = json.dumps(blob, indent=2, sort_keys=True)
    print(text)

    for name, shape in blob["shapes"].items():
        be = shape["backends"]
        for b in ("yannakakis", "linear"):
            if be[b]["bytes"] != be[b]["est_bytes"]:
                print(
                    f"FAIL: {name}/{b} estimate {be[b]['est_bytes']} != "
                    f"measured {be[b]['bytes']}"
                )
                return 1

    if args.out:
        Path(args.out).write_text(text + "\n")
    if args.check:
        if not BASELINE.exists():
            print(f"FAIL: baseline {BASELINE} missing")
            return 1
        baseline = json.loads(BASELINE.read_text())
        if strip_timings(baseline) != strip_timings(blob):
            print("FAIL: measurements diverge from BENCH_PR8.json")
            return 1
        print("OK: matches BENCH_PR8.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
