"""Ablations of the design choices called out in DESIGN.md.

1. **Reduce-before-semijoin** (the paper's 3-phase modification): the
   reduce phase shrinks the relations the semijoin phase touches; the
   ablation measures the semijoin-phase cost when the aggregation has
   not been pushed down (the child keeps its full arity).
2. **Same-party semijoin shortcut** vs the general PSI path.
3. **Plain-annotation fast path** (Section 6.5) vs forced sharing.
4. **OT-multiplication** (Gilboa) vs a garbled 32-bit multiplier.
"""

import numpy as np
import pytest

from repro.core import (
    SecureAnnotations,
    SecureRelation,
    oblivious_reduce_join,
    oblivious_semijoin,
)
from repro.mpc import ALICE, BOB, Context, Engine, Mode

N = 256


def fresh_engine():
    return Engine(Context(Mode.SIMULATED, seed=3))


def make_rel(owner, n, arity=2, shared_with=None, seed=0):
    rng = np.random.default_rng(seed)
    tuples = [
        tuple(int(v) for v in rng.integers(0, n, arity))
        for _ in range(n)
    ]
    # distinct tuples for PSI-side relations
    tuples = list(dict.fromkeys(tuples))
    annots = rng.integers(1, 100, len(tuples))
    attrs = tuple(f"a{i}" for i in range(arity))
    rel = SecureRelation(
        owner, attrs, tuples, SecureAnnotations.plain(owner, annots)
    )
    if shared_with is not None:
        rel.annotations = SecureAnnotations.shared(
            shared_with.share(owner, annots)
        )
    return rel


def _bytes_of(fn):
    engine = fresh_engine()
    before = engine.ctx.transcript.total_bytes
    fn(engine)
    return engine.ctx.transcript.total_bytes - before


def test_same_party_shortcut_vs_psi(benchmark):
    """Section 6.2's same-party protocol skips PSI entirely."""

    def same_party(engine):
        parent = make_rel(ALICE, N, 2, shared_with=engine, seed=1)
        child = make_rel(ALICE, N, 1, shared_with=engine, seed=2)
        oblivious_reduce_join(engine, parent, child)

    def cross_party(engine):
        parent = make_rel(ALICE, N, 2, shared_with=engine, seed=1)
        child = make_rel(BOB, N, 1, shared_with=engine, seed=2)
        oblivious_reduce_join(engine, parent, child)

    same_bytes = _bytes_of(same_party)
    cross_bytes = _bytes_of(cross_party)
    benchmark.extra_info.update(
        same_party_mb=round(same_bytes / 1e6, 3),
        cross_party_mb=round(cross_bytes / 1e6, 3),
        saving=round(cross_bytes / same_bytes, 1),
    )
    assert same_bytes < cross_bytes / 2
    benchmark(lambda: same_party(fresh_engine()))


def test_plain_annotation_fast_path(benchmark):
    """Section 6.5: owner-known annotations keep the whole aggregation
    local and make the PSI payload path cheaper."""

    def plain_path(engine):
        parent = make_rel(ALICE, N, 2, seed=1)
        child = make_rel(BOB, N, 1, seed=2)
        oblivious_reduce_join(engine, parent, child)

    def shared_path(engine):
        parent = make_rel(ALICE, N, 2, shared_with=engine, seed=1)
        child = make_rel(BOB, N, 1, shared_with=engine, seed=2)
        oblivious_reduce_join(engine, parent, child)

    plain_bytes = _bytes_of(plain_path)
    shared_bytes = _bytes_of(shared_path)
    benchmark.extra_info.update(
        plain_mb=round(plain_bytes / 1e6, 3),
        shared_mb=round(shared_bytes / 1e6, 3),
    )
    assert plain_bytes < shared_bytes
    benchmark(lambda: plain_path(fresh_engine()))


def test_ot_mult_vs_gc_mult(benchmark):
    """Gilboa OT-multiplication vs the garbled 32-bit multiplier."""
    rng = np.random.default_rng(0)

    def run(via):
        engine = fresh_engine()
        x = engine.share("alice", rng.integers(0, 1000, N))
        y = engine.share("bob", rng.integers(0, 1000, N))
        before = engine.ctx.transcript.total_bytes
        out = engine.mul_shared(x, y, via=via)
        assert (
            out.reconstruct()
            == (x.reconstruct() * y.reconstruct()) & engine.ctx.mask
        ).all()
        return engine.ctx.transcript.total_bytes - before

    ot_bytes, gc_bytes = run("ot"), run("gc")
    benchmark.extra_info.update(
        ot_mult_kb_per_elem=round(ot_bytes / N / 1e3, 2),
        gc_mult_kb_per_elem=round(gc_bytes / N / 1e3, 2),
        saving=round(gc_bytes / ot_bytes, 1),
    )
    assert ot_bytes * 5 < gc_bytes
    benchmark(lambda: run("ot"))


def test_reduce_shrinks_semijoin_cost(benchmark):
    """The 3-phase modification: semijoining *reduced* (single join
    attribute) relations is cheaper than semijoining wide ones whose
    non-output attributes were never aggregated away."""

    def reduced(engine):
        target = make_rel(ALICE, N, 2, shared_with=engine, seed=1)
        filt = make_rel(BOB, N, 1, shared_with=engine, seed=2)
        oblivious_semijoin(engine, target, filt)

    def unreduced(engine):
        target = make_rel(ALICE, N, 2, shared_with=engine, seed=1)
        filt = make_rel(BOB, N, 4, shared_with=engine, seed=2)
        # a0 is still the only shared attribute; the filter keeps its
        # full arity, so its support projection pays for a wider sort
        # and the PSI sees no benefit
        oblivious_semijoin(engine, target, filt)

    reduced_bytes = _bytes_of(reduced)
    unreduced_bytes = _bytes_of(unreduced)
    benchmark.extra_info.update(
        reduced_mb=round(reduced_bytes / 1e6, 3),
        unreduced_mb=round(unreduced_bytes / 1e6, 3),
    )
    assert reduced_bytes <= unreduced_bytes
    benchmark(lambda: reduced(fresh_engine()))


def test_three_phase_vs_two_phase(benchmark):
    """The paper's own modification (reduce before semijoin) against the
    original Yannakakis phase order, end to end."""
    from repro.core import SecureRelation, secure_yannakakis
    from repro.relalg import (
        AnnotatedRelation,
        Hypergraph,
        IntegerRing,
        find_free_connex_tree,
    )
    from repro.yannakakis import build_plan, build_two_phase_plan

    ring = IntegerRing(32)
    rng = np.random.default_rng(5)
    rels = {}
    for name, attrs in {
        "R1": ("a", "b"), "R2": ("b", "c"), "R3": ("c", "d"),
    }.items():
        tuples = [
            tuple(int(v) for v in rng.integers(0, 20, 2))
            for _ in range(N)
        ]
        rels[name] = AnnotatedRelation(
            attrs, tuples, rng.integers(0, 9, N), ring
        )
    h = Hypergraph({n: r.attributes for n, r in rels.items()})
    tree = find_free_connex_tree(h, {"d"})
    plans = {
        "three_phase": build_plan(tree, ("d",)),
        "two_phase": build_two_phase_plan(tree, ("d",)),
    }

    def run(plan):
        engine = fresh_engine()
        sec = {
            n: SecureRelation.from_annotated(
                ALICE if i % 2 == 0 else BOB, rels[n]
            )
            for i, n in enumerate(sorted(rels))
        }
        _, stats = secure_yannakakis(engine, sec, plan)
        return stats.total_bytes

    bytes_by_plan = {k: run(p) for k, p in plans.items()}
    benchmark.extra_info.update(
        three_phase_mb=round(bytes_by_plan["three_phase"] / 1e6, 2),
        two_phase_mb=round(bytes_by_plan["two_phase"] / 1e6, 2),
    )
    assert bytes_by_plan["three_phase"] < bytes_by_plan["two_phase"]
    benchmark(lambda: run(plans["three_phase"]))
