"""Figure 2: TPC-H Q3 — time and communication of secure Yannakakis vs
the garbled-circuit baseline vs non-private evaluation."""

import pytest

from repro.baselines import cartesian_gc_cost, gc_gate_rate
from repro.mpc import Engine, Mode
from repro.tpch import prepare_q3


def test_fig2_q3_secure(benchmark, dataset):
    query = prepare_q3(dataset)
    plain, _ = query.run_plain()

    def run():
        ctx = query.make_context(Mode.SIMULATED, seed=7)
        return query.run_secure(Engine(ctx))

    result, stats = benchmark(run)
    assert result.semantically_equal(plain)
    gc = cartesian_gc_cost(
        query.gc_sizes, query.gc_conditions, gate_rate=gc_gate_rate()
    )
    benchmark.extra_info.update(
        secure_mb=round(stats.total_bytes / 1e6, 2),
        gc_baseline_mb=round(gc.comm_bytes / 1e6, 1),
        gc_baseline_hours=round(gc.est_seconds / 3600, 1),
        effective_input_kb=round(query.effective_bytes / 1e3, 1),
    )
    # The headline claims: orders of magnitude in both dimensions.
    assert gc.comm_bytes > 100 * stats.total_bytes
    assert gc.est_seconds > 100 * stats.seconds


def test_fig2_q3_nonprivate(benchmark, dataset):
    query = prepare_q3(dataset)
    result, _ = benchmark(query.run_plain)
    assert len(result.attributes) == 3
