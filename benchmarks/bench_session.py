"""Session-layer framing overhead on the TPC-H pipeline.

The fault-tolerant session layer (``repro.runtime``) frames every wire
message with a fixed-size header (magic, sequence number, length,
checksum).  This benchmark measures its byte cost against a plain
(sessionless) run of the same query and asserts the accounting
invariant the estimator's :func:`repro.bench.estimator.
session_framing_overhead` predicts::

    session_total == plain_total + FRAME_HEADER_BYTES * n_messages

SIMULATED byte accounting is deterministic and machine independent, so
the committed baseline (``BENCH_PR5_SESSION.json``) gates on exact
byte numbers; wall-clock timings are recorded for information only.
``--real`` additionally runs REAL mode with the session enabled and
asserts its transcript fingerprint matches the SIMULATED session run
(the session layer must not disturb REAL-vs-SIM parity).

Usage::

    PYTHONPATH=src python benchmarks/bench_session.py              # print
    PYTHONPATH=src python benchmarks/bench_session.py --out F.json # write
    PYTHONPATH=src python benchmarks/bench_session.py --check      # CI gate
    PYTHONPATH=src python benchmarks/bench_session.py --real       # + parity
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.estimator import session_framing_overhead
from repro.mpc import Context, Engine, Mode  # noqa: F401 (Context re-export)
from repro.runtime import FaultPlan, enable_session
from repro.runtime.framing import FRAME_HEADER_BYTES
from repro.tpch import PREPARED, generate

GROUP_BITS = 1536
SCALE_MB = 0.1
SEED = 7
QUERIES = ("Q3", "Q10")
BASELINE = Path(__file__).resolve().parent.parent / "BENCH_PR5_SESSION.json"


def _run(prepared, mode, with_session):
    ctx = prepared.make_context(mode, seed=SEED)
    engine = Engine(ctx, GROUP_BITS, exec_policy="program")
    session = (
        enable_session(ctx, FaultPlan(), seed=SEED)
        if with_session
        else None
    )
    t0 = time.perf_counter()
    prepared.run_secure(engine)
    if session is not None:
        session.finish()
    seconds = time.perf_counter() - t0
    t = ctx.transcript
    return {
        "total_bytes": t.total_bytes,
        "n_messages": len(t.messages),
        "fingerprint": t.fingerprint(),
        "seconds": seconds,
    }


def measure(real: bool = False):
    out = {
        "scale_mb": SCALE_MB,
        "group_bits": GROUP_BITS,
        "frame_header_bytes": FRAME_HEADER_BYTES,
        "queries": {},
    }
    for name in QUERIES:
        prepared = PREPARED[name](generate(SCALE_MB))
        plain = _run(prepared, Mode.SIMULATED, with_session=False)
        sess = _run(prepared, Mode.SIMULATED, with_session=True)
        framing = session_framing_overhead(plain["n_messages"])
        assert sess["n_messages"] == plain["n_messages"], (
            f"{name}: session changed the message count "
            f"({plain['n_messages']} -> {sess['n_messages']})"
        )
        assert sess["total_bytes"] == plain["total_bytes"] + framing, (
            f"{name}: session overhead is not accounting-neutral: "
            f"{sess['total_bytes'] - plain['total_bytes']} observed, "
            f"{framing} predicted"
        )
        if real:
            sess_real = _run(prepared, Mode.REAL, with_session=True)
            assert sess_real["fingerprint"] == sess["fingerprint"], (
                f"{name}: REAL-vs-SIM fingerprint parity broken "
                "with the session enabled"
            )
        out["queries"][name] = {
            "plain_bytes": plain["total_bytes"],
            "session_bytes": sess["total_bytes"],
            "n_messages": plain["n_messages"],
            "framing_bytes": framing,
            "overhead_pct": round(
                100.0 * framing / plain["total_bytes"], 3
            ),
            # Machine dependent; informational only, never gated.
            "plain_seconds": round(plain["seconds"], 4),
            "session_seconds": round(sess["seconds"], 4),
        }
    return out


GATED_KEYS = (
    "plain_bytes",
    "session_bytes",
    "n_messages",
    "framing_bytes",
)


def check(measured) -> int:
    baseline = json.loads(BASELINE.read_text())
    failures = []
    for name, got in measured["queries"].items():
        want = baseline["queries"].get(name)
        if want is None:
            failures.append(f"{name}: missing from baseline")
            continue
        for key in GATED_KEYS:
            if got[key] != want[key]:
                failures.append(
                    f"{name}.{key}: {got[key]} != baseline {want[key]}"
                )
    if failures:
        for f in failures:
            print(f"FAIL {f}")
        return 1
    print(f"session overhead matches {BASELINE.name} exactly")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=None, help="write JSON here")
    ap.add_argument(
        "--check", action="store_true",
        help=f"gate against the committed {BASELINE.name}",
    )
    ap.add_argument(
        "--real", action="store_true",
        help="also assert REAL-vs-SIM parity with the session (slow)",
    )
    args = ap.parse_args(argv)
    measured = measure(real=args.real)
    for name, row in measured["queries"].items():
        print(
            f"{name}: {row['plain_bytes']} B plain, "
            f"+{row['framing_bytes']} B framing over "
            f"{row['n_messages']} messages "
            f"({row['overhead_pct']}% overhead), "
            f"{row['session_seconds']:.3f}s with session"
        )
    if args.out:
        Path(args.out).write_text(
            json.dumps(measured, indent=2) + "\n"
        )
        print(f"wrote {args.out}")
    if args.check:
        return check(measured)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
