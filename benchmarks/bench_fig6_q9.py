"""Figure 6: TPC-H Q9 — the non-free-connex query, decomposed into
per-nation sub-queries (Section 8.1).

The pytest benchmark runs a 2-nation slice to stay fast; per-nation
cost is identical by construction (obliviousness), so the full-25
figure in ``run_all.py`` scales it exactly."""

from repro.baselines import cartesian_gc_cost, gc_gate_rate
from repro.mpc import Engine, Mode
from repro.tpch import prepare_q9

NATIONS = [7, 8]


def test_fig6_q9_secure(benchmark, dataset):
    query = prepare_q9(dataset, nations=NATIONS)
    plain, _ = query.run_plain()

    def run():
        ctx = query.make_context(Mode.SIMULATED, seed=7)
        return query.run_secure(Engine(ctx))

    result, stats = benchmark(run)
    assert result.semantically_equal(plain)
    gc = cartesian_gc_cost(
        query.gc_sizes,
        query.gc_conditions,
        gate_rate=gc_gate_rate(),
        runs=query.gc_runs,
    )
    full_factor = 25 / len(NATIONS)
    benchmark.extra_info.update(
        secure_mb_all_nations=round(
            full_factor * stats.total_bytes / 1e6, 2
        ),
        gc_baseline_mb=round(full_factor * gc.comm_bytes / 1e6, 1),
        nations_benchmarked=len(NATIONS),
    )
    assert gc.comm_bytes > 1000 * stats.total_bytes


def test_fig6_q9_nonprivate(benchmark, dataset):
    query = prepare_q9(dataset, nations=NATIONS)
    result, _ = benchmark(query.run_plain)
    assert result.attributes == ("s_nationkey", "o_year")
