"""Figure 5: TPC-H Q8 — ratio-of-sums composition (two protocol runs
plus a division circuit)."""

from repro.baselines import cartesian_gc_cost, gc_gate_rate
from repro.mpc import Engine, Mode
from repro.tpch import prepare_q8


def test_fig5_q8_secure(benchmark, dataset):
    query = prepare_q8(dataset)
    plain, _ = query.run_plain()

    def run():
        ctx = query.make_context(Mode.SIMULATED, seed=7)
        return query.run_secure(Engine(ctx))

    result, stats = benchmark(run)
    assert result.semantically_equal(plain)
    gc = cartesian_gc_cost(
        query.gc_sizes,
        query.gc_conditions,
        gate_rate=gc_gate_rate(),
        runs=query.gc_runs,
    )
    benchmark.extra_info.update(
        secure_mb=round(stats.total_bytes / 1e6, 2),
        gc_baseline_mb=round(gc.comm_bytes / 1e6, 1),
    )
    assert gc.comm_bytes > 1000 * stats.total_bytes


def test_fig5_q8_nonprivate(benchmark, dataset):
    query = prepare_q8(dataset)
    result, _ = benchmark(query.run_plain)
    assert result.attributes == ("o_year",)
