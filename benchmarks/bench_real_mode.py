"""REAL-mode cryptography throughput: the constants behind the
SIMULATED-mode time extrapolations.  Small sizes by design — this is
pure-Python crypto."""

import secrets

import numpy as np
import pytest

from repro.mpc import ALICE, BOB, Context, Engine, Mode
from repro.mpc.circuits import CircuitBuilder, evaluate_garbled, garble
from repro.mpc.ot import ChouOrlandiOT, IknpExtension

GROUP_BITS = 1536


def test_base_ot_throughput(benchmark):
    ctx = Context(Mode.REAL, seed=1)
    ot = ChouOrlandiOT(ctx, GROUP_BITS)
    pairs = [(secrets.token_bytes(16), secrets.token_bytes(16))] * 4
    out = benchmark(lambda: ot.transfer(pairs, [0, 1, 0, 1]))
    assert len(out) == 4


def test_ot_extension_throughput(benchmark):
    ctx = Context(Mode.REAL, seed=2)
    ext = IknpExtension(ctx, GROUP_BITS)
    rng = np.random.default_rng(0)
    pairs = [(rng.bytes(16), rng.bytes(16)) for _ in range(256)]
    choices = [int(c) for c in rng.integers(0, 2, 256)]
    ext.transfer(pairs[:1], choices[:1])  # base phase outside the timer

    out = benchmark(lambda: ext.transfer(pairs, choices))
    assert len(out) == 256


def test_garble_and_evaluate(benchmark):
    b = CircuitBuilder()
    xs, ys = b.alice_input_bits(32), b.bob_input_bits(32)
    b.mul(xs, ys)
    circuit = b.build([])

    def run():
        g = garble(circuit, secrets.token_bytes)
        labels = {w: g.label(w, 0) for w in circuit.alice_inputs}
        labels.update({w: g.label(w, 1) for w in circuit.bob_inputs})
        labels.update(
            {w: g.label(w, bit) for w, bit in circuit.const_wires}
        )
        return evaluate_garbled(circuit, g.tables, labels)

    benchmark(run)
    benchmark.extra_info["and_gates"] = circuit.and_count


def test_real_secure_query_end_to_end(benchmark):
    """A complete REAL-mode protocol run (Example 1.1 sizes)."""
    from repro.query import JoinAggregateQuery
    from repro.relalg import AnnotatedRelation

    r1 = AnnotatedRelation(
        ("p", "c"), [(i, i) for i in range(6)], [2] * 6
    )
    r2 = AnnotatedRelation(
        ("p", "d"), [(i, i % 2) for i in range(6)], [3] * 6
    )

    def run():
        q = (
            JoinAggregateQuery(output=["d"])
            .add_relation("R1", r1, owner=ALICE)
            .add_relation("R2", r2, owner=BOB)
        )
        engine = Engine(Context(Mode.REAL, seed=3), GROUP_BITS)
        result, stats = q.run_secure(engine)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result) == 2
