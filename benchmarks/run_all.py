#!/usr/bin/env python
"""Regenerate every figure of the paper's evaluation (Figures 2-6).

Runs each of the five TPC-H queries at the paper's dataset scales,
printing the paper-style series (time and communication for secure
Yannakakis, the garbled-circuit baseline, and non-private evaluation)
and a shape check against the paper's qualitative claims.

Usage::

    python benchmarks/run_all.py                 # scales 1, 3, 10 MB
    python benchmarks/run_all.py --full          # the paper's 1..100 MB
    python benchmarks/run_all.py --queries Q3 Q8 --scales 1 3
    python benchmarks/run_all.py --q9-nations 5  # Q9 sub-query budget

The full sweep at 100 MB takes a while in pure Python (the paper's C++
implementation needed ~20s per query there; the simulated substrate
does the same work with numpy plus Python orchestration).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from repro.bench import check_figure_shape, format_figure, run_figure
from repro.tpch.datagen import SCALES_MB


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--queries",
        nargs="+",
        default=["Q3", "Q10", "Q18", "Q8", "Q9"],
        help="which figures to regenerate",
    )
    parser.add_argument(
        "--scales",
        nargs="+",
        type=float,
        default=None,
        help="dataset scales in MB (default 1 3 10; --full for 1..100)",
    )
    parser.add_argument(
        "--full", action="store_true", help="use the paper's full scale list"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the measured rows as JSON",
    )
    parser.add_argument(
        "--q9-nations",
        type=int,
        default=25,
        help="how many of the 25 per-nation sub-queries Q9 runs "
        "(costs scale linearly; 25 reproduces the paper exactly)",
    )
    args = parser.parse_args(argv)

    scales = args.scales or (list(SCALES_MB) if args.full else [1, 3, 10])
    failures = 0
    all_rows = []
    for name in args.queries:
        start = time.time()
        kwargs = {}
        if name == "Q9":
            kwargs["q9_nations"] = list(range(args.q9_nations))
        rows = run_figure(name, scales=scales, **kwargs)
        all_rows.extend(dataclasses.asdict(r) for r in rows)
        print()
        print(format_figure(rows))
        problems = check_figure_shape(rows)
        if problems:
            failures += 1
            for p in problems:
                print(f"  SHAPE VIOLATION: {p}")
        else:
            print(
                f"  shape OK ({time.time() - start:.0f}s): linear secure "
                "cost, polynomial GC baseline, plaintext far below"
            )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(all_rows, fh, indent=2)
        print(f"wrote {len(all_rows)} rows to {args.json}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
