"""Benchmark fixtures: datasets are module-scoped so pytest-benchmark
repetitions do not regenerate them."""

from __future__ import annotations

import os

import pytest

from repro.tpch import generate

#: Benchmark scale in MB; override with REPRO_BENCH_SCALE_MB.  The full
#: five-scale sweep of the paper lives in benchmarks/run_all.py.
SCALE_MB = float(os.environ.get("REPRO_BENCH_SCALE_MB", "1"))


@pytest.fixture(scope="session")
def dataset():
    return generate(SCALE_MB)
