"""Columnar data plane vs the retained tuple path — the PR 6 curve.

Runs TPC-H Q3 at 0.1, 1 and 10 MB and measures, per scale:

* ``ingest_columnar_ms``  — building the query's annotated relations
  straight from the table columns (``Table.to_relation``'s zero-copy
  columnar path);
* ``ingest_tuple_ms``     — rebuilding the same relations from Python
  tuple rows (what the pre-columnar seed did on every ingest);
* ``plain_columnar_ms``   — plaintext Yannakakis over the columnar
  operators (:mod:`repro.relalg.operators`);
* ``plain_reference_ms``  — the same plan over the retained tuple-path
  operators (:mod:`repro.relalg._reference`), results asserted
  identical tuple-for-tuple;
* ``sql_ms``              — the honest-engine baseline
  (:mod:`repro.baselines.sql_baseline`: DuckDB if installed, stdlib
  sqlite3 otherwise), result asserted semantically equal;
* ``secure_bytes`` / ``n_messages`` — one SIMULATED secure run.
  Byte accounting is deterministic and machine-independent, so the
  committed baseline gates on *exact* equality; wall-clock numbers are
  informational.

``speedup`` is (plaintext + marshalling) tuple-path time over columnar
time: ``(ingest_tuple + plain_reference) / (ingest_columnar +
plain_columnar)``.

Usage::

    PYTHONPATH=src python benchmarks/bench_columnar.py            # print
    PYTHONPATH=src python benchmarks/bench_columnar.py --out F    # write
    PYTHONPATH=src python benchmarks/bench_columnar.py --check    # CI gate
    PYTHONPATH=src python benchmarks/bench_columnar.py --quick    # small scales

The ``--check`` gate verifies, against ``BENCH_PR6.json``:

* secure byte counts and message counts match exactly at every scale;
* the measured speedup at the largest scale is at least
  ``SPEEDUP_TOLERANCE`` x the committed one (timings vary by machine;
  bytes do not);
* the committed curve itself records >= ``MIN_SPEEDUP_10MB`` at 10 MB.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.baselines import run_sql_baseline
from repro.mpc import Engine, Mode
from repro.relalg import _reference
from repro.relalg.relation import AnnotatedRelation
from repro.tpch import PREPARED, generate

SEED = 7
QUERY = "Q3"
SCALES_MB = (0.1, 1, 10)
QUICK_SCALES_MB = (0.1, 1)
#: The committed curve must show at least this at the 10 MB point.
MIN_SPEEDUP_10MB = 3.0
#: Measured-vs-committed slack for wall-clock gates (bytes get none).
SPEEDUP_TOLERANCE = 0.4
BASELINE = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"


def _time(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _tuple_reingest_ms(relations) -> float:
    """Rebuild every input relation from Python tuple rows — the
    pre-columnar representation's ingest cost (row materialisation
    included, exactly what the tuple path paid)."""
    total = 0.0
    for rel in relations.values():
        # A fresh store, so materialisation isn't served from cache.
        uncached = rel.store.take(np.arange(len(rel)))
        t0 = time.perf_counter()
        rows = uncached.materialize()
        AnnotatedRelation(
            rel.attributes, rows, rel.annotations, rel.semiring
        )
        total += time.perf_counter() - t0
    return 1e3 * total


def measure_scale(scale_mb: float) -> dict:
    prepared = PREPARED[QUERY](generate(scale_mb))

    query, ingest_s = _time(prepared._build)
    relations = query.relations
    ingest_tuple_ms = _tuple_reingest_ms(relations)

    plain_col, plain_col_s = prepared.run_plain()
    plain_ref, plain_ref_s = prepared.run_plain(operators=_reference)
    assert plain_col.tuples == plain_ref.tuples, (
        f"{QUERY}@{scale_mb}MB: columnar and reference operators disagree"
    )
    assert (plain_col.annotations == plain_ref.annotations).all()

    sql = run_sql_baseline(relations, list(query.output), ell=prepared.ell)
    assert sql.result.semantically_equal(plain_col), (
        f"{QUERY}@{scale_mb}MB: {sql.backend} disagrees with Yannakakis"
    )

    ctx = prepared.make_context(Mode.SIMULATED, seed=SEED)
    secure_result, stats = prepared.run_secure(Engine(ctx))
    assert secure_result.semantically_equal(plain_col)

    ingest_col_ms = 1e3 * ingest_s
    speedup = (ingest_tuple_ms + 1e3 * plain_ref_s) / (
        ingest_col_ms + 1e3 * plain_col_s
    )
    return {
        "ingest_columnar_ms": round(ingest_col_ms, 2),
        "ingest_tuple_ms": round(ingest_tuple_ms, 2),
        "plain_columnar_ms": round(1e3 * plain_col_s, 2),
        "plain_reference_ms": round(1e3 * plain_ref_s, 2),
        "sql_ms": round(1e3 * sql.seconds, 2),
        "sql_backend": sql.backend,
        "speedup": round(speedup, 2),
        "secure_bytes": stats.total_bytes,
        "n_messages": len(ctx.transcript.messages),
        "secure_seconds": round(stats.seconds, 3),
    }


def measure(scales) -> dict:
    out = {"query": QUERY, "seed": SEED, "scales": {}}
    for mb in scales:
        out["scales"][str(mb)] = measure_scale(mb)
    return out


def check(measured: dict) -> int:
    if not BASELINE.exists():
        print(f"missing committed baseline {BASELINE}", file=sys.stderr)
        return 1
    committed = json.loads(BASELINE.read_text())

    failures = []
    ten = committed["scales"].get("10")
    if ten is None or ten["speedup"] < MIN_SPEEDUP_10MB:
        failures.append(
            "committed curve does not record a >= "
            f"{MIN_SPEEDUP_10MB}x speedup at 10 MB: {ten}"
        )
    for scale, got in measured["scales"].items():
        want = committed["scales"].get(scale)
        if want is None:
            failures.append(f"scale {scale} MB missing from {BASELINE}")
            continue
        for key in ("secure_bytes", "n_messages"):
            if got[key] != want[key]:
                failures.append(
                    f"{scale} MB: {key} {got[key]} != committed {want[key]}"
                )
    largest = max(measured["scales"], key=float)
    got_speed = measured["scales"][largest]["speedup"]
    want_speed = committed["scales"][largest]["speedup"]
    if got_speed < SPEEDUP_TOLERANCE * want_speed:
        failures.append(
            f"{largest} MB: measured speedup {got_speed} fell below "
            f"{SPEEDUP_TOLERANCE} x committed {want_speed}"
        )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(
        f"columnar curve matches {BASELINE.name}: byte counts exact at "
        f"{sorted(measured['scales'])} MB, speedup {got_speed}x at "
        f"{largest} MB (committed {want_speed}x)"
    )
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", type=Path, help="write JSON to this path")
    ap.add_argument(
        "--check", action="store_true",
        help="gate against the committed BENCH_PR6.json",
    )
    ap.add_argument(
        "--quick", action="store_true",
        help=f"only scales {QUICK_SCALES_MB} (CI-sized)",
    )
    args = ap.parse_args()

    scales = QUICK_SCALES_MB if args.quick else SCALES_MB
    measured = measure(scales)
    text = json.dumps(measured, indent=2, sort_keys=True)
    if args.out:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    if args.check:
        return check(measured)
    return 0


if __name__ == "__main__":
    sys.exit(main())
